"""LCP-interval forest: suffix-tree nodes recovered from the LCP array.

An *LCP interval* of depth ``d`` is a maximal range ``[lb, rb]`` of
suffix-array ranks whose suffixes all share a length-``d`` prefix, with at
least one adjacent pair achieving exactly ``d``.  These intervals are in
one-to-one correspondence with the internal nodes of the (generalized)
suffix tree, with interval nesting as the parent/child relation — the
classic *enhanced suffix array* equivalence (Abouelhoda, Kurtz & Ohlebusch).

The paper's pair-generation (Algorithm 1) runs over the forest of GST
subtrees whose roots have string-depth ≥ ψ, processing nodes in decreasing
string-depth order.  :func:`build_lcp_forest` materialises exactly that
forest: nodes with depth < ``min_depth`` are structurally traversed but
never emitted, so their children become forest roots and their lsets are
implicitly discarded — which is precisely the paper's behaviour at the
threshold boundary.

The builder also accepts a rank sub-range ``[lo, hi)``, which is how each
(simulated or real) slave processor builds the forest for only the suffix
buckets it owns: a bucket keyed on the first ``w`` characters is a
contiguous suffix-array range, and with ψ ≥ w every qualifying node lies
entirely inside one bucket.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LcpForest", "build_lcp_forest"]


@dataclass
class LcpForest:
    """The qualifying suffix-tree nodes over one suffix-array range.

    All per-node sequences are parallel, indexed by node id in *emission*
    (bottom-up pop) order, which guarantees children precede parents.

    Attributes
    ----------
    depth, lb, rb:
        String-depth and inclusive suffix-array rank range per node.
    parent:
        Parent node id, or -1 when the parent's depth is below the
        threshold (the node is a root of the forest).
    children:
        Child node ids, ordered left to right (by ``lb``).
    leaves:
        Suffix-array ranks directly attached to the node, i.e. ranks in
        ``[lb, rb]`` not covered by any child interval.  Each corresponds to
        a leaf of the suffix tree hanging immediately below this node.
    min_depth:
        The ψ threshold the forest was built with.
    """

    depth: np.ndarray
    lb: np.ndarray
    rb: np.ndarray
    parent: np.ndarray
    children: list[list[int]]
    leaves: list[list[int]]
    min_depth: int

    @property
    def n_nodes(self) -> int:
        return len(self.depth)

    def roots(self) -> np.ndarray:
        """Ids of forest roots (nodes whose parent is below threshold)."""
        return np.flatnonzero(self.parent == -1)

    def nodes_by_decreasing_depth(self) -> np.ndarray:
        """Node ids sorted by decreasing string-depth (Algorithm 1 order).

        A stable sort on negated depth keeps emission order inside equal
        depths, making generation fully deterministic.
        """
        return np.argsort(-self.depth, kind="stable")

    def validate(self) -> None:
        """Internal-consistency checks (used by tests and debug runs)."""
        for nid in range(self.n_nodes):
            for cid in self.children[nid]:
                if not (self.lb[nid] <= self.lb[cid] and self.rb[cid] <= self.rb[nid]):
                    raise AssertionError(f"child {cid} not nested in node {nid}")
                if self.depth[cid] <= self.depth[nid]:
                    raise AssertionError(f"child {cid} not deeper than parent {nid}")
                if self.parent[cid] != nid:
                    raise AssertionError(f"parent link mismatch for {cid}")
            covered = sum(self.rb[c] - self.lb[c] + 1 for c in self.children[nid])
            covered += len(self.leaves[nid])
            if covered != self.rb[nid] - self.lb[nid] + 1:
                raise AssertionError(f"node {nid} does not partition its interval")


def build_lcp_forest(
    lcp: np.ndarray,
    *,
    min_depth: int,
    lo: int = 0,
    hi: int | None = None,
) -> LcpForest:
    """Build the forest of LCP intervals with depth ≥ ``min_depth``.

    Parameters
    ----------
    lcp:
        LCP array over the full suffix array (``lcp[r]`` relates ranks
        ``r-1`` and ``r``).
    min_depth:
        The ψ threshold; must be ≥ 1 (depth-0 "nodes" pair everything with
        everything and are meaningless here, as in the paper where ψ ≥ w).
    lo, hi:
        Restrict to suffix-array ranks ``[lo, hi)``; boundaries are treated
        as depth-0 breaks, which is exact when the range is a full bucket
        (adjacent buckets share < w < ψ characters).
    """
    if min_depth < 1:
        raise ValueError(f"min_depth must be >= 1, got {min_depth}")
    lcp = np.asarray(lcp)
    if hi is None:
        hi = len(lcp)
    if not 0 <= lo <= hi <= len(lcp):
        raise ValueError(f"invalid range [{lo}, {hi}) for lcp of length {len(lcp)}")

    depths: list[int] = []
    lbs: list[int] = []
    rbs: list[int] = []
    parents: list[int] = []
    children: list[list[int]] = []
    leaves: list[list[int]] = []

    def emit(depth: int, lb: int, rb: int, kids: list[int]) -> int:
        nid = len(depths)
        depths.append(depth)
        lbs.append(lb)
        rbs.append(rb)
        parents.append(-1)
        children.append(kids)
        # Direct leaves: ranks in [lb, rb] not covered by child intervals.
        direct: list[int] = []
        cur = lb
        for cid in kids:
            parents[cid] = nid
            direct.extend(range(cur, lbs[cid]))
            cur = rbs[cid] + 1
        direct.extend(range(cur, rb + 1))
        leaves.append(direct)
        return nid

    # Stack of open intervals: [depth, lb, child_ids | None].
    # child_ids is None for intervals below threshold (children of those
    # become forest roots).  Depths on the stack are strictly increasing.
    stack: list[list] = [[0, lo, None if min_depth > 0 else []]]
    n = hi - lo
    if n <= 0:
        raise ValueError("empty suffix-array range")

    for r in range(lo + 1, hi + 1):
        v = int(lcp[r]) if r < hi else 0
        lb = r - 1
        held: int | None = None  # emitted node awaiting a parent push
        while stack[-1][0] > v:
            depth_i, lb_i, kids_i = stack.pop()
            lb = lb_i
            if kids_i is not None:
                nid = emit(depth_i, lb_i, r - 1, kids_i)
            else:
                nid = None
            # Attach to the node below if it remains an enclosing interval.
            if nid is not None:
                if stack[-1][0] >= v and stack[-1][0] >= min_depth:
                    # Parent is on the stack and qualifies.
                    if stack[-1][2] is None:  # pragma: no cover - defensive
                        stack[-1][2] = []
                    stack[-1][2].append(nid)
                elif stack[-1][0] < v:
                    held = nid  # parent is the interval about to be pushed
                # else: parent below threshold -> forest root (parent -1).
        if stack[-1][0] < v:
            kids = [held] if (held is not None and v >= min_depth) else []
            stack.append([v, lb, kids if v >= min_depth else None])
        # stack[-1][0] == v: held (if any) was already attached above.

    return LcpForest(
        depth=np.array(depths, dtype=np.int64),
        lb=np.array(lbs, dtype=np.int64),
        rb=np.array(rbs, dtype=np.int64),
        parent=np.array(parents, dtype=np.int64),
        children=children,
        leaves=leaves,
        min_depth=min_depth,
    )
