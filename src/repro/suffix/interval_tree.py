"""LCP-interval forest: suffix-tree nodes recovered from the LCP array.

An *LCP interval* of depth ``d`` is a maximal range ``[lb, rb]`` of
suffix-array ranks whose suffixes all share a length-``d`` prefix, with at
least one adjacent pair achieving exactly ``d``.  These intervals are in
one-to-one correspondence with the internal nodes of the (generalized)
suffix tree, with interval nesting as the parent/child relation — the
classic *enhanced suffix array* equivalence (Abouelhoda, Kurtz & Ohlebusch).

The paper's pair-generation (Algorithm 1) runs over the forest of GST
subtrees whose roots have string-depth ≥ ψ, processing nodes in decreasing
string-depth order.  :func:`build_lcp_forest` materialises exactly that
forest: nodes with depth < ``min_depth`` are structurally traversed but
never emitted, so their children become forest roots and their lsets are
implicitly discarded — which is precisely the paper's behaviour at the
threshold boundary.

The builder also accepts a rank sub-range ``[lo, hi)``, which is how each
(simulated or real) slave processor builds the forest for only the suffix
buckets it owns: a bucket keyed on the first ``w`` characters is a
contiguous suffix-array range, and with ψ ≥ w every qualifying node lies
entirely inside one bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain

import numpy as np

__all__ = [
    "LcpForest",
    "FlatForest",
    "build_lcp_forest",
    "build_flat_forest",
    "concat_flat_forests",
    "split_flat_forests",
]


def _validate_forest_arrays(
    depth: np.ndarray,
    lb: np.ndarray,
    rb: np.ndarray,
    parent: np.ndarray,
    children_flat: np.ndarray,
    children_offsets: np.ndarray,
    leaves_offsets: np.ndarray,
) -> None:
    """Vectorised internal-consistency checks shared by both forest forms.

    Whole-array sweeps instead of a per-node Python loop, so debug runs on
    30k-EST-scale forests cost a few milliseconds.
    """
    n = len(depth)
    if n == 0:
        return
    cf = children_flat
    owner = np.repeat(np.arange(n), np.diff(children_offsets))
    if cf.size:
        bad = ~((lb[owner] <= lb[cf]) & (rb[cf] <= rb[owner]))
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            raise AssertionError(
                f"child {int(cf[k])} not nested in node {int(owner[k])}"
            )
        bad = depth[cf] <= depth[owner]
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            raise AssertionError(
                f"child {int(cf[k])} not deeper than parent {int(owner[k])}"
            )
        bad = parent[cf] != owner
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            raise AssertionError(f"parent link mismatch for {int(cf[k])}")
    covered = np.bincount(
        owner, weights=(rb[cf] - lb[cf] + 1).astype(np.float64), minlength=n
    ).astype(np.int64)
    covered += np.diff(leaves_offsets)
    bad = covered != rb - lb + 1
    if bad.any():
        k = int(np.flatnonzero(bad)[0])
        raise AssertionError(f"node {k} does not partition its interval")


@dataclass
class LcpForest:
    """The qualifying suffix-tree nodes over one suffix-array range.

    All per-node sequences are parallel, indexed by node id in *emission*
    (bottom-up pop) order, which guarantees children precede parents.

    Attributes
    ----------
    depth, lb, rb:
        String-depth and inclusive suffix-array rank range per node.
    parent:
        Parent node id, or -1 when the parent's depth is below the
        threshold (the node is a root of the forest).
    children:
        Child node ids, ordered left to right (by ``lb``).
    leaves:
        Suffix-array ranks directly attached to the node, i.e. ranks in
        ``[lb, rb]`` not covered by any child interval.  Each corresponds to
        a leaf of the suffix tree hanging immediately below this node.
    min_depth:
        The ψ threshold the forest was built with.
    """

    depth: np.ndarray
    lb: np.ndarray
    rb: np.ndarray
    parent: np.ndarray
    children: list[list[int]]
    leaves: list[list[int]]
    min_depth: int
    #: Lazily-built CSR mirrors of ``children``/``leaves`` (see the flat
    #: accessors below); ``None`` until first requested.
    _flat: tuple[np.ndarray, ...] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_nodes(self) -> int:
        return len(self.depth)

    # -- flat (CSR) views ---------------------------------------------------
    #
    # The vectorised pair-generation engine and the vectorised validator
    # traverse the forest as whole-array sweeps; per-node Python lists would
    # force a Python loop per node.  These accessors expose the same
    # structure as one concatenated value array plus per-node offsets:
    # node ``v`` owns ``flat[offsets[v]:offsets[v + 1]]``, in the same
    # left-to-right (lb) order as the lists.  Built once on first access.

    def _flat_views(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self._flat is None:
            n = self.n_nodes
            c_counts = np.fromiter(
                map(len, self.children), dtype=np.int64, count=n
            )
            l_counts = np.fromiter(map(len, self.leaves), dtype=np.int64, count=n)
            children_flat = np.fromiter(
                chain.from_iterable(self.children),
                dtype=np.int64,
                count=int(c_counts.sum()),
            )
            leaves_flat = np.fromiter(
                chain.from_iterable(self.leaves),
                dtype=np.int64,
                count=int(l_counts.sum()),
            )
            zero = np.zeros(1, dtype=np.int64)
            self._flat = (
                children_flat,
                np.concatenate((zero, np.cumsum(c_counts))),
                leaves_flat,
                np.concatenate((zero, np.cumsum(l_counts))),
            )
        return self._flat

    @property
    def children_flat(self) -> np.ndarray:
        """All child ids concatenated in node order (CSR values)."""
        return self._flat_views()[0]

    @property
    def children_offsets(self) -> np.ndarray:
        """``children_flat`` offsets per node (CSR indptr, length n+1)."""
        return self._flat_views()[1]

    @property
    def leaves_flat(self) -> np.ndarray:
        """All directly-attached leaf ranks concatenated in node order."""
        return self._flat_views()[2]

    @property
    def leaves_offsets(self) -> np.ndarray:
        """``leaves_flat`` offsets per node (CSR indptr, length n+1)."""
        return self._flat_views()[3]

    def roots(self) -> np.ndarray:
        """Ids of forest roots (nodes whose parent is below threshold)."""
        return np.flatnonzero(self.parent == -1)

    def nodes_by_decreasing_depth(self) -> np.ndarray:
        """Node ids sorted by decreasing string-depth (Algorithm 1 order).

        A stable sort on negated depth keeps emission order inside equal
        depths, making generation fully deterministic.
        """
        return np.argsort(-self.depth, kind="stable")

    def validate(self) -> None:
        """Internal-consistency checks (used by tests and debug runs).

        Fully vectorised over the flat CSR views so debug runs on
        30k-EST-scale forests cost a few array sweeps, not a Python loop
        over every node.
        """
        _validate_forest_arrays(
            self.depth,
            self.lb,
            self.rb,
            self.parent,
            self.children_flat,
            self.children_offsets,
            self.leaves_offsets,
        )


@dataclass
class FlatForest:
    """The same forest as :class:`LcpForest`, held entirely in flat arrays.

    Node ids, depths, bounds, parents and the per-node ``children`` /
    ``leaves`` sequences are bit-identical to the list-based builder's —
    only the container differs: children and leaves live in concatenated
    CSR arrays (node ``v`` owns ``flat[offsets[v]:offsets[v + 1]]``).
    This is the native input of the vectorised pair-generation engine
    (:class:`repro.pairs.batch.VectorPairGenerator`), which never walks
    per-node Python lists.
    """

    depth: np.ndarray
    lb: np.ndarray
    rb: np.ndarray
    parent: np.ndarray
    children_flat: np.ndarray
    children_offsets: np.ndarray
    leaves_flat: np.ndarray
    leaves_offsets: np.ndarray
    min_depth: int

    @property
    def n_nodes(self) -> int:
        return len(self.depth)

    def roots(self) -> np.ndarray:
        """Ids of forest roots (nodes whose parent is below threshold)."""
        return np.flatnonzero(self.parent == -1)

    def nodes_by_decreasing_depth(self) -> np.ndarray:
        """Node ids sorted by decreasing string-depth (Algorithm 1 order)."""
        return np.argsort(-self.depth, kind="stable")

    def validate(self) -> None:
        """Internal-consistency checks (used by tests and debug runs)."""
        _validate_forest_arrays(
            self.depth,
            self.lb,
            self.rb,
            self.parent,
            self.children_flat,
            self.children_offsets,
            self.leaves_offsets,
        )


def build_flat_forest(
    lcp: np.ndarray,
    *,
    min_depth: int,
    lo: int = 0,
    hi: int | None = None,
) -> FlatForest:
    """Vectorised equivalent of :func:`build_lcp_forest`.

    Produces the identical forest — same node ids (emission order), same
    parent links, same child and leaf ordering — without the per-rank
    Python stack loop.  The construction rests on the classic enhanced
    suffix array facts (Abouelhoda, Kurtz & Ohlebusch):

    - every LCP interval is identified by the *previous/next smaller
      value* boundaries of any position achieving its depth: position
      ``p`` with ``v = lcp[p]`` represents the interval
      ``[PSV(p), NSV(p) - 1]`` of depth ``v``, and all positions of one
      interval share that (PSV, NSV) key — deduplicating the keys
      enumerates the nodes exactly once;
    - the direct parent of an interval ``[lb, rb]`` is the interval
      represented by whichever boundary position (``lb`` or ``rb + 1``)
      carries the larger LCP value;
    - a suffix-array rank hangs as a direct leaf off the interval
      represented by the deeper of its two adjacent LCP values.

    PSV/NSV are computed by pointer doubling — ``O(log n)`` whole-array
    jump rounds instead of a sequential stack — and the stack builder's
    emission (pop) order is recovered as a sort by ``(rb, -depth)``:
    intervals are popped when the scan first passes their right bound,
    deepest first.
    """
    if min_depth < 1:
        raise ValueError(f"min_depth must be >= 1, got {min_depth}")
    lcp = np.asarray(lcp)
    if hi is None:
        hi = len(lcp)
    if not 0 <= lo <= hi <= len(lcp):
        raise ValueError(f"invalid range [{lo}, {hi}) for lcp of length {len(lcp)}")
    n = hi - lo
    if n <= 0:
        raise ValueError("empty suffix-array range")

    # Boundary values: position p in (0, n) separates ranks lo+p-1 and
    # lo+p; the range edges are depth "-1" sentinels (strictly smaller
    # than any real LCP), which is what makes every jump chain terminate.
    val = np.empty(n + 1, dtype=np.int64)
    val[0] = val[n] = -1
    if n > 1:
        val[1:n] = lcp[lo + 1 : lo + n]

    # PSV/NSV by pointer doubling: each round follows the current pointer
    # of the pointed-to position, so unresolved chain lengths double.
    # The invariant (all skipped positions carry values >= the jumper's)
    # keeps every intermediate stop a sound candidate.  Rounds operate on
    # the shrinking set of still-unresolved positions only.
    prev = np.arange(-1, n, dtype=np.int64)
    prev[0] = 0
    act = np.arange(1, n, dtype=np.int64)
    while act.size:
        act = act[val[prev[act]] >= val[act]]
        prev[act] = prev[prev[act]]
    nxt = np.arange(1, n + 2, dtype=np.int64)
    nxt[n] = n
    act = np.arange(1, n, dtype=np.int64)
    while act.size:
        act = act[val[nxt[act]] >= val[act]]
        nxt[act] = nxt[nxt[act]]

    # One node per unique (PSV, NSV) key among qualifying positions.
    qual = np.flatnonzero(val >= min_depth)
    key = prev[qual] * (n + 1) + nxt[qual]
    ukey, first = np.unique(key, return_index=True)
    m = ukey.size
    depth_u = val[qual[first]]
    lb_u = lo + ukey // (n + 1)
    rb_u = lo + ukey % (n + 1) - 1
    order = np.lexsort((-depth_u, rb_u))  # the stack builder's pop order
    rank_of = np.empty(m, dtype=np.int64)
    rank_of[order] = np.arange(m)
    depth = depth_u[order]
    lb = lb_u[order]
    rb = rb_u[order]

    # Parent: the interval of the deeper bounding position, when it
    # still clears the threshold; forest roots otherwise.
    bl = val[ukey // (n + 1)]
    br = val[ukey % (n + 1)]
    pid_u = np.full(m, -1, dtype=np.int64)
    haspar = np.flatnonzero(np.maximum(bl, br) >= min_depth)
    if haspar.size:
        q = np.where(
            bl[haspar] >= br[haspar],
            ukey[haspar] // (n + 1),
            ukey[haspar] % (n + 1),
        )
        pid_u[haspar] = rank_of[np.searchsorted(ukey, prev[q] * (n + 1) + nxt[q])]
    parent = np.empty(m, dtype=np.int64)
    parent[rank_of] = pid_u

    zero = np.zeros(1, dtype=np.int64)
    nonroot = np.flatnonzero(parent >= 0)
    children_flat = nonroot[np.lexsort((lb[nonroot], parent[nonroot]))]
    children_offsets = np.concatenate(
        (zero, np.cumsum(np.bincount(parent[nonroot], minlength=m)))
    )

    # Leaves: each rank attaches to the interval of the deeper of its two
    # adjacent boundary values (when >= threshold); grouped by owner with
    # the stable sort preserving ascending rank within a node.
    r_all = np.arange(n)
    dl = val[r_all]
    dr = val[r_all + 1]
    attached = np.flatnonzero(np.maximum(dl, dr) >= min_depth)
    ql = np.where(dl[attached] >= dr[attached], attached, attached + 1)
    owner = rank_of[np.searchsorted(ukey, prev[ql] * (n + 1) + nxt[ql])]
    leaves_flat = attached[np.argsort(owner, kind="stable")] + lo
    leaves_offsets = np.concatenate(
        (zero, np.cumsum(np.bincount(owner, minlength=m)))
    )

    return FlatForest(
        depth=depth,
        lb=lb,
        rb=rb,
        parent=parent,
        children_flat=children_flat,
        children_offsets=children_offsets,
        leaves_flat=leaves_flat,
        leaves_offsets=leaves_offsets,
        min_depth=min_depth,
    )


#: Array fields of :class:`FlatForest` in packing order; the offsets
#: arrays (``*_offsets``) need the per-forest +1 entry accounted for when
#: packing/unpacking (each forest contributes ``n_nodes + 1`` entries).
_PACK_FIELDS = (
    "depth",
    "lb",
    "rb",
    "parent",
    "children_flat",
    "children_offsets",
    "leaves_flat",
    "leaves_offsets",
)


def concat_flat_forests(forests: list[FlatForest]) -> dict[str, np.ndarray]:
    """Pack several :class:`FlatForest` instances into one set of flat arrays.

    This is the shape a forest set takes inside a shared-memory segment:
    every field concatenated across forests, plus three bounds arrays
    recording where each forest starts — ``node_bounds`` (cumulative node
    counts, length ``n_forests + 1``) and ``cflat_bounds`` /
    ``lflat_bounds`` (cumulative CSR value counts).  All ids stay
    forest-local, so :func:`split_flat_forests` can rebuild each forest as
    pure zero-copy slices of the packed arrays.
    """
    zero = np.zeros(1, dtype=np.int64)
    node_counts = np.fromiter(
        (f.n_nodes for f in forests), dtype=np.int64, count=len(forests)
    )
    out: dict[str, np.ndarray] = {
        "node_bounds": np.concatenate((zero, np.cumsum(node_counts))),
        "cflat_bounds": np.concatenate(
            (zero, np.cumsum([len(f.children_flat) for f in forests]))
        ).astype(np.int64),
        "lflat_bounds": np.concatenate(
            (zero, np.cumsum([len(f.leaves_flat) for f in forests]))
        ).astype(np.int64),
    }
    for field_name in _PACK_FIELDS:
        parts = [np.asarray(getattr(f, field_name)) for f in forests]
        out[field_name] = (
            np.concatenate(parts)
            if parts
            else np.empty(0, dtype=np.int64)
        )
    return out


def split_flat_forests(
    arrays: dict[str, np.ndarray], min_depth: int
) -> list[FlatForest]:
    """Rebuild the individual forests packed by :func:`concat_flat_forests`.

    Every field of every returned forest is a slice (view) of the packed
    arrays — no copies, which is the whole point: when ``arrays`` are
    shared-memory views, the reconstructed forests read the master's pages
    directly.

    The only subtlety is the offsets arrays: forest ``f`` with nodes
    ``[node_bounds[f], node_bounds[f+1])`` owns ``n_nodes + 1`` offset
    entries, so its slice is shifted by ``f`` extra sentinel entries —
    ``[node_bounds[f] + f, node_bounds[f+1] + f + 1)`` — and rebased to
    start at its own ``cflat``/``lflat`` origin.
    """
    nb = arrays["node_bounds"]
    cb = arrays["cflat_bounds"]
    lb_bounds = arrays["lflat_bounds"]
    forests: list[FlatForest] = []
    for f in range(len(nb) - 1):
        n0, n1 = int(nb[f]), int(nb[f + 1])
        c0, c1 = int(cb[f]), int(cb[f + 1])
        l0, l1 = int(lb_bounds[f]), int(lb_bounds[f + 1])
        coff = arrays["children_offsets"][n0 + f : n1 + f + 1]
        loff = arrays["leaves_offsets"][n0 + f : n1 + f + 1]
        # Offsets in the packed arrays are forest-local already (ids were
        # never rebased), so the slices are usable as-is.
        forests.append(
            FlatForest(
                depth=arrays["depth"][n0:n1],
                lb=arrays["lb"][n0:n1],
                rb=arrays["rb"][n0:n1],
                parent=arrays["parent"][n0:n1],
                children_flat=arrays["children_flat"][c0:c1],
                children_offsets=coff,
                leaves_flat=arrays["leaves_flat"][l0:l1],
                leaves_offsets=loff,
                min_depth=min_depth,
            )
        )
    return forests


def build_lcp_forest(
    lcp: np.ndarray,
    *,
    min_depth: int,
    lo: int = 0,
    hi: int | None = None,
) -> LcpForest:
    """Build the forest of LCP intervals with depth ≥ ``min_depth``.

    Parameters
    ----------
    lcp:
        LCP array over the full suffix array (``lcp[r]`` relates ranks
        ``r-1`` and ``r``).
    min_depth:
        The ψ threshold; must be ≥ 1 (depth-0 "nodes" pair everything with
        everything and are meaningless here, as in the paper where ψ ≥ w).
    lo, hi:
        Restrict to suffix-array ranks ``[lo, hi)``; boundaries are treated
        as depth-0 breaks, which is exact when the range is a full bucket
        (adjacent buckets share < w < ψ characters).
    """
    if min_depth < 1:
        raise ValueError(f"min_depth must be >= 1, got {min_depth}")
    lcp = np.asarray(lcp)
    if hi is None:
        hi = len(lcp)
    if not 0 <= lo <= hi <= len(lcp):
        raise ValueError(f"invalid range [{lo}, {hi}) for lcp of length {len(lcp)}")

    depths: list[int] = []
    lbs: list[int] = []
    rbs: list[int] = []
    parents: list[int] = []
    children: list[list[int]] = []
    leaves: list[list[int]] = []

    def emit(depth: int, lb: int, rb: int, kids: list[int]) -> int:
        nid = len(depths)
        depths.append(depth)
        lbs.append(lb)
        rbs.append(rb)
        parents.append(-1)
        children.append(kids)
        # Direct leaves: ranks in [lb, rb] not covered by child intervals.
        direct: list[int] = []
        cur = lb
        for cid in kids:
            parents[cid] = nid
            direct.extend(range(cur, lbs[cid]))
            cur = rbs[cid] + 1
        direct.extend(range(cur, rb + 1))
        leaves.append(direct)
        return nid

    # Stack of open intervals: [depth, lb, child_ids | None].
    # child_ids is None for intervals below threshold (children of those
    # become forest roots).  Depths on the stack are strictly increasing.
    stack: list[list] = [[0, lo, None if min_depth > 0 else []]]
    n = hi - lo
    if n <= 0:
        raise ValueError("empty suffix-array range")

    for r in range(lo + 1, hi + 1):
        v = int(lcp[r]) if r < hi else 0
        lb = r - 1
        held: int | None = None  # emitted node awaiting a parent push
        while stack[-1][0] > v:
            depth_i, lb_i, kids_i = stack.pop()
            lb = lb_i
            if kids_i is not None:
                nid = emit(depth_i, lb_i, r - 1, kids_i)
            else:
                nid = None
            # Attach to the node below if it remains an enclosing interval.
            if nid is not None:
                if stack[-1][0] >= v and stack[-1][0] >= min_depth:
                    # Parent is on the stack and qualifies.
                    if stack[-1][2] is None:  # pragma: no cover - defensive
                        stack[-1][2] = []
                    stack[-1][2].append(nid)
                elif stack[-1][0] < v:
                    held = nid  # parent is the interval about to be pushed
                # else: parent below threshold -> forest root (parent -1).
        if stack[-1][0] < v:
            kids = [held] if (held is not None and v >= min_depth) else []
            stack.append([v, lb, kids if v >= min_depth else None])
        # stack[-1][0] == v: held (if any) was already attached above.

    return LcpForest(
        depth=np.array(depths, dtype=np.int64),
        lb=np.array(lbs, dtype=np.int64),
        rb=np.array(rbs, dtype=np.int64),
        parent=np.array(parents, dtype=np.int64),
        children=children,
        leaves=leaves,
        min_depth=min_depth,
    )
