"""Ukkonen's linear-time suffix-tree construction.

§3.1 of the paper: "A Generalized Suffix Tree ... can be constructed in
time linear in input size [Gusfield]" — but "a sequential suffix tree
construction algorithm can no longer be used [per bucket] because all
suffixes of a string do not fall in the same bucket".  This module
supplies that sequential linear-time algorithm:

- as the **baseline** the paper's bucket-scan construction is justified
  against (see ``benchmarks/bench_construction.py``);
- as a third, independently-derived representation of the GST used to
  cross-validate the other two engines: over a sentinel-terminated
  concatenation every internal node's path label is sentinel-free (a
  sentinel occurs once in the text, so no two suffixes share it at equal
  offset), hence the internal nodes coincide exactly with the LCP
  intervals of the enhanced suffix array — a fact the structure tests
  assert node for node.

The implementation is the classic online algorithm with suffix links and
the active-point triple; children are hash maps because sentinels blow
the alphabet beyond Σ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["UkkonenTree", "build_ukkonen"]


@dataclass
class _Node:
    start: int  # edge label: text[start:end) on the edge INTO this node
    end: int | None  # None = grows with the text (leaf)
    children: dict[int, "_Node"] = field(default_factory=dict)
    suffix_link: "_Node | None" = None
    suffix_index: int = -1  # for leaves: starting position of the suffix


class UkkonenTree:
    """A suffix tree built online in O(text length)."""

    def __init__(self, text: np.ndarray) -> None:
        self.text = np.ascontiguousarray(text, dtype=np.int64)
        self._t = self.text.tolist()
        self.root = _Node(start=-1, end=-1)
        self._build()

    # ------------------------------------------------------------------ #

    def _edge_len(self, node: _Node, pos: int) -> int:
        end = pos + 1 if node.end is None else node.end
        return end - node.start

    def _build(self) -> None:
        t = self._t
        n = len(t)
        root = self.root
        active_node = root
        active_edge = 0  # index into text of the active edge's first char
        active_len = 0
        remainder = 0

        for pos in range(n):
            remainder += 1
            last_internal: _Node | None = None
            while remainder > 0:
                if active_len == 0:
                    active_edge = pos
                child = active_node.children.get(t[active_edge])
                if child is None:
                    # Rule 2: new leaf from active_node.
                    leaf = _Node(start=pos, end=None, suffix_index=pos - remainder + 1)
                    active_node.children[t[pos]] = leaf
                    if last_internal is not None:
                        last_internal.suffix_link = active_node
                        last_internal = None
                else:
                    edge = self._edge_len(child, pos)
                    if active_len >= edge:
                        # Walk down.
                        active_edge += edge
                        active_len -= edge
                        active_node = child
                        continue
                    if t[child.start + active_len] == t[pos]:
                        # Rule 3: already present; observation ends phase.
                        active_len += 1
                        if last_internal is not None:
                            last_internal.suffix_link = active_node
                        break
                    # Rule 2 with split.
                    split = _Node(start=child.start, end=child.start + active_len)
                    active_node.children[t[child.start]] = split
                    leaf = _Node(start=pos, end=None, suffix_index=pos - remainder + 1)
                    split.children[t[pos]] = leaf
                    child.start += active_len
                    split.children[t[child.start]] = child
                    if last_internal is not None:
                        last_internal.suffix_link = split
                    last_internal = split
                remainder -= 1
                if active_node is root and active_len > 0:
                    active_len -= 1
                    active_edge = pos - remainder + 1
                elif active_node is not root:
                    active_node = active_node.suffix_link or root

    # ------------------------------------------------------------------ #

    def contains(self, pattern: np.ndarray) -> bool:
        """Is ``pattern`` a substring of the text?  O(|pattern|)."""
        p = np.asarray(pattern, dtype=np.int64).tolist()
        t = self._t
        node = self.root
        k = 0
        while k < len(p):
            child = node.children.get(p[k])
            if child is None:
                return False
            end = len(t) if child.end is None else child.end
            for j in range(child.start, end):
                if k == len(p):
                    return True
                if t[j] != p[k]:
                    return False
                k += 1
            node = child
        return True

    def internal_nodes(self) -> list[tuple[int, int]]:
        """``(string_depth, leaf_count)`` of every internal node except the
        root — exactly the LCP intervals of the enhanced suffix array."""
        t_len = len(self._t)
        out: list[tuple[int, int]] = []

        def walk(node: _Node, depth: int) -> int:
            if not node.children:
                return 1
            leaves = 0
            for child in node.children.values():
                end = t_len if child.end is None else child.end
                leaves += walk(child, depth + (end - child.start))
            if node is not self.root:
                out.append((depth, leaves))
            return leaves

        import sys

        old = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old, 4 * t_len + 100))
        try:
            walk(self.root, 0)
        finally:
            sys.setrecursionlimit(old)
        return out

    def suffix_starts(self) -> list[int]:
        """Starting positions of all suffixes stored at leaves."""
        t_len = len(self._t)
        starts = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.children:
                starts.append(node.suffix_index)
            else:
                stack.extend(node.children.values())
        return sorted(starts)


def build_ukkonen(text: np.ndarray) -> UkkonenTree:
    """Build the suffix tree of ``text``.

    The final position of ``text`` must be a unique terminator (true of
    :meth:`repro.sequence.EstCollection.sa_text` outputs) so every suffix
    ends at a leaf.
    """
    text = np.asarray(text)
    if text.size == 0:
        raise ValueError("cannot build a suffix tree of empty text")
    return UkkonenTree(text)
