"""Longest-common-prefix (LCP) arrays over a suffix array.

``lcp[r]`` is the length of the longest common prefix of the suffixes at
suffix-array ranks ``r-1`` and ``r`` (``lcp[0] = 0``).  Together with the
suffix array this is the *enhanced suffix array*: its "LCP intervals" are in
bijection with the internal nodes of the suffix tree, which is how the
production pair-generation engine reuses the paper's Algorithm 1 unchanged.

Two implementations:

- :func:`lcp_kasai` — the linear-time Kasai et al. algorithm.  A tight
  Python loop; exact, used as the reference and for small inputs.
- :func:`lcp_from_rank_levels` — vectorised ``O(m log maxlen)`` computation
  from the prefix-doubling rank levels retained by
  :func:`repro.suffix.suffix_array.build_suffix_array`; the default for
  large inputs because every pass is a whole-array numpy operation.
"""

from __future__ import annotations

import numpy as np

from repro.suffix.suffix_array import SuffixArray

__all__ = ["lcp_kasai", "lcp_from_rank_levels", "lcp_array", "lcp_naive"]


def lcp_kasai(text: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """Kasai's algorithm: LCP array in O(m) total work."""
    text_list = np.asarray(text).tolist()
    sa = np.asarray(sa)
    m = len(text_list)
    rank = np.empty(m, dtype=np.int64)
    rank[sa] = np.arange(m)
    rank_list = rank.tolist()
    sa_list = sa.tolist()
    lcp = [0] * m
    h = 0
    for p in range(m):
        r = rank_list[p]
        if r > 0:
            q = sa_list[r - 1]
            while p + h < m and q + h < m and text_list[p + h] == text_list[q + h]:
                h += 1
            lcp[r] = h
            if h > 0:
                h -= 1
        else:
            h = 0
    return np.array(lcp, dtype=np.int64)


def lcp_pairwise_from_levels(
    sa_struct: SuffixArray, left: np.ndarray, right: np.ndarray
) -> np.ndarray:
    """Vectorised LCP of arbitrary suffix pairs ``(left[i], right[i])``.

    Walks the doubling rank levels from coarse to fine: whenever the
    length-k prefixes of the two (advanced) suffixes have equal rank, the
    LCP grows by k and both positions advance by k.  Unique sentinels
    guarantee two *distinct* suffixes always differ before the text ends,
    so the walk terminates within the text.
    """
    m = len(sa_struct.text)
    i = np.asarray(left, dtype=np.int64).copy()
    j = np.asarray(right, dtype=np.int64).copy()
    h = np.zeros(i.shape, dtype=np.int64)
    for k, rank_k in reversed(sa_struct.rank_levels):
        ok = (i + k <= m) & (j + k <= m)
        # Positions may reach m exactly when a previous step consumed a
        # whole suffix; clip the gather, the mask keeps results honest.
        gi = np.minimum(i, m - 1)
        gj = np.minimum(j, m - 1)
        eq = ok & (rank_k[gi] == rank_k[gj]) & (i != j)
        h[eq] += k
        i[eq] += k
        j[eq] += k
    return h


def lcp_from_rank_levels(sa_struct: SuffixArray) -> np.ndarray:
    """LCP array of adjacent suffix-array entries, fully vectorised."""
    sa = sa_struct.sa
    m = len(sa)
    lcp = np.zeros(m, dtype=np.int64)
    if m > 1:
        lcp[1:] = lcp_pairwise_from_levels(sa_struct, sa[:-1], sa[1:])
    return lcp


def lcp_array(sa_struct: SuffixArray) -> np.ndarray:
    """The default LCP computation: vectorised when rank levels are
    available, Kasai otherwise."""
    if sa_struct.rank_levels:
        return lcp_from_rank_levels(sa_struct)
    return lcp_kasai(sa_struct.text, sa_struct.sa)


def lcp_naive(text: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """Brute-force reference LCP for tests."""
    text = np.asarray(text)
    sa = np.asarray(sa)
    m = len(sa)
    lcp = np.zeros(m, dtype=np.int64)
    for r in range(1, m):
        a, b = int(sa[r - 1]), int(sa[r])
        h = 0
        while a + h < m and b + h < m and text[a + h] == text[b + h]:
            h += 1
        lcp[r] = h
    return lcp
