"""Generalized-suffix-tree substrate.

Two interchangeable backends expose the GST of the doubled string set S:

- the paper-faithful bucketed trie in the space-efficient DFS-array
  encoding (:mod:`repro.suffix.naive_tree`, :mod:`repro.suffix.dfs_array`);
- the production enhanced-suffix-array engine
  (:mod:`repro.suffix.suffix_array`, :mod:`repro.suffix.lcp`,
  :mod:`repro.suffix.interval_tree`), whose LCP intervals are the GST's
  internal nodes.
"""

from repro.suffix.buckets import enumerate_bucket_suffixes, sa_bucket_ranges, suffix_window_keys
from repro.suffix.dfs_array import DfsArrayTree, from_trie
from repro.suffix.gst import NaiveGst, SuffixArrayGst
from repro.suffix.interval_tree import (
    FlatForest,
    LcpForest,
    build_flat_forest,
    build_lcp_forest,
)
from repro.suffix.lcp import lcp_array, lcp_kasai
from repro.suffix.naive_tree import TrieNode, build_bucket_tree, build_gst_forest
from repro.suffix.suffix_array import SuffixArray, build_suffix_array
from repro.suffix.ukkonen import UkkonenTree, build_ukkonen

__all__ = [
    "enumerate_bucket_suffixes",
    "sa_bucket_ranges",
    "suffix_window_keys",
    "DfsArrayTree",
    "from_trie",
    "NaiveGst",
    "SuffixArrayGst",
    "FlatForest",
    "LcpForest",
    "build_flat_forest",
    "build_lcp_forest",
    "lcp_array",
    "lcp_kasai",
    "TrieNode",
    "build_bucket_tree",
    "build_gst_forest",
    "SuffixArray",
    "UkkonenTree",
    "build_ukkonen",
    "build_suffix_array",
]
