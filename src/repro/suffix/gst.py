"""Facades over the two generalized-suffix-tree backends.

The paper's pair-generation algorithm needs, for every suffix, three facts:
which string it belongs to, its offset in that string, and its
left-extension character (λ when the suffix is the whole string).  The two
backends package those facts differently:

- :class:`SuffixArrayGst` — the production engine.  Builds the suffix array
  and LCP array of the sentinel-terminated concatenation once (vectorised
  numpy), precomputes per-position lookup tables, and materialises LCP
  forests on demand, either globally or per bucket range (the unit of
  distribution across processors).
- :class:`NaiveGst` — the paper-faithful engine: explicit bucket trees in
  the DFS-array encoding.  Semantically identical output, used for tests,
  demonstrations, and small inputs.

Both are consumed by the generators in :mod:`repro.pairs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sequence.alphabet import LAMBDA
from repro.sequence.collection import EstCollection
from repro.suffix.buckets import sa_bucket_ranges
from repro.suffix.dfs_array import DfsArrayTree, from_trie
from repro.suffix.interval_tree import (
    FlatForest,
    LcpForest,
    build_flat_forest,
    build_lcp_forest,
)
from repro.suffix.lcp import lcp_array
from repro.suffix.naive_tree import build_gst_forest
from repro.suffix.suffix_array import SuffixArray, build_suffix_array

__all__ = ["SuffixArrayGst", "NaiveGst"]


@dataclass
class SuffixArrayGst:
    """Enhanced-suffix-array view of the GST of S = {ESTs ∪ reverse complements}.

    Build with :meth:`build`; all heavy construction happens there so the
    object itself is cheap to ship between the driver and (simulated)
    processors.
    """

    collection: EstCollection
    text: np.ndarray
    starts: np.ndarray
    sa_struct: SuffixArray
    lcp: np.ndarray
    pos_string: np.ndarray  # text position -> string index in S
    pos_offset: np.ndarray  # text position -> offset within its string
    left_char: np.ndarray  # text position -> left-extension char (λ at offset 0)
    suffix_len: np.ndarray  # text position -> suffix length (excl. sentinel)

    @classmethod
    def build(cls, collection: EstCollection) -> "SuffixArrayGst":
        text, starts = collection.sa_text()
        sa_struct = build_suffix_array(text)
        lcp = lcp_array(sa_struct)
        m = text.size
        positions = np.arange(m, dtype=np.int64)
        pos_string = np.searchsorted(starts[1:], positions, side="right")
        pos_offset = positions - starts[pos_string]
        string_len = (starts[pos_string + 1] - starts[pos_string]) - 1
        suffix_len = string_len - pos_offset
        two_n = collection.n_strings
        left_char = np.full(m, LAMBDA, dtype=np.int64)
        interior = pos_offset > 0
        left_char[interior] = text[positions[interior] - 1] - two_n
        return cls(
            collection=collection,
            text=text,
            starts=starts,
            sa_struct=sa_struct,
            lcp=lcp,
            pos_string=pos_string,
            pos_offset=pos_offset,
            left_char=left_char,
            suffix_len=suffix_len,
        )

    # -- suffix lookups keyed by suffix-array *rank* (what forests store) --

    def rank_to_position(self, rank: int | np.ndarray) -> np.ndarray:
        return self.sa_struct.sa[rank]

    def suffix_info(self, rank: int) -> tuple[int, int, int]:
        """``(string, offset, left_extension_char)`` of the suffix at rank."""
        p = int(self.sa_struct.sa[rank])
        return int(self.pos_string[p]), int(self.pos_offset[p]), int(self.left_char[p])

    # -- forest construction ------------------------------------------------

    def forest(self, min_depth: int, lo: int = 0, hi: int | None = None) -> LcpForest:
        """LCP forest of nodes with string-depth ≥ ``min_depth`` over ranks
        ``[lo, hi)`` (the full array by default)."""
        return build_lcp_forest(self.lcp, min_depth=min_depth, lo=lo, hi=hi)

    def flat_forest(
        self, min_depth: int, lo: int = 0, hi: int | None = None
    ) -> FlatForest:
        """Same forest as :meth:`forest`, built vectorised into flat CSR
        arrays — the input form of the vectorised pair engine."""
        return build_flat_forest(self.lcp, min_depth=min_depth, lo=lo, hi=hi)

    def bucket_ranges(self, w: int) -> list[tuple[int, int, int]]:
        """``(key, lo, hi)`` suffix-array ranges of the ``w``-prefix buckets
        — the distribution unit for parallel construction (§3.1)."""
        return sa_bucket_ranges(self.sa_struct, self.collection, self.starts, w)

    @property
    def n_suffix_positions(self) -> int:
        return self.text.size


@dataclass
class NaiveGst:
    """Paper-faithful bucket-tree view in the DFS-array encoding."""

    collection: EstCollection
    w: int
    tree: DfsArrayTree = field(repr=False)

    @classmethod
    def build(cls, collection: EstCollection, w: int) -> "NaiveGst":
        forest = build_gst_forest(collection, w)
        return cls(collection=collection, w=w, tree=from_trie(forest))

    def left_extension(self, string: int, offset: int) -> int:
        return self.collection.left_extension(string, offset)
