"""Suffix-array construction by prefix doubling (numpy-vectorised).

The paper builds a distributed generalized suffix tree in C.  A literal
pure-Python suffix tree is far too slow at realistic input sizes, so the
production engine of this library is built on the *enhanced suffix array*
equivalence: the suffix array plus its LCP array encode exactly the internal
nodes of the suffix tree as LCP intervals (see
:mod:`repro.suffix.interval_tree`).  Construction is the classic
Manber–Myers prefix-doubling algorithm, executed as ``O(log maxlen)`` rounds
of numpy radix/argsort work — each round is a single vectorised sort, which
is what makes this practical in Python.

The input text comes from :meth:`repro.sequence.EstCollection.sa_text`:
every string is terminated by a unique sentinel smaller than all
nucleotides, so the suffix order is total and no common prefix crosses a
string boundary.

The intermediate rank arrays of every doubling round are retained
(:class:`SuffixArray.rank_levels`) because they let us compute the LCP of
any two suffixes in ``O(log maxlen)`` vectorised steps — see
:func:`repro.suffix.lcp.lcp_from_rank_levels`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SuffixArray", "build_suffix_array", "suffix_array_naive"]


@dataclass
class SuffixArray:
    """A suffix array with the doubling ranks kept for fast LCP queries.

    Attributes
    ----------
    text:
        The int32 text the array was built over.
    sa:
        ``sa[r]`` is the text position of the ``r``-th smallest suffix.
    rank:
        Inverse permutation: ``rank[p]`` is the sort rank of suffix ``p``.
    rank_levels:
        List of ``(k, rank_k)`` pairs where ``rank_k[p]`` ranks the length-k
        prefix of suffix ``p`` (ties allowed).  Sorted by increasing ``k``;
        the final total-order rank is *not* included.
    """

    text: np.ndarray
    sa: np.ndarray
    rank: np.ndarray
    rank_levels: list[tuple[int, np.ndarray]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sa)


def build_suffix_array(text: np.ndarray, *, keep_levels: bool = True) -> SuffixArray:
    """Build the suffix array of ``text`` by prefix doubling.

    Parameters
    ----------
    text:
        1-D integer array; values need not be compact.
    keep_levels:
        Keep per-round rank arrays for vectorised LCP computation.  Costs
        one int32 array of ``len(text)`` per round (~``log2`` of the longest
        repeat); disable to save memory when only the SA is needed.
    """
    text = np.ascontiguousarray(text, dtype=np.int64)
    m = text.size
    if m == 0:
        raise ValueError("cannot build a suffix array of empty text")
    if text.min() < 0:
        raise ValueError("text values must be non-negative")

    # Round 0: rank by single character (compacted).
    order = np.argsort(text, kind="stable")
    sorted_vals = text[order]
    rank_of_sorted = np.zeros(m, dtype=np.int64)
    if m > 1:
        np.cumsum(sorted_vals[1:] != sorted_vals[:-1], out=rank_of_sorted[1:])
    rank = np.empty(m, dtype=np.int64)
    rank[order] = rank_of_sorted

    levels: list[tuple[int, np.ndarray]] = []
    k = 1
    while rank_of_sorted[-1] != m - 1:
        if keep_levels:
            levels.append((k, rank.astype(np.int32)))
        # Key for sorting pairs (rank[p], rank[p+k]) packed into one int64.
        # rank < m and the +1 shift keeps "past end" (-1) below every rank.
        rank2 = np.full(m, -1, dtype=np.int64)
        rank2[: m - k] = rank[k:]
        key = rank * (m + 1) + (rank2 + 1)
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        rank_of_sorted = np.zeros(m, dtype=np.int64)
        np.cumsum(sorted_key[1:] != sorted_key[:-1], out=rank_of_sorted[1:])
        rank = np.empty(m, dtype=np.int64)
        rank[order] = rank_of_sorted
        k *= 2

    return SuffixArray(text=text, sa=order.astype(np.int64), rank=rank, rank_levels=levels)


def suffix_array_naive(text: np.ndarray) -> np.ndarray:
    """Brute-force reference: sort suffixes with Python tuple comparison.

    Quadratic-ish; only for cross-validation tests on small inputs.
    """
    text_list = [int(v) for v in np.asarray(text)]
    m = len(text_list)
    return np.array(sorted(range(m), key=lambda p: text_list[p:]), dtype=np.int64)
