"""Suffix bucketing on the first ``w`` characters (paper §3.1).

Parallel GST construction starts by partitioning all suffixes of all 2n
strings into at most |Σ|^w buckets keyed on their first ``w`` characters;
buckets are then distributed across processors so that (1) a bucket lives
entirely on one processor and (2) per-processor suffix counts are balanced.
The subtree built from one bucket is exactly the GST subtree below the
depth-``w`` node for that prefix, so the collection of bucket trees is a
distributed representation of the GST (minus the top ``< w`` region, which
is irrelevant because the pair-generation threshold ψ ≥ w).

Two views are provided:

- :func:`enumerate_bucket_suffixes` — explicit ``(string, offset)`` lists
  per bucket, consumed by the paper-faithful trie builder;
- :func:`sa_bucket_ranges` — each bucket as a contiguous suffix-array rank
  range, consumed by the suffix-array engine (a set of suffixes sharing a
  ``w``-prefix is contiguous in the suffix array).

Suffixes shorter than ``w`` are skipped in both views: they cannot contain
a substring of length ≥ ψ ≥ w and therefore can never participate in a
promising pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sequence.collection import EstCollection
from repro.suffix.suffix_array import SuffixArray

__all__ = [
    "suffix_window_keys",
    "enumerate_bucket_suffixes",
    "sa_bucket_ranges",
    "BucketStats",
    "bucket_statistics",
]


def suffix_window_keys(codes: np.ndarray, w: int) -> np.ndarray:
    """Keys of all length-``w`` windows of one encoded string.

    ``keys[o]`` is the base-4 integer of ``codes[o:o+w]``; the result has
    ``max(0, len - w + 1)`` entries.  Fully vectorised: ``w`` shifted adds.
    """
    if w < 1:
        raise ValueError(f"window must be >= 1, got {w}")
    codes = np.asarray(codes, dtype=np.int64)
    n_windows = codes.size - w + 1
    if n_windows <= 0:
        return np.empty(0, dtype=np.int64)
    keys = np.zeros(n_windows, dtype=np.int64)
    for t in range(w):
        keys += codes[t : t + n_windows] << (2 * (w - 1 - t))
    return keys


def enumerate_bucket_suffixes(
    collection: EstCollection, w: int
) -> dict[int, list[tuple[int, int]]]:
    """Partition every suffix of every string in S into ``w``-prefix buckets.

    Returns ``{key: [(string_index, offset), ...]}``; within a bucket the
    suffixes appear in (string, offset) order, which keeps downstream tree
    construction deterministic.
    """
    buckets: dict[int, list[tuple[int, int]]] = {}
    for k in range(collection.n_strings):
        keys = suffix_window_keys(collection.string(k), w)
        for off, key in enumerate(keys.tolist()):
            buckets.setdefault(key, []).append((k, off))
    return buckets


def sa_bucket_ranges(
    sa_struct: SuffixArray,
    collection: EstCollection,
    starts: np.ndarray,
    w: int,
) -> list[tuple[int, int, int]]:
    """Bucket boundaries in the suffix array.

    Returns a list of ``(key, lo, hi)`` with ``[lo, hi)`` the suffix-array
    rank range of suffixes of length ≥ w whose first ``w`` characters have
    integer key ``key``, in increasing rank order.  Ranks of shorter
    suffixes (including sentinel positions) belong to no bucket.
    """
    if w < 1:
        raise ValueError(f"window must be >= 1, got {w}")
    text = sa_struct.text
    m = text.size
    two_n = collection.n_strings
    # Window keys over the whole concatenated text.  Sentinel-contaminated
    # windows are invalidated via a rolling "contains a sentinel" flag.
    vals = text.astype(np.int64) - two_n  # nucleotides -> 0..3, sentinels -> < 0
    is_sentinel = vals < 0
    n_windows = m - w + 1
    keys = np.zeros(n_windows, dtype=np.int64)
    bad = np.zeros(n_windows, dtype=bool)
    clean = np.where(is_sentinel, 0, vals)
    for t in range(w):
        keys += clean[t : t + n_windows] << (2 * (w - 1 - t))
        bad |= is_sentinel[t : t + n_windows]

    sa = sa_struct.sa
    valid = (sa < n_windows) & ~bad[np.minimum(sa, n_windows - 1)]
    key_by_rank = np.where(valid, keys[np.minimum(sa, n_windows - 1)], -1)

    ranges: list[tuple[int, int, int]] = []
    r = 0
    while r < m:
        if key_by_rank[r] < 0:
            r += 1
            continue
        key = int(key_by_rank[r])
        lo = r
        while r < m and key_by_rank[r] == key:
            r += 1
        ranges.append((key, lo, r))
    return ranges


@dataclass(frozen=True)
class BucketStats:
    """Summary of a bucket partition, used for load-balancing decisions and
    the partitioning-phase accounting of Table 3."""

    n_buckets: int
    total_suffixes: int
    max_bucket: int
    mean_bucket: float

    @property
    def imbalance(self) -> float:
        """max / mean bucket size (1.0 = perfectly uniform)."""
        return self.max_bucket / self.mean_bucket if self.mean_bucket else 0.0


def bucket_statistics(sizes: list[int]) -> BucketStats:
    """Compute :class:`BucketStats` from bucket sizes."""
    if not sizes:
        return BucketStats(0, 0, 0, 0.0)
    total = int(sum(sizes))
    return BucketStats(
        n_buckets=len(sizes),
        total_suffixes=total,
        max_bucket=int(max(sizes)),
        mean_bucket=total / len(sizes),
    )
