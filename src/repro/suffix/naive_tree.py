"""Paper-faithful per-bucket GST construction (§3.1).

A sequential suffix-tree algorithm (Ukkonen/McCreight) cannot be used on a
bucket because a bucket does not contain *all* suffixes of any string; the
paper therefore builds each bucket's subtree "by scanning all suffixes of a
bucket one character at a time: a bucket is further subdivided into smaller
buckets which are recursively subdivided, until each suffix is assigned a
separate bucket".  That recursive character-partition refinement is
implemented literally here, with path compaction so the result is the
compacted trie (the GST subtree) rather than an uncompacted one.

The resulting object tree mirrors the paper's structure exactly:

- an internal node's *string-depth* is the length of its path label;
- suffixes that end exactly at a node's depth form a **leaf child** whose
  leaf set may contain several identical suffixes of *different* strings
  (the multi-string leaves that make ProcessLeaf of Algorithm 1 non-trivial
  — two identical suffixes of one string are impossible, they would have
  different lengths);
- children are ordered: the ended-suffix leaf first, then branches in
  character order (this fixed ordering is what lets Algorithm 1 avoid
  generating both (s, s') and (s', s) at one node).

This backend is O(total suffix length) in Python and is intended for tests,
small inputs, and as the semantic reference the fast suffix-array engine is
validated against.  Run-time at scale is the suffix-array engine's job.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.sequence.collection import EstCollection
from repro.suffix.buckets import enumerate_bucket_suffixes

__all__ = ["TrieNode", "build_bucket_tree", "build_gst_forest"]


@dataclass
class TrieNode:
    """A node of the compacted per-bucket trie.

    ``suffixes`` is non-empty exactly for leaves and lists the identical
    suffixes ``(string_index, offset)`` ending at this node's path label.
    """

    string_depth: int
    suffixes: list[tuple[int, int]] = field(default_factory=list)
    children: list["TrieNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def iter_postorder(self):
        """Yield nodes children-first (used for depth-tie-safe processing)."""
        stack: list[tuple[TrieNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))

    def leaf_count(self) -> int:
        return sum(1 for node in self.iter_postorder() if node.is_leaf)


def build_bucket_tree(
    collection: EstCollection,
    suffixes: list[tuple[int, int]],
    start_depth: int,
) -> TrieNode:
    """Build the compacted trie of ``suffixes``, which all share a common
    prefix of length ``start_depth`` (the bucket window ``w``).

    Iterative (explicit work stack) so deep paths cannot blow the Python
    recursion limit.
    """
    if not suffixes:
        raise ValueError("cannot build a tree from an empty bucket")

    strings = [collection.string(k) for k in range(collection.n_strings)]
    lengths = [len(s) for s in strings]

    def make_node(group: list[tuple[int, int]], depth: int) -> TrieNode:
        """Create the node for ``group`` (shared prefix length ``depth``),
        with grandchildren left on ``work`` for later expansion."""
        # Path compaction: extend depth while no suffix ends and all
        # continue with the same character.
        if len(group) == 1:
            k, off = group[0]
            return TrieNode(string_depth=lengths[k] - off, suffixes=[(k, off)])
        while True:
            ended = [(k, off) for (k, off) in group if lengths[k] - off == depth]
            if ended:
                break
            chars = {int(strings[k][off + depth]) for (k, off) in group}
            if len(chars) > 1:
                break
            depth += 1
        if len(ended) == len(group):
            # All suffixes are identical: a multi-string leaf.
            return TrieNode(string_depth=depth, suffixes=list(group))
        node = TrieNode(string_depth=depth)
        if ended:
            node.children.append(TrieNode(string_depth=depth, suffixes=ended))
        by_char: dict[int, list[tuple[int, int]]] = {}
        for k, off in group:
            if lengths[k] - off > depth:
                by_char.setdefault(int(strings[k][off + depth]), []).append((k, off))
        for c in sorted(by_char):
            work.append((node, by_char[c], depth + 1))
        return node

    work: deque[tuple[TrieNode, list[tuple[int, int]], int]] = deque()
    root = make_node(suffixes, start_depth)
    while work:
        parent, group, depth = work.popleft()
        child = make_node(group, depth)
        parent.children.append(child)
    return root


def build_gst_forest(collection: EstCollection, w: int) -> dict[int, TrieNode]:
    """The distributed-GST forest: one compacted bucket tree per ``w``-prefix.

    Returns ``{bucket_key: root}`` with keys in increasing order.  Each root
    has string-depth ≥ w; together the trees are the GST of S minus the top
    ``< w`` region (paper §3.1).
    """
    buckets = enumerate_bucket_suffixes(collection, w)
    return {
        key: build_bucket_tree(collection, buckets[key], w) for key in sorted(buckets)
    }
