"""The paper's space-efficient DFS-array tree representation (§3.1).

To keep the GST's memory footprint linear and pointer-light, the paper
stores each bucket tree as an array of nodes in depth-first (preorder)
order, where every node carries a **single pointer: the index of the
rightmost leaf of its subtree**.  All structure is recovered from that one
pointer per node:

- the first child of an internal node is the next entry in the array;
- the next sibling of a node ``u`` is the entry following ``u``'s rightmost
  leaf — unless ``u`` and its parent share the same rightmost leaf, in
  which case ``u`` is the last child;
- a node is a leaf iff its rightmost-leaf pointer points to itself.

:class:`DfsArrayTree` implements exactly that encoding (plus the per-node
string-depths and per-leaf suffix payloads that Algorithm 1 needs), and the
paper-faithful pair generator in :mod:`repro.pairs.generator` walks it using
only these rules, so the representation is exercised end-to-end rather than
being a museum piece.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.suffix.naive_tree import TrieNode

__all__ = ["DfsArrayTree", "from_trie"]


@dataclass
class DfsArrayTree:
    """A forest of bucket trees in the DFS-array encoding.

    Attributes
    ----------
    string_depth:
        Per node, the length of its path label.  For a leaf this is the
        length of the (identical) suffixes it stores.
    rightmost_leaf:
        Per node, the array index of the rightmost leaf in its subtree.
        ``rightmost_leaf[u] == u`` iff ``u`` is a leaf.
    parent:
        Per node, the parent index (-1 for bucket-tree roots).  The paper
        recovers parenthood implicitly during its traversals; we store it
        because Algorithm 1's bottom-up lset flow needs O(1) access.
    suffix_strings, suffix_offsets, leaf_slice:
        Flat suffix payload: leaf ``u`` stores the suffixes
        ``(suffix_strings[a:b], suffix_offsets[a:b])`` where
        ``(a, b) = leaf_slice[u]``.  Internal nodes have an empty slice.
    roots:
        Indices of the bucket-tree roots, in bucket-key order.
    """

    string_depth: np.ndarray
    rightmost_leaf: np.ndarray
    parent: np.ndarray
    suffix_strings: np.ndarray
    suffix_offsets: np.ndarray
    leaf_slice: np.ndarray
    roots: np.ndarray

    @property
    def n_nodes(self) -> int:
        return len(self.string_depth)

    def is_leaf(self, u: int) -> bool:
        """Paper rule: a leaf points to itself."""
        return int(self.rightmost_leaf[u]) == u

    def first_child(self, u: int) -> int:
        """Paper rule: the first child of a node is stored next to it."""
        if self.is_leaf(u):
            raise ValueError(f"node {u} is a leaf and has no children")
        return u + 1

    def next_sibling(self, u: int) -> int | None:
        """Paper rule: follow the rightmost-leaf pointer and take the next
        entry; if ``u`` and its parent share the rightmost leaf, ``u`` has
        no next sibling."""
        p = int(self.parent[u])
        if p < 0:
            return None
        if int(self.rightmost_leaf[u]) == int(self.rightmost_leaf[p]):
            return None
        return int(self.rightmost_leaf[u]) + 1

    def children(self, u: int) -> Iterator[int]:
        """All children of ``u``, left to right, via the sibling walk."""
        if self.is_leaf(u):
            return
        c: int | None = self.first_child(u)
        while c is not None:
            yield c
            c = self.next_sibling(c)

    def leaf_suffixes(self, u: int) -> list[tuple[int, int]]:
        """The ``(string, offset)`` payload of leaf ``u``."""
        a, b = int(self.leaf_slice[u, 0]), int(self.leaf_slice[u, 1])
        return list(zip(self.suffix_strings[a:b].tolist(), self.suffix_offsets[a:b].tolist()))

    def subtree_nodes(self, u: int) -> range:
        """All nodes of ``u``'s subtree: the contiguous DFS block ending at
        the rightmost leaf."""
        return range(u, int(self.rightmost_leaf[u]) + 1)

    def iter_postorder(self) -> Iterator[int]:
        """Node ids children-before-parents (reverse preorder works because
        within the DFS array every child has a larger index than its
        parent)."""
        return iter(range(self.n_nodes - 1, -1, -1))


def from_trie(trees: dict[int, TrieNode] | list[TrieNode]) -> DfsArrayTree:
    """Flatten bucket trees into the DFS-array encoding.

    Accepts the ``{bucket_key: root}`` mapping of
    :func:`repro.suffix.naive_tree.build_gst_forest` (flattened in key
    order) or a plain list of roots.
    """
    if isinstance(trees, dict):
        root_nodes = [trees[key] for key in sorted(trees)]
    else:
        root_nodes = list(trees)
    # An empty forest is legal: every suffix may be shorter than the
    # bucket window, in which case no promising pair can exist either.

    depths: list[int] = []
    rml: list[int] = []
    parents: list[int] = []
    slices: list[tuple[int, int]] = []
    sufs_k: list[int] = []
    sufs_off: list[int] = []
    roots: list[int] = []

    def assign(node: TrieNode, parent_idx: int) -> int:
        """Preorder placement; returns the rightmost leaf of the subtree."""
        idx = len(depths)
        depths.append(node.string_depth)
        rml.append(-1)  # patched below
        parents.append(parent_idx)
        a = len(sufs_k)
        for k, off in node.suffixes:
            sufs_k.append(k)
            sufs_off.append(off)
        slices.append((a, len(sufs_k)))
        if node.is_leaf:
            rml[idx] = idx
            return idx
        last = idx
        for child in node.children:
            last = assign(child, idx)
        rml[idx] = last
        return last

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 100_000))
    try:
        for root in root_nodes:
            roots.append(len(depths))
            assign(root, -1)
    finally:
        sys.setrecursionlimit(old_limit)

    return DfsArrayTree(
        string_depth=np.array(depths, dtype=np.int64),
        rightmost_leaf=np.array(rml, dtype=np.int64),
        parent=np.array(parents, dtype=np.int64),
        suffix_strings=np.array(sufs_k, dtype=np.int64),
        suffix_offsets=np.array(sufs_off, dtype=np.int64),
        leaf_slice=np.array(slices, dtype=np.int64).reshape(-1, 2),
        roots=np.array(roots, dtype=np.int64),
    )
