"""Baseline comparators: the traditional materialise-then-align strategy
(arbitrary-order pair processing), a CAP3-like full-DP greedy assembler,
and calibrated scaling-law models of the Table 1 tools."""

from repro.baselines.allpairs import AllPairsReport, allpairs_cluster
from repro.baselines.cost_models import (
    CAP3,
    MEMORY_BUDGET_MB,
    PHRAP,
    TABLE1_TOOLS,
    TIGR_ASSEMBLER,
    ToolCostModel,
)
from repro.baselines.greedy_assembler import AssemblerReport, cap3_like_cluster

__all__ = [
    "AllPairsReport",
    "allpairs_cluster",
    "CAP3",
    "MEMORY_BUDGET_MB",
    "PHRAP",
    "TABLE1_TOOLS",
    "TIGR_ASSEMBLER",
    "ToolCostModel",
    "AssemblerReport",
    "cap3_like_cluster",
]
