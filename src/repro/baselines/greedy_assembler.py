"""A CAP3-like comparator for the quality table (Table 2).

CAP3 (Huang & Madan 1999) computes overlaps between all candidate read
pairs with full dynamic programming, then assembles greedily in order of
overlap quality.  The paper found CAP3 the most accurate of the three
tools but unable to fit large inputs in memory (Tables 1–2).

This comparator reproduces that *profile* on our substrate:

- candidate pairs come from the same exact-match filter (so the
  comparison is about alignment and ordering, not seeding);
- every candidate is aligned with **full whole-string overlap DP** — the
  optimal overlap, unconstrained by a seed or a band, hence alignment
  quality ≥ the banded seed extension's (a handful of borderline true
  overlaps score above threshold here that the restricted engine misses);
- scored pairs are buffered and merged best-score-first;
- the pair buffer and the quadratic DP work are both accounted, which is
  what renders this engine unusable at scale (Table 1's message).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.extend import PairAligner
from repro.align.scoring import AcceptanceCriteria
from repro.cluster.greedy import WorkCounters
from repro.cluster.manager import ClusterManager
from repro.core.config import ClusteringConfig
from repro.core.results import ClusteringResult
from repro.metrics.memory import MemoryLedger
from repro.pairs.batch import make_pair_generator
from repro.sequence.collection import EstCollection
from repro.suffix.gst import SuffixArrayGst
from repro.util.timing import TimingBreakdown

__all__ = ["AssemblerReport", "cap3_like_cluster"]


@dataclass
class AssemblerReport:
    result: ClusteringResult
    memory: MemoryLedger

    @property
    def peak_pairs_buffered(self) -> int:
        return self.memory.peak.get("pairs", 0)


def cap3_like_cluster(
    collection: EstCollection,
    config: ClusteringConfig | None = None,
    *,
    criteria: AcceptanceCriteria | None = None,
    gst: SuffixArrayGst | None = None,
) -> AssemblerReport:
    """Cluster with the CAP3-like compute-all-overlaps-first strategy.

    ``criteria`` defaults to the config's acceptance thresholds; CAP3's
    scores are computed by unrestricted overlap DP, so the same thresholds
    admit slightly more true overlaps than the banded engine does.
    """
    config = config or ClusteringConfig()
    criteria = criteria or config.acceptance
    timings = TimingBreakdown()
    ledger = MemoryLedger()

    with timings.measure("gst_construction"):
        gst = gst or SuffixArrayGst.build(collection)
    with timings.measure("sort_nodes"):
        generator = make_pair_generator(gst, config)

    # Deduplicate candidates by pair identity (CAP3 scores each read pair
    # once), keeping the first (longest-seed) witness.
    with timings.measure("pair_enumeration"):
        seen: dict[tuple[int, int, bool], object] = {}
        for pair in generator.pairs():
            seen.setdefault(pair.key, pair)
        candidates = list(seen.values())
    ledger.set_peak("pairs", len(candidates))

    # Full-DP scoring of every candidate (the quadratic phase).
    aligner = PairAligner(
        collection,
        params=config.scoring,
        criteria=criteria,
        use_seed_extension=False,  # whole-string overlap DP
    )
    counters = WorkCounters()
    scored = []
    with timings.measure("alignment"):
        for pair in candidates:
            counters.pairs_generated += 1
            result = aligner.align_pair(pair)
            counters.pairs_processed += 1
            scored.append((result.score_ratio(config.scoring), pair, result))
        counters.dp_cells = aligner.dp_cells_total
    ledger.set_peak("scored_overlaps", len(scored))

    # Greedy assembly: best overlaps first.
    manager = ClusterManager(collection.n_ests)
    with timings.measure("assembly"):
        scored.sort(key=lambda t: -t[0])
        for _ratio, pair, result in scored:
            if result.accepted(config.scoring, criteria):
                counters.pairs_accepted += 1
                if not manager.same_cluster(pair.est_a, pair.est_b):
                    manager.merge(pair, result)

    result_obj = ClusteringResult(
        n_ests=collection.n_ests,
        clusters=manager.clusters(),
        counters=counters,
        timings=timings,
        gen_stats=generator.stats,
        merges=list(manager.merges),
    )
    return AssemblerReport(result=result_obj, memory=ledger)
