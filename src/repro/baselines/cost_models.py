"""Analytic run-time/memory models of the Table 1 comparators.

Table 1 reports TIGR Assembler, Phrap and CAP3 on one IBM SP processor
with 512 MB: TIGR cannot fit 50,000 ESTs; Phrap does 50,000 in 23 minutes
but not 81,414; CAP3 needs 5 hours for 50,000 and cannot fit 81,414
either.  Those executables are closed, 20 years old, and unavailable
offline, so this module models them as calibrated scaling laws anchored
exactly on the paper's reported points:

- run-time  t(n) = t_ref · (n / n_ref)²   (the promising-pair and
  alignment phases of all three tools are quadratic in practice);
- memory    m(n) = m_base + m_ref · (n / n_ref)²   (dominated by the
  materialised candidate-pair structures).

Memory coefficients are pinned by the paper's feasibility observations:
each tool's predicted footprint crosses the 512 MB budget exactly where
Table 1 says it stopped fitting.  The bench for Table 1 combines these
models (at paper scale) with *measured* footprints of our own baselines
(at reproduction scale), so both the absolute historical row and the
mechanism behind it are shown.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ToolCostModel", "TIGR_ASSEMBLER", "PHRAP", "CAP3", "TABLE1_TOOLS", "MEMORY_BUDGET_MB"]

#: The paper's per-processor memory budget (512 MB IBM SP node).
MEMORY_BUDGET_MB = 512.0


@dataclass(frozen=True)
class ToolCostModel:
    """Quadratic scaling law anchored at a reference input size."""

    name: str
    n_ref: int
    runtime_ref_s: float  # run-time at n_ref
    memory_ref_mb: float  # footprint at n_ref
    memory_base_mb: float = 40.0  # code + sequence storage floor

    def runtime_s(self, n: int) -> float:
        return self.runtime_ref_s * (n / self.n_ref) ** 2

    def memory_mb(self, n: int) -> float:
        return self.memory_base_mb + self.memory_ref_mb * (n / self.n_ref) ** 2

    def fits(self, n: int, budget_mb: float = MEMORY_BUDGET_MB) -> bool:
        return self.memory_mb(n) <= budget_mb

    def table1_cell(self, n: int, budget_mb: float = MEMORY_BUDGET_MB) -> str:
        """Render a Table 1 cell: a time, or 'X' when out of memory."""
        if not self.fits(n, budget_mb):
            return "X"
        t = self.runtime_s(n)
        if t >= 3600:
            return f"{t / 3600:.1f} hrs"
        return f"{t / 60:.0f} mins"


# Calibration (anchors straight from Table 1):
# - TIGR: X already at 50,000 -> memory at 50k just above budget.
# - Phrap: 23 mins at 50,000; X at 81,414 -> 512 MB crossing in between
#   (memory_ref chosen so m(50k) ~ 400 MB < 512 < m(81.4k)).
# - CAP3: 5 hrs at 50,000; X at 81,414 -> same feasibility window.
TIGR_ASSEMBLER = ToolCostModel(
    name="TIGR Assembler", n_ref=50_000, runtime_ref_s=40 * 60, memory_ref_mb=600.0
)
PHRAP = ToolCostModel(name="Phrap", n_ref=50_000, runtime_ref_s=23 * 60, memory_ref_mb=400.0)
CAP3 = ToolCostModel(name="CAP3", n_ref=50_000, runtime_ref_s=5 * 3600, memory_ref_mb=380.0)

TABLE1_TOOLS = [TIGR_ASSEMBLER, PHRAP, CAP3]
