"""The "traditional" baseline: materialised, arbitrary-order pair handling.

§2/§4.2 contrast PaCE's on-demand, decreasing-quality-order pair stream
with "the traditional way of generating pairs in an arbitrary order": the
tools of Table 1 first *enumerate and store* the promising pairs (the
memory-intensive phase that produced the 'X' entries at 512 MB) and then
align them without the benefit of ordering.

:func:`allpairs_cluster` reproduces that strategy over our own substrate
so the comparison isolates exactly the two PaCE mechanisms:

- all promising pairs are generated **up front** and buffered (peak memory
  = every pair, vs. O(batch) for the on-demand stream);
- the buffer is processed in an arbitrary (seeded-shuffle) order, so the
  cluster-skip test fires far less often than under best-first order.

Everything else — generator, aligner, acceptance — is shared with the
main pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.align.extend import PairAligner
from repro.cluster.greedy import WorkCounters, greedy_cluster
from repro.cluster.manager import ClusterManager
from repro.core.config import ClusteringConfig
from repro.core.results import ClusteringResult
from repro.metrics.memory import MemoryLedger
from repro.pairs.batch import make_pair_generator
from repro.sequence.collection import EstCollection
from repro.suffix.gst import SuffixArrayGst
from repro.util.rng import ensure_rng
from repro.util.timing import TimingBreakdown

__all__ = ["AllPairsReport", "allpairs_cluster"]


@dataclass
class AllPairsReport:
    """Result + the memory ledger showing the materialised-pair footprint."""

    result: ClusteringResult
    memory: MemoryLedger

    @property
    def peak_pairs_buffered(self) -> int:
        return self.memory.peak.get("pairs", 0)


def allpairs_cluster(
    collection: EstCollection,
    config: ClusteringConfig | None = None,
    *,
    order: str = "arbitrary",
    skip_clustered: bool = True,
    rng=0,
    gst: SuffixArrayGst | None = None,
) -> AllPairsReport:
    """Cluster with the materialise-then-align strategy.

    ``order`` is "arbitrary" (seeded shuffle — the traditional baseline),
    "best_first" (decreasing maximal-substring length — isolates the
    buffering cost from the ordering benefit) or "worst_first" (adversarial
    bound).  ``skip_clustered=False`` additionally disables the cluster
    test, the fully naive arm of the ablation grid.
    """
    config = config or ClusteringConfig()
    timings = TimingBreakdown()
    ledger = MemoryLedger()

    with timings.measure("gst_construction"):
        gst = gst or SuffixArrayGst.build(collection)
    with timings.measure("sort_nodes"):
        generator = make_pair_generator(gst, config)

    with timings.measure("pair_enumeration"):
        pairs = list(generator.pairs())
    ledger.set_peak("pairs", len(pairs))
    ledger.set_peak("lset_entries", generator.stats.peak_lset_entries)

    if order == "arbitrary":
        perm = ensure_rng(rng).permutation(len(pairs))
        pairs = [pairs[i] for i in perm]
    elif order == "worst_first":
        pairs.reverse()
    elif order != "best_first":
        raise ValueError(f"unknown order {order!r}")

    aligner = PairAligner(
        collection,
        params=config.scoring,
        criteria=config.acceptance,
        band_policy=config.band_policy,
        use_seed_extension=config.use_seed_extension,
        engine=config.align_engine,
    )
    manager = ClusterManager(collection.n_ests)
    counters = WorkCounters()
    with timings.measure("alignment"):
        greedy_cluster(
            iter(pairs),
            aligner,
            manager,
            skip_clustered=skip_clustered,
            counters=counters,
        )

    result = ClusteringResult(
        n_ests=collection.n_ests,
        clusters=manager.clusters(),
        counters=counters,
        timings=timings,
        gen_stats=generator.stats,
        merges=list(manager.merges),
    )
    return AllPairsReport(result=result, memory=ledger)
