"""Command-line interface: cluster / simulate / evaluate / report.

The original PaCE shipped as a command-line program; this module provides
the equivalent driver surface::

    pace-est cluster ests.fa -o clusters.tsv --psi 25 --min-overlap 40
    pace-est cluster ests.fa --parallel 8 --machine simulated
    pace-est cluster ests.fa --parallel 4 --telemetry-out trace.jsonl
    pace-est cluster ests.fa --parallel 4 --monitor-port 9100 --live-out live.jsonl
    pace-est simulate bench.fa --genes 20 --coverage 10 --truth truth.tsv
    pace-est evaluate clusters.tsv truth.tsv
    pace-est report trace.jsonl
    pace-est analyze trace.jsonl
    pace-est diff baseline.jsonl candidate.jsonl --threshold 0.25
    pace-est monitor http://127.0.0.1:9100 --watch 2
    pace-est monitor live.jsonl
    pace-est cluster ests.fa --parallel 4 --obs-out run1/
    pace-est perfetto run1/trace.jsonl
    pace-est postmortem run1/

``cluster`` writes a two-column TSV (EST name, cluster id) and, with
``--telemetry-out``, the run's full telemetry stream as JSONL;
``simulate`` writes a FASTA benchmark plus its ground-truth TSV;
``evaluate`` prints the paper's OQ/OV/UN/CC metrics between two
assignment files; ``report`` validates a telemetry JSONL file and
reconstructs the paper-shaped measurements from it (per-phase times in
Table 3's components, per-slave utilisation, the Fig. 8 master-busy
fraction, counters/histograms, fault accounting); ``analyze`` breaks a
trace down by work-unit lifecycle stage — tail quantiles, the
critical-path stage, per-slave imbalance and straggler hints;
``diff`` compares two traces stage-by-stage and exits non-zero when a
quantile regressed past the threshold (the CI latency gate); ``monitor``
renders a live progress table from a running cluster's
``--monitor-port`` endpoint or replays a finished run's ``--live-out``
JSONL stream; ``perfetto`` exports a trace as Chrome trace-event JSON
for the Perfetto UI; ``postmortem`` reconstructs a failed run's merged
timeline from an ``--obs-out`` directory (flight-recorder dumps
included) and names the work units that were in flight when it died.

Diagnostics go through :mod:`repro.util.logging` (structured one-line
``key=value`` records on stderr); data output — cluster TSVs, reports,
tables — still writes plainly to stdout.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.align.scoring import AcceptanceCriteria
from repro.cluster.analysis import profile_clusters
from repro.core import ClusteringConfig, PaceClusterer
from repro.metrics import assess_clustering
from repro.parallel import run_parallel
from repro.sequence import EstCollection, FastaRecord, read_fasta, write_fasta
from repro.simulate import BenchmarkParams, make_benchmark
from repro.telemetry import (
    Telemetry,
    export_jsonl,
    load_jsonl,
    summarise,
    validate_records,
)
from repro.util.logging import get_logger, new_run_id

__all__ = ["main", "build_parser"]

_log = get_logger(actor="cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pace-est",
        description="Parallel EST clustering (PaCE reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    c = sub.add_parser("cluster", help="cluster a FASTA file of ESTs")
    c.add_argument("fasta", type=Path, help="input FASTA")
    c.add_argument("-o", "--output", type=Path, help="output TSV (default: stdout)")
    c.add_argument("--w", type=int, default=8, help="bucket window (default 8)")
    c.add_argument("--psi", type=int, default=25, help="pair threshold ψ (default 25)")
    c.add_argument("--batchsize", type=int, default=60)
    c.add_argument("--align-batch", type=int, default=0, metavar="G",
                   help="vectorised alignment group size "
                        "(0 = per-pair reference engine)")
    c.add_argument("--pair-engine", choices=("scalar", "vector"),
                   default="scalar",
                   help="promising-pair generation engine: 'vector' runs "
                        "the depth-batched numpy engine (identical pair "
                        "stream, several times faster)")
    c.add_argument("--min-overlap", type=int, default=40)
    c.add_argument("--min-ratio", type=float, default=0.85, help="score/ideal acceptance")
    c.add_argument("--parallel", type=int, default=0, metavar="P",
                   help="use P processors (0 = sequential)")
    c.add_argument("--machine", choices=("simulated", "multiprocessing"),
                   default="multiprocessing")
    c.add_argument("--dispatch-policy", default="paper", metavar="POLICY",
                   help="master work-allocation policy: 'paper' (the §3.3 "
                        "formula, reproduction-faithful default), 'jbsq' / "
                        "'jbsq:<k>' (bound grants by in-flight batch depth) "
                        "or 'pace' (shrink grants to straggling slaves)")
    c.add_argument("--master-shards", type=int, default=1, metavar="N",
                   help="partition the master into N shards, each owning a "
                        "disjoint slice of the bucket ranges and a subset "
                        "of the slaves; shards exchange accepted-pair "
                        "unions periodically (1 = classic single master)")
    c.add_argument("--shard-sync-interval", type=float, default=0.25,
                   metavar="S",
                   help="seconds between cross-shard union-log exchanges "
                        "(virtual seconds on the simulated machine)")
    c.add_argument("--clusters-fasta-dir", type=Path,
                   help="also write one FASTA per cluster into this directory")
    c.add_argument("--representatives", type=Path, metavar="FASTA",
                   help="write one representative EST per cluster (the "
                        "member with the most merge-overlap evidence)")
    c.add_argument("--telemetry-out", type=Path, metavar="JSONL",
                   help="record spans, metrics and the machine trace; "
                        "write them as JSONL here (summarise with "
                        "'pace-est report')")
    c.add_argument("--monitor-port", type=int, metavar="PORT",
                   help="serve live run state over HTTP on 127.0.0.1:PORT "
                        "(/metrics Prometheus text, /healthz, /state JSON; "
                        "0 = OS-assigned)")
    c.add_argument("--monitor-interval", type=float, default=1.0, metavar="S",
                   help="live sample interval in seconds (default 1.0)")
    c.add_argument("--live-out", type=Path, metavar="JSONL",
                   help="stream live progress/resource samples here as "
                        "they happen (replay with 'pace-est monitor')")
    c.add_argument("--monitor-linger", type=float, default=0.0, metavar="S",
                   help="keep the monitor endpoint serving the final "
                        "state for S seconds after the run completes")
    c.add_argument("--causal-trace", action="store_true",
                   help="mint a work-unit id per dispatched pair batch and "
                        "record its lifecycle (generated → dispatched → "
                        "absorbed/requeued/pruned) in the telemetry stream; "
                        "requires --telemetry-out (or --obs-out)")
    c.add_argument("--flight-dir", type=Path, metavar="DIR",
                   help="arm a crash flight recorder in every process: a "
                        "bounded event ring dumped to DIR/flight-<actor>.json "
                        "on crash, SIGTERM or fault-tolerance transitions")
    c.add_argument("--obs-out", type=Path, metavar="DIR",
                   help="one-stop observability directory: implies "
                        "--telemetry-out DIR/trace.jsonl, --live-out "
                        "DIR/live.jsonl, --flight-dir DIR and --causal-trace, "
                        "all under one shared run id, plus a Perfetto "
                        "timeline at DIR/timeline.perfetto.json "
                        "(inspect with 'pace-est postmortem DIR')")
    c.add_argument("--no-shared-arenas", action="store_true",
                   help="disable shared-memory arenas for the real "
                        "multiprocessing machine (slaves then receive a "
                        "full copy of the index, the legacy behaviour)")

    s = sub.add_parser("simulate", help="generate a synthetic EST benchmark")
    s.add_argument("fasta", type=Path, help="output FASTA")
    s.add_argument("--genes", type=int, default=20)
    s.add_argument("--coverage", type=float, default=10.0, help="mean ESTs per gene")
    s.add_argument("--read-length", type=float, default=550.0)
    s.add_argument("--error-rate", type=float, default=0.02,
                   help="total error rate (half substitutions, half indels)")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--truth", type=Path, help="write ground-truth TSV here")

    e = sub.add_parser("evaluate", help="score a clustering against truth")
    e.add_argument("predicted", type=Path, help="TSV: name<TAB>cluster")
    e.add_argument("truth", type=Path, help="TSV: name<TAB>cluster")

    r = sub.add_parser(
        "report", help="validate + summarise a telemetry JSONL trace"
    )
    r.add_argument("trace", type=Path, help="JSONL file from --telemetry-out")
    r.add_argument("--timeline", type=int, default=0, metavar="N",
                   help="also print the first N machine-trace events")

    a = sub.add_parser(
        "analyze",
        help="work-unit latency analysis of a telemetry trace: per-stage "
             "quantiles, critical path, slave imbalance, and (with "
             "--causal-trace data) the work-unit conservation check",
    )
    a.add_argument("trace", type=Path, help="JSONL file from --telemetry-out")
    a.add_argument("--strict-conservation", action="store_true",
                   help="exit 1 when the work-unit conservation check finds "
                        "orphaned or double-absorbed units (the CI gate)")

    pf = sub.add_parser(
        "perfetto",
        help="export a telemetry JSONL trace as Chrome trace-event JSON "
             "(load in Perfetto / chrome://tracing): one track per master "
             "shard and slave, flow arrows from dispatch to absorb",
    )
    pf.add_argument("trace", type=Path, help="JSONL file from --telemetry-out")
    pf.add_argument("-o", "--output", type=Path, metavar="JSON",
                    help="output path (default: <trace>.perfetto.json)")

    pm = sub.add_parser(
        "postmortem",
        help="reconstruct a run's causally-ordered timeline from an "
             "observability directory (--obs-out): per-actor last known "
             "state, in-flight work units, flight-recorder dumps, "
             "conservation check; exits 1 if the evidence is inconsistent",
    )
    pm.add_argument("directory", type=Path,
                    help="directory holding the run's *.jsonl streams and "
                         "flight-*.json dumps")
    pm.add_argument("--tail", type=int, default=25, metavar="N",
                    help="merged-timeline events to show (default 25)")

    d = sub.add_parser(
        "diff",
        help="compare two telemetry traces stage-by-stage; exit 1 on "
             "latency regressions past the threshold",
    )
    d.add_argument("baseline", type=Path, help="baseline trace JSONL")
    d.add_argument("candidate", type=Path, help="candidate trace JSONL")
    d.add_argument("--threshold", type=float, default=0.25, metavar="FRAC",
                   help="relative increase counted as a regression "
                        "(default 0.25 = +25%%)")

    m = sub.add_parser(
        "monitor",
        help="render a live progress table from a monitor endpoint or a "
             "--live-out JSONL stream",
    )
    m.add_argument("target",
                   help="endpoint URL (http://host:port) or live JSONL path")
    m.add_argument("--watch", type=float, default=0.0, metavar="S",
                   help="refresh every S seconds until the run finishes "
                        "(endpoint targets only; 0 = render once)")

    return parser


def _read_assignments(path: Path) -> dict[str, str]:
    out: dict[str, str] = {}
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 2:
            raise SystemExit(f"{path}:{lineno}: expected 'name<TAB>cluster'")
        out[parts[0]] = parts[1]
    return out


def _cmd_cluster(args: argparse.Namespace) -> int:
    if args.obs_out is not None:
        # One directory, one run id, every sink: the fan-out keeps the
        # individual flags composable (explicit flags win over defaults).
        args.obs_out.mkdir(parents=True, exist_ok=True)
        if args.telemetry_out is None:
            args.telemetry_out = args.obs_out / "trace.jsonl"
        if args.live_out is None:
            args.live_out = args.obs_out / "live.jsonl"
        if args.flight_dir is None:
            args.flight_dir = args.obs_out
        args.causal_trace = True
    if args.causal_trace and args.telemetry_out is None:
        raise SystemExit(
            "--causal-trace records ride the telemetry stream: add "
            "--telemetry-out FILE (or use --obs-out DIR)"
        )
    records = read_fasta(args.fasta)
    collection = EstCollection.from_records(records)
    config = ClusteringConfig(
        w=args.w,
        psi=args.psi,
        batchsize=args.batchsize,
        align_batch=args.align_batch,
        pair_engine=args.pair_engine,
        shared_arenas=not args.no_shared_arenas,
        dispatch_policy=args.dispatch_policy,
        master_shards=args.master_shards,
        shard_sync_interval=args.shard_sync_interval,
        causal_tracing=args.causal_trace,
        flight_dir=str(args.flight_dir) if args.flight_dir is not None else None,
        acceptance=AcceptanceCriteria(
            min_score_ratio=args.min_ratio, min_overlap=args.min_overlap
        ),
    )
    telemetry = Telemetry() if args.telemetry_out else None
    monitor = None
    if args.monitor_port is not None or args.live_out is not None:
        from repro.telemetry import RunMonitor

        run_id = new_run_id()
        monitor = RunMonitor(
            port=args.monitor_port,
            live_out=args.live_out,
            interval=args.monitor_interval,
            run_id=run_id,
        )
        log = _log.bind(run=run_id)
    else:
        log = _log
    log.info(
        "clustering",
        ests=collection.n_ests,
        parallel=args.parallel or None,
        machine=args.machine if args.parallel else "sequential",
    )
    try:
        if args.parallel:
            result = run_parallel(
                collection,
                config,
                n_processors=args.parallel,
                machine=args.machine,
                telemetry=telemetry,
                monitor=monitor,
            )
        else:
            result = PaceClusterer(config).cluster(
                collection, telemetry=telemetry, monitor=monitor
            )
    finally:
        if monitor is not None:
            monitor.close(linger=args.monitor_linger)

    if args.telemetry_out:
        n_records = export_jsonl(result.telemetry, args.telemetry_out)
        log.info(
            "telemetry written", records=n_records, path=args.telemetry_out
        )
    if args.obs_out is not None and args.telemetry_out is not None:
        from repro.telemetry import export_chrome_trace

        timeline = args.obs_out / "timeline.perfetto.json"
        n_events = export_chrome_trace(load_jsonl(args.telemetry_out), timeline)
        log.info("perfetto timeline written", events=n_events, path=timeline)

    print(result.summary(), file=sys.stderr)
    print(profile_clusters(result.clusters), file=sys.stderr)

    lines = []
    for cid, members in enumerate(result.clusters):
        for i in members:
            lines.append(f"{records[i].name}\t{cid}")
    text = "\n".join(lines) + "\n"
    if args.output:
        args.output.write_text(text)
    else:
        sys.stdout.write(text)

    if args.clusters_fasta_dir:
        args.clusters_fasta_dir.mkdir(parents=True, exist_ok=True)
        for cid, members in enumerate(result.clusters):
            write_fasta(
                (FastaRecord(records[i].name, records[i].sequence) for i in members),
                args.clusters_fasta_dir / f"cluster_{cid:05d}.fa",
            )

    if args.representatives:
        from repro.cluster import select_representatives

        reps = select_representatives(
            collection, result.clusters, strategy="connected", merges=result.merges
        )
        write_fasta(
            (
                FastaRecord(
                    records[rep].name,
                    records[rep].sequence,
                    description=f"cluster_{cid} size={len(result.clusters[cid])}",
                )
                for cid, rep in enumerate(reps)
            ),
            args.representatives,
        )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulate import ErrorModel, ReadParams

    sub = args.error_rate / 2
    indel = args.error_rate / 4
    # Exon sizes scale with the read length so the default coverage gives
    # overlapping reads regardless of the regime (mRNA ≈ 2-6 read lengths).
    exon_lo = max(60, int(args.read_length * 0.7))
    exon_hi = max(exon_lo + 1, int(args.read_length * 1.6))
    params = BenchmarkParams(
        n_genes=args.genes,
        mean_ests_per_gene=args.coverage,
        read_params=ReadParams(
            mean_length=args.read_length,
            sd_length=args.read_length * 0.12,
            min_length=max(40, int(args.read_length * 0.3)),
        ),
        error_model=ErrorModel(sub, indel, indel),
        n_exons_range=(1, 3),
        exon_len_range=(exon_lo, exon_hi),
    )
    bench = make_benchmark(params, rng=args.seed)
    write_fasta(
        (
            FastaRecord(f"EST{i:05d}", bench.collection.est_string(i))
            for i in range(bench.n_ests)
        ),
        args.fasta,
    )
    _log.info(
        "benchmark written",
        ests=bench.n_ests,
        bases=bench.collection.total_chars,
        genes=len(bench.genes),
        path=args.fasta,
    )
    if args.truth:
        args.truth.write_text(
            "\n".join(
                f"EST{i:05d}\t{gene}" for i, gene in enumerate(bench.true_labels)
            )
            + "\n"
        )
        _log.info("ground truth written", path=args.truth)
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    pred = _read_assignments(args.predicted)
    truth = _read_assignments(args.truth)
    names = sorted(truth)
    missing = [n for n in names if n not in pred]
    if missing:
        raise SystemExit(
            f"{len(missing)} ESTs missing from {args.predicted} (e.g. {missing[0]})"
        )
    pred_ids = {c: k for k, c in enumerate(dict.fromkeys(pred[n] for n in names))}
    true_ids = {c: k for k, c in enumerate(dict.fromkeys(truth[n] for n in names))}
    report = assess_clustering(
        [pred_ids[pred[n]] for n in names],
        [true_ids[truth[n]] for n in names],
    )
    print(report)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    records = load_jsonl(args.trace)
    problems = validate_records(records)
    if problems:
        for problem in problems:
            _log.error("schema problem", detail=problem)
        raise SystemExit(f"{args.trace}: {len(problems)} schema problem(s)")
    print(summarise(records))
    if args.timeline:
        from repro.telemetry import TraceRecorder, render_timeline
        from repro.telemetry.trace import TraceEvent

        trace = TraceRecorder(
            events=[
                TraceEvent(
                    r["event"], r["actor"], r["ts"], r.get("end", r["ts"]),
                    r.get("detail", ""),
                )
                for r in records
                if r.get("kind") == "trace"
            ]
        )
        print()
        print(render_timeline(trace, max_events=args.timeline))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.telemetry import analyze_trace
    from repro.telemetry.analyze import conservation_section

    records = load_jsonl(args.trace)
    problems = validate_records(records)
    for problem in problems:
        _log.warning("schema problem", detail=problem)
    print(analyze_trace(records))
    if args.strict_conservation:
        _, errors = conservation_section(records)
        if errors:
            _log.error(
                "work-unit conservation violated",
                problems=errors,
                trace=args.trace,
            )
            return 1
    return 0


def _cmd_perfetto(args: argparse.Namespace) -> int:
    from repro.telemetry import export_chrome_trace

    records = load_jsonl(args.trace)
    problems = validate_records(records)
    for problem in problems:
        _log.warning("schema problem", detail=problem)
    output = args.output
    if output is None:
        output = args.trace.with_suffix(".perfetto.json")
    n_events = export_chrome_trace(records, output)
    _log.info("perfetto trace written", events=n_events, path=output)
    return 0


def _cmd_postmortem(args: argparse.Namespace) -> int:
    from repro.telemetry import build_postmortem

    report, ok = build_postmortem(args.directory, tail=args.tail)
    print(report)
    return 0 if ok else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.telemetry import diff_traces

    report, regressions = diff_traces(
        load_jsonl(args.baseline),
        load_jsonl(args.candidate),
        threshold=args.threshold,
    )
    print(report)
    if regressions:
        _log.error(
            "latency regressions",
            n=regressions,
            baseline=args.baseline,
            candidate=args.candidate,
        )
        return 1
    return 0


def _fetch_state(url: str) -> dict:
    import json
    from urllib.request import urlopen

    with urlopen(url.rstrip("/") + "/state", timeout=10) as resp:
        return json.loads(resp.read().decode())


def _cmd_monitor(args: argparse.Namespace) -> int:
    import time

    from repro.telemetry import render_progress_table, replay_live_records

    if args.target.startswith(("http://", "https://")):
        while True:
            state = _fetch_state(args.target)
            print(render_progress_table(state))
            if args.watch <= 0 or state.get("finished"):
                return 0
            time.sleep(args.watch)
            print()
    records = load_jsonl(Path(args.target))
    problems = validate_records(records)
    for problem in problems:
        _log.warning("schema problem", detail=problem)
    state = replay_live_records(records)
    print(render_progress_table(state.as_dict()))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "perfetto":
        return _cmd_perfetto(args)
    if args.command == "postmortem":
        return _cmd_postmortem(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "monitor":
        return _cmd_monitor(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-report; exit quietly
        # (devnull keeps the interpreter from re-raising at shutdown).
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(0)
