"""On-demand batched pair production (§2: "our algorithm remembers its
state and produces the next set of pairs on demand").

Both pair generators are lazy Python generators, so "remembered state" is
the suspended generator frame.  :class:`OnDemandPairGenerator` packages
that into the batch-oriented interface the clustering drivers and the
slave protocol consume: ``next_batch(k)`` returns up to ``k`` fresh pairs
and ``exhausted`` reports end-of-stream, mirroring a slave processor
"running out of pairs" and turning passive (§3.3).

When handed a :class:`~repro.telemetry.Telemetry` session, every batch is
counted (``pairs.produced``) and its size observed into the
``pairs.batch_size`` histogram — the distribution behind the paper's
batchsize tuning (Fig. 8).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.pairs.pair import Pair
from repro.telemetry import Telemetry

__all__ = ["OnDemandPairGenerator", "BATCH_SIZE_BUCKETS", "DRAIN_FLUSH"]

#: Histogram bounds for batch sizes: the paper sweeps batchsize over
#: roughly 10–500 (Fig. 8), and partial end-of-stream batches go small.
BATCH_SIZE_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500)

#: Pairs per telemetry flush on the :meth:`OnDemandPairGenerator.__iter__`
#: drain path — one registry update per chunk instead of one per pair.
DRAIN_FLUSH = 256


class OnDemandPairGenerator:
    """Pull-based batching wrapper around a lazy pair stream."""

    def __init__(
        self, pair_stream: Iterable[Pair], *, telemetry: Telemetry | None = None
    ) -> None:
        self._it: Iterator[Pair] = iter(pair_stream)
        self._exhausted = False
        self._produced = 0
        self._telemetry = telemetry
        #: One-pair lookahead: peeked off the stream to learn whether a full
        #: batch also drained it (see :meth:`next_batch`).
        self._pending: Pair | None = None

    @property
    def exhausted(self) -> bool:
        """True once the underlying stream has ended (a passive slave)."""
        return self._exhausted

    @property
    def produced(self) -> int:
        """Total pairs handed out so far."""
        return self._produced

    def next_batch(self, k: int) -> list[Pair]:
        """Up to ``k`` further pairs (fewer only at end of stream).

        ``exhausted`` flips on the *same* call that drains the stream —
        even when the final batch comes back full — by peeking one pair
        ahead.  A slave can therefore turn passive with the batch that
        consumed its last pair instead of needing one extra empty round
        trip (§3.3's "running out of pairs").
        """
        if k < 0:
            raise ValueError(f"batch size must be >= 0, got {k}")
        batch: list[Pair] = []
        if self._pending is not None and k > 0:
            batch.append(self._pending)
            self._pending = None
        while len(batch) < k and not self._exhausted:
            try:
                batch.append(next(self._it))
            except StopIteration:
                self._exhausted = True
        if k > 0 and not self._exhausted and self._pending is None:
            # Full batch: peek ahead so a simultaneously-drained stream is
            # reported on this batch, not the next empty one.
            try:
                self._pending = next(self._it)
            except StopIteration:
                self._exhausted = True
        self._produced += len(batch)
        # The exhausted flip above must precede this write: the telemetry
        # record for the draining batch then carries the final state.
        if self._telemetry is not None and batch:
            self._telemetry.count("pairs.produced", len(batch))
            self._telemetry.observe(
                "pairs.batch_size", len(batch), BATCH_SIZE_BUCKETS
            )
        return batch

    def __iter__(self) -> Iterator[Pair]:
        """Drain the remainder of the stream.

        Telemetry updates are batched: the ``pairs.produced`` counter and
        the ``pairs.batch_size`` histogram advance once per
        :data:`DRAIN_FLUSH` pairs (plus the partial tail), not once per
        pair — the drain path pays a registry hit per chunk, consistent
        with :meth:`next_batch` recording one observation per batch.
        """
        unflushed = 0
        try:
            while not self._exhausted:
                if self._pending is not None:
                    item = self._pending
                    self._pending = None
                else:
                    try:
                        item = next(self._it)
                    except StopIteration:
                        self._exhausted = True
                        return
                self._produced += 1
                unflushed += 1
                if unflushed >= DRAIN_FLUSH:
                    self._flush_drained(unflushed)
                    unflushed = 0
                yield item
        finally:
            if unflushed:
                self._flush_drained(unflushed)

    def _flush_drained(self, n: int) -> None:
        if self._telemetry is not None:
            self._telemetry.count("pairs.produced", n)
            self._telemetry.observe("pairs.batch_size", n, BATCH_SIZE_BUCKETS)
