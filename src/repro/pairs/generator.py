"""Paper-faithful Algorithm 1 over the DFS-array GST (Figure 3 of the paper).

This generator is a transcription of the paper's ``GeneratePairs`` /
``ProcessLeaf`` / ``ProcessInternalNode``:

1. string-depths of all nodes are available from construction;
2. nodes with string-depth ≥ ψ are sorted in decreasing string-depth
   order (stable over a post-order enumeration so that the equal-depth
   "ended-suffix" leaf child of a node is processed before the node);
3. leaves compute their lsets from the leaf labels and emit
   ``∪ lc_i × lc_j`` for ``c_i < c_j`` or ``c_i = c_j = λ``;
4. internal nodes traverse their children's lsets eliminating duplicate
   strings via the global mark array, emit cross products between
   *different children* for ``c_i ≠ c_j`` or ``c_i = c_j = λ``, and take
   per-class unions as their own lsets.

Child enumeration deliberately goes through the DFS-array sibling-walk
rules (:meth:`repro.suffix.dfs_array.DfsArrayTree.children`) so the paper's
space-efficient representation is exercised rather than bypassed.

This backend is the semantic reference; the production path is
:class:`repro.pairs.sa_generator.SaPairGenerator`, validated against this
one by the cross-backend tests.
"""

from __future__ import annotations

from typing import Iterator

from repro.sequence.alphabet import LAMBDA
from repro.pairs.lsets import Lsets, StringMarker
from repro.pairs.pair import Pair, canonical_pair
from repro.pairs.sa_generator import PairGenStats
from repro.suffix.gst import NaiveGst

__all__ = ["TreePairGenerator"]


class TreePairGenerator:
    """Generate promising pairs from the paper-faithful GST backend."""

    def __init__(self, gst: NaiveGst, psi: int) -> None:
        if psi < 1:
            raise ValueError(f"psi must be >= 1, got {psi}")
        if psi < gst.w:
            raise ValueError(
                f"psi ({psi}) below the bucket window w ({gst.w}): pairs whose "
                f"maximal common substring is shorter than w are unrecoverable "
                f"from the bucket forest (paper §3.1)"
            )
        self.gst = gst
        self.psi = psi
        self.stats = PairGenStats()

    # ------------------------------------------------------------------ #

    def pairs(self) -> Iterator[Pair]:
        """Yield canonical pairs in decreasing maximal-substring length."""
        tree = self.gst.tree
        depth = tree.string_depth
        psi = self.psi
        stats = self.stats

        # GeneratePairs steps 1-2: qualifying nodes in decreasing
        # string-depth order.  Post-order enumeration + stable sort keeps
        # equal-depth children (the ended-suffix leaf) before their parent.
        nodes = [u for u in tree.iter_postorder() if depth[u] >= psi]
        nodes.sort(key=lambda u: -int(depth[u]))

        marker = StringMarker(self.gst.collection.n_strings)
        store: dict[int, Lsets] = {}

        for u in nodes:
            stats.nodes_processed += 1
            d = int(depth[u])
            if tree.is_leaf(u):
                lsets = Lsets()
                for k, off in tree.leaf_suffixes(u):
                    lsets.add(self.gst.left_extension(k, off), k, off)
                yield from self._emit_leaf_products(lsets, d)
            else:
                lsets = Lsets()
                for child in tree.children(u):
                    child_lsets = store.pop(int(child))
                    # ProcessInternalNode step 1: duplicate elimination.
                    for c in range(5):
                        child_lsets.classes[c] = [
                            (s, off)
                            for (s, off) in child_lsets.classes[c]
                            if marker.fresh(s, u)
                        ]
                    # Step 2: products against all previous children.
                    for cj in range(5):
                        for s2, off2 in child_lsets.classes[cj]:
                            for ci in range(5):
                                if ci != cj or ci == LAMBDA:
                                    for s1, off1 in lsets.classes[ci]:
                                        yield from self._emit(d, s1, off1, s2, off2)
                    # Step 3: union per class.
                    lsets.merge(child_lsets)

            live = sum(ls.total() for ls in store.values()) + lsets.total()
            if live > stats.peak_lset_entries:
                stats.peak_lset_entries = live

            parent = int(tree.parent[u])
            if parent >= 0 and depth[parent] >= psi:
                store[u] = lsets
            # else: parent outside the ψ-forest — lsets discarded here.

    def _emit_leaf_products(self, lsets: Lsets, d: int) -> Iterator[Pair]:
        """ProcessLeaf: lc_i × lc_j for c_i < c_j, plus pairs within lλ."""
        for ci in range(5):
            for cj in range(ci + 1, 5):
                for s1, off1 in lsets.classes[ci]:
                    for s2, off2 in lsets.classes[cj]:
                        yield from self._emit(d, s1, off1, s2, off2)
        lam = lsets.classes[LAMBDA]
        for a in range(len(lam)):
            for b in range(a + 1, len(lam)):
                yield from self._emit(d, lam[a][0], lam[a][1], lam[b][0], lam[b][1])

    def _emit(self, d: int, s1: int, off1: int, s2: int, off2: int) -> Iterator[Pair]:
        self.stats.raw_pairs += 1
        pair = canonical_pair(d, s1, off1, s2, off2)
        if pair is not None:
            self.stats.pairs_generated += 1
            yield pair

    def __iter__(self) -> Iterator[Pair]:
        return self.pairs()
