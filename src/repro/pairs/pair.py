"""The promising-pair record and the paper's duplicate-discard rule.

A *promising pair* is a pair of strings with a maximal common substring of
length ≥ ψ (§3.2).  Generators emit pairs in the canonical form of the
paper: ``(s, s')`` where ``s = e_i`` is a *forward* EST and ``s'`` is
``e_j`` or its reverse complement for some ``i < j``.  A raw pair whose
smaller-EST-id member is complemented is discarded — its mirror image
``(ē_i, ē_j)``-style pair is generated elsewhere in the tree, so exactly
one of the two equivalent forms survives (the factor-2 argument in the
paper's Lemma 4).  Pairs of a string with its own reverse complement are
likewise dropped: they cannot merge clusters.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["Pair", "canonical_pair"]


class Pair(NamedTuple):
    """A promising pair with its witnessing exact match (the seed).

    ``string_a`` is always a forward string (even index) and
    ``est_a < est_b``.  The seed is the maximal common substring at whose
    GST node the pair was generated:
    ``strings[string_a][offset_a : offset_a+length] ==
    strings[string_b][offset_b : offset_b+length]``.
    The alignment phase extends this seed in both directions (Fig. 5a).
    """

    length: int
    string_a: int
    offset_a: int
    string_b: int
    offset_b: int

    @property
    def est_a(self) -> int:
        return self.string_a >> 1

    @property
    def est_b(self) -> int:
        return self.string_b >> 1

    @property
    def complemented(self) -> bool:
        """True when the pair couples EST a with the *reverse complement*
        of EST b (the two ESTs read opposite strands)."""
        return bool(self.string_b & 1)

    @property
    def key(self) -> tuple[int, int, bool]:
        """Identity of the pair irrespective of the witnessing seed."""
        return (self.est_a, self.est_b, self.complemented)


def canonical_pair(
    length: int, string_a: int, offset_a: int, string_b: int, offset_b: int
) -> Pair | None:
    """Apply the paper's discard rules to a raw generated pair.

    Returns the canonical :class:`Pair`, or ``None`` when the pair must be
    discarded (same EST on both sides, or the smaller-EST-id string is in
    complemented form — the mirror event is generated at another node).
    """
    est_a, est_b = string_a >> 1, string_b >> 1
    if est_a == est_b:
        return None
    if est_a > est_b:
        string_a, string_b = string_b, string_a
        offset_a, offset_b = offset_b, offset_a
    if string_a & 1:
        return None
    return Pair(length, string_a, offset_a, string_b, offset_b)
