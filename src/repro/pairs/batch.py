"""Vectorised promising-pair generation: Algorithm 1 as depth-batched
array sweeps over flat lset arenas.

:class:`~repro.pairs.sa_generator.SaPairGenerator` walks the LCP-interval
forest one node at a time in pure Python — per node it interleaves child
slots, deduplicates strings through a mark array, and emits cartesian
products entry by entry.  That traversal, not alignment, is the hot path
on realistic inputs (tens of thousands of nodes per ten thousand pairs).
This module re-expresses the identical computation as numpy sweeps, one
per *string depth*:

- all nodes of equal depth are independent (children are strictly deeper,
  so their lsets are already stored), hence one batch;
- lsets live in a single flat **arena**: one int32 array of suffix-array
  ranks, each stored node owning a contiguous class-sorted segment
  described by a start offset and five per-class counts (CSR over the
  lA..lλ classes of §3.2) — ``list[list[tuple]]`` becomes three small
  arrays;
- duplicate-string elimination is a boolean mark array computed per batch
  from the first occurrence of every (node, string) key — the vectorised
  form of the paper's global mark array;
- cartesian products between compatible classes of *different child
  slots* become ``repeat``/``tile``-style block constructions, and the
  discard rules of Lemma 4 (same EST, complemented smaller id) are
  boolean masks over whole blocks;
- surviving pairs are materialised chunk-by-chunk (``block_size`` at a
  time), so the stream is still a lazy generator with a suspended frame —
  :class:`~repro.pairs.ondemand.OnDemandPairGenerator` semantics are
  unchanged.

The engine is a pure performance layer: for any input it yields the exact
pair sequence of the scalar generator — same multiset, same order within
and across depths — with :class:`SaPairGenerator` kept as the correctness
oracle (tests/test_vector_pairs.py, benchmarks/perf_gate.py).
"""

from __future__ import annotations

from itertools import repeat
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.pairs.lsets import N_CLASSES
from repro.pairs.pair import Pair
from repro.pairs.sa_generator import (
    REITERATION_ERROR,
    PairGenStats,
    SaPairGenerator,
)
from repro.sequence.alphabet import LAMBDA
from repro.suffix.gst import SuffixArrayGst
from repro.suffix.interval_tree import FlatForest
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # circular at runtime: core.config -> align -> pairs
    from repro.core.config import ClusteringConfig

__all__ = [
    "VectorPairGenerator",
    "make_pair_generator",
    "PAIR_BLOCK_SIZE",
    "PAIR_BLOCK_BUCKETS",
]

#: Pairs materialised per emitted chunk (one ``pairs.block_size`` sample).
PAIR_BLOCK_SIZE = 4096

#: Histogram bounds for emitted block sizes.
PAIR_BLOCK_BUCKETS: tuple[float, ...] = (16, 64, 256, 1024, 4096, 16384)

#: _ALLOWED[ci, cj] — the class-compatibility rule of ProcessInternalNode:
#: classes pair when their left-extension characters differ, or both are λ.
_ALLOWED = (
    (np.arange(N_CLASSES)[:, None] != np.arange(N_CLASSES)[None, :])
    | (np.arange(N_CLASSES)[:, None] == LAMBDA)
).astype(np.int64)

_ZERO = np.zeros(1, dtype=np.int64)


def _ragged_ranges(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s + l)`` per (start, length) pair.

    The standard cumsum construction; zero-length segments contribute
    nothing.  Both inputs must be int64 arrays of equal size.
    """
    total = int(lens.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    nz = lens > 0
    if not nz.all():
        starts, lens = starts[nz], lens[nz]
    ends = np.cumsum(lens)
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if lens.size > 1:
        out[ends[:-1]] = starts[1:] - starts[:-1] - lens[:-1] + 1
    return np.cumsum(out)


class VectorPairGenerator:
    """Drop-in vectorised replacement for :class:`SaPairGenerator`.

    Same constructor contract (``gst``, ``psi``, optional bucket
    ``ranges``), same single-use ``pairs()`` stream, same
    :class:`PairGenStats` counters — only the execution strategy differs.

    Parameters
    ----------
    block_size:
        Maximum pairs materialised per yielded chunk; bounds the latency
        before the first pair of a depth batch reaches the consumer.
    telemetry:
        Optional session: ``pairs.nodes`` and ``pairs.raw`` counters are
        flushed when the stream finishes (matching the scalar engine) and
        every emitted chunk is observed into the ``pairs.block_size``
        histogram.
    forests:
        Pre-built :class:`FlatForest` list to use instead of rebuilding
        from ``gst.lcp`` — the shared-memory path, where slaves attach to
        forests the master packed once.  Must correspond to the non-empty
        entries of ``ranges`` in order; ``min_depth`` must equal ``psi``.
    """

    def __init__(
        self,
        gst: SuffixArrayGst,
        psi: int,
        ranges: list[tuple[int, int]] | None = None,
        *,
        block_size: int = PAIR_BLOCK_SIZE,
        telemetry: Telemetry | None = None,
        forests: list[FlatForest] | None = None,
    ) -> None:
        if psi < 1:
            raise ValueError(f"psi must be >= 1, got {psi}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.gst = gst
        self.psi = psi
        self.ranges = ranges
        self.block_size = block_size
        self.stats = PairGenStats()
        self._telemetry = telemetry
        self._consumed = False
        self._forests: list[FlatForest] = []
        if forests is not None:
            for f in forests:
                if f.min_depth != psi:
                    raise ValueError(
                        f"injected forest has min_depth={f.min_depth}, psi={psi}"
                    )
            self._forests = list(forests)
        elif ranges is None:
            self._forests.append(gst.flat_forest(min_depth=psi))
        else:
            for lo, hi in ranges:
                if hi > lo:
                    self._forests.append(gst.flat_forest(min_depth=psi, lo=lo, hi=hi))

    # ------------------------------------------------------------------ #

    def pairs(self) -> Iterator[Pair]:
        """Canonical pairs in decreasing maximal-substring length.

        Single-use, like the scalar engine: the arena segments are
        consumed as parents absorb their children, so a second call
        raises instead of silently corrupting ``stats``.
        """
        if self._consumed:
            raise RuntimeError(REITERATION_ERROR)
        self._consumed = True
        return self._generate()

    def __iter__(self) -> Iterator[Pair]:
        return self.pairs()

    # ------------------------------------------------------------------ #

    def _generate(self) -> Iterator[Pair]:
        stats = self.stats
        tel = self._telemetry
        try:
            yield from self._sweep()
        finally:
            if tel is not None:
                tel.count("pairs.nodes", stats.nodes_processed)
                tel.count("pairs.raw", stats.raw_pairs)

    def _sweep(self) -> Iterator[Pair]:
        gst = self.gst
        stats = self.stats
        tel = self._telemetry
        forests = self._forests
        n_nodes = sum(f.n_nodes for f in forests)
        if n_nodes == 0:
            return
        n_strings = gst.collection.n_strings
        cls_codes = np.arange(N_CLASSES, dtype=np.int64)

        # Per-rank suffix facts, gathered once (rank -> string/offset/char).
        sa = gst.sa_struct.sa
        rank_string = gst.pos_string[sa].astype(np.int64)
        rank_offset = gst.pos_offset[sa].astype(np.int64)
        rank_leftchar = gst.left_char[sa].astype(np.int64)

        # ---- global node + slot tables over all owned forests ----------
        # Node ids are forest-major concatenation order; slots are the
        # scalar engine's child/leaf interleave, one row per slot.
        depth = np.concatenate([f.depth for f in forests]).astype(np.int64)
        parent = np.empty(n_nodes, dtype=np.int64)
        owner_parts, lb_parts, leaf_parts, ref_parts = [], [], [], []
        off = 0
        for f in forests:
            n = f.n_nodes
            parent[off : off + n] = np.where(f.parent >= 0, f.parent + off, -1)
            cf, co = f.children_flat, f.children_offsets
            lf, lo_ = f.leaves_flat, f.leaves_offsets
            owner_parts.append(np.repeat(np.arange(n), np.diff(co)) + off)
            owner_parts.append(np.repeat(np.arange(n), np.diff(lo_)) + off)
            lb_parts.append(f.lb[cf])
            lb_parts.append(lf)
            leaf_parts.append(np.zeros(cf.size, dtype=bool))
            leaf_parts.append(np.ones(lf.size, dtype=bool))
            ref_parts.append(cf + off)
            ref_parts.append(lf)
            off += n
        slot_owner = np.concatenate(owner_parts)
        slot_lb = np.concatenate(lb_parts).astype(np.int64)
        slot_is_leaf = np.concatenate(leaf_parts)
        slot_ref = np.concatenate(ref_parts).astype(np.int64)

        # Processing order: decreasing depth, stable on (forest, node) —
        # bit-identical to the scalar engine's sorted (-depth, f, nid).
        proc = np.argsort(-depth, kind="stable")
        pos_of = np.empty(n_nodes, dtype=np.int64)
        pos_of[proc] = np.arange(n_nodes)

        slot_sort = np.lexsort((slot_lb, pos_of[slot_owner]))
        slot_owner_pos = pos_of[slot_owner][slot_sort]
        slot_is_leaf = slot_is_leaf[slot_sort]
        slot_ref = slot_ref[slot_sort]

        # One batch per distinct depth: nodes of equal depth are contiguous
        # in processing order and mutually independent.
        depth_in_order = depth[proc]
        cuts = np.flatnonzero(np.diff(depth_in_order)) + 1
        batch_starts = np.concatenate((_ZERO, cuts))
        batch_ends = np.concatenate((cuts, np.array([n_nodes])))
        slot_bounds = np.searchsorted(
            slot_owner_pos, np.concatenate((batch_starts, np.array([n_nodes])))
        )
        is_root_pos = parent[proc] < 0

        # ---- the flat lset arena ----------------------------------------
        # Stored node segments: arena[seg_start[v] : seg_start[v] +
        # seg_total[v]] holds node v's surviving entries sorted by class,
        # with per-class counts in seg_counts[v].
        arena = np.empty(4096, dtype=np.int32)
        arena_n = 0
        seg_start = np.zeros(n_nodes, dtype=np.int64)
        seg_counts = np.zeros((n_nodes, N_CLASSES), dtype=np.int64)
        seg_total = np.zeros(n_nodes, dtype=np.int64)
        live = 0

        for bi in range(batch_starts.size):
            p0, p1 = int(batch_starts[bi]), int(batch_ends[bi])
            s0, s1 = int(slot_bounds[bi]), int(slot_bounds[bi + 1])
            d = int(depth_in_order[p0])
            n_batch = p1 - p0
            b_nodes = proc[p0:p1]
            b_is_leaf = slot_is_leaf[s0:s1]
            b_ref = slot_ref[s0:s1]
            b_owner_local = slot_owner_pos[s0:s1] - p0
            n_slots = s1 - s0

            # -- gather every child/leaf entry of the batch, slot-major --
            slot_len = np.ones(n_slots, dtype=np.int64)
            child = ~b_is_leaf
            slot_len[child] = seg_total[b_ref[child]]
            n_entries = int(slot_len.sum())
            slot_off = np.concatenate((_ZERO, np.cumsum(slot_len)[:-1]))
            ranks = np.empty(n_entries, dtype=np.int64)
            cls = np.empty(n_entries, dtype=np.int64)
            leaf_rank = b_ref[b_is_leaf]
            leaf_pos = slot_off[b_is_leaf]
            ranks[leaf_pos] = leaf_rank
            cls[leaf_pos] = rank_leftchar[leaf_rank]
            if child.any():
                clen = slot_len[child]
                cref = b_ref[child]
                cpos = _ragged_ranges(slot_off[child], clen)
                ranks[cpos] = arena[_ragged_ranges(seg_start[cref], clen)]
                # Stored segments are class-sorted; expand their per-class
                # counts back into entry classes.
                cls[cpos] = np.repeat(
                    np.tile(cls_codes, cref.size), seg_counts[cref].ravel()
                )
            ent_slot = np.repeat(np.arange(n_slots), slot_len)
            ent_node = b_owner_local[ent_slot]
            ent_is_leaf = b_is_leaf[ent_slot]
            strs = rank_string[ranks]

            # -- duplicate-string elimination (the §3.2 mark array) ------
            # keep marks the first occurrence of every (node, string) key
            # in slot order; later occurrences are dropped exactly as the
            # scalar mark array drops them.
            _, first = np.unique(ent_node * n_strings + strs, return_index=True)
            keep = np.zeros(n_entries, dtype=bool)
            keep[first] = True

            kk_rank = ranks[keep]
            kk_cls = cls[keep]
            kk_node = ent_node[keep]
            kk_slot = ent_slot[keep]
            kk_str = strs[keep]
            m = kk_rank.size

            # -- lset space accounting (scalar-exact peak tracking) ------
            # A fresh leaf entry is born (+1); a duplicate arriving from a
            # child dies (-1); a root's whole lset dies after the node.
            fresh_leaf = np.bincount(ent_node[keep & ent_is_leaf], minlength=n_batch)
            dup_child = np.bincount(ent_node[~keep & ~ent_is_leaf], minlength=n_batch)
            kept_per_node = np.bincount(kk_node, minlength=n_batch)
            death = np.where(is_root_pos[p0:p1], kept_per_node, 0)
            live_seq = (
                live
                + np.cumsum(fresh_leaf - dup_child)
                - np.concatenate((_ZERO, np.cumsum(death)[:-1]))
            )
            peak = int(live_seq.max())
            if peak > stats.peak_lset_entries:
                stats.peak_lset_entries = peak
            live = int(live_seq[-1]) - int(death[-1])
            stats.nodes_processed += n_batch
            stats._live_entries = live

            # -- cartesian products against earlier slots ----------------
            # Per (node, class) CSR over surviving entries; an entry pairs
            # with the class-compatible entries of strictly earlier slots
            # of its node, i.e. a prefix of its (node, class) group.
            gkey = kk_node * N_CLASSES + kk_cls
            csr = np.argsort(gkey, kind="stable")
            gcounts = np.bincount(gkey, minlength=n_batch * N_CLASSES)
            goff = np.concatenate((_ZERO, np.cumsum(gcounts)))
            # npart[i, c]: class-c entries of entry i's node from strictly
            # earlier slots — an exclusive per-class prefix sum evaluated
            # at each entry's slot start, re-based at its node start
            # (entries are slot-major, so the difference counts exactly
            # the same-node earlier-slot entries).
            prefix = np.zeros((m + 1, N_CLASSES), dtype=np.int64)
            prefix[np.arange(1, m + 1), kk_cls] = 1
            np.cumsum(prefix, axis=0, out=prefix)
            idx = np.arange(m, dtype=np.int64)
            slot_first = np.where(np.diff(kk_slot, prepend=-1) != 0, idx, 0)
            np.maximum.accumulate(slot_first, out=slot_first)
            node_first = np.where(np.diff(kk_node, prepend=-1) != 0, idx, 0)
            np.maximum.accumulate(node_first, out=node_first)
            npart = prefix[slot_first] - prefix[node_first]
            qgid = kk_node[:, None] * N_CLASSES + cls_codes[None, :]
            lens = npart * _ALLOWED.T[kk_cls]
            raw = int(lens.sum())
            stats.raw_pairs += raw

            if raw:
                block_lens = lens.ravel()
                i_side = np.repeat(np.arange(m), lens.sum(axis=1))
                within = _ragged_ranges(
                    np.zeros(block_lens.size, dtype=np.int64), block_lens
                )
                j_side = csr[np.repeat(goff[qgid.ravel()], block_lens) + within]

                # -- Lemma 4 discard rules as block masks ----------------
                s_old = kk_str[j_side]
                s_new = kk_str[i_side]
                valid = (s_old >> 1) != (s_new >> 1)
                swap = (s_old >> 1) > (s_new >> 1)
                str_a = np.where(swap, s_new, s_old)
                valid &= (str_a & 1) == 0
                if valid.any():
                    str_b = np.where(swap, s_old, s_new)
                    o_old = rank_offset[kk_rank[j_side]]
                    o_new = rank_offset[kk_rank[i_side]]
                    off_a = np.where(swap, o_new, o_old)
                    off_b = np.where(swap, o_old, o_new)
                    va = str_a[valid].tolist()
                    vb = str_b[valid].tolist()
                    oa = off_a[valid].tolist()
                    ob = off_b[valid].tolist()
                    stats.pairs_generated += len(va)
                    bs = self.block_size
                    for c0 in range(0, len(va), bs):
                        block = list(
                            map(
                                Pair,
                                repeat(d),
                                va[c0 : c0 + bs],
                                oa[c0 : c0 + bs],
                                vb[c0 : c0 + bs],
                                ob[c0 : c0 + bs],
                            )
                        )
                        if tel is not None:
                            tel.observe(
                                "pairs.block_size", len(block), PAIR_BLOCK_BUCKETS
                            )
                        yield from block

            # -- store the surviving lsets for the parents ---------------
            seg = kk_rank[csr].astype(np.int32)
            need = arena_n + seg.size
            if need > arena.size:
                grown = np.empty(max(need, 2 * arena.size), dtype=np.int32)
                grown[:arena_n] = arena[:arena_n]
                arena = grown
            arena[arena_n:need] = seg
            seg_start[b_nodes] = arena_n + goff[np.arange(n_batch) * N_CLASSES]
            seg_counts[b_nodes] = gcounts.reshape(n_batch, N_CLASSES)
            seg_total[b_nodes] = kept_per_node
            arena_n = need


def make_pair_generator(
    gst: SuffixArrayGst,
    config: "ClusteringConfig",
    *,
    ranges: list[tuple[int, int]] | None = None,
    telemetry: Telemetry | None = None,
    forests: list[FlatForest] | None = None,
) -> SaPairGenerator | VectorPairGenerator:
    """Engine selection for suffix-array pair generation.

    Mirrors :func:`repro.align.batch.make_aligner`: ``config.pair_engine``
    picks the scalar reference engine or the vectorised one; both yield
    identical pair streams.  ``forests`` (vector engine only) injects
    pre-built flat forests — e.g. shared-memory views — in place of a
    local rebuild.
    """
    if config.pair_engine == "vector":
        return VectorPairGenerator(
            gst, psi=config.psi, ranges=ranges, telemetry=telemetry, forests=forests
        )
    return SaPairGenerator(gst, psi=config.psi, ranges=ranges, telemetry=telemetry)
