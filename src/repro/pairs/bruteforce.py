"""Brute-force maximal-common-substring enumeration.

The correctness properties of the pair generators (Lemmas 1–3 of the
paper) are stated in terms of maximal common substrings:

- *soundness* — a pair is generated at a node only if the node's path
  label is a maximal common substring of the two strings;
- *completeness* — a pair with a maximal common substring of length ≥ ψ is
  generated at least once;
- *multiplicity* — a pair is generated at most as many times as its number
  of *distinct* maximal common substrings (Corollary 2).

This module computes ground truth for all three by quadratic dynamic
programming, vectorised with numpy row sweeps.  Only for tests and small
demonstration inputs.
"""

from __future__ import annotations

import numpy as np

from repro.sequence.collection import EstCollection

__all__ = [
    "maximal_common_substrings",
    "distinct_maximal_substrings",
    "bruteforce_promising_pairs",
]


def _extension_table(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``ext[i, j]`` = length of the longest common extension of ``x[i:]``
    and ``y[j:]`` (i.e. the maximal run of equal characters starting
    there).  Computed bottom-up one numpy row at a time."""
    lx, ly = len(x), len(y)
    ext = np.zeros((lx + 1, ly + 1), dtype=np.int64)
    for i in range(lx - 1, -1, -1):
        ext[i, :-1] = np.where(x[i] == y, ext[i + 1, 1:] + 1, 0)
    return ext


def maximal_common_substrings(
    x: np.ndarray, y: np.ndarray, min_len: int
) -> list[tuple[int, int, int]]:
    """All maximal common substrings of length ≥ ``min_len``.

    Returns ``(i, j, l)`` triples: ``x[i:i+l] == y[j:j+l]``, not
    left-extensible (``i==0`` or ``j==0`` or ``x[i-1] != y[j-1]``) and not
    right-extensible (the run of equal characters ends at ``l``).
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if min_len < 1:
        raise ValueError(f"min_len must be >= 1, got {min_len}")
    if len(x) == 0 or len(y) == 0:
        return []
    ext = _extension_table(x, y)
    left_max = np.ones((len(x), len(y)), dtype=bool)
    left_max[1:, 1:] = x[:-1, None] != y[None, :-1]
    hits = np.argwhere((ext[:-1, :-1] >= min_len) & left_max)
    return [(int(i), int(j), int(ext[i, j])) for i, j in hits]


def distinct_maximal_substrings(x: np.ndarray, y: np.ndarray, min_len: int) -> set[bytes]:
    """The set of *distinct* maximal common substrings (as byte strings) —
    the multiplicity bound of Corollary 2."""
    x = np.asarray(x)
    return {
        np.asarray(x[i : i + l], dtype=np.uint8).tobytes()
        for i, _j, l in maximal_common_substrings(x, y, min_len)
    }


def bruteforce_promising_pairs(
    collection: EstCollection, psi: int
) -> set[tuple[int, int, bool]]:
    """Ground-truth promising-pair set.

    ``(i, j, complemented)`` with ``i < j`` is included iff forward EST i
    and (forward / reverse-complemented) EST j share a common substring of
    length ≥ ψ — by Lemmas 1–3 exactly the canonical pairs any correct
    generator must produce at least once.
    """
    truth: set[tuple[int, int, bool]] = set()
    n = collection.n_ests
    for i in range(n):
        x = collection.string(2 * i)
        for j in range(i + 1, n):
            for orient in (0, 1):
                y = collection.string(2 * j + orient)
                if maximal_common_substrings(x, y, psi):
                    truth.add((i, j, bool(orient)))
    return truth
