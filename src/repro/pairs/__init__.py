"""Promising-pair generation (the paper's Algorithm 1) over both GST
backends, with the canonical pair record, duplicate-discard rules,
on-demand batching, and a brute-force reference for property testing."""

from repro.pairs.batch import VectorPairGenerator, make_pair_generator
from repro.pairs.bruteforce import bruteforce_promising_pairs, maximal_common_substrings
from repro.pairs.generator import TreePairGenerator
from repro.pairs.lsets import Lsets, StringMarker
from repro.pairs.ondemand import OnDemandPairGenerator
from repro.pairs.pair import Pair, canonical_pair
from repro.pairs.sa_generator import PairGenStats, SaPairGenerator

__all__ = [
    "bruteforce_promising_pairs",
    "maximal_common_substrings",
    "TreePairGenerator",
    "Lsets",
    "StringMarker",
    "OnDemandPairGenerator",
    "Pair",
    "canonical_pair",
    "PairGenStats",
    "SaPairGenerator",
    "VectorPairGenerator",
    "make_pair_generator",
]
