"""lsets: the per-node leaf-set partitions of Algorithm 1 (§3.2).

``leaf-set(v)`` is the set of strings with a suffix in ``subtree(v)``; it
is partitioned into the five classes lA, lC, lG, lT, lλ according to the
left-extension character of (one of) the witnessing suffixes.  The class
index is the nucleotide code, with λ = 4 (:data:`repro.sequence.alphabet.LAMBDA`).

Two cooperating pieces live here:

- :class:`Lsets` — one node's five lists of entries, each entry carrying
  the witnessing suffix ``(string, offset)`` so downstream alignment can
  seed from it.  Merging is list concatenation; the production generator
  bounds total space by giving every suffix exactly one entry for its whole
  life (the paper's O(N) lset-space argument).
- :class:`StringMarker` — the paper's "global array of size 2n indexed by
  string identifiers": duplicate occurrences of a string across the lsets
  of a node's children are eliminated by marking the array entry with the
  id of the node being processed, in time proportional to the entries
  visited.
"""

from __future__ import annotations

import numpy as np

from repro.sequence.alphabet import LAMBDA

__all__ = ["Lsets", "StringMarker", "N_CLASSES"]

#: lA, lC, lG, lT, lλ.
N_CLASSES = LAMBDA + 1


class Lsets:
    """The five left-extension classes of one node (or one child slot)."""

    __slots__ = ("classes",)

    def __init__(self) -> None:
        self.classes: list[list[tuple[int, int]]] = [[] for _ in range(N_CLASSES)]

    def add(self, char: int, string: int, offset: int) -> None:
        self.classes[char].append((string, offset))

    def merge(self, other: "Lsets") -> None:
        """Union per class (Step 3 of ProcessInternalNode)."""
        for c in range(N_CLASSES):
            self.classes[c].extend(other.classes[c])

    def total(self) -> int:
        return sum(len(cls) for cls in self.classes)

    def strings(self) -> set[int]:
        return {s for cls in self.classes for (s, _off) in cls}

    def __iter__(self):
        """Yield ``(char, string, offset)`` over all classes in order."""
        for c in range(N_CLASSES):
            for s, off in self.classes[c]:
                yield c, s, off


class StringMarker:
    """The global 2n-sized mark array used for duplicate elimination.

    ``fresh(string, node)`` returns True the first time ``string`` is seen
    while processing ``node`` and False afterwards; switching nodes resets
    implicitly because marks store the node id.
    """

    __slots__ = ("marks",)

    def __init__(self, n_strings: int) -> None:
        self.marks = np.full(n_strings, -1, dtype=np.int64)

    def fresh(self, string: int, node: int) -> bool:
        if self.marks[string] == node:
            return False
        self.marks[string] = node
        return True


def allowed_chars(c1: int, c2: int) -> bool:
    """The internal-node class-compatibility rule: classes pair when their
    left-extension characters differ, or both are λ (whole-string
    suffixes, which cannot be left-extended at all)."""
    return c1 != c2 or c1 == LAMBDA
