"""Promising-pair generation over the suffix-array engine.

This is Algorithm 1 of the paper executed over LCP-interval forests instead
of explicit tree nodes.  The translation is exact:

- an LCP interval of depth d *is* the GST node with string-depth d;
- a suffix-array rank directly attached to a node (not covered by a child
  interval) *is* a leaf child of that node;
- the paper's multi-string leaves (identical suffixes of different strings)
  appear here as a node at depth = suffix length whose children are
  singleton ranks distinguished by their unique sentinels — the paper's
  separate ProcessLeaf rule (c_i < c_j or both λ) and the internal-node
  rule (different children, c_i ≠ c_j or both λ) coincide on this shape,
  so a single uniform rule suffices (see tests/test_cross_backend.py for
  the machine-checked equivalence with the paper-faithful backend).

Nodes are processed in decreasing string-depth order; at each node the
children's lsets are traversed to drop duplicate string occurrences (the
global mark array of §3.2), cartesian products between *compatible classes
of different child slots* are emitted, and the surviving entries become the
node's lsets by concatenation.  Every suffix therefore owns exactly one
lset entry for its entire life, keeping lset space linear in the input —
the paper's central space claim.

The generator is lazy (a true Python generator), which is what
"on-demand" means operationally: batches are pulled by the driver or the
slave protocol, and generation state is simply the suspended frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.sequence.alphabet import LAMBDA
from repro.pairs.lsets import N_CLASSES
from repro.pairs.pair import Pair, canonical_pair
from repro.suffix.gst import SuffixArrayGst
from repro.suffix.interval_tree import LcpForest
from repro.telemetry import Telemetry

__all__ = ["SaPairGenerator", "PairGenStats"]

REITERATION_ERROR = (
    "pairs() was already iterated: generation consumes the lset store and "
    "accumulates into stats, so a second pass would silently corrupt the "
    "counters — build a fresh generator instead"
)


@dataclass
class PairGenStats:
    """Counters reported by a generator (feeds Fig. 7's 'pairs generated')."""

    nodes_processed: int = 0
    raw_pairs: int = 0  # cross-product events before the discard rules
    pairs_generated: int = 0  # canonical pairs actually emitted
    peak_lset_entries: int = 0  # live lset entries high-water mark (O(N) claim)
    _live_entries: int = field(default=0, repr=False)


class SaPairGenerator:
    """Generate promising pairs for (a subset of) the suffix array.

    Parameters
    ----------
    gst:
        The built :class:`~repro.suffix.gst.SuffixArrayGst`.
    psi:
        Threshold ψ: only maximal common substrings of length ≥ ψ produce
        pairs.
    ranges:
        Optional list of suffix-array rank ranges ``(lo, hi)`` — the
        buckets owned by one processor.  ``None`` means the whole array
        (the sequential driver).  Nodes across all owned ranges are merged
        into a single decreasing-depth order, matching the paper's
        slave-local sort (§3.2 closing paragraph: the greedy order is
        maintained per processor, not globally).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` session: the node and
        raw-product counts are flushed into the ``pairs.nodes`` /
        ``pairs.raw`` counters when the stream finishes (or is closed).
    """

    def __init__(
        self,
        gst: SuffixArrayGst,
        psi: int,
        ranges: list[tuple[int, int]] | None = None,
        *,
        telemetry: Telemetry | None = None,
    ) -> None:
        if psi < 1:
            raise ValueError(f"psi must be >= 1, got {psi}")
        self.gst = gst
        self.psi = psi
        self.ranges = ranges
        self.stats = PairGenStats()
        self._telemetry = telemetry
        self._consumed = False
        self._forests: list[LcpForest] = []
        if ranges is None:
            self._forests.append(gst.forest(min_depth=psi))
        else:
            for lo, hi in ranges:
                if hi > lo:
                    self._forests.append(gst.forest(min_depth=psi, lo=lo, hi=hi))

    # ------------------------------------------------------------------ #

    def pairs(self) -> Iterator[Pair]:
        """Canonical pairs in decreasing maximal-substring length.

        Single-use: the stream consumes the lset store, so re-iterating
        would silently double-count ``stats`` — a second call raises.
        """
        if self._consumed:
            raise RuntimeError(REITERATION_ERROR)
        self._consumed = True
        return self._generate()

    def _generate(self) -> Iterator[Pair]:
        gst = self.gst
        # Plain-list views: element access on Python lists is several times
        # faster than numpy scalar indexing, and this loop is pure Python.
        sa = gst.sa_struct.sa.tolist()
        pos_string = gst.pos_string.tolist()
        pos_offset = gst.pos_offset.tolist()
        left_char = gst.left_char.tolist()
        stats = self.stats

        # Global processing order: all nodes of all owned forests by
        # decreasing depth (children always strictly deeper than parents,
        # so bottom-up lset flow is respected within each forest).
        order: list[tuple[int, int, int]] = []  # (-depth, forest_idx, node)
        for f_idx, forest in enumerate(self._forests):
            depths = forest.depth
            for nid in range(forest.n_nodes):
                order.append((-int(depths[nid]), f_idx, nid))
        order.sort()

        # marks[string] = uid of the node currently deduplicating it.
        marks = [-1] * gst.collection.n_strings
        # Stored lsets of processed nodes awaiting their parent:
        # (forest_idx, node) -> list of N_CLASSES entry lists (entries are
        # suffix-array ranks).
        store: dict[tuple[int, int], list[list[int]]] = {}

        try:
            yield from self._sweep(order, sa, pos_string, pos_offset, left_char, marks, store)
        finally:
            if self._telemetry is not None:
                self._telemetry.count("pairs.nodes", stats.nodes_processed)
                self._telemetry.count("pairs.raw", stats.raw_pairs)

    def _sweep(
        self,
        order: list[tuple[int, int, int]],
        sa: list[int],
        pos_string: list[int],
        pos_offset: list[int],
        left_char: list[int],
        marks: list[int],
        store: dict[tuple[int, int], list[list[int]]],
    ) -> Iterator[Pair]:
        stats = self.stats
        for uid, (neg_depth, f_idx, nid) in enumerate(order):
            depth = -neg_depth
            forest = self._forests[f_idx]
            stats.nodes_processed += 1

            # Child slots in left-to-right (lb) order: child nodes
            # interleaved with directly-attached leaf ranks.
            slots: list[list[list[int]] | int] = []
            kids = forest.children[nid]
            leaves = forest.leaves[nid]
            ki = li = 0
            while ki < len(kids) or li < len(leaves):
                if li >= len(leaves) or (
                    ki < len(kids) and forest.lb[kids[ki]] < leaves[li]
                ):
                    slots.append(store.pop((f_idx, kids[ki])))
                    ki += 1
                else:
                    slots.append(leaves[li])
                    li += 1

            accum: list[list[int]] = [[] for _ in range(N_CLASSES)]
            for slot in slots:
                if isinstance(slot, int):
                    # A leaf child: one suffix, its own child slot.
                    p = sa[slot]
                    kept: list[list[int]] = [[] for _ in range(N_CLASSES)]
                    s = pos_string[p]
                    if marks[s] != uid:
                        marks[s] = uid
                        cj = left_char[p]
                        for ci in range(N_CLASSES):
                            if ci != cj or ci == LAMBDA:
                                for r1 in accum[ci]:
                                    stats.raw_pairs += 1
                                    p1 = sa[r1]
                                    pair = canonical_pair(
                                        depth,
                                        pos_string[p1],
                                        pos_offset[p1],
                                        s,
                                        pos_offset[p],
                                    )
                                    if pair is not None:
                                        stats.pairs_generated += 1
                                        yield pair
                        kept[cj].append(slot)
                        stats._live_entries += 1
                else:
                    kept = [[] for _ in range(N_CLASSES)]
                    for cj in range(N_CLASSES):
                        for r in slot[cj]:
                            p = sa[r]
                            s = pos_string[p]
                            if marks[s] == uid:
                                stats._live_entries -= 1
                                continue
                            marks[s] = uid
                            for ci in range(N_CLASSES):
                                if ci != cj or ci == LAMBDA:
                                    for r1 in accum[ci]:
                                        stats.raw_pairs += 1
                                        p1 = sa[r1]
                                        pair = canonical_pair(
                                            depth,
                                            pos_string[p1],
                                            pos_offset[p1],
                                            s,
                                            pos_offset[p],
                                        )
                                        if pair is not None:
                                            stats.pairs_generated += 1
                                            yield pair
                            kept[cj].append(r)
                # Entries of one slot never pair with each other (they share
                # a deeper common prefix and were handled in the subtree),
                # so the slot merges into the accumulator only afterwards.
                for c in range(N_CLASSES):
                    accum[c].extend(kept[c])

            if stats._live_entries > stats.peak_lset_entries:
                stats.peak_lset_entries = stats._live_entries

            if forest.parent[nid] >= 0:
                store[(f_idx, nid)] = accum
            else:
                # Forest root: the parent's depth is below ψ, lsets die here.
                stats._live_entries -= sum(len(c) for c in accum)

    def __iter__(self) -> Iterator[Pair]:
        return self.pairs()
