"""The master's CLUSTERS state: union–find over ESTs plus a merge log.

"In our approach, each EST is initially considered a cluster by itself.
Two clusters are merged when an EST from each cluster can be identified
that show strong overlap using the pairwise alignment algorithm" (§2).
The manager also answers the pair-selection question — is this pair
already co-clustered? — which is the mechanism that makes most generated
pairs never need alignment (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.scoring import AlignmentResult
from repro.cluster.union_find import UnionFind
from repro.pairs.pair import Pair

__all__ = ["MergeRecord", "ClusterManager"]


@dataclass(frozen=True)
class MergeRecord:
    """One accepted merge: the witnessing pair and its alignment."""

    pair: Pair
    result: AlignmentResult


class ClusterManager:
    """Cluster bookkeeping for one clustering run."""

    def __init__(self, n_ests: int) -> None:
        self._uf = UnionFind(n_ests)
        self.merges: list[MergeRecord] = []

    @property
    def n_ests(self) -> int:
        return self._uf.n_elements

    @property
    def n_clusters(self) -> int:
        return self._uf.n_components

    def same_cluster(self, est_a: int, est_b: int) -> bool:
        """The master's pair-selection test: a pair whose ESTs already
        share a cluster is dropped without alignment."""
        return self._uf.same(est_a, est_b)

    def same_cluster_batch(self, pairs: list[Pair]) -> list[bool]:
        """Batched pair-selection test: one flag per pair, True where the
        pair's ESTs already share a cluster.  A single ``find_many`` over
        the flattened EST ids replaces the per-pair Python loop."""
        flat: list[int] = []
        for pair in pairs:
            flat.append(pair.est_a)
            flat.append(pair.est_b)
        roots = self._uf.find_many(flat)
        return [roots[i] == roots[i + 1] for i in range(0, len(roots), 2)]

    def seed_union(self, est_a: int, est_b: int) -> bool:
        """Merge two clusters without a witnessing alignment — used to
        restore a previously-computed partition (incremental clustering)."""
        return self._uf.union(est_a, est_b)

    def merge(self, pair: Pair, result: AlignmentResult) -> bool:
        """Record an accepted alignment and merge the two clusters."""
        merged = self._uf.union(pair.est_a, pair.est_b)
        if merged:
            self.merges.append(MergeRecord(pair, result))
        return merged

    def clusters(self) -> list[list[int]]:
        return self._uf.components()

    def labels(self) -> list[int]:
        """Cluster label per EST (the representative id)."""
        return [self._uf.find(i) for i in range(self._uf.n_elements)]

    @property
    def find_count(self) -> int:
        return self._uf.finds

    @property
    def union_count(self) -> int:
        return self._uf.unions
