"""Union–find (disjoint sets) with union by rank and path compression.

The master processor maintains the EST clusters in exactly this structure
(§3.3, citing Tarjan): ``find`` locates an EST's cluster and ``union``
merges two clusters, with amortised cost given by the inverse Ackermann
function — constant for all practical purposes.  Operation counters are
kept because the master's bookkeeping load is part of the paper's
"single master is not a bottleneck" argument.
"""

from __future__ import annotations

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint sets over the integers ``0 .. n-1``."""

    __slots__ = ("_parent", "_rank", "n_elements", "n_components", "finds", "unions")

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"need at least one element, got {n}")
        self._parent = list(range(n))
        self._rank = [0] * n
        self.n_elements = n
        self.n_components = n
        self.finds = 0
        self.unions = 0

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with full path compression)."""
        self.finds += 1
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; True iff they were distinct."""
        self.unions += 1
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._rank[rx] < self._rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if self._rank[rx] == self._rank[ry]:
            self._rank[rx] += 1
        self.n_components -= 1
        return True

    def find_many(self, xs: list[int]) -> list[int]:
        """Representatives for a batch of elements, with path compression.

        Equivalent to ``[self.find(x) for x in xs]`` but keeps the loop
        out of per-call overhead and reuses roots already resolved within
        the batch — the common case when filtering a batch of candidate
        pairs whose ESTs concentrate in a few hot clusters.
        """
        self.finds += len(xs)
        parent = self._parent
        cache: dict[int, int] = {}
        roots = []
        append = roots.append
        for x in xs:
            root = cache.get(x)
            if root is None:
                root = x
                while parent[root] != root:
                    root = parent[root]
                y = x
                while parent[y] != root:
                    parent[y], y = root, parent[y]
                cache[x] = root
            append(root)
        return roots

    def same(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def components(self) -> list[list[int]]:
        """All sets, each sorted, ordered by smallest member."""
        groups: dict[int, list[int]] = {}
        for x in range(self.n_elements):
            groups.setdefault(self.find(x), []).append(x)
        clusters = [sorted(members) for members in groups.values()]
        clusters.sort(key=lambda members: members[0])
        return clusters
