"""Cluster-level analysis and reporting.

EST-clustering consumers (gene-index builders, microarray designers —
the applications §1 motivates) work with the *cluster profile*, not raw
partitions: how many clusters, how big, how many orphan reads, which
clusters look suspicious.  This module computes those summaries plus
per-cluster consistency diagnostics based on the recorded merge evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.manager import MergeRecord

__all__ = ["ClusterProfile", "profile_clusters", "suspicious_merges"]


@dataclass(frozen=True)
class ClusterProfile:
    """Size-distribution summary of a clustering."""

    n_ests: int
    n_clusters: int
    n_singletons: int
    largest: int
    mean_size: float
    median_size: float
    size_histogram: tuple[tuple[int, int], ...]  # (size, count), ascending

    @property
    def singleton_fraction(self) -> float:
        return self.n_singletons / self.n_clusters if self.n_clusters else 0.0

    def __str__(self) -> str:
        return (
            f"{self.n_ests} ESTs in {self.n_clusters} clusters "
            f"(largest {self.largest}, mean {self.mean_size:.1f}, "
            f"{self.n_singletons} singletons)"
        )


def profile_clusters(clusters: list[list[int]]) -> ClusterProfile:
    """Summarise a partition."""
    if not clusters:
        return ClusterProfile(0, 0, 0, 0, 0.0, 0.0, ())
    sizes = sorted(len(c) for c in clusters)
    n = sum(sizes)
    hist: dict[int, int] = {}
    for s in sizes:
        hist[s] = hist.get(s, 0) + 1
    mid = len(sizes) // 2
    median = (
        float(sizes[mid])
        if len(sizes) % 2
        else (sizes[mid - 1] + sizes[mid]) / 2.0
    )
    return ClusterProfile(
        n_ests=n,
        n_clusters=len(sizes),
        n_singletons=hist.get(1, 0),
        largest=sizes[-1],
        mean_size=n / len(sizes),
        median_size=median,
        size_histogram=tuple(sorted(hist.items())),
    )


def suspicious_merges(
    merges: list[MergeRecord],
    *,
    max_ratio: float = 0.92,
    params=None,
) -> list[MergeRecord]:
    """Merges whose witnessing alignment was comparatively weak.

    Chimeric reads and paralog bleed-through enter clusters via the
    weakest accepted overlaps; surfacing the lowest-ratio merge witnesses
    gives curators a review list ordered by risk (the paper's "additional
    processing ... to improve quality" hook, §3.3).
    """
    from repro.align.scoring import ScoringParams

    params = params or ScoringParams()
    flagged = [
        rec for rec in merges if rec.result.score_ratio(params) < max_ratio
    ]
    flagged.sort(key=lambda rec: rec.result.score_ratio(params))
    return flagged
