"""Cluster maintenance: union-find (inverse-Ackermann amortised), the
master's cluster manager, and the sequential greedy clustering loop."""

from repro.cluster.analysis import ClusterProfile, profile_clusters, suspicious_merges
from repro.cluster.greedy import WorkCounters, greedy_cluster
from repro.cluster.manager import ClusterManager, MergeRecord
from repro.cluster.representatives import select_representatives
from repro.cluster.union_find import UnionFind

__all__ = ["ClusterProfile", "profile_clusters", "suspicious_merges", "WorkCounters", "greedy_cluster", "ClusterManager", "MergeRecord", "UnionFind", "select_representatives"]
