"""Representative selection: one exemplar EST per cluster.

Downstream consumers of EST clusters — gene indices (UniGene-style),
probe designers, annotation pipelines (§1's motivating applications) —
usually need a single representative sequence per cluster.  Two
strategies are provided:

- ``"longest"`` — the longest member; simple, favours the most complete
  cDNA fragment;
- ``"connected"`` — the member with the greatest total accepted-overlap
  length in the merge evidence; favours reads central to the cluster's
  overlap graph and robust to one long chimeric read.
"""

from __future__ import annotations

from repro.cluster.manager import MergeRecord
from repro.sequence.collection import EstCollection

__all__ = ["select_representatives"]


def select_representatives(
    collection: EstCollection,
    clusters: list[list[int]],
    *,
    strategy: str = "longest",
    merges: list[MergeRecord] | None = None,
) -> list[int]:
    """One EST index per cluster, aligned with ``clusters``' order.

    ``strategy="connected"`` requires the run's merge records; ESTs
    appearing in no merge (singletons, or members joined transitively)
    score 0 and fall back to length as the tiebreak, so the function is
    total.  All ties break toward the smaller EST id (deterministic).
    """
    if strategy not in ("longest", "connected"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if strategy == "connected" and merges is None:
        raise ValueError("strategy='connected' needs the run's merge records")

    overlap_sum: dict[int, int] = {}
    if merges:
        for rec in merges:
            length = rec.result.overlap_len
            overlap_sum[rec.pair.est_a] = overlap_sum.get(rec.pair.est_a, 0) + length
            overlap_sum[rec.pair.est_b] = overlap_sum.get(rec.pair.est_b, 0) + length

    reps: list[int] = []
    for members in clusters:
        if not members:
            raise ValueError("empty cluster in partition")

        def score(i: int) -> tuple:
            length = collection.length(2 * i)
            if strategy == "longest":
                return (length, -i)
            return (overlap_sum.get(i, 0), length, -i)

        reps.append(max(members, key=score))
    return reps
