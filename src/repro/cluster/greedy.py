"""The sequential clustering loop.

This is the algorithmic core of §2 stripped of parallel machinery: consume
promising pairs in decreasing order of maximal-common-substring length;
skip pairs whose ESTs already share a cluster; align the remainder; merge
on acceptance; stop when the generator runs dry (or an optional work
budget is hit).  The three counters — generated, processed (= aligned),
accepted — are exactly the three series of the paper's Fig. 7.

The parallel drivers reuse this module's :class:`WorkCounters`; the final
cluster partition is provably independent of pair processing order (see
tests/test_integration.py::test_order_independence), which is why the
simulated and real parallel runs reproduce the sequential partition
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.align.extend import PairAligner
from repro.cluster.manager import ClusterManager
from repro.pairs.ondemand import OnDemandPairGenerator
from repro.pairs.pair import Pair

__all__ = ["WorkCounters", "greedy_cluster", "greedy_cluster_batched"]


@dataclass
class WorkCounters:
    """Pair-flow accounting (Fig. 7: generated / processed / accepted)."""

    pairs_generated: int = 0
    pairs_skipped: int = 0  # dropped by the already-clustered test
    pairs_processed: int = 0  # actually aligned
    pairs_accepted: int = 0  # alignment strong enough to merge
    dp_cells: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "pairs_generated": self.pairs_generated,
            "pairs_skipped": self.pairs_skipped,
            "pairs_processed": self.pairs_processed,
            "pairs_accepted": self.pairs_accepted,
            "dp_cells": self.dp_cells,
        }


def greedy_cluster(
    pair_stream: Iterable[Pair],
    aligner: PairAligner,
    manager: ClusterManager,
    *,
    skip_clustered: bool = True,
    counters: WorkCounters | None = None,
    max_alignments: int | None = None,
) -> WorkCounters:
    """Run the clustering loop to completion (mutates ``manager``).

    Parameters
    ----------
    skip_clustered:
        The paper's pair-selection optimisation.  ``False`` aligns every
        generated pair — the ablation arm measuring how much work the
        cluster test saves.
    max_alignments:
        Optional hard budget on alignments (used by incremental and
        exploratory runs); the partition is then possibly partial.
    """
    counters = counters if counters is not None else WorkCounters()
    cells_before = aligner.dp_cells_total
    for pair in pair_stream:
        counters.pairs_generated += 1
        if skip_clustered and manager.same_cluster(pair.est_a, pair.est_b):
            counters.pairs_skipped += 1
            continue
        if max_alignments is not None and counters.pairs_processed >= max_alignments:
            counters.pairs_skipped += 1
            continue
        result, accepted = aligner.align_and_decide(pair)
        counters.pairs_processed += 1
        if accepted:
            counters.pairs_accepted += 1
            manager.merge(pair, result)
    counters.dp_cells += aligner.dp_cells_total - cells_before
    return counters


def greedy_cluster_batched(
    pair_stream: Iterable[Pair],
    aligner: PairAligner,
    manager: ClusterManager,
    *,
    batch_size: int,
    skip_clustered: bool = True,
    counters: WorkCounters | None = None,
    max_alignments: int | None = None,
) -> WorkCounters:
    """The clustering loop in batch strides (mutates ``manager``).

    Pulls ``batch_size`` pairs at a time, applies pair selection to the
    whole batch, aligns the survivors with one
    :meth:`~repro.align.extend.PairAligner.align_and_decide_batch` call
    (vectorised by :class:`~repro.align.batch.BatchPairAligner`), then
    merges the accepted ones.  Pairs of one batch cannot see each other's
    merges, so slightly more pairs are aligned than in the one-at-a-time
    loop — but the final partition is identical, because it is the
    connected components of the accepted-pair graph and acceptance is a
    pure per-pair decision (``manager.merge`` already ignores redundant
    unions).
    """
    counters = counters if counters is not None else WorkCounters()
    cells_before = aligner.dp_cells_total
    generator = (
        pair_stream
        if isinstance(pair_stream, OnDemandPairGenerator)
        else OnDemandPairGenerator(pair_stream)
    )
    while not generator.exhausted:
        raw = generator.next_batch(batch_size)
        if not raw:
            break
        counters.pairs_generated += len(raw)
        if skip_clustered:
            co_clustered = manager.same_cluster_batch(raw)
        else:
            co_clustered = [False] * len(raw)
        batch: list[Pair] = []
        for pair, skip in zip(raw, co_clustered):
            if skip:
                counters.pairs_skipped += 1
                continue
            if (
                max_alignments is not None
                and counters.pairs_processed + len(batch) >= max_alignments
            ):
                counters.pairs_skipped += 1
                continue
            batch.append(pair)
        if not batch:
            continue
        results = aligner.align_and_decide_batch(batch)
        counters.pairs_processed += len(batch)
        for pair, (result, accepted) in zip(batch, results):
            if accepted:
                counters.pairs_accepted += 1
                manager.merge(pair, result)
    counters.dp_cells += aligner.dp_cells_total - cells_before
    return counters
