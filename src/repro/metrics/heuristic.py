"""Validation of the paper's central heuristic (§2).

PaCE generates pairs "in decreasing order of probability of strong
overlap", using "length of a maximal common substring of pairs as the
metric for predicting strongly overlapping pairs".  That is an empirical
premise: longer exact seeds should predict alignment acceptance.

:func:`seed_length_acceptance` measures the premise directly: align every
distinct candidate pair of a collection (no skipping, so the measurement
is unconditional) and bin acceptance rate by seed length.  A monotone
curve is what justifies both the decreasing-depth generation order and
the ψ cutoff; the bench regenerating it lives in
``benchmarks/bench_heuristic.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.extend import PairAligner
from repro.core.config import ClusteringConfig
from repro.pairs.batch import make_pair_generator
from repro.sequence.collection import EstCollection
from repro.suffix.gst import SuffixArrayGst

__all__ = ["SeedLengthBin", "seed_length_acceptance"]


@dataclass(frozen=True)
class SeedLengthBin:
    """Acceptance statistics for one seed-length bin [lo, hi)."""

    lo: int
    hi: int
    n_pairs: int
    n_accepted: int
    mean_ratio: float

    @property
    def acceptance_rate(self) -> float:
        return self.n_accepted / self.n_pairs if self.n_pairs else 0.0


def seed_length_acceptance(
    collection: EstCollection,
    *,
    config: ClusteringConfig | None = None,
    bin_width: int = 10,
    gst: SuffixArrayGst | None = None,
    max_pairs: int | None = None,
) -> list[SeedLengthBin]:
    """Acceptance rate as a function of maximal-common-substring length.

    Each distinct pair is aligned once from its *longest* seed (the first
    witness in the decreasing-depth stream).  Returns non-empty bins in
    increasing seed-length order.
    """
    config = config or ClusteringConfig()
    gst = gst or SuffixArrayGst.build(collection)
    generator = make_pair_generator(gst, config)
    aligner = PairAligner(
        collection,
        params=config.scoring,
        criteria=config.acceptance,
        band_policy=config.band_policy,
        use_seed_extension=config.use_seed_extension,
        engine=config.align_engine,
    )

    samples: list[tuple[int, bool, float]] = []
    seen: set[tuple[int, int, bool]] = set()
    for pair in generator.pairs():
        if pair.key in seen:
            continue
        seen.add(pair.key)
        result, accepted = aligner.align_and_decide(pair)
        samples.append((pair.length, accepted, result.score_ratio(config.scoring)))
        if max_pairs is not None and len(samples) >= max_pairs:
            break

    bins: dict[int, list[tuple[bool, float]]] = {}
    for length, accepted, ratio in samples:
        bins.setdefault(length // bin_width, []).append((accepted, ratio))
    out = []
    for b in sorted(bins):
        entries = bins[b]
        out.append(
            SeedLengthBin(
                lo=b * bin_width,
                hi=(b + 1) * bin_width,
                n_pairs=len(entries),
                n_accepted=sum(1 for a, _r in entries if a),
                mean_ratio=sum(r for _a, r in entries) / len(entries),
            )
        )
    return out
