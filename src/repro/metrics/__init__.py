"""Quality assessment (OQ/OV/UN/CC over pairwise confusion, §4.1) and the
element-count memory accounting behind the paper's space claims."""

from repro.metrics.confusion import PairConfusion, labels_from_clusters, pair_confusion
from repro.metrics.heuristic import SeedLengthBin, seed_length_acceptance
from repro.metrics.memory import (
    MemoryLedger,
    MemoryModel,
    measured_peak_rss_bytes,
)
from repro.metrics.quality import QualityReport, assess_clustering, quality_metrics

__all__ = [
    "PairConfusion",
    "SeedLengthBin",
    "seed_length_acceptance",
    "labels_from_clusters",
    "pair_confusion",
    "MemoryLedger",
    "MemoryModel",
    "measured_peak_rss_bytes",
    "QualityReport",
    "assess_clustering",
    "quality_metrics",
]
