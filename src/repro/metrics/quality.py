"""The paper's quality metrics: OQ, OV, UN and CC (§4.1, Table 2).

Given pairwise confusion counts between an output clustering and the
correct clustering:

- overlap quality      OQ = TP / (TP + FP + FN)
- over-prediction      OV = FP / (TP + FP)
- under-prediction     UN = FN / (TP + FN)
- correlation coeff.   CC = (TP·TN − FP·FN) /
                            sqrt((TP+FP)(TN+FN)(TP+FN)(TN+FP))

Ideally OQ = CC = 100% and OV = UN = 0%.  All four are reported as
percentages to match Table 2's formatting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.metrics.confusion import PairConfusion, pair_confusion

__all__ = ["QualityReport", "quality_metrics", "assess_clustering"]


@dataclass(frozen=True)
class QualityReport:
    """OQ/OV/UN/CC in percent, plus the raw confusion counts."""

    oq: float
    ov: float
    un: float
    cc: float
    confusion: PairConfusion

    def as_row(self) -> list[float]:
        """One column of Table 2: [OQ, OV, UN, CC]."""
        return [self.oq, self.ov, self.un, self.cc]

    def __str__(self) -> str:
        return (
            f"OQ={self.oq:.2f}% OV={self.ov:.2f}% UN={self.un:.2f}% CC={self.cc:.2f}%"
        )


def quality_metrics(confusion: PairConfusion) -> QualityReport:
    """Compute the four metrics from confusion counts.

    Degenerate denominators (no positive pairs anywhere, etc.) yield the
    metric's ideal value when the clustering is trivially perfect and 0
    otherwise, so single-EST edge cases don't crash reports.
    """
    tp, fp, fn, tn = confusion.tp, confusion.fp, confusion.fn, confusion.tn

    oq_den = tp + fp + fn
    oq = 100.0 * tp / oq_den if oq_den else 100.0

    ov_den = tp + fp
    ov = 100.0 * fp / ov_den if ov_den else 0.0

    un_den = tp + fn
    un = 100.0 * fn / un_den if un_den else 0.0

    cc_den = (tp + fp) * (tn + fn) * (tp + fn) * (tn + fp)
    if cc_den:
        cc = 100.0 * (tp * tn - fp * fn) / math.sqrt(cc_den)
    else:
        cc = 100.0 if fp == 0 and fn == 0 else 0.0

    return QualityReport(oq=oq, ov=ov, un=un, cc=cc, confusion=confusion)


def assess_clustering(
    predicted: Sequence, truth: Sequence, n: int | None = None
) -> QualityReport:
    """End-to-end: confusion + metrics between two clusterings."""
    return quality_metrics(pair_confusion(predicted, truth, n))
