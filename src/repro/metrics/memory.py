"""Memory accounting in *elements*, the unit of the paper's space claims.

The paper's Table 1 'X' entries mark tools whose promising-pair phase
outgrew 512 MB; its §3.2 argument is that lsets total O(N) entries.  To
reproduce those statements without depending on CPython allocator details,
this module counts data-structure elements (pairs buffered, lset entries,
suffixes stored) and converts to bytes with explicit per-element sizes,
the way one sizes a C implementation.

:func:`measured_peak_rss_bytes` puts the *measured* interpreter
high-water mark (``VmHWM`` via the live monitor's resource sampler) next
to the model estimate, and :meth:`MemoryLedger.comparison` formats the
two side by side.  The measured number includes everything the model
deliberately excludes — interpreter, numpy buffers, code — so the
interesting quantity is the delta and how it scales, not the absolute
match (EXPERIMENTS.md records both for the 30k corpus).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MemoryModel", "MemoryLedger", "measured_peak_rss_bytes"]


def measured_peak_rss_bytes() -> int:
    """This process's measured peak RSS in bytes (``VmHWM`` on Linux,
    ``ru_maxrss`` elsewhere) — the number to place beside
    :meth:`MemoryLedger.peak_bytes`."""
    from repro.telemetry.live import ResourceSampler

    return ResourceSampler().peak_rss_bytes()


@dataclass(frozen=True)
class MemoryModel:
    """Bytes per element for the C-equivalent data structures."""

    bytes_per_pair: int = 16  # two string ids + two offsets (packed)
    bytes_per_lset_entry: int = 12  # string id + offset + next pointer
    bytes_per_tree_node: int = 16  # depth + rightmost-leaf + payload slot
    bytes_per_suffix: int = 8  # string id + offset
    bytes_per_char: int = 1


@dataclass
class MemoryLedger:
    """High-water-mark tracking of element counts by category."""

    model: MemoryModel = field(default_factory=MemoryModel)
    current: dict[str, int] = field(default_factory=dict)
    peak: dict[str, int] = field(default_factory=dict)

    def add(self, category: str, count: int = 1) -> None:
        cur = self.current.get(category, 0) + count
        self.current[category] = cur
        if cur > self.peak.get(category, 0):
            self.peak[category] = cur

    def remove(self, category: str, count: int = 1) -> None:
        cur = self.current.get(category, 0) - count
        if cur < 0:
            raise ValueError(f"negative count for {category!r}")
        self.current[category] = cur

    def set_peak(self, category: str, count: int) -> None:
        """Record an externally-computed high-water mark."""
        if count > self.peak.get(category, 0):
            self.peak[category] = count

    def peak_bytes(self) -> int:
        """Total peak footprint under the C-equivalent model."""
        sizes = {
            "pairs": self.model.bytes_per_pair,
            "lset_entries": self.model.bytes_per_lset_entry,
            "tree_nodes": self.model.bytes_per_tree_node,
            "suffixes": self.model.bytes_per_suffix,
            "chars": self.model.bytes_per_char,
        }
        total = 0
        for category, count in self.peak.items():
            total += count * sizes.get(category, 8)
        return total

    def peak_megabytes(self) -> float:
        return self.peak_bytes() / (1024 * 1024)

    def comparison(self, measured_bytes: int | None = None) -> str:
        """The model estimate next to the measured interpreter peak.

        ``measured_bytes`` defaults to this process's current high-water
        mark.  The measured value bounds the model from above by
        construction (the model counts algorithm elements only); the
        delta is the interpreter + numpy overhead the paper's C
        implementation would not pay.
        """
        if measured_bytes is None:
            measured_bytes = measured_peak_rss_bytes()
        model = self.peak_bytes()
        delta = measured_bytes - model
        lines = [
            f"model estimate (C-equivalent elements): "
            f"{model / (1024 * 1024):8.1f} MiB",
            f"measured peak RSS (interpreter):        "
            f"{measured_bytes / (1024 * 1024):8.1f} MiB",
            f"delta (runtime + numpy overhead):       "
            f"{delta / (1024 * 1024):8.1f} MiB",
        ]
        if model > 0:
            lines.append(f"measured / model ratio: {measured_bytes / model:.1f}x")
        return "\n".join(lines)
