"""Memory accounting in *elements*, the unit of the paper's space claims.

The paper's Table 1 'X' entries mark tools whose promising-pair phase
outgrew 512 MB; its §3.2 argument is that lsets total O(N) entries.  To
reproduce those statements without depending on CPython allocator details,
this module counts data-structure elements (pairs buffered, lset entries,
suffixes stored) and converts to bytes with explicit per-element sizes,
the way one sizes a C implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MemoryModel", "MemoryLedger"]


@dataclass(frozen=True)
class MemoryModel:
    """Bytes per element for the C-equivalent data structures."""

    bytes_per_pair: int = 16  # two string ids + two offsets (packed)
    bytes_per_lset_entry: int = 12  # string id + offset + next pointer
    bytes_per_tree_node: int = 16  # depth + rightmost-leaf + payload slot
    bytes_per_suffix: int = 8  # string id + offset
    bytes_per_char: int = 1


@dataclass
class MemoryLedger:
    """High-water-mark tracking of element counts by category."""

    model: MemoryModel = field(default_factory=MemoryModel)
    current: dict[str, int] = field(default_factory=dict)
    peak: dict[str, int] = field(default_factory=dict)

    def add(self, category: str, count: int = 1) -> None:
        cur = self.current.get(category, 0) + count
        self.current[category] = cur
        if cur > self.peak.get(category, 0):
            self.peak[category] = cur

    def remove(self, category: str, count: int = 1) -> None:
        cur = self.current.get(category, 0) - count
        if cur < 0:
            raise ValueError(f"negative count for {category!r}")
        self.current[category] = cur

    def set_peak(self, category: str, count: int) -> None:
        """Record an externally-computed high-water mark."""
        if count > self.peak.get(category, 0):
            self.peak[category] = count

    def peak_bytes(self) -> int:
        """Total peak footprint under the C-equivalent model."""
        sizes = {
            "pairs": self.model.bytes_per_pair,
            "lset_entries": self.model.bytes_per_lset_entry,
            "tree_nodes": self.model.bytes_per_tree_node,
            "suffixes": self.model.bytes_per_suffix,
            "chars": self.model.bytes_per_char,
        }
        total = 0
        for category, count in self.peak.items():
            total += count * sizes.get(category, 8)
        return total

    def peak_megabytes(self) -> float:
        return self.peak_bytes() / (1024 * 1024)
