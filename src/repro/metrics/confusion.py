"""Pairwise confusion counts between two clusterings (§4.1).

The paper assesses quality by treating a clustering as the set of
*intra-cluster EST pairs* it implies: a pair in the output clustering is a
true positive if the correct clustering also co-clusters it, a false
positive otherwise; a co-clustered pair of the correct clustering missing
from the output is a false negative, and everything else is a true
negative.

Enumerating pairs explicitly is quadratic in cluster sizes; instead the
counts are computed from the contingency table of the two partitions:

    TP = Σ_{p,t} C(|p ∩ t|, 2)        (co-clustered in both)
    FP = Σ_p C(|p|, 2) − TP
    FN = Σ_t C(|t|, 2) − TP
    TN = C(n, 2) − TP − FP − FN
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

__all__ = ["PairConfusion", "pair_confusion", "labels_from_clusters"]


@dataclass(frozen=True)
class PairConfusion:
    """TP/FP/FN/TN over unordered EST pairs."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def total_pairs(self) -> int:
        return self.tp + self.fp + self.fn + self.tn


def _choose2(k: int) -> int:
    return k * (k - 1) // 2


def labels_from_clusters(clusters: Sequence[Sequence[int]], n: int) -> list[int]:
    """Cluster label per element from an explicit partition of ``0..n-1``."""
    labels = [-1] * n
    for cid, members in enumerate(clusters):
        for x in members:
            if not 0 <= x < n:
                raise ValueError(f"element {x} outside 0..{n - 1}")
            if labels[x] != -1:
                raise ValueError(f"element {x} appears in two clusters")
            labels[x] = cid
    missing = [i for i, l in enumerate(labels) if l == -1]
    if missing:
        raise ValueError(f"elements missing from the partition: {missing[:5]}...")
    return labels


def pair_confusion(
    predicted: Sequence[int] | Sequence[Sequence[int]],
    truth: Sequence[int] | Sequence[Sequence[int]],
    n: int | None = None,
) -> PairConfusion:
    """Confusion counts between predicted and true clusterings.

    Both arguments may be label vectors (one label per EST) or explicit
    partitions (lists of clusters); mixed forms are fine.
    """
    pred_labels = _as_labels(predicted, n)
    true_labels = _as_labels(truth, n if n is not None else len(pred_labels))
    if len(pred_labels) != len(true_labels):
        raise ValueError(
            f"clusterings cover different universes: "
            f"{len(pred_labels)} vs {len(true_labels)} elements"
        )
    n_elems = len(pred_labels)

    joint = Counter(zip(pred_labels, true_labels))
    pred_sizes = Counter(pred_labels)
    true_sizes = Counter(true_labels)

    tp = sum(_choose2(c) for c in joint.values())
    fp = sum(_choose2(c) for c in pred_sizes.values()) - tp
    fn = sum(_choose2(c) for c in true_sizes.values()) - tp
    tn = _choose2(n_elems) - tp - fp - fn
    return PairConfusion(tp=tp, fp=fp, fn=fn, tn=tn)


def _as_labels(clustering, n: int | None) -> list[int]:
    seq = list(clustering)
    if seq and isinstance(seq[0], (list, tuple)):
        size = n if n is not None else sum(len(c) for c in seq)
        return labels_from_clusters(seq, size)
    return [int(v) for v in seq]
