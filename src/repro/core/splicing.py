"""Alternative-splicing detection — the paper's quality extension.

§3.3: "Additional processing like detection of alternative splicing and
consulting protein databases can be done to improve quality of the
results"; §5 lists it as work in progress.  This module implements the
detection half: within each final cluster, find EST pairs whose best
overlap alignment contains a *long internal gap run* — the unmistakable
signature of an exon present in one transcript and skipped in the other.

Detection runs as a post-pass over clusters (bounded per-cluster pair
budget), using the full-traceback reference aligner so the gap structure
is exact.  Events are reported, not acted on: whether a long internal gap
means a splice form or a chimeric read is a judgement call left to the
caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.align.full_dp import overlap_align
from repro.align.scoring import ScoringParams
from repro.sequence.collection import EstCollection
from repro.util.validation import check_positive

__all__ = ["SplicingEvent", "detect_splicing_events", "SPLICE_SCORING"]

#: Scoring tuned for *finding* long gaps rather than penalising them:
#: assembly scoring (gap_extend ≈ -2) lets chance matches inside a skipped
#: exon "ladder" one long gap into many short ones, hiding the event.  A
#: cheap extension with an expensive open keeps the skip as a single run.
SPLICE_SCORING = ScoringParams(match=2.0, mismatch=-3.0, gap_open=-10.0, gap_extend=-0.5)


@dataclass(frozen=True)
class SplicingEvent:
    """A putative exon-skip between two co-clustered ESTs.

    ``gap_in`` names which EST lacks the sequence ('a' means the gap run
    consumed only EST b: EST a skips that block).
    """

    est_a: int
    est_b: int
    complemented: bool
    gap_length: int
    gap_in: str  # 'a' or 'b'
    a_position: int  # position of the gap on EST a's coordinates
    identity_outside_gap: float

    def __post_init__(self) -> None:
        if self.gap_in not in ("a", "b"):
            raise ValueError(f"gap_in must be 'a' or 'b', got {self.gap_in!r}")


def detect_splicing_events(
    collection: EstCollection,
    clusters: list[list[int]],
    *,
    params: ScoringParams | None = None,
    min_gap: int = 40,
    min_flank: int = 25,
    min_identity: float = 0.85,
    max_pairs_per_cluster: int = 60,
) -> list[SplicingEvent]:
    """Scan clusters for exon-skip signatures.

    Parameters
    ----------
    min_gap:
        Minimum internal gap run to call an event (shorter runs are
        ordinary sequencing indel noise).
    min_flank:
        Aligned (non-gap) context required on *both* sides of the run —
        a gap at the overlap border is a dovetail artefact, not a skip.
    min_identity:
        Required identity of the non-gap portion: a skip is only credible
        between reads that otherwise agree.
    max_pairs_per_cluster:
        Per-cluster budget of pairwise alignments (clusters are scanned in
        EST-id order until the budget runs out) — keeps the post-pass
        linear-ish in practice.
    """
    check_positive("min_gap", min_gap)
    check_positive("min_flank", min_flank)
    params = params or SPLICE_SCORING
    events: list[SplicingEvent] = []

    for members in clusters:
        budget = max_pairs_per_cluster
        for i, j in combinations(sorted(members), 2):
            if budget <= 0:
                break
            budget -= 1
            best = None
            for orient in (0, 1):
                a = collection.string(2 * i)
                b = collection.string(2 * j + orient)
                res = overlap_align(a, b, params)
                if best is None or res.score > best[0].score:
                    best = (res, orient)
            res, orient = best
            event = _event_from_ops(
                res.ops, i, j, bool(orient), res.a_start, min_gap, min_flank, min_identity
            )
            if event is not None:
                events.append(event)
    return events


def _event_from_ops(
    ops: str,
    est_a: int,
    est_b: int,
    complemented: bool,
    a_start: int,
    min_gap: int,
    min_flank: int,
    min_identity: float,
) -> SplicingEvent | None:
    """Find the longest qualifying internal gap run in an edit transcript.

    Same-direction gap runs separated by at most 4 aligned columns are
    coalesced first: chance matches inside a skipped exon fragment the
    run, but the biological event is one block.
    """
    if not ops:
        return None
    # Raw runs: (kind, start, length) for gaps, aligned stretches merged.
    raw: list[tuple[str, int, int]] = []
    k = 0
    while k < len(ops):
        op = ops[k]
        kind = op if op in ("I", "D") else "A"
        start = k
        while k < len(ops) and (ops[k] if ops[k] in ("I", "D") else "A") == kind:
            k += 1
        raw.append((kind, start, k - start))

    # Coalesce I...I (or D...D) runs across short aligned islands.
    best_run: tuple[int, int, str] | None = None  # (gap_len, start, kind)
    for idx, (kind, start, length) in enumerate(raw):
        if kind == "A":
            continue
        gap_len = length
        end_idx = idx
        j = idx + 1
        while j + 1 < len(raw):
            island, _is, ilen = raw[j]
            nkind, _ns, nlen = raw[j + 1]
            if island == "A" and ilen <= 4 and nkind == kind:
                gap_len += nlen
                end_idx = j + 1
                j += 2
            else:
                break
        span = sum(r[2] for r in raw[idx : end_idx + 1])
        if gap_len >= min_gap and (best_run is None or gap_len > best_run[0]):
            best_run = (span, start, kind)
    if best_run is None:
        return None
    run_len, run_start, kind = best_run

    # Flanks: aligned columns strictly before/after the run.
    left = ops[:run_start]
    right = ops[run_start + run_len :]
    if _aligned_len(left) < min_flank or _aligned_len(right) < min_flank:
        return None

    outside = left + right
    aligned_cols = sum(1 for c in outside if c in "MX")
    matches = sum(1 for c in outside if c == "M")
    gaps_outside = len(outside) - aligned_cols
    denom = aligned_cols + gaps_outside
    identity = matches / denom if denom else 0.0
    if identity < min_identity:
        return None

    # Position of the run on EST a: count ops that consume a before it.
    a_pos = a_start + sum(1 for c in ops[:run_start] if c in "MXD")
    return SplicingEvent(
        est_a=est_a,
        est_b=est_b,
        complemented=complemented,
        gap_length=run_len,
        gap_in="a" if kind == "I" else "b",
        a_position=a_pos,
        identity_outside_gap=identity,
    )


def _aligned_len(ops: str) -> int:
    return sum(1 for c in ops if c in "MX")
