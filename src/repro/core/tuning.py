"""Acceptance-threshold tuning (§4.1's calibration procedure).

"The results are based on the choice of quality threshold experimentally
found to result in the least number of false positives and false
negatives."  This module reproduces that procedure as a first-class
utility: sweep the score-ratio acceptance threshold over a labelled
(or synthetic) calibration set and pick the setting minimising FP + FN.

The sweep is cheap because clustering need not be re-run per threshold:
every candidate pair is aligned **once** with the most permissive setting
and its score ratio recorded; for any threshold the accepted-pair graph
is then a filter over that record, and the partition is its connected
components (the same order-independence property the engine-parity tests
rely on).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.extend import PairAligner
from repro.align.scoring import AcceptanceCriteria
from repro.cluster.union_find import UnionFind
from repro.core.config import ClusteringConfig
from repro.metrics.confusion import pair_confusion
from repro.metrics.quality import QualityReport, quality_metrics
from repro.pairs.batch import make_pair_generator
from repro.sequence.collection import EstCollection
from repro.suffix.gst import SuffixArrayGst

__all__ = ["ThresholdPoint", "TuningResult", "tune_acceptance"]


@dataclass(frozen=True)
class ThresholdPoint:
    """Quality at one candidate threshold."""

    min_score_ratio: float
    report: QualityReport

    @property
    def fp_plus_fn(self) -> int:
        return self.report.confusion.fp + self.report.confusion.fn


@dataclass(frozen=True)
class TuningResult:
    """The full sweep and the paper-rule winner (min FP+FN, ties broken
    toward the stricter threshold — fewer false merges)."""

    points: tuple[ThresholdPoint, ...]
    best: ThresholdPoint

    def as_criteria(self, min_overlap: int = 40) -> AcceptanceCriteria:
        return AcceptanceCriteria(
            min_score_ratio=self.best.min_score_ratio, min_overlap=min_overlap
        )


def tune_acceptance(
    collection: EstCollection,
    true_labels: list[int],
    *,
    config: ClusteringConfig | None = None,
    ratios: list[float] | None = None,
    gst: SuffixArrayGst | None = None,
) -> TuningResult:
    """Sweep ``min_score_ratio`` against a labelled calibration set.

    Parameters
    ----------
    true_labels:
        Correct cluster label per EST (e.g. from a synthetic benchmark or
        a genome-mapped subset, as the paper used the sequenced
        Arabidopsis genome).
    ratios:
        Candidate thresholds, default 0.50..0.95 in steps of 0.05.
    """
    config = config or ClusteringConfig()
    if len(true_labels) != collection.n_ests:
        raise ValueError(
            f"{len(true_labels)} labels for {collection.n_ests} ESTs"
        )
    ratios = sorted(ratios or [0.50 + 0.05 * k for k in range(10)])

    gst = gst or SuffixArrayGst.build(collection)
    generator = make_pair_generator(gst, config)
    # Align every distinct candidate pair once at the permissive floor.
    floor = AcceptanceCriteria(
        min_score_ratio=ratios[0], min_overlap=config.acceptance.min_overlap
    )
    aligner = PairAligner(
        collection,
        params=config.scoring,
        criteria=floor,
        band_policy=config.band_policy,
        use_seed_extension=config.use_seed_extension,
    )
    scored: dict[tuple[int, int, bool], float] = {}
    overlaps: dict[tuple[int, int, bool], int] = {}
    for pair in generator.pairs():
        if pair.key in scored:
            continue
        result = aligner.align_pair(pair)
        scored[pair.key] = result.score_ratio(config.scoring)
        overlaps[pair.key] = result.overlap_len

    points = []
    n = collection.n_ests
    for ratio in ratios:
        uf = UnionFind(n)
        for (i, j, _orient), r in scored.items():
            if r >= ratio and overlaps[(i, j, _orient)] >= config.acceptance.min_overlap:
                uf.union(i, j)
        labels = [uf.find(i) for i in range(n)]
        report = quality_metrics(pair_confusion(labels, true_labels))
        points.append(ThresholdPoint(min_score_ratio=ratio, report=report))

    best = min(points, key=lambda p: (p.fp_plus_fn, -p.min_score_ratio))
    return TuningResult(points=tuple(points), best=best)
