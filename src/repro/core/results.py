"""Result objects returned by the clustering drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.greedy import WorkCounters
from repro.cluster.manager import MergeRecord
from repro.pairs.sa_generator import PairGenStats
from repro.telemetry import TelemetrySnapshot
from repro.util.timing import TimingBreakdown

__all__ = ["ClusteringResult", "FaultCounters", "COMPONENT_ORDER"]

#: Table 3's component columns, in the paper's order.
COMPONENT_ORDER = ["partitioning", "gst_construction", "sort_nodes", "alignment"]


@dataclass
class FaultCounters:
    """Fault-and-recovery accounting for a parallel run.

    ``slaves_lost`` counts slave-death events (a slave that dies twice
    across restarts counts twice); ``restarts`` counts replacement
    processes forked; ``pairs_reassigned`` counts pairs recovered into
    WORKBUF — requeued in-flight work plus master-regenerated admissions;
    ``incomplete_slaves`` counts slave ids whose final stats report never
    arrived (their per-slave counters default to zero rather than being
    silently miscounted); ``slave_errors`` counts typed error reports
    (slave-side exceptions, re-raised by the master).
    """

    slaves_lost: int = 0
    restarts: int = 0
    pairs_reassigned: int = 0
    incomplete_slaves: int = 0
    slave_errors: int = 0

    @property
    def any_faults(self) -> bool:
        return bool(
            self.slaves_lost
            or self.restarts
            or self.pairs_reassigned
            or self.incomplete_slaves
            or self.slave_errors
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "slaves_lost": self.slaves_lost,
            "restarts": self.restarts,
            "pairs_reassigned": self.pairs_reassigned,
            "incomplete_slaves": self.incomplete_slaves,
            "slave_errors": self.slave_errors,
        }


@dataclass
class ClusteringResult:
    """Everything a clustering run reports.

    ``clusters`` is the final partition (lists of EST indices);
    ``counters`` the Fig. 7 pair-flow accounting; ``timings`` the Table 3
    component breakdown; ``gen_stats`` the generator-side counters
    (including the peak lset footprint behind the O(N)-space claim);
    ``faults`` the fault-and-recovery accounting of parallel runs
    (``None`` for sequential drivers, which have no slaves to lose);
    ``telemetry`` the full measurement snapshot (spans, metrics, machine
    trace) when the run was handed a live :class:`~repro.telemetry.
    Telemetry` session — exportable with
    :func:`repro.telemetry.export_jsonl` and summarised by
    ``pace-est report``.
    """

    n_ests: int
    clusters: list[list[int]]
    counters: WorkCounters
    timings: TimingBreakdown
    gen_stats: PairGenStats | None = None
    merges: list[MergeRecord] = field(default_factory=list)
    faults: FaultCounters | None = None
    telemetry: TelemetrySnapshot | None = None

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def labels(self) -> list[int]:
        out = [-1] * self.n_ests
        for cid, members in enumerate(self.clusters):
            for x in members:
                out[x] = cid
        return out

    def summary(self) -> str:
        c = self.counters
        text = (
            f"{self.n_ests} ESTs -> {self.n_clusters} clusters | "
            f"pairs generated {c.pairs_generated}, aligned {c.pairs_processed}, "
            f"accepted {c.pairs_accepted} | total {self.timings.total:.2f}s"
        )
        if self.faults is not None and self.faults.any_faults:
            f = self.faults
            text += (
                f" | faults: {f.slaves_lost} slaves lost, "
                f"{f.restarts} restarted, {f.pairs_reassigned} pairs reassigned"
            )
        return text
