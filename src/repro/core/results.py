"""Result objects returned by the clustering drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.greedy import WorkCounters
from repro.cluster.manager import MergeRecord
from repro.pairs.sa_generator import PairGenStats
from repro.util.timing import TimingBreakdown

__all__ = ["ClusteringResult", "COMPONENT_ORDER"]

#: Table 3's component columns, in the paper's order.
COMPONENT_ORDER = ["partitioning", "gst_construction", "sort_nodes", "alignment"]


@dataclass
class ClusteringResult:
    """Everything a clustering run reports.

    ``clusters`` is the final partition (lists of EST indices);
    ``counters`` the Fig. 7 pair-flow accounting; ``timings`` the Table 3
    component breakdown; ``gen_stats`` the generator-side counters
    (including the peak lset footprint behind the O(N)-space claim).
    """

    n_ests: int
    clusters: list[list[int]]
    counters: WorkCounters
    timings: TimingBreakdown
    gen_stats: PairGenStats | None = None
    merges: list[MergeRecord] = field(default_factory=list)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def labels(self) -> list[int]:
        out = [-1] * self.n_ests
        for cid, members in enumerate(self.clusters):
            for x in members:
                out[x] = cid
        return out

    def summary(self) -> str:
        c = self.counters
        return (
            f"{self.n_ests} ESTs -> {self.n_clusters} clusters | "
            f"pairs generated {c.pairs_generated}, aligned {c.pairs_processed}, "
            f"accepted {c.pairs_accepted} | total {self.timings.total:.2f}s"
        )
