"""The single configuration surface of the clustering system.

Paper-derived defaults: window ``w = 8`` ("a window size of eight is used
in partitioning the ESTs into buckets", §4.2), ``batchsize = 60`` ("batch
size is chosen to be sixty pairs"; Fig. 8 locates the optimum at 40–60),
and a ψ threshold sized to the read regime (long exact matches are
abundant between true overlaps at 1–2% error).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.align.extend import BandPolicy
from repro.align.scoring import AcceptanceCriteria, ScoringParams
from repro.util.validation import check_positive

__all__ = ["ClusteringConfig"]


@dataclass(frozen=True)
class ClusteringConfig:
    """Parameters of a clustering run (sequential or parallel)."""

    #: Bucket window w: suffixes are partitioned on their first w characters.
    w: int = 8
    #: Promising-pair threshold ψ: minimum maximal-common-substring length.
    psi: int = 25
    #: Pairs per master→slave work message (Fig. 8 sweeps this).
    batchsize: int = 60
    #: GST backend: "suffix_array" (production) or "tree" (paper-faithful).
    backend: str = "suffix_array"
    #: Master-side pair selection: skip pairs already co-clustered.
    skip_clustered: bool = True
    #: Align by banded seed extension (Fig. 5a); False = whole-string DP.
    use_seed_extension: bool = True
    #: Seed-extension scorer: "banded" (optimal affine score within the
    #: band) or "kdiff" (greedy minimum-edit, O(k^2) work — the fast path;
    #: quality-equivalent at EST error rates, see benchmarks/bench_engines).
    align_engine: str = "banded"
    #: DP group size for the batched alignment engine
    #: (:class:`repro.align.batch.BatchPairAligner`): extensions are aligned
    #: in vectorised groups of up to this many.  ``0`` keeps the per-pair
    #: reference engine.
    align_batch: int = 0
    #: Promising-pair generation engine over the suffix-array backend:
    #: "scalar" (:class:`repro.pairs.sa_generator.SaPairGenerator`, the
    #: reference) or "vector" (:class:`repro.pairs.batch.VectorPairGenerator`,
    #: depth-batched numpy sweeps over flat lset arenas — identical pair
    #: stream, several times faster).
    pair_engine: str = "scalar"
    scoring: ScoringParams = field(default_factory=ScoringParams)
    acceptance: AcceptanceCriteria = field(default_factory=AcceptanceCriteria)
    band_policy: BandPolicy = field(default_factory=BandPolicy)
    #: Capacity of the master's WORKBUF, in pairs (§3.3).
    workbuf_capacity: int = 4096
    #: Capacity of each slave's PAIRBUF, in pairs (§3.3).
    pairbuf_capacity: int = 1024
    #: Live run monitor HTTP port (``/metrics``, ``/healthz``, ``/state``).
    #: ``None`` disables monitoring entirely (the hot paths stay untouched);
    #: ``0`` binds an OS-assigned port.
    monitor_port: int | None = None
    #: Live monitor sample interval in seconds (per-slave resource/progress
    #: samples and master status lines).  Ignored when monitoring is off.
    monitor_interval: float = 1.0
    #: Publish the built index (sequence arena, suffix/LCP arrays, per-slave
    #: flat forests) in named shared-memory segments and have slave
    #: processes attach by descriptor instead of receiving copies — makes
    #: per-slave spawn payload O(1) in dataset size.  Only the real
    #: multiprocessing backend consults this; ``False`` restores the legacy
    #: whole-object handoff.
    shared_arenas: bool = True
    #: Master work-allocation policy (:mod:`repro.parallel.dispatch`):
    #: "paper" (the §3.3 formula, reproduction-faithful default), "jbsq"
    #: / "jbsq:<k>" (join-bounded-shortest-queue over in-flight batches),
    #: or "pace" (straggler-aware grant shrinking from rtt quantiles).
    dispatch_policy: str = "paper"
    #: Number of master shards (:mod:`repro.parallel.shards`).  ``1`` is
    #: the paper's single master; ``N > 1`` partitions bucket ownership,
    #: WORKBUF, dispatch and the union–find across N masters, each driving
    #: a disjoint subset of slaves, with periodic cross-shard union
    #: merging.  Must not exceed the slave count of the run.
    master_shards: int = 1
    #: Cross-shard merge cadence in seconds (virtual seconds under the
    #: simulator, wall seconds under the multiprocessing backend).  A pure
    #: latency/throughput knob: any cadence yields the same partition.
    shard_sync_interval: float = 0.25
    #: Causal work-unit tracing (:mod:`repro.telemetry.causal`): mint a
    #: work-unit id per generated pair batch and record its lifecycle
    #: (generated → dispatched → aligned → absorbed/requeued/pruned) into
    #: the telemetry event stream.  Requires telemetry to be enabled on
    #: the run; off by default so reference traces stay byte-identical.
    causal_tracing: bool = False
    #: Directory for crash flight-recorder dumps
    #: (:mod:`repro.telemetry.flight`): each process keeps a bounded ring
    #: of recent protocol events and dumps it there on crash,
    #: fault-tolerance transitions, or SIGTERM.  ``None`` disables the
    #: recorders entirely.
    flight_dir: str | None = None

    def __post_init__(self) -> None:
        check_positive("w", self.w)
        check_positive("psi", self.psi)
        check_positive("batchsize", self.batchsize)
        check_positive("align_batch", self.align_batch, strict=False)
        check_positive("workbuf_capacity", self.workbuf_capacity)
        check_positive("pairbuf_capacity", self.pairbuf_capacity)
        if self.monitor_port is not None:
            check_positive("monitor_port", self.monitor_port, strict=False)
        check_positive("monitor_interval", self.monitor_interval)
        check_positive("master_shards", self.master_shards)
        check_positive("shard_sync_interval", self.shard_sync_interval)
        if self.psi < self.w:
            raise ValueError(
                f"psi ({self.psi}) must be >= w ({self.w}): buckets split the "
                f"GST at depth w, so shallower nodes are unavailable"
            )
        if self.backend not in ("suffix_array", "tree"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.align_engine not in ("banded", "kdiff"):
            raise ValueError(f"unknown align_engine {self.align_engine!r}")
        if self.pair_engine not in ("scalar", "vector"):
            raise ValueError(f"unknown pair_engine {self.pair_engine!r}")
        if self.pair_engine == "vector" and self.backend != "suffix_array":
            raise ValueError(
                "pair_engine 'vector' requires the suffix_array backend: the "
                "vectorised generator runs on LCP-interval forests, which the "
                "tree backend does not build"
            )
        # The policy-name grammar is duplicated from repro.parallel.dispatch
        # (importing it here would be circular: repro.parallel pulls in the
        # engines, which import this module).  parse_policy re-validates at
        # instantiation time, so the two can never silently diverge.
        name, _, arg = self.dispatch_policy.partition(":")
        if name not in ("paper", "jbsq", "pace"):
            raise ValueError(
                f"unknown dispatch_policy {self.dispatch_policy!r} "
                f"(expected 'paper', 'jbsq', 'jbsq:<k>' or 'pace')"
            )
        if arg:
            if name != "jbsq" or not arg.isdigit() or int(arg) < 1:
                raise ValueError(
                    f"bad dispatch_policy argument in {self.dispatch_policy!r}: "
                    f"only 'jbsq:<k>' with integer k >= 1 takes one"
                )

    @classmethod
    def small_reads(cls, **overrides) -> "ClusteringConfig":
        """Defaults scaled to the short-read test regime
        (:meth:`repro.simulate.ReadParams.short_reads`)."""
        base = dict(
            w=6,
            psi=15,
            acceptance=AcceptanceCriteria(min_score_ratio=0.8, min_overlap=30),
        )
        base.update(overrides)
        return cls(**base)
