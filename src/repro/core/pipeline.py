"""The sequential clustering pipeline — the library's front door.

:class:`PaceClusterer` wires the substrates together exactly as Fig. 2 of
the paper: GST construction → on-demand pair generation → pair selection →
pairwise alignment → cluster management, and reports the per-component
timing breakdown in Table 3's categories.

Instrumentation: every phase runs inside a telemetry span (see
:mod:`repro.telemetry`), so passing ``telemetry=Telemetry()`` to
:meth:`PaceClusterer.cluster` yields a structured event stream plus
alignment/pair metrics on ``result.telemetry``; without it, a disabled
session accumulates only the phase seconds the result has always carried.

For multi-processor runs (real or simulated) see
:mod:`repro.parallel.runtime`; for adding new EST batches to an existing
clustering see :mod:`repro.core.incremental`.
"""

from __future__ import annotations

import itertools
import time
from typing import Iterable, Iterator

from repro.align.batch import make_aligner
from repro.cluster.greedy import WorkCounters, greedy_cluster, greedy_cluster_batched
from repro.cluster.manager import ClusterManager
from repro.core.config import ClusteringConfig
from repro.core.results import ClusteringResult
from repro.pairs.generator import TreePairGenerator
from repro.pairs.pair import Pair
from repro.pairs.batch import make_pair_generator
from repro.sequence.collection import EstCollection
from repro.suffix.gst import NaiveGst, SuffixArrayGst
from repro.telemetry import Telemetry
from repro.telemetry.causal import CausalRecorder, UnitMinter
from repro.telemetry.live import LiveSample, ResourceSampler
from repro.telemetry.monitor import RunMonitor
from repro.util.timing import TimingBreakdown

__all__ = ["PaceClusterer"]


class _TimedAligner:
    """Transparent aligner proxy observing per-batch ``align`` latency.

    The sequential driver has no protocol steps to hang stage timings on,
    so the aligner itself is the measurement point; every other attribute
    (``dp_cells_total`` etc.) passes straight through."""

    def __init__(self, inner, lat, now) -> None:
        self._inner = inner
        self._lat = lat
        self._now = now

    def align_and_decide_batch(self, pairs):
        t0 = self._now()
        out = self._inner.align_and_decide_batch(pairs)
        if pairs:
            self._lat.observe("align", self._now() - t0)
        return out

    def align_and_decide(self, pair):
        t0 = self._now()
        out = self._inner.align_and_decide(pair)
        self._lat.observe("align", self._now() - t0)
        return out

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _timed_pair_stream(
    stream: Iterable[Pair], lat, now, batchsize: int
) -> Iterator[Pair]:
    """Yield the stream unchanged while observing ``generate`` latency per
    batchsize chunk — timing covers only the upstream pulls, never the
    consumer's alignment work in between."""
    it = iter(stream)
    while True:
        t0 = now()
        chunk = list(itertools.islice(it, batchsize))
        if not chunk:
            return
        lat.observe("generate", now() - t0)
        yield from chunk


def _causal_stream(
    stream: Iterable[Pair],
    crec: CausalRecorder,
    manager: ClusterManager,
    now,
    batchsize: int,
    skip_clustered: bool,
) -> Iterator[Pair]:
    """Yield the stream unchanged while minting one work unit per
    batchsize chunk and recording its lifecycle.

    The sequential driver is its own master *and* slave, so each unit is
    master-minted and absorbed in place (reason ``"drain"``, same as the
    parallel master aligning locally).  The absorbed/pruned split mirrors
    the consumer's skip-clustered decision at yield time — best-effort
    for batched aligners, but the unit's balance is exact either way
    (both buckets settle on the WORKBUF side of the conservation check).
    """
    mint = UnitMinter(-1)
    it = iter(stream)
    while True:
        chunk = list(itertools.islice(it, batchsize))
        if not chunk:
            return
        unit = mint()
        ts = now()
        crec.record("generated", unit, len(chunk), actor="master", ts=ts)
        crec.record("admitted", unit, len(chunk), actor="master", ts=ts)
        absorbed = pruned = 0
        for pair in chunk:
            if skip_clustered and manager.same_cluster(pair.est_a, pair.est_b):
                pruned += 1
            else:
                absorbed += 1
            yield pair
        ts = now()
        if absorbed:
            crec.record("absorbed", unit, absorbed, actor="master", ts=ts, reason="drain")
        if pruned:
            crec.record("pruned", unit, pruned, actor="master", ts=ts, reason="drain")


class PaceClusterer:
    """Sequential EST clustering with the paper's algorithm set."""

    def __init__(self, config: ClusteringConfig | None = None) -> None:
        self.config = config or ClusteringConfig()

    # ------------------------------------------------------------------ #

    def cluster(
        self,
        collection: EstCollection,
        *,
        telemetry: Telemetry | None = None,
        monitor: RunMonitor | None = None,
    ) -> ClusteringResult:
        """Cluster a collection end to end.

        ``monitor`` (or ``config.monitor_port``) attaches a live run
        monitor: the single sequential worker reports as "slave 0", with
        progress read from the pair generator's resumable position, by
        sampling inside the pair stream at the monitor's interval.
        """
        cfg = self.config
        tel = telemetry if telemetry is not None else Telemetry(enabled=False)
        timings = TimingBreakdown(registry=tel.registry)
        owns_monitor = False
        if monitor is None and cfg.monitor_port is not None:
            monitor = RunMonitor(
                port=cfg.monitor_port, interval=cfg.monitor_interval
            )
            owns_monitor = True

        with tel.span("gst_construction", n_ests=collection.n_ests):
            if cfg.backend == "suffix_array":
                gst = SuffixArrayGst.build(collection)
            else:
                gst = NaiveGst.build(collection, w=cfg.w)

        # Forest construction + decreasing-depth ordering happen lazily in
        # the generators; constructing the generator here accounts the
        # eager part (forest building) under "sort_nodes", like Table 3.
        with tel.span("sort_nodes"):
            if cfg.backend == "suffix_array":
                generator = make_pair_generator(
                    gst, cfg, telemetry=tel if tel.enabled else None
                )
            else:
                generator = TreePairGenerator(gst, psi=cfg.psi)

        aligner = make_aligner(
            collection, cfg, telemetry=tel if tel.enabled else None
        )
        manager = ClusterManager(collection.n_ests)
        counters = WorkCounters()

        pair_stream: Iterable[Pair] = generator.pairs()
        lat = tel.latency
        if lat is not None:
            # Sequential lifecycle = {generate, align}: time batchsize
            # chunks of generation, and alignment via an aligner proxy.
            pair_stream = _timed_pair_stream(
                pair_stream, lat, tel.now, cfg.batchsize
            )
            aligner = _TimedAligner(aligner, lat, tel.now)
        crec = CausalRecorder() if (cfg.causal_tracing and tel.enabled) else None
        if crec is not None:
            pair_stream = _causal_stream(
                pair_stream, crec, manager, tel.now, cfg.batchsize,
                cfg.skip_clustered,
            )
        if monitor is not None:
            if tel.enabled and not tel.run_id:
                tel.run_id = monitor.run_id
            t0 = time.monotonic()
            monitor.begin_run(1, engine="sequential", clock="wall", origin=t0)
            if tel.enabled:
                monitor.attach_registry(tel.registry)
            pair_stream = self._monitored_stream(
                pair_stream, generator, manager, monitor, t0
            )

        with tel.span("alignment"):
            if cfg.align_batch:
                greedy_cluster_batched(
                    pair_stream,
                    aligner,
                    manager,
                    batch_size=cfg.batchsize,
                    skip_clustered=cfg.skip_clustered,
                    counters=counters,
                )
            else:
                greedy_cluster(
                    pair_stream,
                    aligner,
                    manager,
                    skip_clustered=cfg.skip_clustered,
                    counters=counters,
                )

        if monitor is not None:
            monitor.set_master(merges=len(manager.merges))
            monitor.finish()
            if owns_monitor:
                monitor.close()

        snapshot = None
        if telemetry is not None:
            if crec is not None:
                tel.events.extend(crec.as_records())
            tel.count("pairs.produced", counters.pairs_generated)
            snapshot = tel.snapshot(engine="sequential", n_processors=1)
        return ClusteringResult(
            n_ests=collection.n_ests,
            clusters=manager.clusters(),
            counters=counters,
            timings=timings,
            gen_stats=generator.stats,
            merges=list(manager.merges),
            telemetry=snapshot,
        )

    # ------------------------------------------------------------------ #

    @staticmethod
    def _monitored_stream(
        stream: Iterable[Pair],
        generator,
        manager: ClusterManager,
        monitor: RunMonitor,
        t0: float | None = None,
    ) -> Iterator[Pair]:
        """Wrap the pair stream so the sequential run samples itself at
        the monitor's interval (suffix-array generators expose resumable
        forest positions; the tree generator reports counters only).
        ``t0`` is the run's sample origin (shared with ``begin_run`` so
        the live stream is alignable with post-run traces)."""
        sampler = ResourceSampler()
        t0 = time.monotonic() if t0 is None else t0
        forests = getattr(generator, "_forests", None)
        total_nodes = max(1, sum(f.n_nodes for f in forests)) if forests else 0
        last = 0.0
        produced = 0
        for pair in stream:
            produced += 1
            wall = time.monotonic()
            if wall - last >= monitor.interval:
                last = wall
                ts = wall - t0
                monitor.on_sample(
                    LiveSample(
                        slave_id=0,
                        ts=ts,
                        rss_bytes=sampler.rss_bytes(),
                        cpu_seconds=sampler.cpu_seconds(),
                        pairs_generated=produced,
                        gen_position=(
                            min(
                                1.0,
                                generator.stats.nodes_processed / total_nodes,
                            )
                            if total_nodes
                            else 0.0
                        ),
                    )
                )
                monitor.set_master(ts=ts, merges=len(manager.merges))
                monitor.maybe_report(ts)
            yield pair

    # ------------------------------------------------------------------ #

    def cluster_pairs(
        self,
        collection: EstCollection,
        pair_stream: Iterable[Pair],
        *,
        telemetry: Telemetry | None = None,
    ) -> ClusteringResult:
        """Cluster from an externally-supplied pair stream (ablations and
        baselines feed arbitrary-order streams through this)."""
        cfg = self.config
        tel = telemetry if telemetry is not None else Telemetry(enabled=False)
        timings = TimingBreakdown(registry=tel.registry)
        aligner = make_aligner(
            collection, cfg, telemetry=tel if tel.enabled else None
        )
        manager = ClusterManager(collection.n_ests)
        counters = WorkCounters()
        with tel.span("alignment"):
            if cfg.align_batch:
                greedy_cluster_batched(
                    pair_stream,
                    aligner,
                    manager,
                    batch_size=cfg.batchsize,
                    skip_clustered=cfg.skip_clustered,
                    counters=counters,
                )
            else:
                greedy_cluster(
                    pair_stream,
                    aligner,
                    manager,
                    skip_clustered=cfg.skip_clustered,
                    counters=counters,
                )
        snapshot = None
        if telemetry is not None:
            snapshot = tel.snapshot(engine="sequential", n_processors=1)
        return ClusteringResult(
            n_ests=collection.n_ests,
            clusters=manager.clusters(),
            counters=counters,
            timings=timings,
            merges=list(manager.merges),
            telemetry=snapshot,
        )
