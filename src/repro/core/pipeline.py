"""The sequential clustering pipeline — the library's front door.

:class:`PaceClusterer` wires the substrates together exactly as Fig. 2 of
the paper: GST construction → on-demand pair generation → pair selection →
pairwise alignment → cluster management, and reports the per-component
timing breakdown in Table 3's categories.

Instrumentation: every phase runs inside a telemetry span (see
:mod:`repro.telemetry`), so passing ``telemetry=Telemetry()`` to
:meth:`PaceClusterer.cluster` yields a structured event stream plus
alignment/pair metrics on ``result.telemetry``; without it, a disabled
session accumulates only the phase seconds the result has always carried.

For multi-processor runs (real or simulated) see
:mod:`repro.parallel.runtime`; for adding new EST batches to an existing
clustering see :mod:`repro.core.incremental`.
"""

from __future__ import annotations

from typing import Iterable

from repro.align.batch import make_aligner
from repro.cluster.greedy import WorkCounters, greedy_cluster, greedy_cluster_batched
from repro.cluster.manager import ClusterManager
from repro.core.config import ClusteringConfig
from repro.core.results import ClusteringResult
from repro.pairs.generator import TreePairGenerator
from repro.pairs.pair import Pair
from repro.pairs.batch import make_pair_generator
from repro.sequence.collection import EstCollection
from repro.suffix.gst import NaiveGst, SuffixArrayGst
from repro.telemetry import Telemetry
from repro.util.timing import TimingBreakdown

__all__ = ["PaceClusterer"]


class PaceClusterer:
    """Sequential EST clustering with the paper's algorithm set."""

    def __init__(self, config: ClusteringConfig | None = None) -> None:
        self.config = config or ClusteringConfig()

    # ------------------------------------------------------------------ #

    def cluster(
        self,
        collection: EstCollection,
        *,
        telemetry: Telemetry | None = None,
    ) -> ClusteringResult:
        """Cluster a collection end to end."""
        cfg = self.config
        tel = telemetry if telemetry is not None else Telemetry(enabled=False)
        timings = TimingBreakdown(registry=tel.registry)

        with tel.span("gst_construction", n_ests=collection.n_ests):
            if cfg.backend == "suffix_array":
                gst = SuffixArrayGst.build(collection)
            else:
                gst = NaiveGst.build(collection, w=cfg.w)

        # Forest construction + decreasing-depth ordering happen lazily in
        # the generators; constructing the generator here accounts the
        # eager part (forest building) under "sort_nodes", like Table 3.
        with tel.span("sort_nodes"):
            if cfg.backend == "suffix_array":
                generator = make_pair_generator(
                    gst, cfg, telemetry=tel if tel.enabled else None
                )
            else:
                generator = TreePairGenerator(gst, psi=cfg.psi)

        aligner = make_aligner(
            collection, cfg, telemetry=tel if tel.enabled else None
        )
        manager = ClusterManager(collection.n_ests)
        counters = WorkCounters()
        with tel.span("alignment"):
            if cfg.align_batch:
                greedy_cluster_batched(
                    generator.pairs(),
                    aligner,
                    manager,
                    batch_size=cfg.batchsize,
                    skip_clustered=cfg.skip_clustered,
                    counters=counters,
                )
            else:
                greedy_cluster(
                    generator.pairs(),
                    aligner,
                    manager,
                    skip_clustered=cfg.skip_clustered,
                    counters=counters,
                )

        snapshot = None
        if telemetry is not None:
            tel.count("pairs.produced", counters.pairs_generated)
            snapshot = tel.snapshot(engine="sequential", n_processors=1)
        return ClusteringResult(
            n_ests=collection.n_ests,
            clusters=manager.clusters(),
            counters=counters,
            timings=timings,
            gen_stats=generator.stats,
            merges=list(manager.merges),
            telemetry=snapshot,
        )

    # ------------------------------------------------------------------ #

    def cluster_pairs(
        self,
        collection: EstCollection,
        pair_stream: Iterable[Pair],
        *,
        telemetry: Telemetry | None = None,
    ) -> ClusteringResult:
        """Cluster from an externally-supplied pair stream (ablations and
        baselines feed arbitrary-order streams through this)."""
        cfg = self.config
        tel = telemetry if telemetry is not None else Telemetry(enabled=False)
        timings = TimingBreakdown(registry=tel.registry)
        aligner = make_aligner(
            collection, cfg, telemetry=tel if tel.enabled else None
        )
        manager = ClusterManager(collection.n_ests)
        counters = WorkCounters()
        with tel.span("alignment"):
            if cfg.align_batch:
                greedy_cluster_batched(
                    pair_stream,
                    aligner,
                    manager,
                    batch_size=cfg.batchsize,
                    skip_clustered=cfg.skip_clustered,
                    counters=counters,
                )
            else:
                greedy_cluster(
                    pair_stream,
                    aligner,
                    manager,
                    skip_clustered=cfg.skip_clustered,
                    counters=counters,
                )
        snapshot = None
        if telemetry is not None:
            snapshot = tel.snapshot(engine="sequential", n_processors=1)
        return ClusteringResult(
            n_ests=collection.n_ests,
            clusters=manager.clusters(),
            counters=counters,
            timings=timings,
            merges=list(manager.merges),
            telemetry=snapshot,
        )
