"""Public API: configuration, the sequential pipeline, results, and the
paper's future-work extensions (incremental clustering, alternative-
splicing detection)."""

from repro.core.config import ClusteringConfig
from repro.core.incremental import IncrementalClusterer
from repro.core.pipeline import PaceClusterer
from repro.core.results import COMPONENT_ORDER, ClusteringResult, FaultCounters
from repro.core.splicing import SplicingEvent, detect_splicing_events
from repro.core.tuning import ThresholdPoint, TuningResult, tune_acceptance

__all__ = [
    "ClusteringConfig",
    "IncrementalClusterer",
    "PaceClusterer",
    "COMPONENT_ORDER",
    "ClusteringResult",
    "FaultCounters",
    "SplicingEvent",
    "ThresholdPoint",
    "TuningResult",
    "tune_acceptance",
    "detect_splicing_events",
]
