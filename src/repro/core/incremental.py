"""Incremental clustering of newly sequenced EST batches.

The paper closes with an open problem (§5): "Is there a way to
incrementally adjust the EST clusters when a new batch of ESTs is
sequenced, instead of the current method of clustering all the ESTs from
scratch?"  This module implements the natural answer enabled by the
pair-generation machinery:

1. rebuild the GST over old + new ESTs (index construction is the cheap,
   perfectly-parallel phase);
2. seed the union–find with the *existing* partition;
3. stream promising pairs but **skip every old–old pair outright** — their
   cluster relationship was already decided in previous rounds, and
   re-aligning them cannot change the partition (alignment acceptance is
   pair-intrinsic and merging is transitive);
4. align only pairs touching a new EST; new ESTs may join old clusters,
   found new ones, or *bridge* two old clusters (a genuine new overlap
   witness).

Alignment work is therefore proportional to pairs involving the batch, not
to the corpus — the quantity the paper's question is about.  The result is
provably identical to re-clustering from scratch *given the old partition
was complete for the old set* (see tests/test_incremental.py).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.extend import PairAligner
from repro.cluster.greedy import WorkCounters
from repro.cluster.manager import ClusterManager
from repro.core.config import ClusteringConfig
from repro.core.results import ClusteringResult
from repro.pairs.batch import make_pair_generator
from repro.sequence.collection import EstCollection
from repro.suffix.gst import SuffixArrayGst
from repro.util.timing import TimingBreakdown

__all__ = ["IncrementalClusterer"]


@dataclass
class _State:
    collection: EstCollection
    labels: list[int]  # representative EST per cluster, by EST index


class IncrementalClusterer:
    """Maintains a clustering across successive EST batches."""

    def __init__(self, config: ClusteringConfig | None = None) -> None:
        self.config = config or ClusteringConfig()
        self._state: _State | None = None
        self.rounds = 0

    @property
    def n_ests(self) -> int:
        return self._state.collection.n_ests if self._state else 0

    def labels(self) -> list[int]:
        if self._state is None:
            return []
        return list(self._state.labels)

    def clusters(self) -> list[list[int]]:
        groups: dict[int, list[int]] = {}
        for i, lab in enumerate(self.labels()):
            groups.setdefault(lab, []).append(i)
        clusters = [sorted(m) for m in groups.values()]
        clusters.sort(key=lambda m: m[0])
        return clusters

    # ------------------------------------------------------------------ #

    def add_batch(self, new_ests: list[np.ndarray]) -> ClusteringResult:
        """Fold a batch of encoded ESTs into the clustering.

        EST indices of previous batches are preserved; the new ESTs get
        the next ``len(new_ests)`` indices.
        """
        if not new_ests:
            raise ValueError("empty EST batch")
        cfg = self.config
        timings = TimingBreakdown()
        self.rounds += 1

        if self._state is None:
            old_n = 0
            merged = EstCollection(list(new_ests))
        else:
            old = self._state.collection
            old_n = old.n_ests
            merged = EstCollection(
                [old.est(i).copy() for i in range(old_n)] + list(new_ests)
            )

        with timings.measure("gst_construction"):
            gst = SuffixArrayGst.build(merged)
        with timings.measure("sort_nodes"):
            generator = make_pair_generator(gst, cfg)

        manager = ClusterManager(merged.n_ests)
        if self._state is not None:
            # Seed with the existing partition.
            rep: dict[int, int] = {}
            for i, lab in enumerate(self._state.labels):
                if lab in rep:
                    manager.seed_union(rep[lab], i)
                else:
                    rep[lab] = i

        aligner = PairAligner(
            merged,
            params=cfg.scoring,
            criteria=cfg.acceptance,
            band_policy=cfg.band_policy,
            use_seed_extension=cfg.use_seed_extension,
            engine=cfg.align_engine,
        )
        counters = WorkCounters()
        with timings.measure("alignment"):
            for pair in generator.pairs():
                counters.pairs_generated += 1
                if pair.est_a < old_n and pair.est_b < old_n:
                    # Old-old: decided in a previous round.
                    counters.pairs_skipped += 1
                    continue
                if cfg.skip_clustered and manager.same_cluster(pair.est_a, pair.est_b):
                    counters.pairs_skipped += 1
                    continue
                result, accepted = aligner.align_and_decide(pair)
                counters.pairs_processed += 1
                if accepted:
                    counters.pairs_accepted += 1
                    manager.merge(pair, result)
        counters.dp_cells = aligner.dp_cells_total

        labels = manager.labels()
        self._state = _State(collection=merged, labels=labels)
        return ClusteringResult(
            n_ests=merged.n_ests,
            clusters=manager.clusters(),
            counters=counters,
            timings=timings,
            gen_stats=generator.stats,
            merges=list(manager.merges),
        )
