"""Small shared utilities: deterministic RNG handling, timers, validation.

Nothing in this package knows about ESTs or suffix trees; it is the layer
every other subpackage may depend on without creating cycles.
"""

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.timing import Stopwatch, TimingBreakdown
from repro.util.validation import check_positive, check_probability, check_in_range

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "TimingBreakdown",
    "check_positive",
    "check_probability",
    "check_in_range",
]
