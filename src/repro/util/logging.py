"""Structured logging: one-line ``key=value`` records with run context.

Every diagnostic the system emits mid-run carries three context fields —
``run`` (a short run id shared by every actor of one clustering run),
``actor`` (``master``, ``slave3``, ``cli``, ``bench``), and ``phase``
(the Table 3 component currently executing) — so the output of a
parallel run greps and joins the way its telemetry JSONL does.  The
format is deliberately boring::

    2026-08-06T12:00:01.123Z INFO  run=ab12cd34 actor=master phase=alignment progress=42.0% eta=12s

Built on the stdlib :mod:`logging` module (logger name ``repro``), so
applications embedding the library can re-route or silence it with the
standard machinery; the default handler writes to stderr and is installed
lazily the first time a :class:`StructuredLogger` emits.

This module depends only on the standard library (it sits below the
telemetry layer, which uses it for monitor status lines).
"""

from __future__ import annotations

import logging
import sys
import time
import uuid

__all__ = ["StructuredLogger", "get_logger", "new_run_id"]

_LOGGER_NAME = "repro"
_handler_installed = False


def new_run_id() -> str:
    """A short random id identifying one clustering run across actors."""
    return uuid.uuid4().hex[:8]


class _StderrHandler(logging.StreamHandler):
    """A stream handler that resolves ``sys.stderr`` at emit time, so
    stderr redirection after import (pytest capture, contextlib) works."""

    def __init__(self) -> None:
        super().__init__()

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:
        pass  # always dynamic; StreamHandler.__init__ tries to set it


def _ensure_handler() -> logging.Logger:
    """Install the default stderr handler once (idempotent, respects any
    handler the embedding application configured first)."""
    global _handler_installed
    logger = logging.getLogger(_LOGGER_NAME)
    if not _handler_installed:
        if not logger.handlers:
            handler = _StderrHandler()
            handler.setFormatter(logging.Formatter("%(message)s"))
            logger.addHandler(handler)
            logger.setLevel(logging.INFO)
            logger.propagate = False
        _handler_installed = True
    return logger


def _fmt_value(value) -> str:
    if isinstance(value, float):
        text = f"{value:.4g}"
    elif isinstance(value, bool):
        text = "true" if value else "false"
    else:
        text = str(value)
    if any(c.isspace() for c in text) or "=" in text:
        return '"' + text.replace('"', "'") + '"'
    return text


def _timestamp() -> str:
    t = time.time()
    base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(t))
    return f"{base}.{int((t % 1) * 1000):03d}Z"


class StructuredLogger:
    """A logger bound to a set of context fields.

    ``bind(**fields)`` derives a child logger with additional (or
    overridden) context — the idiom for scoping an actor or phase::

        log = get_logger(run=run_id, actor="master")
        log.bind(phase="alignment").info("status", progress=0.42)
    """

    def __init__(self, **fields) -> None:
        self._fields = {k: v for k, v in fields.items() if v is not None}
        self._logger = _ensure_handler()

    def bind(self, **fields) -> "StructuredLogger":
        merged = dict(self._fields)
        merged.update({k: v for k, v in fields.items() if v is not None})
        return StructuredLogger(**merged)

    # ------------------------------------------------------------------ #

    def _emit(self, level: int, level_name: str, msg: str, fields: dict) -> None:
        if not self._logger.isEnabledFor(level):
            return
        parts = [_timestamp(), f"{level_name:<5s}"]
        for key, value in self._fields.items():
            parts.append(f"{key}={_fmt_value(value)}")
        if msg:
            parts.append(f"msg={_fmt_value(msg)}")
        for key, value in fields.items():
            parts.append(f"{key}={_fmt_value(value)}")
        self._logger.log(level, " ".join(parts))

    def debug(self, msg: str = "", **fields) -> None:
        self._emit(logging.DEBUG, "DEBUG", msg, fields)

    def info(self, msg: str = "", **fields) -> None:
        self._emit(logging.INFO, "INFO", msg, fields)

    def warning(self, msg: str = "", **fields) -> None:
        self._emit(logging.WARNING, "WARN", msg, fields)

    def error(self, msg: str = "", **fields) -> None:
        self._emit(logging.ERROR, "ERROR", msg, fields)


def get_logger(**fields) -> StructuredLogger:
    """The standard entry point: a structured logger bound to ``fields``
    (typically ``run=``, ``actor=``, and later ``phase=`` via ``bind``)."""
    return StructuredLogger(**fields)
