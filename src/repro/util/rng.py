"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  Centralising the
coercion here keeps experiment scripts reproducible: a single seed at the top
of a benchmark fans out deterministically to every component via
:func:`spawn_rngs`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS-entropy generator), an ``int`` seed, or an
        existing generator (returned unchanged, *not* copied).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Children are produced with :meth:`numpy.random.Generator.spawn`, so two
    children never share a stream, and the whole family is reproducible from
    the parent seed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return ensure_rng(seed).spawn(n)
