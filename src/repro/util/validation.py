"""Argument-validation helpers shared across configuration dataclasses."""

from __future__ import annotations

__all__ = ["check_positive", "check_probability", "check_in_range"]


def check_positive(name: str, value: float, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0 if not strict)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
