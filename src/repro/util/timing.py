"""Wall-clock timing helpers used by the drivers and benchmark harness.

:class:`TimingBreakdown` mirrors the per-component accounting of the
paper's Table 3 (partitioning / GST construction / node sorting /
alignment / total).  Since the telemetry layer landed it is a thin
compatibility shim over a :class:`~repro.telemetry.registry.
MetricsRegistry`: component seconds live in ``span.<name>.seconds``
counters — the same counters :meth:`repro.telemetry.spans.Telemetry.span`
accumulates — so a breakdown handed the run's registry and the telemetry
export can never disagree.  Constructed bare it owns a private registry
and behaves exactly as it always did.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import SPAN_PREFIX, SPAN_SUFFIX

__all__ = ["Stopwatch", "TimingBreakdown"]


@dataclass
class Stopwatch:
    """A start/stop accumulating timer.

    ``elapsed`` accumulates across multiple start/stop cycles, which is what
    the component accounting needs (e.g. alignment time accrues over many
    master-slave interactions).
    """

    elapsed: float = 0.0
    _started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        delta = time.perf_counter() - self._started_at
        self.elapsed += delta
        self._started_at = None
        return delta

    @property
    def running(self) -> bool:
        return self._started_at is not None


class TimingBreakdown:
    """Named accumulating timers, one per pipeline component — a view
    over ``span.<name>.seconds`` counters in a metrics registry."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    @staticmethod
    def _key(name: str) -> str:
        return f"{SPAN_PREFIX}{name}{SPAN_SUFFIX}"

    @property
    def components(self) -> dict[str, float]:
        """Component -> seconds, in first-recorded order."""
        return {
            key[len(SPAN_PREFIX) : -len(SPAN_SUFFIX)]: counter.value
            for key, counter in self.registry.counters.items()
            if key.startswith(SPAN_PREFIX) and key.endswith(SPAN_SUFFIX)
        }

    @contextmanager
    def measure(self, name: str):
        """Context manager adding the enclosed wall time to ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def add(self, name: str, seconds: float) -> None:
        self.registry.inc(self._key(name), seconds)

    def get(self, name: str) -> float:
        return self.registry.get(self._key(name))

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def as_row(
        self, order: list[str] | None = None, *, missing: str = "error"
    ) -> list[float]:
        """Render as a list of seconds in ``order`` (default: insertion
        order), with the grand total appended — the shape of one Table 3
        row.

        A name in ``order`` that was never recorded raises ``KeyError``
        (a silent 0.0 entry once hid misspelt component names in result
        tables); pass ``missing="zero"`` to zero-fill explicitly instead,
        for tables whose rows legitimately lack a component (e.g. the
        sequential driver has no "partitioning" phase).
        """
        if missing not in ("error", "zero"):
            raise ValueError(f"missing must be 'error' or 'zero', got {missing!r}")
        components = self.components
        names = order if order is not None else list(components)
        unknown = [n for n in names if n not in components]
        if unknown and missing == "error":
            raise KeyError(
                f"unknown timing component(s) {unknown!r}; recorded: "
                f"{sorted(components)} (pass missing='zero' to zero-fill)"
            )
        return [components.get(n, 0.0) for n in names] + [self.total]

    def merge(self, other: "TimingBreakdown") -> None:
        for name, seconds in other.components.items():
            self.add(name, seconds)

    def __repr__(self) -> str:  # keeps the old dataclass-ish repr useful
        return f"TimingBreakdown(components={self.components!r})"
