"""Wall-clock timing helpers used by the drivers and benchmark harness.

:class:`TimingBreakdown` mirrors the per-component accounting of the paper's
Table 3 (partitioning / GST construction / node sorting / alignment / total):
components are accumulated by name and can be rendered as a table row.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "TimingBreakdown"]


@dataclass
class Stopwatch:
    """A start/stop accumulating timer.

    ``elapsed`` accumulates across multiple start/stop cycles, which is what
    the component accounting needs (e.g. alignment time accrues over many
    master-slave interactions).
    """

    elapsed: float = 0.0
    _started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        delta = time.perf_counter() - self._started_at
        self.elapsed += delta
        self._started_at = None
        return delta

    @property
    def running(self) -> bool:
        return self._started_at is not None


@dataclass
class TimingBreakdown:
    """Named accumulating timers, one per pipeline component."""

    components: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str):
        """Context manager adding the enclosed wall time to ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def add(self, name: str, seconds: float) -> None:
        self.components[name] = self.components.get(name, 0.0) + seconds

    def get(self, name: str) -> float:
        return self.components.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def as_row(self, order: list[str] | None = None) -> list[float]:
        """Render as a list of seconds in ``order`` (default: insertion order),
        with the grand total appended — the shape of one Table 3 row."""
        names = order if order is not None else list(self.components)
        return [self.get(name) for name in names] + [self.total]

    def merge(self, other: "TimingBreakdown") -> None:
        for name, seconds in other.components.items():
            self.add(name, seconds)
