"""Pluggable master dispatch policies for the §3.3 work-allocation loop.

The paper steers work with a single formula: each reply carries a request
for ``E = min(α·δ·batchsize, nfree/p)`` further pairs, where ``α = P/P′``
measures how useful the slave's last offer was and ``δ`` compensates for
passive slaves.  That formula is one point in a rich design space —
queueing systems built on the same master/worker shape (JBSQ-style
dispatchers, CREW/EREW key-partitioned stores) choose the grant per
worker from live queue state instead, trading a little throughput for a
much thinner latency tail.

This module extracts that choice into a seam:

- :class:`RequestContext` — everything the master knows at the moment it
  computes one reply's request size: the slave's offer (``p``/``p_prime``),
  WORKBUF occupancy, fleet composition, and the per-slave in-flight
  mirror (non-empty dispatched batches not yet reported back);
- :class:`DispatchPolicy` — the interface plus the in-flight mirror
  bookkeeping every policy shares.  :class:`~repro.parallel.protocol.
  MasterLogic` drives the hooks: ``note_dispatch`` when work leaves,
  ``note_retired`` when its results arrive (with the batch round-trip
  time when the engine supplies a clock), ``note_slave_lost`` /
  ``note_slave_stopped`` when a slave leaves the protocol;
- :class:`PaperFormula` — the bitwise-faithful default.  It consults
  nothing but the paper's inputs, so runs under it are byte-identical to
  the pre-seam code on either engine;
- :class:`JBSQ` — join-bounded-shortest-queue adapted to this pull-based
  protocol: the grant shrinks linearly with the slave's in-flight batch
  depth and hits zero at the bound ``k``, keeping per-slave outstanding
  work short the way JBSQ(k) keeps server queues short.  WORKBUF then
  runs shallower, which is exactly what trims ``queue_master`` dwell;
- :class:`PaceAware` — straggler-aware shrinking: slaves whose recent
  batch round-trip p90 lags the fleet get proportionally smaller grants
  (they stop burning their turnaround on blocking generation), and
  slaves the live :class:`~repro.telemetry.monitor.RunMonitor` flags as
  stragglers are clamped to the floor immediately.

Safety argument, shared by every policy: the request size only shapes
*inflow* of new promising pairs.  A zero grant to a slave that holds
work in flight cannot stall the run — that slave still owes the master a
results message, and admission/termination are unchanged.  A slave with
nothing in flight always receives the paper grant under every policy
shipped here, so pair generation can never be starved to a standstill.

Select a policy with ``ClusteringConfig.dispatch_policy`` / the CLI's
``--dispatch-policy`` (``paper``, ``jbsq``, ``jbsq:<k>``, ``pace``), or
pass a ready instance to :func:`make_policy` consumers.  ``paper`` stays
the default for reproduction fidelity; see
``benchmarks/bench_dispatch_tournament.py`` for the measured trade-offs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = [
    "RequestContext",
    "DispatchPolicy",
    "PaperFormula",
    "JBSQ",
    "PaceAware",
    "POLICY_NAMES",
    "make_policy",
    "parse_policy",
]

#: Canonical policy names (``jbsq`` also accepts a ``jbsq:<k>`` form).
POLICY_NAMES: tuple[str, ...] = ("paper", "jbsq", "pace")


@dataclass(frozen=True)
class RequestContext:
    """The master's knowledge at one request computation.

    One instance per reply; all counts are taken *after* the incoming
    message was incorporated (results merged, offers admitted) and
    *after* the reply's own work batch was popped from WORKBUF, i.e. they
    describe the state the reply leaves behind.
    """

    slave_id: int
    #: Pairs the slave offered in the message being answered (P).
    p: int
    #: Of those, pairs admitted into WORKBUF (P′ — different-cluster).
    p_prime: int
    batchsize: int
    #: Free WORKBUF capacity (the paper's ``nfree``).
    nfree: int
    workbuf_depth: int
    workbuf_capacity: int
    n_slaves: int
    active_slaves: int
    #: The slave declared itself passive (generator dry, PAIRBUF empty).
    passive: bool
    #: Non-empty work batches dispatched to this slave, unreported.
    in_flight_batches: int
    #: Pairs inside those batches.
    in_flight_pairs: int
    #: Engine clock at computation time (virtual or wall); ``None`` when
    #: the engine supplies no clock (latency tracing off, paper policy).
    now: float | None = None


class DispatchPolicy:
    """Base class: the request computation plus shared mirror bookkeeping.

    Subclasses implement :meth:`request`.  The in-flight mirror maps
    ``slave_id -> (batches, pairs)`` of *non-empty* dispatched work not
    yet reported back; empty batches (result-eliciting pings) carry no
    work unit and are never counted.  The mirror must be cleared when a
    slave leaves the protocol — on ``slave_lost`` its unreported batches
    are requeued into WORKBUF, and counting them as still in flight
    would double-charge the queue-depth view (see the regression test in
    ``tests/test_dispatch.py``).
    """

    #: Human-readable policy identifier (scorecards, snapshots).
    name: str = "abstract"
    #: Set when the policy consumes batch round-trip times; the master
    #: then keeps dispatch timestamps (and engines pass a clock) even
    #: when latency tracing is off.
    wants_rtt: bool = False

    def __init__(self) -> None:
        self._batches: dict[int, int] = {}
        self._pairs: dict[int, int] = {}

    # ---- the decision ------------------------------------------------- #

    def request(self, ctx: RequestContext) -> int:
        """The number of further pairs to ask this slave for (E ≥ 0)."""
        raise NotImplementedError

    @staticmethod
    def paper_request(ctx: RequestContext) -> int:
        """The paper's §3.3 formula — the shared baseline every shipped
        policy modulates: ``E = min(α·δ·batchsize, nfree/p)``."""
        if ctx.passive:
            return 0
        delta = ctx.n_slaves / max(1, ctx.active_slaves)
        if ctx.p > 0:
            alpha = ctx.p / ctx.p_prime if ctx.p_prime > 0 else float(ctx.n_slaves)
        else:
            # Nothing offered (bootstrap or a zero request last round):
            # prime the flow with a plain δ·batchsize request.
            alpha = 1.0
        e = min(
            alpha * delta * ctx.batchsize, ctx.nfree / max(1, ctx.n_slaves)
        )
        return max(0, int(e))

    # ---- in-flight mirror hooks (driven by MasterLogic) ---------------- #

    def note_dispatch(self, slave_id: int, n_pairs: int) -> None:
        """A work batch of ``n_pairs`` left for ``slave_id`` (empty
        batches are ignored: they elicit results, they are not work)."""
        if n_pairs <= 0:
            return
        self._batches[slave_id] = self._batches.get(slave_id, 0) + 1
        self._pairs[slave_id] = self._pairs.get(slave_id, 0) + n_pairs

    def note_retired(
        self, slave_id: int, n_pairs: int, rtt: float | None = None
    ) -> None:
        """The results of one previously dispatched non-empty batch
        arrived; ``rtt`` is its dispatch→absorbed round trip when the
        engine supplies a clock."""
        if n_pairs <= 0:
            return
        b = self._batches.get(slave_id, 0) - 1
        p = self._pairs.get(slave_id, 0) - n_pairs
        if b > 0:
            self._batches[slave_id] = b
        else:
            self._batches.pop(slave_id, None)
        if p > 0:
            self._pairs[slave_id] = p
        else:
            self._pairs.pop(slave_id, None)

    def note_slave_lost(self, slave_id: int) -> None:
        """The slave left the protocol; its unreported batches were
        requeued into WORKBUF, so they are no longer in flight."""
        self._batches.pop(slave_id, None)
        self._pairs.pop(slave_id, None)

    def note_slave_stopped(self, slave_id: int) -> None:
        """Clean protocol stop: nothing can be outstanding."""
        self._batches.pop(slave_id, None)
        self._pairs.pop(slave_id, None)

    def attach_signals(self, stragglers) -> None:
        """Attach a zero-argument callable returning the ids of slaves
        the live monitor currently flags as stragglers.  The base class
        (and any policy that doesn't read live signals) ignores it, so
        engines may call this unconditionally."""

    # ---- read side ----------------------------------------------------- #

    def queue_depth(self, slave_id: int) -> tuple[int, int]:
        """``(batches, pairs)`` currently mirrored in flight."""
        return self._batches.get(slave_id, 0), self._pairs.get(slave_id, 0)

    def debug_state(self) -> dict:
        """A JSON-safe snapshot of the policy's live view, embedded in
        flight-recorder dumps so `pace-est postmortem` can report what
        the master believed each slave was holding when the run died."""
        return {
            "policy": self.name,
            "in_flight_batches": {str(k): v for k, v in self._batches.items()},
            "in_flight_pairs": {str(k): v for k, v in self._pairs.items()},
        }


class PaperFormula(DispatchPolicy):
    """The paper's formula, verbatim — the reproduction-fidelity default.

    Ignores the in-flight mirror entirely, so protocol runs under it are
    byte-identical to the pre-policy-seam implementation (asserted by the
    oracle tests and the ``perf_gate.py dispatch`` gate).
    """

    name = "paper"

    def request(self, ctx: RequestContext) -> int:
        return self.paper_request(ctx)


class JBSQ(DispatchPolicy):
    """Join-bounded-shortest-queue over per-slave in-flight batch counts.

    Classic JBSQ(k) admits a request to a server only while its queue is
    shorter than ``k``.  In this pull-based protocol the master cannot
    withhold the work batch itself (the slave asked for it), but it *can*
    bound what it asks the slave to generate next: the grant shrinks
    linearly with the slave's in-flight batch depth and is zero once
    ``k`` batches are outstanding.  Slaves with short queues keep the
    generator warm; slaves juggling a backlog are left to drain it.  The
    aggregate effect is a shallower WORKBUF — pairs are pulled closer to
    when they are dispatched — which is what trims ``queue_master`` p99
    on skewed workloads (one giant cluster, Zipf sizes).

    ``k`` defaults to 2, the protocol's natural outstanding-batch bound:
    a slave aligning its NEXTWORK while a wait-queue grant is already on
    the wire is exactly two batches deep.
    """

    name = "jbsq"

    def __init__(self, k: int = 2) -> None:
        super().__init__()
        if k < 1:
            raise ValueError(f"JBSQ bound k must be >= 1, got {k}")
        self.k = k
        self.name = f"jbsq:{k}"

    def request(self, ctx: RequestContext) -> int:
        base = self.paper_request(ctx)
        if base <= 0:
            return base
        depth = self._batches.get(ctx.slave_id, 0)
        if depth >= self.k:
            return 0
        return int(base * (self.k - depth) / self.k)


class PaceAware(DispatchPolicy):
    """Straggler-aware grant shrinking fed by batch round-trip times.

    The master already observes one round trip per non-empty batch
    (dispatch → results absorbed).  This policy keeps a short window of
    those per slave; a slave whose rtt p90 lags the fleet median by more
    than ``lag`` gets its grant scaled by ``fleet_p90 / slave_p90``
    (floored at ``floor``) — a slow slave is asked to generate less, so
    its turnaround stops being inflated by blocking generation and the
    fleet-wide rtt tail thins.  Slaves the live monitor flags as
    stragglers (stale samples — the same signal the fault deadline keys
    on) are clamped to the floor immediately, before enough rtt samples
    accumulate to prove them slow.

    Works on both engines: under the simulator the window holds virtual
    round trips (deterministic), under mp wall-clock ones.  With fewer
    than ``min_samples`` observations for a slave, or fewer than two
    slaves measured, it falls back to the paper formula.
    """

    name = "pace"
    wants_rtt = True

    def __init__(
        self,
        *,
        window: int = 32,
        min_samples: int = 4,
        lag: float = 1.2,
        floor: float = 0.25,
    ) -> None:
        super().__init__()
        if not 0.0 < floor <= 1.0:
            raise ValueError(f"floor must be in (0, 1], got {floor}")
        if lag < 1.0:
            raise ValueError(f"lag must be >= 1.0, got {lag}")
        self.window = window
        self.min_samples = min_samples
        self.lag = lag
        self.floor = floor
        self._rtts: dict[int, deque[float]] = {}
        self._signals = None

    def attach_signals(self, stragglers) -> None:
        """Attach a zero-argument callable returning the ids of slaves
        the live monitor currently flags as stragglers (e.g.
        :meth:`~repro.telemetry.monitor.RunMonitor.straggler_ids`)."""
        self._signals = stragglers

    def note_retired(
        self, slave_id: int, n_pairs: int, rtt: float | None = None
    ) -> None:
        super().note_retired(slave_id, n_pairs, rtt)
        if n_pairs > 0 and rtt is not None:
            self._rtts.setdefault(slave_id, deque(maxlen=self.window)).append(
                max(0.0, rtt)
            )

    def note_slave_lost(self, slave_id: int) -> None:
        super().note_slave_lost(slave_id)
        # A replacement slave re-enters with a fresh bootstrap; judging
        # it by its dead predecessor's round trips would be unfair both
        # ways.
        self._rtts.pop(slave_id, None)

    @staticmethod
    def _p90(samples: deque[float]) -> float:
        ordered = sorted(samples)
        idx = min(len(ordered) - 1, int(0.9 * (len(ordered) - 1) + 0.5))
        return ordered[idx]

    def pace_factor(self, slave_id: int) -> float:
        """The grant multiplier for one slave (1.0 = full paper grant)."""
        if self._signals is not None and slave_id in set(self._signals()):
            return self.floor
        mine = self._rtts.get(slave_id)
        if mine is None or len(mine) < self.min_samples:
            return 1.0
        p90s = [
            self._p90(window)
            for window in self._rtts.values()
            if len(window) >= self.min_samples
        ]
        if len(p90s) < 2:
            return 1.0
        ordered = sorted(p90s)
        fleet = ordered[len(ordered) // 2]
        own = self._p90(mine)
        if fleet <= 0.0 or own <= self.lag * fleet:
            return 1.0
        return max(self.floor, fleet / own)

    def request(self, ctx: RequestContext) -> int:
        base = self.paper_request(ctx)
        if base <= 0:
            return base
        return int(base * self.pace_factor(ctx.slave_id))

    def debug_state(self) -> dict:
        state = super().debug_state()
        state["rtt_p90"] = {
            str(k): self._p90(w)
            for k, w in self._rtts.items()
            if len(w) >= self.min_samples
        }
        return state


def parse_policy(spec: str) -> tuple[str, dict]:
    """Split a policy spec string into ``(name, kwargs)``.

    ``"paper"`` / ``"jbsq"`` / ``"pace"`` select defaults; ``"jbsq:3"``
    sets the bound.  Raises ``ValueError`` on anything else.
    """
    name, sep, arg = spec.partition(":")
    if name not in POLICY_NAMES:
        raise ValueError(
            f"unknown dispatch policy {spec!r} (expected one of "
            f"{POLICY_NAMES} or 'jbsq:<k>')"
        )
    if not sep:
        return name, {}
    if name != "jbsq":
        raise ValueError(f"policy {name!r} takes no argument, got {spec!r}")
    try:
        return name, {"k": int(arg)}
    except ValueError as exc:
        raise ValueError(f"bad JBSQ bound in {spec!r}") from exc


def make_policy(spec: str | DispatchPolicy) -> DispatchPolicy:
    """Instantiate a dispatch policy from its config spec string.

    A ready :class:`DispatchPolicy` instance passes through unchanged, so
    callers can inject pre-configured (or test-double) policies wherever
    a config string is accepted.
    """
    if isinstance(spec, DispatchPolicy):
        return spec
    name, kwargs = parse_policy(spec)
    if name == "paper":
        return PaperFormula()
    if name == "jbsq":
        return JBSQ(**kwargs)
    return PaceAware()
