"""Shared GST arenas: publish a built index once, attach from every slave.

:class:`GstArenas` is the master-side publisher.  Given a fully built
:class:`~repro.suffix.gst.SuffixArrayGst`, it copies each constituent
array — the int8 sequence arena and offsets, the suffix-array text, the
suffix array itself, the LCP array and the per-position lookup tables —
into named shared-memory segments (one :class:`~repro.parallel.shm
.ArenaRegistry` owns them all), and for the vector pair engine also packs
each slave's per-bucket-range :class:`~repro.suffix.interval_tree
.FlatForest` set into a handful of concatenated arrays
(:func:`~repro.suffix.interval_tree.concat_flat_forests`).

What crosses the process boundary is a :class:`GstBundle`: descriptors
only, a few hundred bytes regardless of dataset size.  A slave calls
:func:`attach_gst` with its own registry and gets back a fully functional
``SuffixArrayGst`` whose arrays are read-only views of the master's pages
— plus its pre-built forests for the vector engine, so the slave skips
forest construction entirely.  The scalar engine rebuilds its list-based
``LcpForest`` locally from the shared LCP view (its per-node Python lists
cannot live in a segment), which still removes every O(N) pickle.

The doubling ranks (``SuffixArray.rank`` / ``rank_levels``) are master-only
construction artefacts and are deliberately not shared; the attached
``SuffixArray`` carries an empty ``rank``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.parallel.shm import ArenaDescriptor, ArenaRegistry
from repro.sequence.collection import EstCollection
from repro.suffix.gst import SuffixArrayGst
from repro.suffix.interval_tree import (
    FlatForest,
    concat_flat_forests,
    split_flat_forests,
)
from repro.suffix.suffix_array import SuffixArray

__all__ = ["GstBundle", "GstArenas", "SharedForestSet", "attach_gst"]

#: The arrays of a ``SuffixArrayGst`` that slaves consume, keyed by the
#: label used in segment names.  ``seq_arena``/``seq_offsets`` reconstruct
#: the collection; the rest map one-to-one onto gst fields.
_GST_FIELDS = (
    "text",
    "starts",
    "lcp",
    "pos_string",
    "pos_offset",
    "left_char",
    "suffix_len",
)


@dataclass(frozen=True)
class SharedForestSet:
    """Descriptors for one slave's packed flat-forest arrays.

    ``arrays`` keys match :func:`concat_flat_forests` output; ``min_depth``
    is the ψ the forests were built with (checked against the consumer's
    psi on attach).
    """

    arrays: dict[str, ArenaDescriptor]
    min_depth: int

    @property
    def nbytes(self) -> int:
        return sum(d.nbytes for d in self.arrays.values())


@dataclass(frozen=True)
class GstBundle:
    """The picklable spawn payload: descriptors, never data.

    ``forest_sets[k]`` is slave ``k``'s packed forests (vector engine) or
    ``None`` (scalar engine rebuilds forests from the shared LCP view).
    """

    n_ests: int
    arrays: dict[str, ArenaDescriptor]
    forest_sets: tuple[SharedForestSet | None, ...]
    psi: int

    @property
    def nbytes(self) -> int:
        """Total shared bytes the bundle points at (not its own size)."""
        total = sum(d.nbytes for d in self.arrays.values())
        total += sum(fs.nbytes for fs in self.forest_sets if fs is not None)
        return total


@dataclass
class GstArenas:
    """Master-side ownership of a run's shared segments.

    Create with :meth:`create`; ``bundle`` is what spawn arguments carry;
    ``forests_for`` hands the *master* zero-copy forests for the degraded
    reabsorb path; ``dispose`` unlinks everything (idempotent — safe from
    ``finally`` blocks and fault paths alike).
    """

    registry: ArenaRegistry
    bundle: GstBundle
    #: Master-local packed forest arrays per slave (vector engine only) —
    #: kept so reabsorption after a dead slave reuses the already-built
    #: forests instead of rebuilding from the LCP array.
    _packed: list[dict[str, np.ndarray] | None] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        gst: SuffixArrayGst,
        ranges_of: list[list[tuple[int, int]]],
        *,
        pair_engine: str,
        psi: int,
    ) -> "GstArenas":
        """Publish ``gst`` (and per-slave forests for the vector engine).

        If any segment creation fails partway, everything already created
        is unlinked before the error propagates — a failed publish leaves
        no trace in ``/dev/shm``.
        """
        registry = ArenaRegistry()
        try:
            seq_arena, seq_offsets = gst.collection.arena()
            arrays = {
                "seq_arena": registry.create(seq_arena, "seqarena"),
                "seq_offsets": registry.create(seq_offsets, "seqoff"),
            }
            for name in _GST_FIELDS:
                arrays[name] = registry.create(getattr(gst, name), name)
            arrays["sa"] = registry.create(gst.sa_struct.sa, "sa")

            packed: list[dict[str, np.ndarray] | None] = []
            forest_sets: list[SharedForestSet | None] = []
            for k, ranges in enumerate(ranges_of):
                if pair_engine != "vector":
                    packed.append(None)
                    forest_sets.append(None)
                    continue
                forests = [
                    gst.flat_forest(min_depth=psi, lo=lo, hi=hi)
                    for lo, hi in ranges
                    if hi > lo
                ]
                pack = concat_flat_forests(forests)
                packed.append(pack)
                forest_sets.append(
                    SharedForestSet(
                        arrays={
                            fname: registry.create(arr, f"f{k}{fname[:6]}")
                            for fname, arr in pack.items()
                        },
                        min_depth=psi,
                    )
                )
            bundle = GstBundle(
                n_ests=gst.collection.n_ests,
                arrays=arrays,
                forest_sets=tuple(forest_sets),
                psi=psi,
            )
        except BaseException:
            registry.dispose()
            raise
        return cls(registry=registry, bundle=bundle, _packed=packed)

    def forests_for(self, slave_id: int) -> list[FlatForest] | None:
        """Zero-copy forests of slave ``slave_id`` for master-side reuse
        (the degraded reabsorb path); ``None`` for the scalar engine."""
        pack = self._packed[slave_id]
        if pack is None:
            return None
        return split_flat_forests(pack, self.bundle.psi)

    def dispose(self) -> None:
        """Unlink every segment (idempotent)."""
        self.registry.dispose()


def attach_gst(
    bundle: GstBundle, registry: ArenaRegistry, slave_id: int
) -> tuple[SuffixArrayGst, list[FlatForest] | None]:
    """Reconstruct a slave's view of the published GST.

    Every array in the returned ``SuffixArrayGst`` (and every field of the
    returned forests, when present) is a read-only view of shared memory;
    nothing is copied.  The caller's ``registry`` tracks the attachments
    and must be closed when the slave is done.
    """
    a = {name: registry.attach(desc) for name, desc in bundle.arrays.items()}
    collection = EstCollection.from_arena(a["seq_arena"], a["seq_offsets"])
    if collection.n_ests != bundle.n_ests:
        raise ValueError(
            f"attached arena has {collection.n_ests} ESTs, bundle says {bundle.n_ests}"
        )
    gst = SuffixArrayGst(
        collection=collection,
        text=a["text"],
        starts=a["starts"],
        sa_struct=SuffixArray(
            text=a["text"], sa=a["sa"], rank=np.empty(0, dtype=np.int64)
        ),
        lcp=a["lcp"],
        pos_string=a["pos_string"],
        pos_offset=a["pos_offset"],
        left_char=a["left_char"],
        suffix_len=a["suffix_len"],
    )
    fs = bundle.forest_sets[slave_id]
    if fs is None:
        return gst, None
    forest_arrays = {
        name: registry.attach(desc) for name, desc in fs.arrays.items()
    }
    return gst, split_flat_forests(forest_arrays, fs.min_depth)
