"""Compatibility shim: machine-event tracing moved to
:mod:`repro.telemetry.trace`.

The recorder began life simulator-only; it now serves both engines (the
mp backend forwards slave-side events to the master over the existing
pipes), so it lives in the engine-neutral telemetry package.  Importing
from here keeps working.
"""

from __future__ import annotations

from repro.telemetry.trace import (
    TraceEvent,
    TraceRecorder,
    render_timeline,
    utilisation,
)

__all__ = ["TraceEvent", "TraceRecorder", "render_timeline", "utilisation"]
