"""The virtual-time cost model of the simulated multiprocessor.

The paper's run-times were measured on a 375 MHz Power3 IBM SP with MPI.
This host cannot reproduce those absolute numbers (one core, Python), so
the scaling experiments (Table 3, Fig. 6, Fig. 8) run on a deterministic
discrete-event simulation that executes the *real* algorithm — real pair
generation, real alignments, real cluster updates — while charging each
operation a virtual cost from this model.  Constants are calibrated to the
magnitudes the paper reports (e.g. GST construction of 20,000 ESTs ≈ 180 s
on 8 processors ⇒ ≈ 0.14 µs per suffix character scanned; alignment ≈ a
few ms each at ~0.15 µs per DP cell; MPI latency ≈ 50 µs), so simulated
component breakdowns land in the same regime as Table 3.

Every quantity fed to the model (suffix counts, DP cells, message sizes)
is measured from the actual run, not assumed — only the per-unit costs
are modelled.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual costs, in seconds."""

    # --- computation ----------------------------------------------------
    #: Per character scanned during bucket-tree construction (§3.1's
    #: O(N l / p) character-at-a-time algorithm).
    gst_char_cost: float = 0.14e-6
    #: Per suffix during the initial bucketing scan.
    partition_suffix_cost: float = 0.02e-6
    #: Per node during the decreasing-string-depth sort (comparison sort).
    sort_node_cost: float = 0.25e-6
    #: Per dynamic-programming cell during pairwise alignment.
    dp_cell_cost: float = 0.15e-6
    #: Fixed overhead per alignment (setup, traceback, bookkeeping).
    align_overhead: float = 0.2e-3
    #: Per promising pair produced by the generator (lset traversal share).
    pair_gen_cost: float = 6.0e-6
    #: Master-side cost per result incorporated (a union-find update is a
    #: few dozen instructions; inverse-Ackermann amortised).
    master_result_cost: float = 0.4e-6
    #: Master-side cost per offered pair (two finds + queue append).
    master_pair_cost: float = 0.6e-6
    #: Master-side fixed cost per interaction (MPI unpack + dispatch).
    master_msg_cost: float = 5.0e-6
    #: Per foreign accepted-pair edge applied during a cross-shard union
    #: exchange (a seed_union is the same few dozen instructions as a
    #: result incorporation); each sync round additionally charges every
    #: shard ``master_msg_cost`` per peer for the exchange messages.
    shard_union_cost: float = 0.5e-6

    # --- communication ---------------------------------------------------
    #: One-way message latency.
    comm_latency: float = 50.0e-6
    #: Seconds per byte of payload (~100 MB/s interconnect).
    comm_per_byte: float = 1.0e-8
    #: Payload bytes per promising pair in a message.
    bytes_per_pair: int = 20
    #: Payload bytes per alignment result in a message.
    bytes_per_result: int = 12
    #: Fixed header bytes per message.
    bytes_header: int = 64

    # --- heterogeneity ---------------------------------------------------
    #: Per-slave compute-speed multipliers: slave ``k``'s computation
    #: takes ``slave_factor(k)`` times the homogeneous cost.  Empty (the
    #: default) means a uniform fleet, as the paper's SP was.  Slaves past
    #: the end of the tuple run at factor 1.0, so a short tuple slows (or
    #: speeds) just the first few ranks.  Communication costs are not
    #: scaled — the interconnect is shared.
    slave_speed_factors: tuple[float, ...] = ()

    # ------------------------------------------------------------------ #

    def slave_factor(self, slave_id: int) -> float:
        """Compute-time multiplier for the given slave rank."""
        if 0 <= slave_id < len(self.slave_speed_factors):
            return self.slave_speed_factors[slave_id]
        return 1.0

    def message_time(self, n_pairs: int, n_results: int) -> float:
        """One-way transfer time of a protocol message."""
        size = (
            self.bytes_header
            + n_pairs * self.bytes_per_pair
            + n_results * self.bytes_per_result
        )
        return self.comm_latency + size * self.comm_per_byte

    def gst_build_time(self, total_suffix_chars: int) -> float:
        """Bucket-tree construction over the given scanned-character volume."""
        return total_suffix_chars * self.gst_char_cost

    def partition_time(self, n_suffixes: int) -> float:
        return n_suffixes * self.partition_suffix_cost

    def sort_time(self, n_nodes: int) -> float:
        import math

        if n_nodes <= 1:
            return n_nodes * self.sort_node_cost
        return n_nodes * math.log2(n_nodes) * self.sort_node_cost

    def alignment_time(self, dp_cells: int, n_alignments: int) -> float:
        return dp_cells * self.dp_cell_cost + n_alignments * self.align_overhead

    def generation_time(self, n_pairs: int) -> float:
        return n_pairs * self.pair_gen_cost

    def master_time(self, n_results: int, n_pairs: int) -> float:
        return (
            self.master_msg_cost
            + n_results * self.master_result_cost
            + n_pairs * self.master_pair_cost
        )
