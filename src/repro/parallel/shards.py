"""Sharded master: N masters with partitioned bucket ownership (ROADMAP 2).

The paper's §3.3 protocol keeps one master owning WORKBUF and the
CLUSTERS union–find, and argues it is not a bottleneck — true at 2002
scales, false once pair volume grows to millions of ESTs (`pace-est
analyze` reports the master-serialisation fraction directly).  This
module generalises the design: ``plan_shards`` partitions the w-prefix
bucket ranges across N :class:`MasterShard` instances with the same LPT
placement used slave-side (:func:`~repro.parallel.partition.assign_buckets`
applied at the shard level), each shard runs its own
:class:`~repro.parallel.protocol.MasterLogic` — WORKBUF, dispatch policy,
local union–find — over a disjoint subset of slaves, and a periodic
cross-shard merge exchanges accepted-pair union logs.

Correctness: the final partition is the connected components of the
accepted-pair graph, acceptance is a pure per-pair decision, and a shard
filtering against a *subset* of the global accepted edges only admits
extra redundant pairs (never drops a needed witness) — exactly the
argument that makes fault recovery and batched dispatch
partition-preserving.  Union exchange is commutative and idempotent
(edges are sets; ``seed_union`` ignores redundant ones), so the merge
cadence is a pure latency/throughput knob: any interleaving of syncs
yields the same final clusters as the single-master and sequential runs.
Foreign edges are absorbed *unlogged* (``seed_union`` does not append to
``merges``), so gossip never echoes: a shard only ever exports merges it
witnessed itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.manager import ClusterManager, MergeRecord
from repro.parallel.partition import assign_buckets
from repro.parallel.protocol import MasterLogic, MasterMsg, MasterStats, SlaveMsg

__all__ = ["ShardPlan", "plan_shards", "MasterShard", "ShardedMaster"]


@dataclass(frozen=True)
class ShardPlan:
    """Static shard topology for one run.

    ``shard_ranges[j]`` are the ``(key, lo, hi)`` bucket ranges shard ``j``
    owns; ``shard_slaves[j]`` the global slave ids it drives;
    ``slave_ranges[k]`` / ``slave_shard[k]`` the per-slave view.  Bucket
    ownership is disjoint by construction, so every promising pair is
    generated under exactly one shard.
    """

    n_shards: int
    shard_ranges: list[list[tuple[int, int, int]]]
    shard_slaves: list[list[int]]
    slave_ranges: list[list[tuple[int, int, int]]]
    slave_shard: list[int]
    slave_loads: list[int]

    @property
    def n_slaves(self) -> int:
        return len(self.slave_shard)

    @property
    def imbalance(self) -> float:
        """max/mean slave load, same convention as
        :attr:`~repro.parallel.partition.BucketAssignment.imbalance`."""
        if not self.slave_loads or sum(self.slave_loads) == 0:
            return 1.0
        mean = sum(self.slave_loads) / len(self.slave_loads)
        return max(self.slave_loads) / mean


def plan_shards(
    ranges: list[tuple[int, int, int]], n_slaves: int, n_shards: int
) -> ShardPlan:
    """Two-level LPT placement: buckets → shards, then each shard's
    buckets → its slaves.

    Slaves are split into contiguous near-equal blocks (shard 0 gets
    slaves ``0..c0-1`` and so on); both placement levels reuse
    :func:`assign_buckets`, which sorts its input internally, so a
    1-shard plan reproduces the unsharded ``assign_buckets(ranges,
    n_slaves)`` placement exactly.
    """
    if n_shards < 1:
        raise ValueError(f"need at least one master shard, got {n_shards}")
    if n_shards > n_slaves:
        raise ValueError(
            f"master shards ({n_shards}) cannot exceed slaves ({n_slaves}): "
            f"every shard must drive at least one slave"
        )
    shard_assignment = assign_buckets(ranges, n_shards)
    base, rem = divmod(n_slaves, n_shards)
    shard_slaves: list[list[int]] = []
    slave_ranges: list[list[tuple[int, int, int]]] = [[] for _ in range(n_slaves)]
    slave_shard = [0] * n_slaves
    slave_loads = [0] * n_slaves
    next_slave = 0
    for j in range(n_shards):
        count = base + (1 if j < rem else 0)
        ids = list(range(next_slave, next_slave + count))
        next_slave += count
        shard_slaves.append(ids)
        sub = assign_buckets(shard_assignment.per_processor[j], count)
        for local, k in enumerate(ids):
            slave_ranges[k] = sub.per_processor[local]
            slave_shard[k] = j
            slave_loads[k] = sub.loads[local]
    return ShardPlan(
        n_shards=n_shards,
        shard_ranges=shard_assignment.per_processor,
        shard_slaves=shard_slaves,
        slave_ranges=slave_ranges,
        slave_shard=slave_shard,
        slave_loads=slave_loads,
    )


class MasterShard:
    """One master shard: a :class:`MasterLogic` plus its union-log cursor.

    ``export_unions`` returns the accepted-merge edges this shard has
    witnessed since the last export; ``absorb_unions`` applies another
    shard's edges through ``seed_union`` (unlogged — absorbed knowledge is
    never re-exported) and prunes WORKBUF pairs the new unions made
    redundant.
    """

    def __init__(self, shard_id: int, logic: MasterLogic) -> None:
        self.shard_id = shard_id
        self.logic = logic
        self._log_cursor = 0
        #: Cumulative cross-shard sync accounting for this shard (how many
        #: foreign union edges it applied, and how many WORKBUF pairs those
        #: unions let it prune) — the monitor's per-shard sync view.
        self.unions_absorbed = 0
        self.sync_pruned = 0

    def export_unions(self) -> list[tuple[int, int]]:
        merges = self.logic.manager.merges
        edges = [
            (rec.pair.est_a, rec.pair.est_b)
            for rec in merges[self._log_cursor:]
        ]
        self._log_cursor = len(merges)
        return edges

    def absorb_unions(
        self, edges: list[tuple[int, int]], *, now: float | None = None
    ) -> tuple[int, int]:
        """Apply foreign accepted-pair edges; returns ``(applied, pruned)``."""
        applied = 0
        for est_a, est_b in edges:
            if self.logic.manager.seed_union(est_a, est_b):
                applied += 1
        pruned = self.logic.prune_workbuf(now=now) if applied else 0
        return applied, pruned


class _PolicyFanout:
    """Facade over the per-shard dispatch policies, presenting the subset
    of the policy surface the engines touch on the master object."""

    def __init__(self, shards: list[MasterShard]) -> None:
        self._shards = shards

    @property
    def wants_rtt(self) -> bool:
        return any(s.logic.policy.wants_rtt for s in self._shards)

    def attach_signals(self, stragglers) -> None:
        for shard in self._shards:
            shard.logic.policy.attach_signals(stragglers)

    def debug_state(self) -> dict:
        """Per-shard policy internals (flight-recorder dumps read this)."""
        return {
            f"shard{shard.shard_id}": shard.logic.policy.debug_state()
            for shard in self._shards
        }


class ShardedMaster:
    """N master shards behind the single-master engine-facing surface.

    Routes every protocol call to the shard owning the slave, aggregates
    the read-only views (stats, depths, stop sets) the engines consume,
    and implements the periodic all-to-all union exchange (:meth:`sync`).
    With ``n_shards == 1`` every call is a plain delegation and
    :meth:`combined` returns the shard's own manager, so the single-shard
    path is bit-identical to the historical single ``MasterLogic``.
    """

    def __init__(
        self,
        plan: ShardPlan,
        *,
        n_ests: int,
        batchsize: int,
        workbuf_capacity: int,
        latency=None,
        policy: str = "paper",
        causal=None,
    ) -> None:
        self.plan = plan
        self.n_ests = n_ests
        self.n_slaves = plan.n_slaves
        self.batchsize = batchsize
        self.shards = [
            MasterShard(
                j,
                MasterLogic(
                    n_ests=n_ests,
                    n_slaves=len(plan.shard_slaves[j]),
                    batchsize=batchsize,
                    workbuf_capacity=workbuf_capacity,
                    latency=latency,
                    policy=policy,
                    causal=causal,
                    causal_actor=(
                        "master" if plan.n_shards == 1 else f"shard{j}"
                    ),
                    causal_shard=j,
                ),
            )
            for j in range(plan.n_shards)
        ]
        self.policy = _PolicyFanout(self.shards)
        self.sync_rounds = 0
        self.unions_exchanged = 0
        self.pairs_pruned = 0

    # ---- routing ------------------------------------------------------ #

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, slave_id: int) -> int:
        return self.plan.slave_shard[slave_id]

    def shard_for(self, slave_id: int) -> MasterShard:
        return self.shards[self.plan.slave_shard[slave_id]]

    def on_message(self, msg: SlaveMsg, *, now: float | None = None) -> MasterMsg | None:
        return self.shard_for(msg.slave_id).logic.on_message(msg, now=now)

    def drain_wait_queue(
        self, *, now: float | None = None
    ) -> list[tuple[int, MasterMsg]]:
        replies: list[tuple[int, MasterMsg]] = []
        for shard in self.shards:
            replies.extend(shard.logic.drain_wait_queue(now=now))
        return replies

    def slave_lost(self, slave_id: int, *, now: float | None = None) -> int:
        return self.shard_for(slave_id).logic.slave_lost(slave_id, now=now)

    def slave_revived(self, slave_id: int) -> None:
        self.shard_for(slave_id).logic.slave_revived(slave_id)

    def finished(self) -> bool:
        return all(shard.logic.finished() for shard in self.shards)

    # ---- aggregate views ---------------------------------------------- #

    @property
    def stopped(self) -> set[int]:
        out: set[int] = set()
        for shard in self.shards:
            out |= shard.logic.stopped
        return out

    @property
    def lost(self) -> set[int]:
        out: set[int] = set()
        for shard in self.shards:
            out |= shard.logic.lost
        return out

    @property
    def workbuf_depth(self) -> int:
        return sum(shard.logic.workbuf_depth for shard in self.shards)

    @property
    def stats(self) -> MasterStats:
        """Fresh sum of the per-shard stats (``workbuf_peak`` sums too,
        an upper bound on the simultaneous global depth)."""
        agg = MasterStats()
        for shard in self.shards:
            st = shard.logic.stats
            agg.messages += st.messages
            agg.results_received += st.results_received
            agg.results_accepted += st.results_accepted
            agg.pairs_offered += st.pairs_offered
            agg.pairs_admitted += st.pairs_admitted
            agg.pairs_dispatched += st.pairs_dispatched
            agg.merges += st.merges
            agg.workbuf_peak += st.workbuf_peak
            agg.pairs_reassigned += st.pairs_reassigned
            agg.pairs_pruned += st.pairs_pruned
        return agg

    def shard_states(self) -> list[dict]:
        """Per-shard monitor view: slave liveness, queue depth and the
        dispatch/sync/prune counters.  Plain JSON-serialisable dicts so
        they can travel the ``/state`` endpoint and ``live_state`` JSONL
        records unchanged."""
        out: list[dict] = []
        for shard in self.shards:
            logic = shard.logic
            slaves = self.plan.shard_slaves[shard.shard_id]
            st = logic.stats
            out.append(
                {
                    "shard_id": shard.shard_id,
                    "slaves": len(slaves),
                    "busy": sum(
                        1
                        for k in slaves
                        if k not in logic.stopped and k not in logic.lost
                    ),
                    "lost": sum(1 for k in slaves if k in logic.lost),
                    "workbuf_depth": logic.workbuf_depth,
                    "pairs_dispatched": st.pairs_dispatched,
                    "merges": st.merges,
                    "pruned": st.pairs_pruned,
                    "unions_absorbed": shard.unions_absorbed,
                    "sync_pruned": shard.sync_pruned,
                }
            )
        return out

    # ---- cross-shard merge -------------------------------------------- #

    def sync(self, *, now: float | None = None) -> list[tuple[int, int]]:
        """One all-to-all union exchange; returns per-shard
        ``(applied, pruned)`` so engines can attribute the cost.

        Exports are gathered from every shard *before* any absorption, so
        the round is symmetric: each shard applies exactly the edges its
        peers had witnessed when the round began.  Because edges are
        commutative/idempotent and absorbed edges are never re-exported,
        any schedule of sync rounds converges to the same partition.
        """
        if len(self.shards) == 1:
            return [(0, 0)]
        exports = [shard.export_unions() for shard in self.shards]
        per_shard: list[tuple[int, int]] = []
        for j, shard in enumerate(self.shards):
            foreign = [
                edge
                for i, edges in enumerate(exports)
                if i != j
                for edge in edges
            ]
            applied, pruned = (
                shard.absorb_unions(foreign, now=now) if foreign else (0, 0)
            )
            shard.unions_absorbed += applied
            shard.sync_pruned += pruned
            per_shard.append((applied, pruned))
        self.sync_rounds += 1
        self.unions_exchanged += sum(a for a, _ in per_shard)
        self.pairs_pruned += sum(p for _, p in per_shard)
        return per_shard

    # ---- final assembly ----------------------------------------------- #

    def combined(self) -> ClusterManager:
        """The global cluster state.

        Single shard: the shard's own manager (bit-identical to the
        unsharded run, merge log included).  Multiple shards: replay every
        shard's witnessed merge log into a fresh manager — ``merge``
        ignores records a previous shard's log already made redundant, so
        the replayed log is a deterministic spanning subset of the union
        of the per-shard logs and the components equal the closure of all
        accepted edges.
        """
        if len(self.shards) == 1:
            return self.shards[0].logic.manager
        combined = ClusterManager(self.n_ests)
        for shard in self.shards:
            for rec in shard.logic.manager.merges:
                combined.merge(rec.pair, rec.result)
        return combined

    def merge_records(self) -> list[MergeRecord]:
        return list(self.combined().merges)
