"""Front door for parallel clustering runs.

Two engines execute the identical protocol:

- ``machine="simulated"`` — the deterministic discrete-event machine with
  a virtual clock (any processor count; this is what regenerates the
  paper's scaling tables and figures);
- ``machine="multiprocessing"`` — real OS processes over pipes
  (functional parallelism; wall-clock numbers are Python's, not the
  paper's IBM SP).

Both accept a :class:`~repro.parallel.faults.FaultPlan` (inject slave
crashes, hangs and delays deterministically) and a
:class:`~repro.parallel.faults.FaultTolerance` (detection timeouts,
restart budget); recovery events land in ``result.faults``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import ClusteringConfig
from repro.core.results import ClusteringResult
from repro.parallel.cost_model import CostModel
from repro.parallel.faults import FaultPlan, FaultTolerance
from repro.parallel.mp_backend import cluster_multiprocessing
from repro.parallel.sim_machine import SimulatedMachine, SimulationReport
from repro.sequence.collection import EstCollection
from repro.suffix.gst import SuffixArrayGst
from repro.telemetry import Telemetry
from repro.telemetry.monitor import RunMonitor

__all__ = ["simulate_clustering", "run_parallel"]


def simulate_clustering(
    collection: EstCollection,
    config: ClusteringConfig | None = None,
    *,
    n_processors: int = 8,
    cost_model: CostModel | None = None,
    gst: SuffixArrayGst | None = None,
    faults: FaultPlan | None = None,
    tolerance: FaultTolerance | None = None,
    telemetry: Telemetry | None = None,
    monitor: RunMonitor | None = None,
    dispatch_policy: str | None = None,
    master_shards: int | None = None,
) -> SimulationReport:
    """Run one simulated parallel clustering and return its full report.

    ``gst`` may be supplied to share one built index across a parameter
    sweep (construction is deterministic, so this does not change
    results — only saves host time).  ``telemetry`` records the run
    (virtual-time trace, metrics, phase accounting) onto
    ``report.result.telemetry``.  ``dispatch_policy`` overrides the
    config's work-allocation policy for this run (tournament sweeps share
    one config across policies); ``master_shards`` likewise overrides the
    shard count (shard-scaling sweeps share one config across counts).
    """
    if dispatch_policy is not None:
        config = replace(config or ClusteringConfig(), dispatch_policy=dispatch_policy)
    if master_shards is not None:
        config = replace(config or ClusteringConfig(), master_shards=master_shards)
    machine = SimulatedMachine(
        collection,
        config,
        n_processors=n_processors,
        cost_model=cost_model,
        gst=gst,
        faults=faults,
        tolerance=tolerance,
        telemetry=telemetry,
        monitor=monitor,
    )
    return machine.run()


def run_parallel(
    collection: EstCollection,
    config: ClusteringConfig | None = None,
    *,
    n_processors: int = 8,
    machine: str = "simulated",
    cost_model: CostModel | None = None,
    faults: FaultPlan | None = None,
    tolerance: FaultTolerance | None = None,
    telemetry: Telemetry | None = None,
    monitor: RunMonitor | None = None,
    dispatch_policy: str | None = None,
    master_shards: int | None = None,
) -> ClusteringResult:
    """Parallel clustering with either engine, returning the result object
    (for the simulated engine, timings are virtual seconds).  ``telemetry``
    instruments the run on either engine with the same span names and
    event schema (the sim-vs-mp parity tests hold the engines to this).
    ``monitor`` attaches a live run monitor to either engine;
    ``dispatch_policy`` overrides the config's work-allocation policy and
    ``master_shards`` its shard count (both engines honour sharding)."""
    if dispatch_policy is not None:
        config = replace(config or ClusteringConfig(), dispatch_policy=dispatch_policy)
    if master_shards is not None:
        config = replace(config or ClusteringConfig(), master_shards=master_shards)
    if machine == "simulated":
        return simulate_clustering(
            collection,
            config,
            n_processors=n_processors,
            cost_model=cost_model,
            faults=faults,
            tolerance=tolerance,
            telemetry=telemetry,
            monitor=monitor,
        ).result
    if machine == "multiprocessing":
        return cluster_multiprocessing(
            collection,
            config,
            n_processors=n_processors,
            faults=faults,
            tolerance=tolerance,
            telemetry=telemetry,
            monitor=monitor,
        )
    raise ValueError(f"unknown machine {machine!r} (simulated|multiprocessing)")
