"""The master–slave clustering protocol (§3.3), engine-agnostic.

:class:`MasterLogic` and :class:`SlaveLogic` implement the paper's
protocol as pure state machines — one method call per message — so the
same code runs unchanged under the discrete-event simulator
(:mod:`repro.parallel.sim_machine`) and the real multiprocessing backend
(:mod:`repro.parallel.mp_backend`).  The engines differ only in how they
move messages and account time.

Protocol recap (from the paper):

- The master holds ``WORKBUF`` (pairs awaiting alignment, a bounded queue)
  and ``CLUSTERS`` (union–find).  Each slave message carries R alignment
  results and P promising pairs.  The master merges clusters for accepted
  results, admits into WORKBUF only pairs whose ESTs are in different
  clusters (count P′), then replies with W ≤ batchsize pairs of work and a
  request for E further pairs, where ``E = min(α · δ · batchsize,
  nfree / p)`` with ``α = P/P′`` and ``δ = p / active_slaves``.  A reply
  with neither work nor a request is withheld and the slave parks on a
  wait queue until work appears.
- Each slave holds its local GST portion (the pair generator), ``PAIRBUF``
  (generated pairs not yet shipped) and ``NEXTWORK`` (the next batch to
  align).  It aligns NEXTWORK while the master's reply travels, so
  communication is overlapped with computation; at bootstrap it generates
  three batchsize portions — aligns the first, ships the third, keeps the
  second as NEXTWORK.

One pragmatic addition: each slave message carries
``has_pending_results`` (it still holds an unreported NEXTWORK), which
lets the master drain in-flight work before sending ``stop`` without
guessing bootstrap portion sizes.

Fault extension (not in the paper, which assumes immortal slaves): the
master tracks the work batches it dispatched to each slave that have not
yet been reported back (``in_flight``).  :meth:`MasterLogic.slave_lost`
removes a dead slave from the protocol — off the wait queue, counted out
of ``active_slaves`` and termination — and requeues its unreported
dispatched pairs into WORKBUF so no accepted merge can be lost.
:meth:`MasterLogic.slave_revived` re-admits the same slave id when the
engine forks a replacement (which re-enters via a fresh bootstrap), and
:meth:`MasterLogic.absorb_pairs` lets an engine feed master-regenerated
pairs through the normal admission filter (degraded recovery; see
:mod:`repro.parallel.faults`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.align.extend import PairAligner
from repro.align.scoring import AlignmentResult
from repro.cluster.manager import ClusterManager
from repro.pairs.ondemand import OnDemandPairGenerator
from repro.pairs.pair import Pair
from repro.parallel.dispatch import DispatchPolicy, RequestContext, make_policy
from repro.telemetry.causal import NO_UNIT

__all__ = ["SlaveMsg", "MasterMsg", "MasterLogic", "SlaveLogic"]


@dataclass(frozen=True)
class SlaveMsg:
    """Slave → master: R results + P promising pairs."""

    slave_id: int
    results: tuple[tuple[Pair, AlignmentResult, bool], ...]
    pairs: tuple[Pair, ...]
    exhausted: bool  # generator dry and PAIRBUF empty (a passive slave)
    has_pending_results: bool  # NEXTWORK non-empty at send time
    #: Sender clock at send time (session-origin seconds for the mp
    #: backend, virtual seconds under the simulator); -1.0 = unstamped,
    #: so receivers can tell "telemetry off" from "sent at t=0".
    sent_at: float = -1.0
    #: Causal work-unit id per pair in ``pairs`` (same length), or empty
    #: when causal tracing is off — the same additive convention as
    #: ``sent_at``, so untraced runs and old pickles are unaffected.
    pair_units: tuple[int, ...] = ()

    @property
    def n_results(self) -> int:
        return len(self.results)

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)


@dataclass(frozen=True)
class MasterMsg:
    """Master → slave: W pairs of work + request for E pairs (or stop)."""

    work: tuple[Pair, ...]
    request: int
    stop: bool = False
    #: See :attr:`SlaveMsg.sent_at`.
    sent_at: float = -1.0
    #: See :attr:`SlaveMsg.pair_units` (ids per pair in ``work``).
    work_units: tuple[int, ...] = ()

    @property
    def n_pairs(self) -> int:
        return len(self.work)


@dataclass
class MasterStats:
    """Master-side accounting (feeds WorkCounters and the busy-fraction
    measurement behind the paper's 'master is under 2% busy' claim)."""

    messages: int = 0
    results_received: int = 0
    results_accepted: int = 0  # alignments strong enough to merge
    pairs_offered: int = 0
    pairs_admitted: int = 0  # Σ P′
    pairs_dispatched: int = 0
    merges: int = 0
    workbuf_peak: int = 0
    pairs_reassigned: int = 0  # in-flight pairs requeued from lost slaves
    pairs_pruned: int = 0  # WORKBUF pairs dropped by cross-shard merges


class MasterLogic:
    """The master processor's state machine."""

    def __init__(
        self,
        n_ests: int,
        n_slaves: int,
        *,
        batchsize: int,
        workbuf_capacity: int,
        latency=None,
        policy: DispatchPolicy | str = "paper",
        causal=None,
        causal_actor: str = "master",
        causal_shard: int = 0,
    ) -> None:
        if n_slaves < 1:
            raise ValueError("need at least one slave")
        self.n_slaves = n_slaves
        self.batchsize = batchsize
        self.workbuf_capacity = workbuf_capacity
        self.manager = ClusterManager(n_ests)
        self.workbuf: deque[Pair] = deque()
        self.passive: set[int] = set()
        self.stopped: set[int] = set()
        self.waiting: set[int] = set()
        self.lost: set[int] = set()
        self.pending_results: dict[int, bool] = {}
        # Work batches dispatched to each slave and not yet reported back.
        # Replies and slave messages strictly alternate per slave, and the
        # results in a message cover the batch from the *previous* reply
        # (the newest batch is the NEXTWORK the slave is still holding),
        # so at most the two newest batches are ever outstanding.
        self.in_flight: dict[int, deque[tuple[Pair, ...]]] = {}
        self.stats = MasterStats()
        #: Optional :class:`~repro.telemetry.latency.LatencyStore`.  When
        #: set, the engine passes its clock as ``now=`` on every call and
        #: the master observes ``queue_master`` (per-pair WORKBUF dwell)
        #: and ``rtt`` (dispatch → results absorbed, per non-empty batch).
        #: When ``None`` (the default) no timestamp bookkeeping happens at
        #: all — the hot path is exactly the pre-latency code.
        self.latency = latency
        #: The work-allocation policy computing each reply's request size
        #: (:mod:`repro.parallel.dispatch`).  The default reproduces the
        #: paper's formula bit for bit.
        self.policy = make_policy(policy)
        # Dispatch timestamps are kept for the latency store's rtt stage
        # and for policies (PaceAware) that consume round-trip times even
        # when latency tracing is off.
        self._track_rtt = latency is not None or self.policy.wants_rtt
        # Admission timestamps, aligned element-for-element with
        # ``workbuf`` / ``in_flight`` while ``latency`` is set.
        self._workbuf_ts: deque[float] = deque()
        self._flight_ts: dict[int, deque[float]] = {}
        #: Optional :class:`~repro.telemetry.causal.CausalRecorder`.  When
        #: set, every pair's work-unit id is mirrored alongside WORKBUF
        #: and the in-flight batches (the same mirror-deque pattern as
        #: the latency timestamps) and lifecycle events are recorded at
        #: each custody transfer.  ``None`` (the default) keeps the hot
        #: path free of any unit bookkeeping.
        self.causal = causal
        self.causal_actor = causal_actor
        self.causal_shard = causal_shard
        self._workbuf_units: deque[int] = deque()
        self._flight_units: dict[int, deque[tuple[int, ...]]] = {}
        self._last_units: tuple[int, ...] = ()  # units of the last _take_work
        self._recovery_mint = None  # lazy UnitMinter for absorb_pairs

    # ------------------------------------------------------------------ #

    @property
    def active_slaves(self) -> int:
        return self.n_slaves - len(self.passive)

    @property
    def nfree(self) -> int:
        return self.workbuf_capacity - len(self.workbuf)

    @property
    def workbuf_depth(self) -> int:
        return len(self.workbuf)

    def finished(self) -> bool:
        return len(self.stopped | self.lost) == self.n_slaves

    # ------------------------------------------------------------------ #

    def on_message(self, msg: SlaveMsg, *, now: float | None = None) -> MasterMsg | None:
        """Incorporate one slave message; return the reply, or ``None`` to
        park the slave on the wait queue (reply later via
        :meth:`drain_wait_queue`).

        ``now`` is the engine's clock (wall or virtual) and is only
        consulted when a latency store is attached.
        """
        self.stats.messages += 1
        self.pending_results[msg.slave_id] = msg.has_pending_results
        # The results just received cover every dispatched batch except
        # the newest one (still held as the slave's NEXTWORK).
        flight = self.in_flight.get(msg.slave_id)
        if flight:
            fts = self._flight_ts.get(msg.slave_id)
            funits = self._flight_units.get(msg.slave_id) if self.causal else None
            while len(flight) > 1:
                batch = flight.popleft()
                rtt = None
                if fts:
                    sent = fts.popleft()
                    # A retired batch's results are in this message: its
                    # round trip ends here.  Empty batches (result-eliciting
                    # pings) carry no work unit, so they don't observe.
                    if batch and now is not None:
                        rtt = now - sent
                        if self.latency is not None:
                            self.latency.observe("rtt", rtt)
                if funits:
                    units = funits.popleft()
                    if batch:
                        self.causal.record_counts(
                            "absorbed",
                            units,
                            actor=self.causal_actor,
                            ts=now if now is not None else 0.0,
                            slave=msg.slave_id,
                        )
                if batch:
                    self.policy.note_retired(msg.slave_id, len(batch), rtt)

        # 1. Update CLUSTERS from the R results.
        for pair, result, accepted in msg.results:
            self.stats.results_received += 1
            if accepted:
                self.stats.results_accepted += 1
                if not self.manager.same_cluster(pair.est_a, pair.est_b):
                    self.manager.merge(pair, result)
                    self.stats.merges += 1

        # 2. Selectively admit offered pairs: only if the ESTs are in
        #    different clusters (the P′ selection of §3.3).
        # The E formula keeps inflow below nfree/p per slave, so overflow
        # is at most transient; admission is never refused because a
        # dropped pair could lose a merge witness (capacity is the *target*
        # the request computation steers toward, as in §3.3).
        admitted = 0
        if self.causal is None:
            for pair in msg.pairs:
                self.stats.pairs_offered += 1
                if not self.manager.same_cluster(pair.est_a, pair.est_b):
                    self.workbuf.append(pair)
                    admitted += 1
        else:
            admitted = self._admit_traced(msg.pairs, msg.pair_units, now)
        if self.latency is not None and admitted:
            self._stamp_admissions(admitted, now)
        self.stats.pairs_admitted += admitted
        if len(self.workbuf) > self.stats.workbuf_peak:
            self.stats.workbuf_peak = len(self.workbuf)

        if msg.exhausted:
            self.passive.add(msg.slave_id)

        return self._reply_for(msg.slave_id, len(msg.pairs), admitted, now)

    def _stamp_admissions(self, n: int, now: float | None) -> None:
        """Extend ``_workbuf_ts`` to mirror ``n`` pairs just appended."""
        t = now if now is not None else 0.0
        self._workbuf_ts.extend(t for _ in range(n))

    def _admit_traced(
        self, pairs: tuple[Pair, ...], units: tuple[int, ...], now: float | None
    ) -> int:
        """The admission loop with unit mirroring: same filter, plus the
        unit id of every admitted pair lands in ``_workbuf_units`` and
        admitted/pruned counts become causal events."""
        if len(units) != len(pairs):
            units = (NO_UNIT,) * len(pairs)
        admitted = 0
        kept: dict[int, int] = {}
        dropped: dict[int, int] = {}
        for pair, unit in zip(pairs, units):
            self.stats.pairs_offered += 1
            if not self.manager.same_cluster(pair.est_a, pair.est_b):
                self.workbuf.append(pair)
                self._workbuf_units.append(unit)
                kept[unit] = kept.get(unit, 0) + 1
                admitted += 1
            else:
                dropped[unit] = dropped.get(unit, 0) + 1
        t = now if now is not None else 0.0
        for unit, n in kept.items():
            if unit != NO_UNIT:
                self.causal.record(
                    "admitted", unit, n, actor=self.causal_actor, ts=t
                )
        for unit, n in dropped.items():
            if unit != NO_UNIT:
                self.causal.record(
                    "pruned", unit, n, actor=self.causal_actor, ts=t,
                    reason="admission",
                )
        return admitted

    def _take_work(self, now: float | None) -> tuple[Pair, ...]:
        """Pop up to one batchsize of work, observing per-pair WORKBUF
        dwell time when latency tracing is on.  The popped pairs' unit
        ids land in ``_last_units`` (empty when causal tracing is off)."""
        w = min(self.batchsize, len(self.workbuf))
        work = tuple(self.workbuf.popleft() for _ in range(w))
        if self.causal is not None:
            self._last_units = tuple(
                self._workbuf_units.popleft() if self._workbuf_units else NO_UNIT
                for _ in range(w)
            )
        if self.latency is not None:
            t = now if now is not None else 0.0
            for _ in range(w):
                if not self._workbuf_ts:
                    break  # drained out-of-band (degraded recovery)
                self.latency.observe("queue_master", t - self._workbuf_ts.popleft())
        self.stats.pairs_dispatched += len(work)
        return work

    def _reply_for(
        self, slave_id: int, p: int, p_prime: int, now: float | None = None
    ) -> MasterMsg | None:
        # W: up to batchsize pairs of work.
        work = self._take_work(now)

        # E: how many pairs to request next time.
        e = self._compute_request(slave_id, p, p_prime, now)

        if work or e > 0:
            self._note_dispatch(slave_id, work, now)
            if self.causal is not None:
                return MasterMsg(work=work, request=e, work_units=self._last_units)
            return MasterMsg(work=work, request=e)

        # Nothing to give and nothing to ask for.
        if self._all_done(slave_id):
            self._note_stop(slave_id)
            return MasterMsg(work=(), request=0, stop=True)
        self.waiting.add(slave_id)
        return None

    def _note_dispatch(
        self, slave_id: int, work: tuple[Pair, ...], now: float | None = None
    ) -> None:
        """Record a (possibly empty) dispatched batch; emptiness matters
        because receipt bookkeeping relies on strict reply/message
        alternation per slave."""
        self.in_flight.setdefault(slave_id, deque()).append(work)
        self.policy.note_dispatch(slave_id, len(work))
        if self._track_rtt:
            self._flight_ts.setdefault(slave_id, deque()).append(
                now if now is not None else 0.0
            )
        if self.causal is not None:
            units = self._last_units if work else ()
            if not work:
                self._last_units = ()
            self._flight_units.setdefault(slave_id, deque()).append(units)
            if units:
                self.causal.record_counts(
                    "dispatched",
                    units,
                    actor=self.causal_actor,
                    ts=now if now is not None else 0.0,
                    slave=slave_id,
                )

    def _note_stop(self, slave_id: int) -> None:
        self.stopped.add(slave_id)
        self.in_flight.pop(slave_id, None)
        self._flight_ts.pop(slave_id, None)
        self._flight_units.pop(slave_id, None)
        self.policy.note_slave_stopped(slave_id)

    def _compute_request(
        self, slave_id: int, p: int, p_prime: int, now: float | None = None
    ) -> int:
        """Grant size E for this reply, delegated to the dispatch policy.

        Passivity is a protocol invariant (a passive slave must never be
        asked for pairs or termination deadlocks), so it is enforced here
        rather than left to policies.
        """
        if slave_id in self.passive:
            return 0
        batches, pairs = self.policy.queue_depth(slave_id)
        ctx = RequestContext(
            slave_id=slave_id,
            p=p,
            p_prime=p_prime,
            batchsize=self.batchsize,
            nfree=self.nfree,
            workbuf_depth=len(self.workbuf),
            workbuf_capacity=self.workbuf_capacity,
            n_slaves=self.n_slaves,
            active_slaves=self.active_slaves,
            passive=False,
            in_flight_batches=batches,
            in_flight_pairs=pairs,
            now=now,
        )
        return max(0, int(self.policy.request(ctx)))

    def _all_done(self, slave_id: int) -> bool:
        """May this slave be stopped outright?"""
        if self.workbuf:
            return False
        if self.pending_results.get(slave_id, False):
            return False
        # Only safe when no pair can ever appear again: every slave passive.
        return len(self.passive) == self.n_slaves

    # ------------------------------------------------------------------ #

    def drain_wait_queue(
        self, *, now: float | None = None
    ) -> list[tuple[int, MasterMsg]]:
        """Replies owed to wait-queued slaves, issued when work appeared or
        global termination became decidable.  Call after every
        :meth:`on_message`."""
        replies: list[tuple[int, MasterMsg]] = []
        for slave_id in sorted(self.waiting):
            if self.workbuf:
                self.waiting.discard(slave_id)
                work = self._take_work(now)
                self._note_dispatch(slave_id, work, now)
                if self.causal is not None:
                    replies.append(
                        (
                            slave_id,
                            MasterMsg(
                                work=work, request=0, work_units=self._last_units
                            ),
                        )
                    )
                else:
                    replies.append((slave_id, MasterMsg(work=work, request=0)))
            elif len(self.passive) == self.n_slaves:
                self.waiting.discard(slave_id)
                if self.pending_results.get(slave_id, False):
                    # Elicit the final results with an empty work message.
                    self._note_dispatch(slave_id, (), now)
                    replies.append((slave_id, MasterMsg(work=(), request=0)))
                else:
                    self._note_stop(slave_id)
                    replies.append((slave_id, MasterMsg(work=(), request=0, stop=True)))
        return replies

    # ------------------------------------------------------------------ #
    # Fault transitions (engine-driven; see repro.parallel.faults).
    # ------------------------------------------------------------------ #

    def slave_lost(self, slave_id: int, *, now: float | None = None) -> int:
        """Drop a dead slave from the protocol.

        The slave leaves the wait queue, stops counting toward
        ``active_slaves`` and termination, and every pair the master had
        dispatched to it without seeing results is requeued into WORKBUF
        (filtered through the usual already-co-clustered test).  Returns
        the number of pairs requeued.
        """
        if slave_id in self.stopped:
            return 0  # stopped cleanly first; nothing outstanding
        self.lost.add(slave_id)
        self.passive.add(slave_id)
        self.waiting.discard(slave_id)
        self.pending_results[slave_id] = False
        self._flight_ts.pop(slave_id, None)
        # Clear the policy's in-flight mirror *before* the engine gets a
        # chance to drain or reabsorb: grants issued just before a
        # drain_workbuf on the degraded-recovery path would otherwise
        # double-count the dead slave's pairs in the JBSQ queue-depth view.
        self.policy.note_slave_lost(slave_id)
        requeued = 0
        if self.causal is None:
            for batch in self.in_flight.pop(slave_id, ()):
                for pair in batch:
                    if not self.manager.same_cluster(pair.est_a, pair.est_b):
                        self.workbuf.append(pair)
                        requeued += 1
        else:
            batches = self.in_flight.pop(slave_id, deque())
            unit_batches = self._flight_units.pop(slave_id, deque())
            kept: dict[int, int] = {}
            dropped: dict[int, int] = {}
            for i, batch in enumerate(batches):
                units = unit_batches[i] if i < len(unit_batches) else ()
                if len(units) != len(batch):
                    units = (NO_UNIT,) * len(batch)
                for pair, unit in zip(batch, units):
                    if not self.manager.same_cluster(pair.est_a, pair.est_b):
                        self.workbuf.append(pair)
                        self._workbuf_units.append(unit)
                        kept[unit] = kept.get(unit, 0) + 1
                        requeued += 1
                    else:
                        dropped[unit] = dropped.get(unit, 0) + 1
            t = now if now is not None else 0.0
            for unit, n in kept.items():
                if unit != NO_UNIT:
                    self.causal.record(
                        "requeued", unit, n, actor=self.causal_actor, ts=t,
                        slave=slave_id,
                    )
            for unit, n in dropped.items():
                if unit != NO_UNIT:
                    self.causal.record(
                        "pruned", unit, n, actor=self.causal_actor, ts=t,
                        slave=slave_id, reason="requeue",
                    )
        if self.latency is not None and requeued:
            # Requeued pairs restart the queue clock: their first wait
            # ended in a dead slave and was never work.
            self._stamp_admissions(requeued, now)
        self.stats.pairs_reassigned += requeued
        if len(self.workbuf) > self.stats.workbuf_peak:
            self.stats.workbuf_peak = len(self.workbuf)
        return requeued

    def slave_revived(self, slave_id: int) -> None:
        """Re-admit a slave id whose replacement process is about to
        re-enter via a fresh bootstrap message."""
        self.lost.discard(slave_id)
        self.passive.discard(slave_id)
        self.stopped.discard(slave_id)
        self.waiting.discard(slave_id)
        self.pending_results.pop(slave_id, None)
        self.in_flight.pop(slave_id, None)
        self._flight_ts.pop(slave_id, None)
        self._flight_units.pop(slave_id, None)
        # The replacement process starts with nothing in flight.
        self.policy.note_slave_lost(slave_id)

    def prune_workbuf(self, *, now: float | None = None) -> int:
        """Drop WORKBUF pairs whose ESTs became co-clustered out-of-band
        (foreign unions absorbed during a cross-shard merge).  Admission
        already filters co-clustered pairs, but a merge learned from
        another shard can retroactively make queued pairs redundant; they
        would be dropped at dispatch anyway on the sequential-identity
        argument, so pruning here only saves queue space and alignment
        work.  Returns the number of pairs dropped."""
        if not self.workbuf:
            return 0
        redundant = self.manager.same_cluster_batch(list(self.workbuf))
        pruned = sum(redundant)
        if not pruned:
            return 0
        if self.latency is not None and len(self._workbuf_ts) == len(self.workbuf):
            self._workbuf_ts = deque(
                ts for ts, skip in zip(self._workbuf_ts, redundant) if not skip
            )
        if self.causal is not None and len(self._workbuf_units) == len(self.workbuf):
            self.causal.record_counts(
                "pruned",
                (u for u, skip in zip(self._workbuf_units, redundant) if skip),
                actor=self.causal_actor,
                ts=now if now is not None else 0.0,
                reason="sync",
            )
            self._workbuf_units = deque(
                u for u, skip in zip(self._workbuf_units, redundant) if not skip
            )
        self.workbuf = deque(
            pair for pair, skip in zip(self.workbuf, redundant) if not skip
        )
        self.stats.pairs_pruned += pruned
        return pruned

    def absorb_pairs(self, pairs: Iterable[Pair], *, now: float | None = None) -> int:
        """Admit engine-regenerated pairs (degraded recovery) through the
        normal selection filter.  Returns the number admitted.

        Under causal tracing each call mints a fresh master-origin work
        unit for its batch — the dead slave's ids cannot be recovered,
        and a distinct recovery unit keeps the conservation ledger exact.
        """
        if self.causal is None:
            admitted = 0
            for pair in pairs:
                self.stats.pairs_offered += 1
                if not self.manager.same_cluster(pair.est_a, pair.est_b):
                    self.workbuf.append(pair)
                    admitted += 1
        else:
            if self._recovery_mint is None:
                from repro.telemetry.causal import UnitMinter

                # The shard index rides the incarnation bits so recovery
                # units minted by different shards can never collide.
                self._recovery_mint = UnitMinter(-1, self.causal_shard)
            pairs = tuple(pairs)
            unit = self._recovery_mint()
            t = now if now is not None else 0.0
            self.causal.record(
                "generated", unit, len(pairs), actor=self.causal_actor, ts=t,
                reason="recovery",
            )
            admitted = self._admit_traced(pairs, (unit,) * len(pairs), now)
        if self.latency is not None and admitted:
            self._stamp_admissions(admitted, now)
        self.stats.pairs_admitted += admitted
        if len(self.workbuf) > self.stats.workbuf_peak:
            self.stats.workbuf_peak = len(self.workbuf)
        return admitted


@dataclass
class SlaveStepCosts:
    """Work performed during one protocol step (for the cost model).

    ``dp_cells`` is the work the selected host engine actually did;
    ``model_cells`` is the banded-DP-equivalent work the simulated
    machine charges virtual time for (identical when the banded engine
    runs; the band area when the fast k-difference engine runs).
    """

    n_alignments: int = 0
    dp_cells: int = 0
    model_cells: int = 0
    pairs_generated_blocking: int = 0


class SlaveLogic:
    """One slave processor's state machine."""

    def __init__(
        self,
        slave_id: int,
        generator: OnDemandPairGenerator,
        aligner: PairAligner,
        *,
        batchsize: int,
        pairbuf_capacity: int,
        minter=None,
    ) -> None:
        self.slave_id = slave_id
        self.generator = generator
        self.aligner = aligner
        self.batchsize = batchsize
        self.pairbuf_capacity = pairbuf_capacity
        self.pairbuf: deque[Pair] = deque()
        self.nextwork: tuple[Pair, ...] = ()
        self.done = False
        self.last_costs = SlaveStepCosts()
        self.total_alignments = 0
        self.total_dp_cells = 0
        self._aligned: tuple[tuple[Pair, AlignmentResult, bool], ...] | None = None
        self._align_costs = SlaveStepCosts()
        #: Optional :class:`~repro.telemetry.causal.UnitMinter`.  When
        #: set, every generated batch is minted a work-unit id, PAIRBUF
        #: carries a unit mirror, and lifecycle facts accumulate in
        #: ``causal_log`` as ``(event, unit, n)`` for the engine to drain
        #: (:meth:`drain_causal`) and stamp with its own clock.  ``None``
        #: keeps the slave loop free of unit bookkeeping.
        self.minter = minter
        self.causal_log: list[tuple[str, int, int]] = []
        self._pairbuf_units: deque[int] = deque()
        self._nextwork_units: tuple[int, ...] = ()

    # ------------------------------------------------------------------ #

    def drain_causal(self) -> list[tuple[str, int, int]]:
        """Return and clear the ``(event, unit, n)`` facts accumulated
        since the last drain (the engine stamps them with its clock)."""
        out = self.causal_log
        self.causal_log = []
        return out

    def _mint(self, event: str, pairs) -> int:
        unit = self.minter()
        if pairs:
            self.causal_log.append((event, unit, len(pairs)))
        return unit

    def _log_aligned(self, units: tuple[int, ...]) -> None:
        counts: dict[int, int] = {}
        for u in units:
            if u != NO_UNIT:
                counts[u] = counts.get(u, 0) + 1
        for u, n in counts.items():
            self.causal_log.append(("aligned", u, n))

    # ------------------------------------------------------------------ #

    def bootstrap(self) -> SlaveMsg:
        """The paper's three-portion start-up: align the first batchsize
        portion, keep the second as NEXTWORK, ship the third."""
        costs = SlaveStepCosts()
        p1 = self.generator.next_batch(self.batchsize)
        p2 = self.generator.next_batch(self.batchsize)
        p3 = self.generator.next_batch(self.batchsize)
        costs.pairs_generated_blocking += len(p1) + len(p2) + len(p3)
        units: tuple[int, ...] = ()
        if self.minter is not None:
            u1 = self._mint("generated", p1)
            u2 = self._mint("generated", p2)
            u3 = self._mint("generated", p3)
            self._nextwork_units = (u2,) * len(p2)
            units = (u3,) * len(p3)
            if p1:
                self.causal_log.append(("aligned", u1, len(p1)))
        results = self._align_batch(p1, costs)
        self.nextwork = tuple(p2)
        self.last_costs = costs
        return SlaveMsg(
            slave_id=self.slave_id,
            results=results,
            pairs=tuple(p3),
            exhausted=self.generator.exhausted and not self.pairbuf,
            has_pending_results=bool(self.nextwork),
            pair_units=units,
        )

    def align_pending(self) -> SlaveStepCosts:
        """Align the current NEXTWORK (the work done while the master's
        reply is in flight).  Idempotent per interaction; the engines call
        it right after a send to learn its duration, :meth:`finish_step`
        consumes the results."""
        if self._aligned is None:
            costs = SlaveStepCosts()
            self._aligned = self._align_batch(list(self.nextwork), costs)
            self._align_costs = costs
            if self.minter is not None and self._nextwork_units:
                self._log_aligned(self._nextwork_units)
        return self._align_costs

    def step(self, reply: MasterMsg) -> SlaveMsg | None:
        """One full interaction (used by the multiprocessing backend)."""
        self.align_pending()
        return self.finish_step(reply)

    def finish_step(self, reply: MasterMsg) -> SlaveMsg | None:
        """Act on the master's reply, using the results prepared by
        :meth:`align_pending`."""
        if self._aligned is None:
            raise RuntimeError("finish_step before align_pending")
        results = self._aligned
        costs = self._align_costs
        self._aligned = None
        self._align_costs = SlaveStepCosts()
        if reply.stop:
            if self.nextwork:
                raise RuntimeError(
                    f"slave {self.slave_id} stopped with {len(self.nextwork)} "
                    f"unreported results"
                )
            self.done = True
            self.last_costs = costs
            return None
        self.nextwork = tuple(reply.work)
        if self.minter is not None:
            self._nextwork_units = (
                reply.work_units
                if len(reply.work_units) == len(reply.work)
                else (NO_UNIT,) * len(reply.work)
            )

        # Fill PAIRBUF toward the requested E (blocking generation; idle
        # generation during the wait is modelled by the engine via
        # :meth:`idle_generate`).
        want = reply.request
        if want > len(self.pairbuf):
            fetched = self.generator.next_batch(want - len(self.pairbuf))
            costs.pairs_generated_blocking += len(fetched)
            self.pairbuf.extend(fetched)
            if self.minter is not None and fetched:
                unit = self._mint("generated", fetched)
                self._pairbuf_units.extend((unit,) * len(fetched))
        p = min(want, len(self.pairbuf))
        outgoing = tuple(self.pairbuf.popleft() for _ in range(p))
        units: tuple[int, ...] = ()
        if self.minter is not None and p:
            units = tuple(
                self._pairbuf_units.popleft() if self._pairbuf_units else NO_UNIT
                for _ in range(p)
            )

        self.last_costs = costs
        return SlaveMsg(
            slave_id=self.slave_id,
            results=results,
            pairs=outgoing,
            exhausted=self.generator.exhausted and not self.pairbuf,
            has_pending_results=bool(self.nextwork),
            pair_units=units,
        )

    def idle_generate(self, max_pairs: int) -> int:
        """Generate up to ``max_pairs`` into PAIRBUF (capacity permitting)
        — the paper's 'generate while waiting for the master'."""
        room = self.pairbuf_capacity - len(self.pairbuf)
        budget = min(max_pairs, room)
        if budget <= 0:
            return 0
        fetched = self.generator.next_batch(budget)
        self.pairbuf.extend(fetched)
        if self.minter is not None and fetched:
            unit = self._mint("generated", fetched)
            self._pairbuf_units.extend((unit,) * len(fetched))
        return len(fetched)

    # ------------------------------------------------------------------ #

    def _align_batch(
        self, pairs: list[Pair], costs: SlaveStepCosts
    ) -> tuple[tuple[Pair, AlignmentResult, bool], ...]:
        cells_before = self.aligner.dp_cells_total
        model_before = self.aligner.model_cells_total
        decisions = self.aligner.align_and_decide_batch(pairs)
        out = [
            (pair, result, accepted)
            for pair, (result, accepted) in zip(pairs, decisions)
        ]
        costs.n_alignments += len(pairs)
        costs.dp_cells += self.aligner.dp_cells_total - cells_before
        costs.model_cells += self.aligner.model_cells_total - model_before
        self.total_alignments += costs.n_alignments
        self.total_dp_cells = self.aligner.dp_cells_total
        return tuple(out)
