"""Real-process execution of the master–slave protocol.

The same :class:`~repro.parallel.protocol.MasterLogic` /
:class:`~repro.parallel.protocol.SlaveLogic` state machines run here over
genuine OS processes and pipes (the paper used MPI; ``multiprocessing``
pipes are the stdlib equivalent of its point-to-point sends).  The master
lives in the calling process; each slave is a forked worker owning its
bucket ranges and running pair generation and alignment locally.

This backend demonstrates protocol correctness under true asynchrony and
real serialization.  Wall-clock *speedup* is the simulator's department:
this host has a single core, and Python's pickling costs dwarf a 2002
interconnect — see DESIGN.md §2.

One engineering shortcut, documented: the suffix array is built once in
the master and shipped to slaves, rather than each slave building only
its bucket subtrees.  The distributed-construction cost model is exercised
by the simulator; here the index is read-only shared state and forking
makes the copy cheap.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait

from repro.align.extend import PairAligner
from repro.cluster.greedy import WorkCounters
from repro.core.config import ClusteringConfig
from repro.core.results import ClusteringResult
from repro.pairs.ondemand import OnDemandPairGenerator
from repro.pairs.sa_generator import SaPairGenerator
from repro.parallel.partition import assign_buckets
from repro.parallel.protocol import MasterLogic, SlaveLogic
from repro.sequence.collection import EstCollection
from repro.suffix.gst import SuffixArrayGst
from repro.util.timing import TimingBreakdown

__all__ = ["cluster_multiprocessing"]


@dataclass(frozen=True)
class _SlaveStats:
    produced: int
    alignments: int
    dp_cells: int


def _slave_worker(
    conn: Connection,
    gst: SuffixArrayGst,
    ranges: list[tuple[int, int]],
    config: ClusteringConfig,
    slave_id: int,
) -> None:
    """Slave process main: bootstrap, then request/response until stop."""
    generator = SaPairGenerator(gst, psi=config.psi, ranges=ranges)
    aligner = PairAligner(
        gst.collection,
        params=config.scoring,
        criteria=config.acceptance,
        band_policy=config.band_policy,
        use_seed_extension=config.use_seed_extension,
        engine=config.align_engine,
    )
    logic = SlaveLogic(
        slave_id=slave_id,
        generator=OnDemandPairGenerator(generator.pairs()),
        aligner=aligner,
        batchsize=config.batchsize,
        pairbuf_capacity=config.pairbuf_capacity,
    )
    conn.send(logic.bootstrap())
    while True:
        reply = conn.recv()
        out = logic.step(reply)
        if out is None:
            conn.send(
                _SlaveStats(
                    produced=logic.generator.produced,
                    alignments=logic.total_alignments,
                    dp_cells=logic.total_dp_cells,
                )
            )
            conn.close()
            return
        conn.send(out)


def cluster_multiprocessing(
    collection: EstCollection,
    config: ClusteringConfig | None = None,
    *,
    n_processors: int = 4,
) -> ClusteringResult:
    """Cluster with 1 master process + ``n_processors - 1`` slave processes."""
    if n_processors < 2:
        raise ValueError("the parallel machine needs a master and >= 1 slave")
    config = config or ClusteringConfig()
    timings = TimingBreakdown()
    n_slaves = n_processors - 1

    with timings.measure("gst_construction"):
        gst = SuffixArrayGst.build(collection)
    with timings.measure("partitioning"):
        ranges = gst.bucket_ranges(config.w)
        assignment = assign_buckets(ranges, n_slaves)

    ctx = mp.get_context("fork")
    conns: list[Connection] = []
    procs: list[mp.Process] = []
    try:
        for k in range(n_slaves):
            parent_conn, child_conn = ctx.Pipe()
            own = [(lo, hi) for _key, lo, hi in assignment.per_processor[k]]
            proc = ctx.Process(
                target=_slave_worker,
                args=(child_conn, gst, own, config, k),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        master = MasterLogic(
            n_ests=collection.n_ests,
            n_slaves=n_slaves,
            batchsize=config.batchsize,
            workbuf_capacity=config.workbuf_capacity,
        )
        stats: dict[int, _SlaveStats] = {}
        with timings.measure("alignment"):
            open_conns = {conn: k for k, conn in enumerate(conns)}
            while open_conns:
                for conn in wait(list(open_conns)):
                    k = open_conns[conn]
                    msg = conn.recv()
                    if isinstance(msg, _SlaveStats):
                        stats[k] = msg
                        conn.close()
                        del open_conns[conn]
                        continue
                    reply = master.on_message(msg)
                    if reply is not None:
                        conn.send(reply)
                    for waiter_id, waiter_reply in master.drain_wait_queue():
                        conns[waiter_id].send(waiter_reply)
        if not master.finished():  # pragma: no cover - protocol invariant
            raise RuntimeError("all pipes closed before every slave stopped")
    finally:
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()

    counters = WorkCounters(
        pairs_generated=sum(s.produced for s in stats.values()),
        pairs_skipped=master.stats.pairs_offered - master.stats.pairs_admitted,
        pairs_processed=sum(s.alignments for s in stats.values()),
        pairs_accepted=master.stats.results_accepted,
        dp_cells=sum(s.dp_cells for s in stats.values()),
    )
    return ClusteringResult(
        n_ests=collection.n_ests,
        clusters=master.manager.clusters(),
        counters=counters,
        timings=timings,
        merges=list(master.manager.merges),
    )
