"""Real-process execution of the master–slave protocol, fault-tolerantly.

The same :class:`~repro.parallel.protocol.MasterLogic` /
:class:`~repro.parallel.protocol.SlaveLogic` state machines run here over
genuine OS processes and pipes (the paper used MPI; ``multiprocessing``
pipes are the stdlib equivalent of its point-to-point sends).  The master
lives in the calling process; each slave is a forked worker owning its
bucket ranges and running pair generation and alignment locally.

This backend demonstrates protocol correctness under true asynchrony and
real serialization.  Wall-clock *speedup* is the simulator's department:
this host has a single core, and Python's pickling costs dwarf a 2002
interconnect — see DESIGN.md §2.

Unlike the paper's protocol (which assumes immortal slaves), this runtime
survives slave failure.  Detection is three-layered: every pipe
operation is wrapped against ``EOFError``/``BrokenPipeError``, the
process sentinel of each slave is polled alongside its pipe, and a
per-slave deadline flags slaves that owe the master a message but have
gone silent (hangs).  Recovery is two-staged per
:class:`~repro.parallel.faults.FaultTolerance`: while the restart budget
lasts, a dead slave's id is revived by forking a replacement over the
same bucket ranges (pair generation is deterministic, so the replacement
reproduces every pair its predecessor could have offered); once the
budget is spent the master *degrades* — it regenerates the lost slave's
promising pairs itself and lets the survivors align them, or, with no
survivor left, finishes the remaining alignments in-process.  Either
way the run never hangs, never loses an accepted merge, and yields the
same clusters as the sequential driver (asserted by tests/test_faults).

The index itself is built once in the master and *published*, not
shipped: with ``config.shared_arenas`` (the default) every constituent
array — sequence arena, suffix array, LCP, lookup tables, and the
pre-built per-slave flat forests for the vector engine — lives in named
shared-memory segments (:mod:`repro.parallel.arenas`), and slaves attach
by descriptor on spawn.  Spawn arguments and restart/re-absorb paths then
carry only index ranges and descriptors, making per-slave startup payload
O(1) in dataset size (gated by ``benchmarks/perf_gate.py startup``).  The
master owns the segments and unlinks them in its ``finally`` block, so
neither clean completion, slave crashes, nor a KeyboardInterrupt leak
``/dev/shm`` entries.  With ``shared_arenas=False`` the legacy
whole-object handoff remains available for comparison.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass, field, replace
from multiprocessing.connection import Connection, wait

from repro.align.batch import make_aligner
from repro.align.extend import PairAligner
from repro.cluster.greedy import WorkCounters
from repro.core.config import ClusteringConfig
from repro.core.results import ClusteringResult, FaultCounters
from repro.pairs.ondemand import OnDemandPairGenerator
from repro.pairs.batch import make_pair_generator
from repro.parallel.arenas import GstArenas, GstBundle, attach_gst
from repro.parallel.shm import ArenaRegistry
from repro.parallel.faults import (
    FaultInjector,
    FaultPlan,
    FaultTolerance,
    SlaveFailure,
    drain_workbuf,
    reabsorb_ranges,
)
from repro.parallel.protocol import SlaveLogic
from repro.parallel.shards import ShardedMaster, plan_shards
from repro.parallel.trace import TraceEvent, TraceRecorder
from repro.sequence.collection import EstCollection
from repro.suffix.gst import SuffixArrayGst
from repro.telemetry import Telemetry
from repro.telemetry.causal import CausalRecorder, UnitMinter, format_unit
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.live import MASTER_ID, LiveSample, ResourceSampler
from repro.telemetry.monitor import RunMonitor
from repro.telemetry.registry import DEFAULT_BUCKETS
from repro.util.timing import TimingBreakdown

__all__ = ["cluster_multiprocessing"]

_PIPE_ERRORS = (EOFError, BrokenPipeError, ConnectionResetError, OSError)

#: Slave exit codes (diagnostic only; the master keys off pipes/sentinels).
_EXIT_PIPE_LOST = 3
_EXIT_ERROR = 4


@dataclass(frozen=True)
class _SlaveStats:
    """Final per-slave report, sent on the pipe after the protocol stop.

    When telemetry is on it also carries the slave's recorded timeline
    (``events``), its span event stream (``span_events``) and its metrics
    registry snapshot (``metrics``) — this is how slave-side telemetry
    reaches the master without any channel beyond the existing pipes.
    """

    produced: int
    alignments: int
    dp_cells: int
    events: tuple[TraceEvent, ...] = ()
    span_events: tuple[dict, ...] = ()
    metrics: dict | None = None
    #: Causal work-unit lifecycle records (``config.causal_tracing``).
    causal_events: tuple[dict, ...] = ()


_ZERO_STATS = _SlaveStats(produced=0, alignments=0, dp_cells=0)


@dataclass(frozen=True)
class _SlaveError:
    """Typed crash report: the slave hit an exception in its own
    computation (sent on the pipe before exiting nonzero)."""

    slave_id: int
    traceback: str


def _slave_worker(
    conn: Connection,
    source: SuffixArrayGst | GstBundle,
    ranges: list[tuple[int, int]],
    config: ClusteringConfig,
    slave_id: int,
    fault_plan: FaultPlan | None = None,
    incarnation: int = 0,
    telemetry_origin: float | None = None,
    sample_interval: float | None = None,
    sample_origin: float = 0.0,
) -> None:
    """Slave process main: bootstrap, then request/response until stop.

    ``source`` is either the legacy in-process :class:`SuffixArrayGst`
    (``shared_arenas=False``) or a :class:`GstBundle` of shared-memory
    descriptors: the slave then attaches read-only views of the master's
    pages — including its pre-built flat forests under the vector engine —
    instead of deserialising anything.

    ``telemetry_origin`` (the master session's monotonic origin) switches
    on slave-side telemetry: this process keeps its own recorder — wall
    offsets directly comparable to the master's, since ``CLOCK_MONOTONIC``
    is machine-wide — and ships everything back inside its final
    :class:`_SlaveStats`.

    ``sample_interval`` (set only when a :class:`RunMonitor` is attached)
    switches on live sampling: at most once per interval, a
    :class:`LiveSample` is pushed down the pipe immediately before the
    next protocol message.  Samples ride the existing pipe as
    low-priority messages the master absorbs without replying, so the
    strict reply/message alternation is untouched — and because sampling
    is inline with the main loop (no thread), a hung slave stops
    sampling, which is exactly what straggler detection wants to see.
    With ``sample_interval=None`` no sampling code runs at all.

    Any exception in pair generation or alignment is reported as a typed
    :class:`_SlaveError` message before exiting nonzero — a silent death
    is indistinguishable from a crash and would trigger a pointless
    restart of a deterministic failure.
    """
    injector = FaultInjector(fault_plan, slave_id, incarnation)
    tel = (
        Telemetry(origin=telemetry_origin) if telemetry_origin is not None else None
    )
    actor = f"slave{slave_id}"
    causal_on = config.causal_tracing and tel is not None
    crec = CausalRecorder() if causal_on else None
    flight: FlightRecorder | None = None
    if config.flight_dir is not None:
        flight = FlightRecorder(
            config.flight_dir,
            actor,
            clock=tel.now if tel is not None else time.monotonic,
        )
        flight.note("spawned", incarnation=incarnation)
        flight.install_sigterm()
        # Injected kills call os._exit directly (no except clause fires),
        # so the injector dumps the ring for us on its way out.
        injector.on_fatal = flight.dump
    registry: ArenaRegistry | None = None
    try:
        if isinstance(source, GstBundle):
            registry = ArenaRegistry()
            gst, forests = attach_gst(source, registry, slave_id)
        else:
            gst, forests = source, None
        if tel is not None:
            with tel.span("sort_nodes", actor=actor):
                generator = make_pair_generator(
                    gst, config, ranges=ranges, telemetry=tel, forests=forests
                )
        else:
            generator = make_pair_generator(gst, config, ranges=ranges, forests=forests)
        aligner = make_aligner(gst.collection, config, telemetry=tel)
        logic = SlaveLogic(
            slave_id=slave_id,
            generator=OnDemandPairGenerator(generator.pairs(), telemetry=tel),
            aligner=aligner,
            batchsize=config.batchsize,
            pairbuf_capacity=config.pairbuf_capacity,
            minter=UnitMinter(slave_id, incarnation) if causal_on else None,
        )

        def drain_causal() -> None:
            """Stamp the logic's clock-free causal facts with this
            process's wall clock (same origin as the master's)."""
            ts = tel.now()
            for event, unit, n in logic.drain_causal():
                crec.record(event, unit, n, actor=actor, ts=ts)

        if flight is not None:
            # Dump-time snapshot of what this slave was holding.
            flight.state_provider = lambda: {
                "incarnation": incarnation,
                "msg_index": injector.msg_index,
                "pairbuf_depth": len(logic.pairbuf),
                "produced": logic.generator.produced,
                "alignments": logic.total_alignments,
                "exhausted": logic.generator.exhausted,
            }
        sampler = ResourceSampler() if sample_interval is not None else None
        last_sample = 0.0
        if sampler is not None:
            # The resumable position: processed nodes over owned nodes
            # (both generator engines walk their LCP-interval forests
            # node-by-node and count, so this is exact and free to read).
            total_nodes = sum(f.n_nodes for f in generator._forests) or 1

        def live_sample() -> LiveSample:
            return LiveSample(
                slave_id=slave_id,
                ts=time.monotonic() - sample_origin,
                incarnation=incarnation,
                rss_bytes=sampler.rss_bytes(),
                cpu_seconds=sampler.cpu_seconds(),
                pairs_generated=logic.generator.produced,
                alignments=logic.total_alignments,
                dp_cells=logic.total_dp_cells,
                pairbuf_depth=len(logic.pairbuf),
                gen_position=min(
                    1.0, generator.stats.nodes_processed / total_nodes
                ),
                exhausted=logic.generator.exhausted,
            )

        lat = tel.latency if tel is not None else None
        t_start = tel.now() if tel is not None else 0.0
        out = logic.bootstrap()
        if crec is not None:
            drain_causal()
        if tel is not None:
            tel.trace.compute(actor, t_start, tel.now(), "bootstrap")
        while True:
            if sampler is not None:
                wall = time.monotonic()
                if wall - last_sample >= sample_interval:
                    last_sample = wall
                    conn.send(live_sample())
            injector.before_send()
            if tel is not None:
                tel.trace.send(
                    actor,
                    tel.now(),
                    f"to master: {out.n_results} results, {out.n_pairs} pairs",
                )
                out = replace(out, sent_at=tel.now())
            if flight is not None:
                flight.note(
                    "send",
                    msg=injector.msg_index,
                    results=out.n_results,
                    pairs=out.n_pairs,
                )
            conn.send(out)
            injector.after_send()
            reply = conn.recv()
            if flight is not None:
                flight.note("recv", work=len(reply.work))
            if tel is not None:
                t_start = tel.now()
                tel.trace.recv(actor, t_start, "reply from master")
                tel.observe(
                    "slave.pairbuf_depth", len(logic.pairbuf), DEFAULT_BUCKETS
                )
            if lat is not None:
                # One message's pipe time, from the master's stamp to here
                # (same CLOCK_MONOTONIC origin across fork).
                if reply.sent_at >= 0:
                    lat.observe("transit", t_start - reply.sent_at)
                # Split the protocol step so the NEXTWORK alignment and the
                # blocking PAIRBUF refill report as separate stages.
                had_nextwork = bool(logic.nextwork)
                logic.align_pending()
                t_aligned = tel.now()
                if had_nextwork:
                    lat.observe("align", t_aligned - t_start)
                out = logic.finish_step(reply)
                if logic.last_costs.pairs_generated_blocking:
                    lat.observe("generate", tel.now() - t_aligned)
            else:
                out = logic.step(reply)
            if crec is not None:
                drain_causal()
            if tel is not None:
                tel.trace.compute(actor, t_start, tel.now(), "step")
            if out is None:
                if sampler is not None:
                    conn.send(live_sample())  # final counters, exhausted flag
                if tel is not None:
                    tel.trace.send(actor, tel.now(), "final stats")
                conn.send(
                    _SlaveStats(
                        produced=logic.generator.produced,
                        alignments=logic.total_alignments,
                        dp_cells=logic.total_dp_cells,
                        events=tuple(tel.trace.events) if tel is not None else (),
                        span_events=tuple(tel.events) if tel is not None else (),
                        metrics=tel.registry.snapshot() if tel is not None else None,
                        causal_events=tuple(crec.events) if crec is not None else (),
                    )
                )
                conn.close()
                if registry is not None:
                    registry.close()
                return
    except _PIPE_ERRORS:
        # The master went away (or tore this pipe down on purpose);
        # there is nobody left to report to.
        if flight is not None:
            flight.dump("pipe-lost")
        os._exit(_EXIT_PIPE_LOST)
    except BaseException:
        if flight is not None:
            flight.dump("crash")
        try:
            conn.send(_SlaveError(slave_id=slave_id, traceback=traceback.format_exc()))
        except Exception:
            pass
        os._exit(_EXIT_ERROR)


def _start_process(proc: mp.process.BaseProcess) -> None:
    """Start one slave process.  A module-level seam so tests can inject
    spawn failures (e.g. fail on the k-th of p starts) and assert the
    partial startup state is torn down."""
    proc.start()


@dataclass
class _SlaveHandle:
    """Master-side view of one live slave process."""

    slave_id: int
    proc: mp.process.BaseProcess
    conn: Connection
    #: Monotonic time since which the master has been owed a message
    #: (``None`` while the slave is parked on the wait queue).
    expecting_since: float | None
    restarts: int = 0
    finished: bool = field(default=False)


def cluster_multiprocessing(
    collection: EstCollection,
    config: ClusteringConfig | None = None,
    *,
    n_processors: int = 4,
    faults: FaultPlan | None = None,
    tolerance: FaultTolerance | None = None,
    trace: TraceRecorder | None = None,
    telemetry: Telemetry | None = None,
    monitor: RunMonitor | None = None,
) -> ClusteringResult:
    """Cluster with 1 master process + ``n_processors - 1`` slave processes.

    ``faults`` injects deterministic failures (testing); ``tolerance``
    sets detection timeouts and the restart budget; ``trace`` (optional)
    records fault/recovery events with wall-clock offsets; ``telemetry``
    (optional) records the full instrumented run — phase spans, metrics,
    and a send/recv/compute/fault timeline assembled from the master's
    recorder plus the per-slave recorders forwarded over the result pipes
    — and snapshots it onto ``result.telemetry``; ``monitor`` (optional,
    or created here when ``config.monitor_port`` is set) streams live
    per-slave progress and resource samples while the run executes.
    """
    if n_processors < 2:
        raise ValueError("the parallel machine needs a master and >= 1 slave")
    config = config or ClusteringConfig()
    tolerance = tolerance or FaultTolerance()
    owns_monitor = False
    if monitor is None and config.monitor_port is not None:
        monitor = RunMonitor(
            port=config.monitor_port, interval=config.monitor_interval
        )
        owns_monitor = True
    tel = telemetry if telemetry is not None else Telemetry(enabled=False)
    rec = tel.trace if tel.enabled else None
    causal = CausalRecorder() if (config.causal_tracing and tel.enabled) else None
    timings = TimingBreakdown(registry=tel.registry)
    n_slaves = n_processors - 1
    fault_counters = FaultCounters()

    with tel.span("gst_construction", n_ests=collection.n_ests):
        gst = SuffixArrayGst.build(collection)
    with tel.span("partitioning"):
        ranges = gst.bucket_ranges(config.w)
        plan = plan_shards(ranges, n_slaves, config.master_shards)
    n_shards = plan.n_shards
    ranges_of = [
        [(lo, hi) for _key, lo, hi in plan.slave_ranges[k]]
        for k in range(n_slaves)
    ]

    # Publish the built index once; slaves attach by descriptor.  The
    # master owns every segment and unlinks them in the finally below.
    shared: GstArenas | None = None
    if config.shared_arenas:
        with tel.span("arena_setup"):
            shared = GstArenas.create(
                gst, ranges_of, pair_engine=config.pair_engine, psi=config.psi
            )
    slave_source: SuffixArrayGst | GstBundle = (
        shared.bundle if shared is not None else gst
    )

    ctx = mp.get_context("fork")
    t0 = time.monotonic()
    if monitor is not None:
        if tel.enabled and not tel.run_id:
            # One id across the live stream and the post-run trace, so
            # `pace-est analyze` can join them.
            tel.run_id = monitor.run_id
        monitor.begin_run(
            n_slaves,
            engine="multiprocessing",
            clock="wall",
            # Live sample ts values are offsets from t0; publishing the
            # raw monotonic origin lets analyze re-align them with the
            # telemetry trace's own origin.
            origin=t0,
            # Flag stragglers well before the fault deadline declares
            # them dead (sampling pauses with the slave, so staleness is
            # the same signal the deadline machinery keys on).
            straggler_after=max(
                2 * config.monitor_interval, tolerance.slave_timeout / 2
            ),
        )
        if tel.enabled:
            # Latency quantiles appear as gauges on /metrics.
            monitor.attach_registry(tel.registry)
        master_sampler = ResourceSampler()
        last_master_sample = 0.0
    live: dict[int, _SlaveHandle] = {}
    all_procs: list[mp.process.BaseProcess] = []
    all_conns: list[Connection] = []
    stats: dict[int, _SlaveStats] = {}
    master = ShardedMaster(
        plan,
        n_ests=collection.n_ests,
        batchsize=config.batchsize,
        workbuf_capacity=config.workbuf_capacity,
        latency=tel.latency,  # None when telemetry is off
        policy=config.dispatch_policy,
        causal=causal,
    )
    # Wall seconds the coordinator spent inside each shard's state machine
    # (only accumulated when telemetry is on; feeds busy.shard*.seconds).
    shard_busy = [0.0] * n_shards
    last_sync = time.monotonic()
    lat = tel.latency
    # Pace-aware policies consume round-trip times even with latency
    # tracing off, and causal events are stamped with the run clock;
    # tel.now() is valid on a disabled session.
    clocked = lat is not None or master.policy.wants_rtt or causal is not None
    if monitor is not None:
        # Straggler-aware policies read the monitor's live view.
        master.policy.attach_signals(getattr(monitor, "straggler_ids", None))
    # Master-side work done in degraded mode (kept out of MasterStats so
    # the protocol state machine stays engine-agnostic).
    local_generated = 0
    local_aligned = 0
    local_aligner: PairAligner | None = None

    def master_flight_state() -> dict:
        """Dump-time snapshot of master custody (flight recorder)."""
        state = {
            "workbuf_depth": master.workbuf_depth,
            "live": sorted(live),
            "stopped": sorted(master.stopped),
            "policy": master.policy.debug_state(),
        }
        if causal is not None:
            units: dict[str, list[str]] = {}
            for shard in master.shards:
                for sid, batches in shard.logic._flight_units.items():
                    names = sorted(
                        {format_unit(u) for batch in batches for u in batch if u >= 0}
                    )
                    if names:
                        units.setdefault(str(sid), []).extend(names)
            state["in_flight_units"] = units
        return state

    flight: FlightRecorder | None = None
    if config.flight_dir is not None:
        flight = FlightRecorder(
            config.flight_dir,
            "master",
            run_id=tel.run_id or (monitor.run_id if monitor is not None else ""),
            clock=tel.now,  # valid (0-based wall offsets) even when disabled
            state_provider=master_flight_state,
        )

    def record_fault(actor: str, detail: str) -> None:
        if trace is not None:
            trace.fault(actor, time.monotonic() - t0, detail)
        if rec is not None and rec is not trace:
            rec.fault(actor, tel.now(), detail)
        if flight is not None:
            # Every fault transition refreshes the on-disk ring: the
            # newest master state is the one a postmortem wants.
            flight.note("fault", actor=actor, detail=detail)
            flight.dump("fault-transition", force=True)

    def spawn(slave_id: int, incarnation: int) -> _SlaveHandle:
        parent_conn, child_conn = ctx.Pipe()
        try:
            proc = ctx.Process(
                target=_slave_worker,
                args=(
                    child_conn,
                    slave_source,
                    ranges_of[slave_id],
                    config,
                    slave_id,
                    faults,
                    incarnation,
                    tel.origin if tel.enabled else None,
                    monitor.interval if monitor is not None else None,
                    t0,
                ),
                daemon=True,
            )
            _start_process(proc)
        except BaseException:
            # A failed spawn must not leak its pipe: neither end ever
            # reached the bookkeeping lists the finally block closes.
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()
        all_procs.append(proc)
        all_conns.append(parent_conn)
        return _SlaveHandle(
            slave_id=slave_id,
            proc=proc,
            conn=parent_conn,
            expecting_since=time.monotonic(),
            restarts=incarnation,
        )

    def reap(handle: _SlaveHandle) -> None:
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.proc.is_alive():
            handle.proc.terminate()
        handle.proc.join(timeout=5)

    def send_reply(handle: _SlaveHandle, reply) -> bool:
        """Send a master reply; False means the pipe is already dead."""
        if lat is not None:
            reply = replace(reply, sent_at=tel.now())
        try:
            handle.conn.send(reply)
        except _PIPE_ERRORS:
            return False
        if rec is not None:
            rec.send("master", tel.now(), f"to slave{handle.slave_id}")
        handle.expecting_since = time.monotonic()
        return True

    def flush_wait_queue(deaths: set[int]) -> None:
        now = tel.now() if clocked else None
        for waiter_id, waiter_reply in master.drain_wait_queue(now=now):
            handle = live.get(waiter_id)
            if handle is None:
                continue
            if not send_reply(handle, waiter_reply):
                deaths.add(waiter_id)

    def handle_msg(handle: _SlaveHandle, msg, deaths: set[int]) -> None:
        if monitor is not None and isinstance(msg, LiveSample):
            # Low-priority sample: absorb without a reply and without
            # touching ``expecting_since`` — a wedged slave that somehow
            # kept sampling must still trip the fault deadline.
            monitor.on_sample(msg)
            return
        t_recv = tel.now() if rec is not None else 0.0
        if rec is not None:
            rec.recv("master", t_recv, f"from slave{handle.slave_id}")
        if isinstance(msg, _SlaveStats):
            stats[handle.slave_id] = msg
            handle.finished = True
            if monitor is not None:
                monitor.slave_stopped(handle.slave_id)
            if tel.enabled:
                # The slave's whole recorded run arrives with its final
                # stats: timeline events, span events, metric snapshot.
                tel.trace.extend(msg.events)
                tel.events.extend(msg.span_events)
                tel.registry.merge_snapshot(msg.metrics)
            if causal is not None:
                causal.extend(msg.causal_events)
            return
        if isinstance(msg, _SlaveError):
            fault_counters.slave_errors += 1
            record_fault(f"slave{handle.slave_id}", "reported fatal error")
            if monitor is not None:
                monitor.record_fault("slave_errors")
            raise SlaveFailure(handle.slave_id, msg.traceback)
        handle.expecting_since = None
        shard = master.shard_for(handle.slave_id)
        if lat is not None:
            t_now = tel.now()
            if msg.sent_at >= 0:
                lat.observe("transit", t_now - msg.sent_at)
            reply = master.on_message(msg, now=t_now)
            lat.observe("absorb", tel.now() - t_now)
        elif clocked:
            reply = master.on_message(msg, now=tel.now())
        else:
            reply = master.on_message(msg)
        if rec is not None:
            t_done = tel.now()
            rec.compute(
                "master", t_recv, t_done, f"incorporate slave{handle.slave_id}"
            )
            shard_busy[shard.shard_id] += t_done - t_recv
        tel.observe("master.workbuf_depth", shard.logic.workbuf_depth, DEFAULT_BUCKETS)
        if reply is not None:
            if not send_reply(handle, reply):
                deaths.add(handle.slave_id)
        flush_wait_queue(deaths)

    def handle_death(slave_id: int, deaths: set[int]) -> None:
        nonlocal local_generated
        handle = live.pop(slave_id, None)
        if handle is None:
            return
        reap(handle)
        if slave_id in master.stopped:
            # Died after its protocol stop without delivering final stats:
            # nothing to recover, its stats default to zero.
            record_fault(f"slave{slave_id}", "exited after stop without stats")
            return
        fault_counters.slaves_lost += 1
        record_fault(f"slave{slave_id}", "lost (crash or timeout)")
        requeued = master.slave_lost(
            slave_id, now=tel.now() if clocked else None
        )
        fault_counters.pairs_reassigned += requeued
        if monitor is not None:
            monitor.slave_lost(slave_id)  # also counts fault.slaves_lost
            if requeued:
                monitor.record_fault("pairs_reassigned", requeued)
        if handle.restarts < tolerance.max_restarts:
            backoff = tolerance.backoff_for(handle.restarts)
            if backoff > 0:
                time.sleep(backoff)
            master.slave_revived(slave_id)
            live[slave_id] = spawn(slave_id, handle.restarts + 1)
            fault_counters.restarts += 1
            if monitor is not None:
                monitor.slave_revived(slave_id)  # also counts fault.restarts
            record_fault(
                f"slave{slave_id}",
                f"restarted (incarnation {handle.restarts + 1}, "
                f"{requeued} pairs requeued)",
            )
        else:
            # Degrade: regenerate the lost slave's pairs in its owning
            # shard and let the survivors (or the master itself) align
            # them — shard ownership of the dead slave's buckets is
            # handed off to its shard's master, never to another shard.
            produced, admitted = reabsorb_ranges(
                master.shard_for(slave_id).logic,
                gst,
                psi=config.psi,
                ranges=ranges_of[slave_id],
                engine=config.pair_engine,
                # Reuse the already-packed shared forests instead of
                # rebuilding the lost slave's forests from the LCP array.
                forests=shared.forests_for(slave_id) if shared is not None else None,
                now=tel.now() if clocked else None,
            )
            local_generated += produced
            fault_counters.pairs_reassigned += admitted
            if monitor is not None and admitted:
                monitor.record_fault("pairs_reassigned", admitted)
            record_fault(
                "master",
                f"degraded recovery of slave{slave_id}: {requeued} in-flight "
                f"pairs requeued, {admitted}/{produced} regenerated pairs admitted",
            )
        flush_wait_queue(deaths)

    def drain_conn(handle: _SlaveHandle, deaths: set[int], *, first_blocking: bool) -> None:
        """Receive every available message from one slave.

        ``first_blocking`` performs one blocking ``recv`` first (the pipe
        was reported ready); subsequent receives only happen while data
        is already buffered.
        """
        try:
            if first_blocking:
                handle_msg(handle, handle.conn.recv(), deaths)
            while (
                not handle.finished
                and handle.slave_id in live
                and handle.slave_id not in deaths
                and handle.conn.poll()
            ):
                handle_msg(handle, handle.conn.recv(), deaths)
        except _PIPE_ERRORS:
            deaths.add(handle.slave_id)
        if handle.finished:
            live.pop(handle.slave_id, None)
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.proc.join(timeout=5)

    try:
        with tel.span("alignment"):
            try:
                for k in range(n_slaves):
                    live[k] = spawn(k, 0)
            except BaseException:
                # Spawning slave k failed: tear down the k-1 already
                # running slaves (and their pipes) before propagating,
                # so a partial startup never leaks handles.
                for handle in live.values():
                    reap(handle)
                live.clear()
                raise

            stall_polls = 0
            # Keep looping until the protocol is finished AND every live
            # slave has drained (final stats arrive after the stop reply).
            while live or not master.finished():
                if not live:
                    break  # nobody left to talk to; degrade below

                by_object: dict[object, tuple[int, str]] = {}
                for k, handle in live.items():
                    by_object[handle.conn] = (k, "conn")
                    by_object[handle.proc.sentinel] = (k, "sentinel")
                ready = wait(list(by_object), timeout=tolerance.poll_interval)
                deaths: set[int] = set()

                if monitor is not None:
                    wall = time.monotonic()
                    if wall - last_master_sample >= monitor.interval:
                        last_master_sample = wall
                        monitor.on_sample(
                            LiveSample(
                                slave_id=MASTER_ID,
                                ts=wall - t0,
                                rss_bytes=master_sampler.rss_bytes(),
                                cpu_seconds=master_sampler.cpu_seconds(),
                            )
                        )
                    stats_now = master.stats
                    monitor.set_master(
                        ts=wall - t0,
                        workbuf_depth=master.workbuf_depth,
                        messages=stats_now.messages,
                        merges=stats_now.merges,
                        pairs_dispatched=stats_now.pairs_dispatched,
                    )
                    if master.n_shards > 1:
                        monitor.set_shards(master.shard_states())
                    monitor.maybe_report(wall - t0)

                # Cross-shard union exchange on a wall-clock cadence (a
                # single shard never syncs; the cadence is a pure
                # latency/throughput knob, never a correctness one).
                if (
                    n_shards > 1
                    and time.monotonic() - last_sync >= config.shard_sync_interval
                ):
                    last_sync = time.monotonic()
                    t_sync = tel.now() if rec is not None else 0.0
                    per_shard = master.sync(now=tel.now() if clocked else None)
                    if rec is not None:
                        t_done = tel.now()
                        applied = sum(a for a, _ in per_shard)
                        pruned = sum(p for _, p in per_shard)
                        rec.compute(
                            "master", t_sync, t_done,
                            f"shard sync: {applied} unions, {pruned} pruned",
                        )
                        for j in range(n_shards):
                            shard_busy[j] += (t_done - t_sync) / n_shards
                    flush_wait_queue(deaths)

                # Pipes first: a dying slave may have flushed final
                # messages (or a typed error report) before exiting.
                for obj in ready:
                    k, kind = by_object[obj]
                    if kind != "conn":
                        continue
                    handle = live.get(k)
                    if handle is None or k in deaths:
                        continue
                    drain_conn(handle, deaths, first_blocking=True)
                for obj in ready:
                    k, kind = by_object[obj]
                    if kind != "sentinel":
                        continue
                    handle = live.get(k)
                    if handle is None or k in deaths:
                        continue
                    drain_conn(handle, deaths, first_blocking=False)
                    if k in live and k not in deaths:
                        deaths.add(k)  # process exited without a clean stop
                # Deadlines: a slave that owes a message and has gone
                # silent is dead to the protocol even if the OS still
                # shows a process (hang/livelock).
                now = time.monotonic()
                for k, handle in list(live.items()):
                    if k in deaths or handle.expecting_since is None:
                        continue
                    if now - handle.expecting_since > tolerance.slave_timeout:
                        record_fault(f"slave{k}", "deadline exceeded")
                        deaths.add(k)
                pending_deaths = sorted(deaths)
                processed: set[int] = set()
                while pending_deaths:
                    k = pending_deaths.pop(0)
                    if k in processed:
                        continue
                    processed.add(k)
                    cascade: set[int] = set()
                    handle_death(k, cascade)
                    pending_deaths.extend(sorted(cascade - processed))
                deaths |= processed

                # Stall guard: if nothing is in flight and nobody owes us
                # a message, only the master could make progress — and it
                # just declined to.  Raising beats hanging forever.
                if ready or deaths:
                    stall_polls = 0
                elif all(h.expecting_since is None for h in live.values()):
                    flush_wait_queue(deaths)
                    for k in sorted(deaths):
                        handle_death(k, set())
                    stall_polls += 1
                    if stall_polls > 2:
                        raise RuntimeError(
                            "parallel runtime stalled: every slave is parked, "
                            "WORKBUF is empty, and the protocol cannot finish "
                            f"({sorted(live)} live, "
                            f"{sorted(master.stopped)} stopped)"
                        )

            if master.workbuf_depth:
                # Only reachable when slaves died with restarts exhausted:
                # their ranges were reabsorbed into WORKBUF but no slave
                # survived to align them, so the master finishes the
                # remaining alignments itself (last-resort degraded mode).
                if local_aligner is None:
                    local_aligner = make_aligner(collection, config)
                t_drain = tel.now() if rec is not None else 0.0
                local_aligned += drain_workbuf(
                    master, local_aligner, now=tel.now() if clocked else None
                )
                if rec is not None:
                    rec.compute(
                        "master", t_drain, tel.now(), "degraded: align locally"
                    )
                record_fault(
                    "master",
                    f"finished degraded: aligned {local_aligned} pairs locally",
                )
            if not master.finished():  # pragma: no cover - protocol invariant
                raise RuntimeError("runtime exited before every slave stopped")
            if monitor is not None:
                final_stats = master.stats
                monitor.set_master(
                    workbuf_depth=master.workbuf_depth,
                    messages=final_stats.messages,
                    merges=final_stats.merges,
                    pairs_dispatched=final_stats.pairs_dispatched,
                )
                if master.n_shards > 1:
                    monitor.set_shards(master.shard_states())
                monitor.finish(time.monotonic() - t0)
    except BaseException:
        # The coordinator itself is going down: capture what it knew.
        if flight is not None:
            flight.dump("crash", force=True)
        raise
    finally:
        if monitor is not None and owns_monitor:
            monitor.close()
        for conn in all_conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in all_procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        # Unlink the shared segments only after every slave is gone;
        # idempotent, and reached on clean completion, slave faults, and
        # KeyboardInterrupt alike.
        if shared is not None:
            shared.dispose()

    # Slaves that never reported final stats (crashes) default to zeroed
    # stats and are counted explicitly, rather than silently undercounted.
    fault_counters.incomplete_slaves = n_slaves - len(stats)
    local_dp_cells = local_aligner.dp_cells_total if local_aligner else 0
    agg_stats = master.stats
    counters = WorkCounters(
        pairs_generated=sum(
            stats.get(k, _ZERO_STATS).produced for k in range(n_slaves)
        )
        + local_generated,
        pairs_skipped=agg_stats.pairs_offered - agg_stats.pairs_admitted,
        pairs_processed=sum(
            stats.get(k, _ZERO_STATS).alignments for k in range(n_slaves)
        )
        + local_aligned,
        pairs_accepted=agg_stats.results_accepted,
        dp_cells=sum(stats.get(k, _ZERO_STATS).dp_cells for k in range(n_slaves))
        + local_dp_cells,
    )
    snapshot = None
    if telemetry is not None:
        if causal is not None:
            # Causal records join the span-event stream; the snapshot
            # sorts all events onto the one run clock.
            tel.events.extend(causal.as_records())
        tel.record_faults(fault_counters)
        tel.count("messages.exchanged", agg_stats.messages)
        if n_shards > 1:
            for j, busy_j in enumerate(shard_busy):
                tel.set_gauge(f"busy.shard{j}.seconds", busy_j)
            tel.count("shard.sync_rounds", master.sync_rounds)
            tel.count("shard.unions_exchanged", master.unions_exchanged)
            tel.count("shard.pairs_pruned", master.pairs_pruned)
        snapshot = tel.snapshot(
            engine="multiprocessing",
            n_processors=n_processors,
            clock="wall",
        )
    manager = master.combined()
    return ClusteringResult(
        n_ests=collection.n_ests,
        clusters=manager.clusters(),
        counters=counters,
        timings=timings,
        merges=list(manager.merges),
        faults=fault_counters,
        telemetry=snapshot,
    )
