"""Named shared-memory arenas: the zero-copy substrate of slave startup.

The mp backend used to hand every slave the whole built index — the int8
sequence arena, the suffix/LCP arrays and (for the vector engine) the
flat CSR lset arenas — as ordinary process arguments, an O(dataset × p)
serialisation cost under spawn semantics and an O(dataset × p) page-copy
exposure even under fork.  The paper's model is the opposite: slaves own
*references* to shared read-only data and receive only index ranges.

This module is the lifecycle layer that makes that literal in stdlib
Python (``multiprocessing.shared_memory``):

- :class:`ArenaDescriptor` — the picklable ``(name, dtype, shape)``
  triple from which any process can reconstruct a numpy view of a
  segment.  Descriptors are what actually travels to slaves: a few
  hundred bytes regardless of dataset size.
- :class:`ArenaRegistry` — create/attach/close/unlink bookkeeping for a
  set of segments.  The *owner* (master) creates segments and must
  eventually ``unlink`` them; *attachers* (slaves) open existing
  segments by name and only ever ``close`` their own mappings.  Both
  operations are idempotent, so fault paths can tear down defensively.
- :func:`leaked_segments` — the audit used by tests and the CI leak
  check: any ``/dev/shm`` entry carrying our prefix after a run has
  completed (or faulted) is a bug.

Attachment deliberately bypasses the ``resource_tracker``: on Python
< 3.13 every attach registers the segment with the tracker as if the
attacher owned it, which makes an exiting slave (or an injected-fault
``os._exit``) race the master for unlink and spews "leaked
shared_memory" warnings.  Ownership here is explicit — the creating
registry is the only unlinker; the tracker still guards the owner
against a hard master crash.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

__all__ = [
    "SHM_PREFIX",
    "ArenaDescriptor",
    "ArenaRegistry",
    "leaked_segments",
]

#: Every segment created here is named ``<prefix>-<pid>-<seq>[-label]``;
#: the prefix is what the leak audit greps ``/dev/shm`` for.
SHM_PREFIX = "pace"


@dataclass(frozen=True)
class ArenaDescriptor:
    """Everything needed to reconstruct a numpy view of one segment.

    Picklable and tiny — this is the unit that rides in spawn arguments
    instead of the array it describes.
    """

    name: str
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        n = np.dtype(self.dtype).itemsize
        for dim in self.shape:
            n *= dim
        return n


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without registering it with the resource
    tracker (see module docs: attachers are not owners)."""
    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class ArenaRegistry:
    """Lifecycle bookkeeping for a set of shared-memory arenas.

    One registry per role per process: the master owns a creating
    registry for the run; each slave owns an attaching registry for its
    mappings.  ``close()`` releases this process's mappings and is
    idempotent; CPython unmaps even when numpy views are still alive, so
    it must only be called once no view will be dereferenced again (i.e.
    at teardown, right before the work that used them ends).  ``unlink()``
    destroys created segments system-wide and is the owner's
    responsibility alone.
    """

    def __init__(self, prefix: str = SHM_PREFIX) -> None:
        self._prefix = prefix
        self._seq = 0
        self._created: dict[str, shared_memory.SharedMemory] = {}
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        self._unlinked = False

    # ---- owner side ---------------------------------------------------- #

    def create(self, array: np.ndarray, label: str = "") -> ArenaDescriptor:
        """Copy ``array`` into a fresh named segment; return its descriptor.

        The copy happens exactly once, in the owner; every attacher gets
        a zero-copy view afterwards.
        """
        arr = np.ascontiguousarray(array)
        suffix = f"-{label}" if label else ""
        name = f"{self._prefix}-{os.getpid()}-{self._seq}{suffix}"
        self._seq += 1
        # Zero-byte segments are illegal; a 1-byte segment with a
        # zero-length descriptor shape round-trips an empty array.
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, arr.nbytes)
        )
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        del view  # release the buffer export before bookkeeping
        self._created[name] = shm
        return ArenaDescriptor(name=name, dtype=str(arr.dtype), shape=arr.shape)

    # ---- attacher side ------------------------------------------------- #

    def attach(self, descriptor: ArenaDescriptor) -> np.ndarray:
        """Read-only numpy view of an existing segment (zero-copy)."""
        shm = self._attached.get(descriptor.name)
        if shm is None:
            shm = _attach_untracked(descriptor.name)
            self._attached[descriptor.name] = shm
        view: np.ndarray = np.ndarray(
            descriptor.shape, dtype=np.dtype(descriptor.dtype), buffer=shm.buf
        )
        view.setflags(write=False)
        return view

    # ---- shared lifecycle ---------------------------------------------- #

    @property
    def n_segments(self) -> int:
        return len(self._created) + len(self._attached)

    def close(self) -> None:
        """Release this process's mappings.  Idempotent.  CPython unmaps
        even while numpy views of the segments are alive (leaving them
        dangling), so call this only when no view will be dereferenced
        afterwards — the last act of a slave, or the master's teardown."""
        for store in (self._created, self._attached):
            for name in list(store):
                try:
                    store[name].close()
                except (BufferError, OSError):
                    pass  # best-effort; process exit is the backstop
                del store[name]

    def unlink(self) -> None:
        """Destroy every segment this registry created (owner only).
        Idempotent; attached segments are never unlinked here."""
        if self._unlinked:
            return
        self._unlinked = True
        for name, shm in list(self._created.items()):
            try:
                shm.unlink()
            except FileNotFoundError:
                pass  # already gone (e.g. the resource tracker beat us)

    def dispose(self) -> None:
        """``unlink`` + ``close`` in the order that guarantees the names
        disappear even when local views are still alive."""
        self.unlink()
        self.close()

    def __enter__(self) -> "ArenaRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.dispose()


def leaked_segments(prefix: str = SHM_PREFIX) -> list[str]:
    """Names of shared-memory segments carrying ``prefix`` that still
    exist system-wide.  Empty on platforms without ``/dev/shm`` (the
    audit is then a no-op, not a failure)."""
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return []
    return sorted(p.name for p in shm_dir.glob(f"{prefix}-*"))
