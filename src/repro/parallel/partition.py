"""Distribution of suffix buckets across processors (§3.1).

"The buckets are then distributed to the processors such that (1) all the
suffixes in a bucket are allocated to the same processor and (2) the total
number of suffixes in all the buckets allocated to a processor is as close
to nl/p as possible."

That is multiway number partitioning; the classic longest-processing-time
greedy (largest bucket to the least-loaded processor) is the standard
practical answer and what we implement.  The function reports the
resulting imbalance so benchmarks can show how the window ``w`` trades
bucket granularity against lost pairs (the paper's discussion of choosing
``w``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

__all__ = ["BucketAssignment", "assign_buckets"]


@dataclass(frozen=True)
class BucketAssignment:
    """Bucket → processor mapping for one run.

    ``per_processor[k]`` lists ``(key, lo, hi)`` suffix-array ranges owned
    by slave ``k``; ``loads[k]`` is its total suffix count.
    """

    per_processor: list[list[tuple[int, int, int]]]
    loads: list[int]

    @property
    def n_processors(self) -> int:
        return len(self.per_processor)

    @property
    def imbalance(self) -> float:
        """max load / mean load (1.0 = perfect balance).

        Empty or all-zero loads are perfectly balanced by convention and
        report 1.0; anything below 1.0 would read as better-than-perfect
        in scorecards and sort wrongly in tournament tables.
        """
        if not self.loads or sum(self.loads) == 0:
            return 1.0
        mean = sum(self.loads) / len(self.loads)
        return max(self.loads) / mean


def assign_buckets(
    ranges: list[tuple[int, int, int]], n_processors: int
) -> BucketAssignment:
    """Greedy LPT assignment of ``(key, lo, hi)`` bucket ranges.

    Buckets are placed largest-first onto the least-loaded processor,
    ties broken by processor id (deterministic).
    """
    if n_processors < 1:
        raise ValueError(f"need at least one processor, got {n_processors}")
    per_processor: list[list[tuple[int, int, int]]] = [[] for _ in range(n_processors)]
    loads = [0] * n_processors
    heap = [(0, k) for k in range(n_processors)]
    heapq.heapify(heap)
    for key, lo, hi in sorted(ranges, key=lambda r: (-(r[2] - r[1]), r[0])):
        load, k = heapq.heappop(heap)
        per_processor[k].append((key, lo, hi))
        load += hi - lo
        loads[k] = load
        heapq.heappush(heap, (load, k))
    # Keep each processor's ranges in suffix-array order for determinism.
    for k in range(n_processors):
        per_processor[k].sort(key=lambda r: r[1])
    return BucketAssignment(per_processor=per_processor, loads=loads)
