"""Parallel clustering: the master-slave protocol of §3.3 executed either
on a deterministic discrete-event simulated multiprocessor (scaling
studies) or on real OS processes (functional parallelism), with a fault
layer (crash detection, restarts, degraded recovery) on top of both."""

from repro.parallel.arenas import GstArenas, GstBundle, attach_gst
from repro.parallel.cost_model import CostModel
from repro.parallel.dispatch import (
    JBSQ,
    DispatchPolicy,
    PaceAware,
    PaperFormula,
    RequestContext,
    make_policy,
)
from repro.parallel.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultTolerance,
    InjectedFault,
    SlaveFailure,
)
from repro.parallel.mp_backend import cluster_multiprocessing
from repro.parallel.partition import BucketAssignment, assign_buckets
from repro.parallel.protocol import MasterLogic, MasterMsg, SlaveLogic, SlaveMsg
from repro.parallel.runtime import run_parallel, simulate_clustering
from repro.parallel.shards import MasterShard, ShardedMaster, ShardPlan, plan_shards
from repro.parallel.shm import ArenaDescriptor, ArenaRegistry, leaked_segments
from repro.parallel.sim_machine import SimulatedMachine, SimulationReport
from repro.parallel.trace import TraceRecorder, render_timeline, utilisation

__all__ = [
    "ArenaDescriptor",
    "ArenaRegistry",
    "GstArenas",
    "GstBundle",
    "attach_gst",
    "leaked_segments",
    "CostModel",
    "DispatchPolicy",
    "JBSQ",
    "PaceAware",
    "PaperFormula",
    "RequestContext",
    "make_policy",
    "cluster_multiprocessing",
    "BucketAssignment",
    "assign_buckets",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultTolerance",
    "InjectedFault",
    "SlaveFailure",
    "MasterLogic",
    "MasterMsg",
    "SlaveLogic",
    "SlaveMsg",
    "run_parallel",
    "simulate_clustering",
    "MasterShard",
    "ShardedMaster",
    "ShardPlan",
    "plan_shards",
    "SimulatedMachine",
    "TraceRecorder",
    "render_timeline",
    "utilisation",
    "SimulationReport",
]
