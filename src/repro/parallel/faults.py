"""Fault injection and recovery for the master–slave runtime.

The paper's §3.3 protocol assumes every slave lives for the whole run —
an acceptable assumption on a 2002 batch-scheduled IBM SP, fatal for a
long-running service.  This module is the fault layer shared by the real
multiprocessing backend (:mod:`repro.parallel.mp_backend`) and the
discrete-event simulator (:mod:`repro.parallel.sim_machine`):

- :class:`FaultSpec` / :class:`FaultPlan` describe *injected* faults
  (kill a slave at its N-th outgoing message, hang it, delay or refuse a
  send, raise inside its compute loop) so recovery paths are testable
  deterministically on both engines;
- :class:`FaultInjector` is the in-process trigger a slave consults
  around every protocol send;
- :class:`FaultTolerance` is the master's recovery policy (detection
  timeout, restart budget, backoff);
- :func:`reabsorb_ranges` and :func:`drain_workbuf` are the two degraded
  recovery actions: regenerate a lost slave's promising pairs inside the
  master, and — when no slave survives — finish the remaining alignments
  in the master itself.

Recovery is correct because the clustering partition is invariant under
pair re-delivery: generators are deterministic over their bucket ranges,
re-aligning a pair reproduces the same accept decision, merging is
idempotent, and pairs are only skipped when their ESTs already share a
cluster.  Regenerating a lost slave's full range therefore yields a
superset of its unreported pairs without ever changing the final
clusters (the fault tests assert equality with the sequential run).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.pairs.ondemand import OnDemandPairGenerator
from repro.pairs.batch import VectorPairGenerator
from repro.pairs.sa_generator import SaPairGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.align.extend import PairAligner
    from repro.parallel.protocol import MasterLogic
    from repro.suffix.gst import SuffixArrayGst

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FaultTolerance",
    "InjectedFault",
    "SlaveFailure",
    "reabsorb_ranges",
    "drain_workbuf",
]

#: Exit code of a slave process killed by an injected fault.
KILLED_EXIT_CODE = 77

#: How long a "hang" fault sleeps — long enough that only the master's
#: deadline (not the sleep expiring) can end it in any reasonable test.
_HANG_SECONDS = 3600.0

_FAULT_KINDS = ("kill", "kill_after_send", "hang", "delay", "raise")


class InjectedFault(RuntimeError):
    """Raised inside a slave by a ``raise``-kind fault (exercises the
    typed crash-report path rather than the process-death path)."""


class SlaveFailure(RuntimeError):
    """A slave reported an exception in its own computation.

    Deterministic errors would recur in any replacement slave, so the
    master re-raises instead of restarting; the original traceback is
    carried in ``slave_traceback``.
    """

    def __init__(self, slave_id: int, slave_traceback: str) -> None:
        super().__init__(
            f"slave {slave_id} failed with an unrecoverable error:\n"
            f"{slave_traceback}"
        )
        self.slave_id = slave_id
        self.slave_traceback = slave_traceback


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault, keyed to a slave's N-th outgoing message.

    ``kind``:

    - ``"kill"`` — die *before* sending message ``at_message`` (the
      message is lost; for ``at_message=0`` the slave dies before its
      bootstrap report);
    - ``"kill_after_send"`` — send it, then die (in-flight work and
      PAIRBUF are lost);
    - ``"hang"`` — stop responding (detected only by the deadline);
    - ``"delay"`` — sleep ``delay`` seconds before sending (slow slave);
    - ``"raise"`` — raise :class:`InjectedFault` inside the compute loop
      (reported as a typed error, not a crash).

    ``incarnation`` selects which fork generation is hit: 0 is the
    original process, 1 the first replacement, …; ``None`` hits every
    incarnation (defeats restarts, forcing the degraded path).
    """

    slave_id: int
    kind: str
    at_message: int = 0
    delay: float = 0.0
    incarnation: int | None = 0

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} ({_FAULT_KINDS})")
        if self.at_message < 0:
            raise ValueError("at_message must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A picklable set of :class:`FaultSpec` shipped to every slave."""

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(specs=tuple(specs))

    def for_slave(
        self, slave_id: int, incarnation: int = 0
    ) -> tuple[FaultSpec, ...]:
        return tuple(
            s
            for s in self.specs
            if s.slave_id == slave_id
            and (s.incarnation is None or s.incarnation == incarnation)
        )


class FaultInjector:
    """Per-incarnation trigger a slave consults around each send.

    ``before_send``/``after_send`` bracket every outgoing protocol
    message; the message index counts from 0 within one incarnation
    (a replacement slave restarts the count, mirroring its restarted
    generator).
    """

    def __init__(
        self, plan: FaultPlan | None, slave_id: int, incarnation: int = 0
    ) -> None:
        self._specs = (
            () if plan is None else plan.for_slave(slave_id, incarnation)
        )
        self.msg_index = 0
        #: Called just before an injected ``kill``/``kill_after_send``
        #: terminates the process — the flight recorder's last chance to
        #: dump (a real crash has an except clause; ``os._exit`` doesn't).
        self.on_fatal: "Callable[[str], object] | None" = None

    def _match(self, *kinds: str) -> FaultSpec | None:
        for spec in self._specs:
            if spec.at_message == self.msg_index and spec.kind in kinds:
                return spec
        return None

    def before_send(self) -> None:
        spec = self._match("raise")
        if spec is not None:
            raise InjectedFault(
                f"injected failure before message {self.msg_index}"
            )
        spec = self._match("delay")
        if spec is not None:
            time.sleep(spec.delay)
        if self._match("hang") is not None:
            time.sleep(_HANG_SECONDS)
        if self._match("kill") is not None:
            if self.on_fatal is not None:
                self.on_fatal("injected-kill")
            os._exit(KILLED_EXIT_CODE)

    def after_send(self) -> None:
        spec = self._match("kill_after_send")
        self.msg_index += 1
        if spec is not None:
            if self.on_fatal is not None:
                self.on_fatal("injected-kill")
            os._exit(KILLED_EXIT_CODE)


@dataclass(frozen=True)
class FaultTolerance:
    """The master's recovery policy.

    ``slave_timeout`` is the per-slave deadline: a slave that owes the
    master a message and stays silent this long is declared dead even if
    its process object still looks alive (covers hangs and livelocks).
    ``max_restarts`` bounds replacement forks per slave id; beyond it the
    master degrades to regenerating the lost slave's pairs itself.
    ``detection_delay`` is the simulator's virtual-time analogue of the
    sentinel/deadline machinery.
    """

    slave_timeout: float = 60.0
    poll_interval: float = 0.2
    max_restarts: int = 1
    restart_backoff: float = 0.05
    detection_delay: float = 0.5

    def __post_init__(self) -> None:
        if self.slave_timeout <= 0:
            raise ValueError("slave_timeout must be > 0")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")

    def backoff_for(self, restarts_so_far: int) -> float:
        """Exponential backoff before forking the next replacement."""
        return self.restart_backoff * (2**restarts_so_far)


# --------------------------------------------------------------------- #
# Degraded recovery actions (shared by mp_backend and sim_machine).
# --------------------------------------------------------------------- #


def reabsorb_ranges(
    master: "MasterLogic",
    gst: "SuffixArrayGst",
    *,
    psi: int,
    ranges: list[tuple[int, int]],
    batch: int = 4096,
    engine: str = "scalar",
    forests=None,
    now: float | None = None,
) -> tuple[int, int]:
    """Regenerate a lost slave's promising pairs inside the master.

    Pair generation is deterministic over ``ranges``, so this reproduces
    every pair the dead slave could ever have offered; admission filters
    out pairs whose ESTs already share a cluster.  ``engine`` selects the
    same pair-generation engine the lost slave was running (both produce
    identical streams, so this only affects recovery speed).  ``forests``
    (vector engine only) reuses already-built flat forests — e.g. the
    master's shared-arena copies — instead of rebuilding from the LCP
    array.  Returns ``(produced, admitted)``.
    """
    if engine == "vector":
        gen = VectorPairGenerator(gst, psi=psi, ranges=ranges, forests=forests)
    else:
        gen = SaPairGenerator(gst, psi=psi, ranges=ranges)
    source = OnDemandPairGenerator(gen.pairs())
    admitted = 0
    while True:
        pairs = source.next_batch(batch)
        if not pairs:
            break
        admitted += master.absorb_pairs(pairs, now=now)
    return source.produced, admitted


def drain_workbuf(master, aligner: "PairAligner", *, now: float | None = None) -> int:
    """Align everything left in WORKBUF in the master itself — the
    last-resort degraded mode when no slave survives.  Returns the number
    of alignments performed.

    ``master`` is a :class:`~repro.parallel.protocol.MasterLogic` or a
    :class:`~repro.parallel.shards.ShardedMaster` (every shard's WORKBUF
    is drained in shard order; deterministic either way).

    Dispatch-policy state needs no draining here: the in-flight mirrors
    of every dead slave were already cleared by
    :meth:`~repro.parallel.protocol.MasterLogic.slave_lost` (grants
    issued just before this drain would otherwise double-count the
    requeued pairs in queue-depth policies like JBSQ), and this path is
    only reached once no slave survives to receive another grant.
    """
    shards = getattr(master, "shards", None)
    if shards is not None:
        return sum(drain_workbuf(shard.logic, aligner, now=now) for shard in shards)
    aligned = 0
    # WORKBUF empties out-of-band here, so drop its latency timestamps
    # wholesale — there is no dispatch to attribute the dwell time to.
    master._workbuf_ts.clear()
    causal = master.causal
    units = master._workbuf_units if causal is not None else None
    absorbed: dict[int, int] = {}
    skipped: dict[int, int] = {}
    while master.workbuf:
        pair = master.workbuf.popleft()
        unit = None
        if units is not None:
            unit = units.popleft() if units else -1
        if master.manager.same_cluster(pair.est_a, pair.est_b):
            if unit is not None:
                skipped[unit] = skipped.get(unit, 0) + 1
            continue
        if unit is not None:
            absorbed[unit] = absorbed.get(unit, 0) + 1
        result, accepted = aligner.align_and_decide(pair)
        master.stats.results_received += 1
        aligned += 1
        if accepted:
            master.stats.results_accepted += 1
            master.manager.merge(pair, result)
            master.stats.merges += 1
    if causal is not None:
        t = now if now is not None else 0.0
        actor = master.causal_actor
        for unit, n in absorbed.items():
            if unit >= 0:
                # Master-side alignment is both the dispatch and the
                # absorb of these pairs; record the terminal event only.
                causal.record("absorbed", unit, n, actor=actor, ts=t, reason="drain")
        for unit, n in skipped.items():
            if unit >= 0:
                causal.record("pruned", unit, n, actor=actor, ts=t, reason="drain")
        master._workbuf_units.clear()
    return aligned
