"""Minimal FASTA reader/writer.

EST repositories (dbEST and friends) distribute sequences as FASTA; the
clustering pipeline ingests and emits the same format so the examples can be
pointed at real files.  Only the features EST data needs are implemented:
``>``-headers with free-text descriptions and wrapped sequence lines.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

__all__ = ["FastaRecord", "read_fasta", "write_fasta", "parse_fasta"]


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA entry: ``name`` is the first token after ``>``, the
    remainder of the header line is ``description``."""

    name: str
    sequence: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("FASTA record name must be non-empty")


def parse_fasta(handle: TextIO) -> Iterator[FastaRecord]:
    """Stream records from an open text handle."""
    name: str | None = None
    description = ""
    chunks: list[str] = []
    for lineno, line in enumerate(handle, start=1):
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                yield FastaRecord(name, "".join(chunks), description)
            header = line[1:].strip()
            if not header:
                raise ValueError(f"empty FASTA header at line {lineno}")
            parts = header.split(None, 1)
            name = parts[0]
            description = parts[1] if len(parts) > 1 else ""
            chunks = []
        else:
            if name is None:
                raise ValueError(f"sequence data before first header at line {lineno}")
            chunks.append(line.strip())
    if name is not None:
        yield FastaRecord(name, "".join(chunks), description)


def read_fasta(path: str | Path) -> list[FastaRecord]:
    """Read all records from a FASTA file."""
    with open(path, "r", encoding="ascii") as fh:
        return list(parse_fasta(fh))


def write_fasta(
    records: Iterable[FastaRecord],
    path_or_handle: str | Path | TextIO,
    *,
    width: int = 70,
) -> None:
    """Write records, wrapping sequence lines at ``width`` columns."""
    if width <= 0:
        raise ValueError(f"line width must be positive, got {width}")

    def _emit(fh: TextIO) -> None:
        for rec in records:
            header = f">{rec.name}"
            if rec.description:
                header += f" {rec.description}"
            fh.write(header + "\n")
            seq = rec.sequence
            for start in range(0, len(seq), width):
                fh.write(seq[start : start + width] + "\n")

    if isinstance(path_or_handle, (str, Path)):
        with open(path_or_handle, "w", encoding="ascii") as fh:
            _emit(fh)
    else:
        _emit(path_or_handle)


def records_to_string(records: Iterable[FastaRecord], *, width: int = 70) -> str:
    """Render records to an in-memory FASTA string (handy in tests)."""
    buf = io.StringIO()
    write_fasta(records, buf, width=width)
    return buf.getvalue()
