"""The DNA alphabet Σ = {A, C, G, T} and its numeric encoding.

Throughout the library sequences are stored as ``uint8`` numpy arrays with
the encoding ``A=0, C=1, G=2, T=3``.  The complement pairing of the paper
(A ↔ T, C ↔ G) then becomes the arithmetic identity ``comp(x) = 3 - x``,
which lets reverse complementation run as a single vectorised expression.

The special left-extension character λ (the null character marking "this
suffix is a whole string", §3.2 of the paper) is represented by
:data:`LAMBDA` = 4, giving the five lset classes lA, lC, lG, lT, lλ.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ALPHABET",
    "SIGMA",
    "A",
    "C",
    "G",
    "T",
    "LAMBDA",
    "encode",
    "decode",
    "complement_codes",
    "is_valid_codes",
]

#: The four nucleotide letters in code order.
ALPHABET = "ACGT"

#: |Σ|, the alphabet size.
SIGMA = 4

A, C, G, T = 0, 1, 2, 3

#: The null left-extension character λ of the paper's lsets: a suffix that is
#: a prefix of its string is "left-extensible by λ".
LAMBDA = 4

# Fast translation tables.  _ENCODE maps ASCII byte -> code (255 = invalid);
# _DECODE maps code -> ASCII byte.
_ENCODE = np.full(256, 255, dtype=np.uint8)
for _i, _ch in enumerate(ALPHABET):
    _ENCODE[ord(_ch)] = _i
    _ENCODE[ord(_ch.lower())] = _i
_DECODE = np.frombuffer(ALPHABET.encode(), dtype=np.uint8)


def encode(seq: str) -> np.ndarray:
    """Encode an ACGT string (case-insensitive) into a ``uint8`` code array.

    Raises ``ValueError`` on any character outside {a,c,g,t,A,C,G,T}; ESTs
    with ambiguity codes (N, etc.) must be cleaned upstream, mirroring the
    preprocessing real EST pipelines apply before clustering.
    """
    raw = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    codes = _ENCODE[raw]
    if codes.max(initial=0) == 255:
        bad = raw[codes == 255][0]
        raise ValueError(f"invalid DNA character {chr(bad)!r} in sequence")
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode a ``uint8`` code array back into an ACGT string."""
    codes = np.asarray(codes)
    if codes.size and (codes.min() < 0 or codes.max() >= SIGMA):
        raise ValueError("code array contains values outside 0..3")
    return _DECODE[codes.astype(np.intp)].tobytes().decode("ascii")


def complement_codes(codes: np.ndarray) -> np.ndarray:
    """Complement of a code array: A↔T and C↔G, i.e. ``3 - codes``."""
    return (SIGMA - 1 - np.asarray(codes)).astype(np.uint8)


def is_valid_codes(codes: np.ndarray) -> bool:
    """True iff every element of ``codes`` is a valid nucleotide code."""
    codes = np.asarray(codes)
    if codes.size == 0:
        return True
    return bool((codes >= 0).all() and (codes < SIGMA).all())
