"""EST preprocessing: the cleaning real pipelines apply before clustering.

dbEST submissions carry artifacts that wreck overlap-based clustering if
left in place:

- **poly-A / poly-T tails** — the mRNA's poly-A tail (or its reverse
  complement) survives into the read.  Tails are shared by *every*
  transcript, so a 30 bp poly-A is a maximal common substring between
  unrelated ESTs and floods the pair generator with false promising
  pairs.
- **low-complexity stretches** — simple repeats (microsatellites etc.)
  shared between unrelated genomic regions, the classic false-overlap
  source all assemblers mask (cross-match/DUST in the paper's era).

:func:`preprocess_est` applies tail trimming + length filtering;
:func:`low_complexity_mask` is a DUST-style detector usable for
diagnostics or hard-masking.  The synthetic benchmark generator can add
poly-A tails (``ReadParams.polya_tail``), closing the loop: tests show
clustering quality collapse without preprocessing and recover with it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sequence.alphabet import A, T
from repro.util.validation import check_in_range, check_positive

__all__ = ["PreprocessParams", "PreprocessReport", "preprocess_est", "low_complexity_mask", "trim_polya"]


@dataclass(frozen=True)
class PreprocessParams:
    """Cleaning thresholds.

    ``tail_min_run``: minimum run length to call a tail;
    ``tail_max_impurity``: fraction of non-A (non-T) bases tolerated
    inside the tail (sequencing errors hit tails too);
    ``min_length``: reads shorter than this after trimming are rejected.
    """

    tail_min_run: int = 10
    tail_max_impurity: float = 0.2
    tail_max_gap: int = 1
    min_length: int = 40

    def __post_init__(self) -> None:
        check_positive("tail_min_run", self.tail_min_run)
        check_in_range("tail_max_impurity", self.tail_max_impurity, 0.0, 0.5)
        check_positive("tail_max_gap", self.tail_max_gap, strict=False)
        check_positive("min_length", self.min_length)


@dataclass(frozen=True)
class PreprocessReport:
    """What happened to one read."""

    kept: bool
    trimmed_start: int  # bases removed from the 5' end
    trimmed_end: int  # bases removed from the 3' end
    reason: str = ""


def _tail_length(codes: np.ndarray, base: int, params: PreprocessParams) -> int:
    """Length of a ``base``-dominated tail at the *end* of ``codes``.

    Scans backwards keeping the longest suffix that (a) starts (read
    direction: ends) on the target base, (b) never contains more than
    ``tail_max_gap`` consecutive off-target bases — an interruption longer
    than a sequencing hiccup means the tail ended — and (c) stays under
    the total impurity budget.
    """
    n = len(codes)
    impure = 0
    gap = 0
    best = 0
    for k in range(1, n + 1):
        if codes[n - k] != base:
            impure += 1
            gap += 1
            if gap > params.tail_max_gap:
                break
        else:
            gap = 0
        if impure > params.tail_max_impurity * k:
            break
        if codes[n - k] == base and k >= params.tail_min_run:
            best = k
    return best


def trim_polya(codes: np.ndarray, params: PreprocessParams | None = None) -> tuple[np.ndarray, int, int]:
    """Remove poly-A tails and poly-T heads.

    A 3′ read of an mRNA starts with the reverse complement of the
    poly-A tail — a poly-T *head* — so both ends are checked:
    returns ``(trimmed, cut_start, cut_end)``.
    """
    params = params or PreprocessParams()
    codes = np.asarray(codes, dtype=np.uint8)
    cut_end = _tail_length(codes, A, params)
    if cut_end:
        codes = codes[: len(codes) - cut_end]
    cut_start = _tail_length(codes[::-1], T, params)
    if cut_start:
        codes = codes[cut_start:]
    return codes, cut_start, cut_end


def preprocess_est(
    codes: np.ndarray, params: PreprocessParams | None = None
) -> tuple[np.ndarray | None, PreprocessReport]:
    """Clean one read; returns ``(cleaned_or_None, report)``."""
    params = params or PreprocessParams()
    cleaned, cut_start, cut_end = trim_polya(codes, params)
    if len(cleaned) < params.min_length:
        return None, PreprocessReport(
            kept=False,
            trimmed_start=cut_start,
            trimmed_end=cut_end,
            reason=f"shorter than {params.min_length} after trimming",
        )
    return cleaned, PreprocessReport(True, cut_start, cut_end)


def low_complexity_mask(
    codes: np.ndarray, *, window: int = 24, max_distinct_triplets: int = 5
) -> np.ndarray:
    """DUST-style low-complexity detector.

    A window is low-complexity when it contains few distinct 3-mers (a
    perfect mononucleotide run has 1; a dinucleotide repeat has 2).
    Returns a boolean mask over positions, True = low complexity.
    """
    codes = np.asarray(codes, dtype=np.int64)
    n = len(codes)
    mask = np.zeros(n, dtype=bool)
    if n < 3:
        return mask
    trips = codes[:-2] * 16 + codes[1:-1] * 4 + codes[2:]
    win = min(window, len(trips))
    if win < 1:
        return mask
    for start in range(0, len(trips) - win + 1):
        if len(set(trips[start : start + win].tolist())) <= max_distinct_triplets:
            mask[start : start + win + 2] = True
    return mask
