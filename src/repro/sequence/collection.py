"""The EST collection: the library's central sequence container.

Following §3.1 of the paper, the input is a set ``E = {e_1..e_n}`` of ESTs
with ``N`` total characters, and the algorithms operate on the doubled set
``S = {s_1..s_2n}`` where each EST appears together with its reverse
complement.  Here (0-based) string ``2i`` is the forward EST ``i`` and
string ``2i+1`` is its reverse complement.

All 2n strings live in one concatenated ``uint8`` numpy buffer with an
offsets table, so a "string" is a zero-copy view and a "suffix" is just a
``(string_index, offset)`` pair.  :meth:`EstCollection.sa_text` exposes the
integer text used by the suffix-array engine, in which every string is
terminated by a *unique* sentinel smaller than any nucleotide — this is what
guarantees that no longest-common-prefix computed from the suffix array ever
crosses a string boundary, so LCP intervals correspond exactly to the
internal nodes of the generalized suffix tree.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.sequence.alphabet import LAMBDA, SIGMA, decode, encode
from repro.sequence.fasta import FastaRecord
from repro.sequence.seq import reverse_complement

__all__ = ["EstCollection"]


class EstCollection:
    """Immutable container of ``n`` ESTs and their reverse complements.

    Parameters
    ----------
    forward:
        Sequence of encoded ``uint8`` arrays, one per EST, each non-empty.
    names:
        Optional per-EST names (defaults to ``EST0, EST1, ...``).
    """

    def __init__(self, forward: Sequence[np.ndarray], names: Sequence[str] | None = None):
        if len(forward) == 0:
            raise ValueError("an EstCollection needs at least one EST")
        if names is not None and len(names) != len(forward):
            raise ValueError(f"{len(names)} names for {len(forward)} ESTs")

        self._n = len(forward)
        self._names = list(names) if names is not None else [f"EST{i}" for i in range(self._n)]

        lengths = np.empty(2 * self._n, dtype=np.int64)
        for i, est in enumerate(forward):
            est = np.asarray(est, dtype=np.uint8)
            if est.size == 0:
                raise ValueError(f"EST {i} is empty")
            if est.max() >= SIGMA:
                raise ValueError(f"EST {i} contains invalid codes")
            lengths[2 * i] = lengths[2 * i + 1] = est.size

        self._offsets = np.zeros(2 * self._n + 1, dtype=np.int64)
        np.cumsum(lengths, out=self._offsets[1:])
        self._buffer = np.empty(int(self._offsets[-1]), dtype=np.uint8)
        for i, est in enumerate(forward):
            est = np.asarray(est, dtype=np.uint8)
            self._buffer[self._offsets[2 * i] : self._offsets[2 * i + 1]] = est
            self._buffer[self._offsets[2 * i + 1] : self._offsets[2 * i + 2]] = (
                reverse_complement(est)
            )
        self._buffer.setflags(write=False)
        #: Lazily materialised signed copy of the buffer (see :meth:`arena`).
        self._arena: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_strings(cls, seqs: Iterable[str], names: Sequence[str] | None = None) -> "EstCollection":
        """Build from ACGT strings."""
        return cls([encode(s) for s in seqs], names)

    @classmethod
    def from_records(cls, records: Iterable[FastaRecord]) -> "EstCollection":
        """Build from FASTA records, keeping their names."""
        records = list(records)
        return cls.from_strings([r.sequence for r in records], [r.name for r in records])

    @classmethod
    def from_arena(
        cls,
        arena: np.ndarray,
        offsets: np.ndarray,
        names: Sequence[str] | None = None,
    ) -> "EstCollection":
        """Rebuild a collection around an existing ``(arena, offsets)`` pair.

        The inverse of :meth:`arena`, used by slave processes to wrap
        shared-memory views without copying: ``arena`` (``int8``, the
        concatenated forward+RC strings) is reinterpreted in place as the
        ``uint8`` string buffer, and becomes the collection's arena as-is.
        Reverse complements are already interleaved in the buffer, so no
        re-encoding happens; both views alias the caller's memory.
        """
        arena = np.asarray(arena)
        offsets = np.asarray(offsets, dtype=np.int64)
        if arena.dtype != np.int8:
            raise ValueError(f"arena must be int8, got {arena.dtype}")
        if len(offsets) < 3 or (len(offsets) - 1) % 2:
            raise ValueError("offsets must have odd length >= 3 (2n + 1 entries)")
        if int(offsets[-1]) != arena.size:
            raise ValueError(
                f"offsets end at {int(offsets[-1])} but arena has {arena.size} chars"
            )
        self = cls.__new__(cls)
        self._n = (len(offsets) - 1) // 2
        self._names = (
            list(names) if names is not None else [f"EST{i}" for i in range(self._n)]
        )
        if len(self._names) != self._n:
            raise ValueError(f"{len(self._names)} names for {self._n} ESTs")
        self._offsets = offsets
        self._buffer = arena.view(np.uint8)
        self._arena = arena
        return self

    # ------------------------------------------------------------------ #
    # sizes (paper notation: n ESTs, N total characters, l = N/n)
    # ------------------------------------------------------------------ #

    @property
    def n_ests(self) -> int:
        """n — the number of input ESTs."""
        return self._n

    @property
    def n_strings(self) -> int:
        """2n — forward strings plus reverse complements."""
        return 2 * self._n

    @property
    def total_chars(self) -> int:
        """N — total characters over the *forward* ESTs."""
        return int(self._offsets[-1]) // 2

    @property
    def mean_length(self) -> float:
        """l = N / n, the average EST length."""
        return self.total_chars / self._n

    @property
    def names(self) -> list[str]:
        return list(self._names)

    # ------------------------------------------------------------------ #
    # string access
    # ------------------------------------------------------------------ #

    def string(self, k: int) -> np.ndarray:
        """Zero-copy view of string ``k`` in S (0 <= k < 2n)."""
        if not 0 <= k < 2 * self._n:
            raise IndexError(f"string index {k} out of range [0, {2 * self._n})")
        return self._buffer[self._offsets[k] : self._offsets[k + 1]]

    def est(self, i: int) -> np.ndarray:
        """Zero-copy view of forward EST ``i`` (0 <= i < n)."""
        if not 0 <= i < self._n:
            raise IndexError(f"EST index {i} out of range [0, {self._n})")
        return self.string(2 * i)

    def est_string(self, i: int) -> str:
        """Forward EST ``i`` decoded to an ACGT string."""
        return decode(self.est(i))

    def length(self, k: int) -> int:
        """Length of string ``k``."""
        if not 0 <= k < 2 * self._n:
            raise IndexError(f"string index {k} out of range [0, {2 * self._n})")
        return int(self._offsets[k + 1] - self._offsets[k])

    @staticmethod
    def est_of_string(k: int) -> int:
        """The EST index a string belongs to (both strands map to one EST)."""
        return k >> 1

    @staticmethod
    def is_complemented(k: int) -> bool:
        """True iff string ``k`` is a reverse complement (odd index)."""
        return bool(k & 1)

    def arena(self) -> tuple[np.ndarray, np.ndarray]:
        """The shared signed encoding arena: ``(buffer, offsets)``.

        ``buffer`` is an ``int8`` copy of the concatenated string buffer
        (string ``k`` occupies ``buffer[offsets[k]:offsets[k+1]]``),
        materialised once per collection and read-only.  Nucleotide codes
        are 0..3, so batch alignment kernels can pad groups with negative
        sentinels that never compare equal to a real character.
        """
        if self._arena is None:
            arena = self._buffer.astype(np.int8)
            arena.setflags(write=False)
            self._arena = arena
        return self._arena, self._offsets

    def left_extension(self, k: int, offset: int) -> int:
        """The paper's left-extension character of suffix ``(k, offset)``:
        λ if the suffix is the whole string, else the preceding character."""
        if offset == 0:
            return LAMBDA
        return int(self.string(k)[offset - 1])

    # ------------------------------------------------------------------ #
    # suffix-array text
    # ------------------------------------------------------------------ #

    def sa_text(self) -> tuple[np.ndarray, np.ndarray]:
        """The integer text for suffix-array construction.

        Returns ``(text, starts)`` where ``text`` is ``int32`` of length
        ``2N + 2n``: string ``k`` occupies ``starts[k] .. starts[k+1]-2``
        with nucleotide ``c`` stored as ``2n + c``, followed at
        ``starts[k+1]-1`` by the unique sentinel value ``k``.  Sentinels are
        all smaller than every nucleotide, so a suffix that is a prefix of
        another sorts first, and being unique they stop common prefixes at
        string boundaries.
        """
        two_n = 2 * self._n
        total = int(self._offsets[-1]) + two_n
        text = np.empty(total, dtype=np.int32)
        starts = np.empty(two_n + 1, dtype=np.int64)
        pos = 0
        for k in range(two_n):
            starts[k] = pos
            seg = self.string(k)
            text[pos : pos + seg.size] = seg.astype(np.int32) + two_n
            pos += seg.size
            text[pos] = k
            pos += 1
        starts[two_n] = pos
        return text, starts

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"EstCollection(n={self._n}, N={self.total_chars}, "
            f"mean_length={self.mean_length:.1f})"
        )
