"""Sequence-level operations: reverse complement, substring extraction.

The two strands of a DNA molecule run in opposite directions and pair
A ↔ T, C ↔ G; one strand is obtained from the other by *reverse
complementation* (§1 of the paper).  Because a gene may sit on either
strand, every EST is clustered together with its reverse complement.
"""

from __future__ import annotations

import numpy as np

from repro.sequence.alphabet import complement_codes, decode, encode

__all__ = ["reverse_complement", "reverse_complement_str", "canonical_codes"]


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Reverse complement of an encoded sequence (new array).

    ``reverse_complement(reverse_complement(x)) == x`` — the involution the
    property tests pin down.
    """
    return complement_codes(np.asarray(codes)[::-1])


def reverse_complement_str(seq: str) -> str:
    """Reverse complement of an ACGT string."""
    return decode(reverse_complement(encode(seq)))


def canonical_codes(codes: np.ndarray) -> np.ndarray:
    """The lexicographically smaller of a sequence and its reverse complement.

    Useful as a strand-independent key (e.g. deduplicating simulated reads).
    """
    codes = np.asarray(codes)
    rc = reverse_complement(codes)
    # Lexicographic comparison of two equal-length uint8 arrays.
    for a, b in zip(codes.tolist(), rc.tolist()):
        if a < b:
            return codes
        if b < a:
            return rc
    return codes
