"""Sequence substrate: alphabet encoding, reverse complement, FASTA I/O and
the numpy-backed :class:`~repro.sequence.collection.EstCollection` that the
suffix-tree and alignment layers operate on."""

from repro.sequence.alphabet import ALPHABET, LAMBDA, SIGMA, decode, encode
from repro.sequence.collection import EstCollection
from repro.sequence.fasta import FastaRecord, read_fasta, write_fasta
from repro.sequence.preprocess import PreprocessParams, low_complexity_mask, preprocess_est, trim_polya
from repro.sequence.seq import reverse_complement, reverse_complement_str

__all__ = [
    "ALPHABET",
    "LAMBDA",
    "SIGMA",
    "decode",
    "encode",
    "EstCollection",
    "FastaRecord",
    "PreprocessParams",
    "low_complexity_mask",
    "preprocess_est",
    "trim_polya",
    "read_fasta",
    "write_fasta",
    "reverse_complement",
    "reverse_complement_str",
]
