"""repro — a reproduction of "Space and Time Efficient Parallel Algorithms
and Software for EST Clustering" (Kalyanaraman, Aluru & Kothari, ICPP 2002;
the system later known as PaCE).

Quickstart::

    from repro import PaceClusterer, ClusteringConfig
    from repro.simulate import BenchmarkParams, make_benchmark

    bench = make_benchmark(BenchmarkParams.small(), rng=0)
    result = PaceClusterer(ClusteringConfig.small_reads()).cluster(bench.collection)
    print(result.summary())

Subpackages: ``sequence`` (alphabet/FASTA/EST container), ``simulate``
(synthetic benchmarks with ground truth), ``suffix`` (generalized suffix
tree, two backends), ``pairs`` (on-demand promising-pair generation),
``align`` (banded seed-extension alignment), ``cluster`` (union-find and
the greedy loop), ``parallel`` (master-slave protocol on simulated or real
processors), ``metrics`` (OQ/OV/UN/CC), ``baselines`` (comparators).
"""

from repro.core import (
    ClusteringConfig,
    ClusteringResult,
    IncrementalClusterer,
    PaceClusterer,
    SplicingEvent,
    detect_splicing_events,
)
from repro.sequence import EstCollection

__version__ = "1.0.0"

__all__ = [
    "ClusteringConfig",
    "ClusteringResult",
    "IncrementalClusterer",
    "PaceClusterer",
    "SplicingEvent",
    "detect_splicing_events",
    "EstCollection",
    "__version__",
]
