"""Greedy k-difference extension (Landau–Vishkin / Ukkonen).

The banded DP of :mod:`repro.align.banded` computes the *optimal* affine
score inside the band at Θ(band × length) cells.  When reads are
high-identity — the EST regime — the same decision can be made with the
O(k²)-work k-difference algorithm: diagonal ``d`` at edit level ``e``
stores the furthest row reachable with ``e`` unit edits, and exact-match
runs are consumed by "slides" along the diagonal.  Work is proportional
to the *errors tolerated*, not the band area, making this the fast
engine for large sweeps.

Semantics mirror :func:`repro.align.banded.extend_overlap`: the extension
starts at the seed edge and must reach the end of one string.  The
alignment found minimises unit edits; its affine score (computed from the
reconstructed edit transcript) therefore lower-bounds the banded
engine's optimal score, and coincides with it whenever the optimum is a
minimum-edit alignment — on ≥95%-identity overlaps, essentially always.
"""

from __future__ import annotations

import numpy as np

from repro.align.banded import ExtensionResult
from repro.align.scoring import ScoringParams

__all__ = ["kdiff_extend", "score_ops", "edit_distance_extension"]


def kdiff_extend(
    x: np.ndarray,
    y: np.ndarray,
    params: ScoringParams,
    max_edits: int,
) -> ExtensionResult:
    """Minimum-edit overlap extension with at most ``max_edits`` edits.

    Returns the affine score of the reconstructed alignment (via
    :func:`score_ops`).  ``dp_cells`` reports diagonal-slots touched —
    O(max_edits²) — the honest work measure for comparisons with the
    banded engine.  If no end is reachable within the edit budget, a
    pessimistic pure-gap fallback is returned (always rejected by
    acceptance thresholds), mirroring the banded engine's narrow-band
    behaviour.
    """
    if max_edits < 0:
        raise ValueError(f"max_edits must be >= 0, got {max_edits}")
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    lx, ly = len(x), len(y)
    if lx == 0 or ly == 0:
        return ExtensionResult(0.0, 0, 0, 0)
    x_list = x.tolist()
    y_list = y.tolist()

    def slide(i: int, j: int) -> int:
        while i < lx and j < ly and x_list[i] == y_list[j]:
            i += 1
            j += 1
        return i

    # reach[e][d] = furthest row i on diagonal d (= i - j) with e edits.
    # parent[(e, d)] = (prev_d, op) for traceback; op in {'X','D','I'}.
    reach: dict[int, dict[int, int]] = {}
    parent: dict[tuple[int, int], tuple[int, str]] = {}
    cells = 0

    i0 = slide(0, 0)
    reach[0] = {0: i0}
    cells += 1

    def _done(e: int) -> tuple[int, int] | None:
        for d, i in reach[e].items():
            j = i - d
            if i == lx or j == ly:
                return d, i
        return None

    hit = _done(0)
    e = 0
    while hit is None and e < max_edits:
        e += 1
        cur: dict[int, int] = {}
        prev = reach[e - 1]
        for d in range(-e, e + 1):
            best_i = -1
            op = "X"
            src = d
            # Substitution: same diagonal, advance one row.
            if d in prev and prev[d] + 1 <= lx and (prev[d] + 1 - d) <= ly:
                best_i, op, src = prev[d] + 1, "X", d
            # Deletion in y (consume x only): from diagonal d-1, row +1.
            if d - 1 in prev:
                cand = prev[d - 1] + 1
                if cand <= lx and (cand - d) <= ly and cand > best_i:
                    best_i, op, src = cand, "D", d - 1
            # Insertion in y (consume y only): from diagonal d+1, same row.
            if d + 1 in prev:
                cand = prev[d + 1]
                if cand <= lx and (cand - d) <= ly and cand > best_i:
                    best_i, op, src = cand, "I", d + 1
            if best_i < 0:
                continue
            j = best_i - d
            if j < 0:
                continue
            cur[d] = slide(best_i, j)
            parent[(e, d)] = (src, op)
            cells += 1
        reach[e] = cur
        hit = _done(e)

    if hit is None:
        # Out of budget: pessimistic pure-gap fallback (never accepted).
        if lx <= ly:
            return ExtensionResult(params.gap_open + max(lx - 1, 0) * params.gap_extend, lx, 0, cells)
        return ExtensionResult(params.gap_open + max(ly - 1, 0) * params.gap_extend, 0, ly, cells)

    # Traceback to reconstruct the op string (with slides as matches).
    d, i = hit
    j = i - d
    ops_rev: list[str] = []
    level = e
    while True:
        # Undo the slide into this state.
        base = reach[level][d]
        # The slide start: recompute from the parent edit.
        if level == 0:
            ops_rev.extend("M" * base)
            break
        src_d, op = parent[(level, d)]
        prev_i = reach[level - 1][src_d]
        if op == "X":
            edit_row = prev_i + 1
            slid = i - edit_row if i > edit_row else 0
        elif op == "D":
            edit_row = prev_i + 1
            slid = i - edit_row
        else:  # "I"
            edit_row = prev_i
            slid = i - edit_row
        ops_rev.extend("M" * max(0, slid))
        ops_rev.append(op)
        d, i = src_d, prev_i
        level -= 1
    ops = "".join(reversed(ops_rev))
    # Trim to the hit position (ops built exactly to it by construction).
    ci, cj = hit[1], hit[1] - hit[0]
    return ExtensionResult(score_ops(ops, params, x_list, y_list), ci, cj, cells)


def score_ops(
    ops: str, params: ScoringParams, x: list[int], y: list[int]
) -> float:
    """Affine score of an edit transcript starting at (0, 0).

    'M' columns are re-checked against the strings so substituted
    positions recorded as matches (or vice versa) cannot inflate scores.
    """
    score = 0.0
    i = j = 0
    prev_gap: str | None = None
    for op in ops:
        if op in ("M", "X"):
            score += params.match if x[i] == y[j] else params.mismatch
            i += 1
            j += 1
            prev_gap = None
        elif op == "D":
            score += params.gap_extend if prev_gap == "D" else params.gap_open
            i += 1
            prev_gap = "D"
        elif op == "I":
            score += params.gap_extend if prev_gap == "I" else params.gap_open
            j += 1
            prev_gap = "I"
        else:
            raise ValueError(f"unknown op {op!r}")
    return score


def edit_distance_extension(x: np.ndarray, y: np.ndarray) -> tuple[int, int, int]:
    """Reference: min edits to align prefixes reaching an end of x or y,
    by full DP.  Returns ``(edits, consumed_x, consumed_y)``.  Test oracle
    for :func:`kdiff_extend`."""
    x = [int(v) for v in np.asarray(x)]
    y = [int(v) for v in np.asarray(y)]
    lx, ly = len(x), len(y)
    INF = 10**9
    dp = [[INF] * (ly + 1) for _ in range(lx + 1)]
    dp[0][0] = 0
    for i in range(lx + 1):
        for j in range(ly + 1):
            v = dp[i][j]
            if v == INF:
                continue
            if i < lx and j < ly:
                cost = 0 if x[i] == y[j] else 1
                if v + cost < dp[i + 1][j + 1]:
                    dp[i + 1][j + 1] = v + cost
            if i < lx and v + 1 < dp[i + 1][j]:
                dp[i + 1][j] = v + 1
            if j < ly and v + 1 < dp[i][j + 1]:
                dp[i][j + 1] = v + 1
    best = (INF, 0, 0)
    for i in range(lx + 1):
        if dp[i][ly] < best[0]:
            best = (dp[i][ly], i, ly)
    for j in range(ly + 1):
        if dp[lx][j] < best[0]:
            best = (dp[lx][j], lx, j)
    return best
