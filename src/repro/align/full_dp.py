"""Reference (unbanded) dynamic-programming aligners.

Three roles:

- :func:`extend_overlap_ref` — a plain-Python, cell-by-cell version of the
  banded extension with an unbounded band; the oracle the vectorised
  banded engine is property-tested against.
- :func:`overlap_align` — full dovetail/containment alignment of two whole
  strings with free end gaps and complete traceback.  This is the
  "traditional" engine that aligns entire strings rather than extending a
  seed; the seed-extension ablation and the CAP3-like baseline use it.
- :func:`global_align_score` — classic Needleman–Wunsch (affine) global
  score, used in tests as an independent cross-check of the recurrences.

All three share one gap convention with the banded engine: a gap may open
from any state (match or the other gap state) at ``gap_open`` and extends
at ``gap_extend``; the first gap character costs ``gap_open``.
"""

from __future__ import annotations

import numpy as np

from repro.align.banded import NEG_INF, ExtensionResult
from repro.align.overlaps import classify_pattern
from repro.align.scoring import AlignmentResult, ScoringParams

__all__ = ["extend_overlap_ref", "overlap_align", "global_align_score"]


def extend_overlap_ref(x: np.ndarray, y: np.ndarray, params: ScoringParams) -> ExtensionResult:
    """Unbanded reference for :func:`repro.align.banded.extend_overlap`."""
    x = [int(v) for v in np.asarray(x)]
    y = [int(v) for v in np.asarray(y)]
    lx, ly = len(x), len(y)
    if lx == 0 or ly == 0:
        return ExtensionResult(0.0, 0, 0, 0)
    match, mis = params.match, params.mismatch
    go, ge = params.gap_open, params.gap_extend

    m = [[NEG_INF] * (ly + 1) for _ in range(lx + 1)]
    ix = [[NEG_INF] * (ly + 1) for _ in range(lx + 1)]
    iy = [[NEG_INF] * (ly + 1) for _ in range(lx + 1)]
    m[0][0] = 0.0
    for j in range(1, ly + 1):
        iy[0][j] = go + (j - 1) * ge
    for i in range(1, lx + 1):
        ix[i][0] = go + (i - 1) * ge
        for j in range(1, ly + 1):
            sub = match if x[i - 1] == y[j - 1] else mis
            m[i][j] = max(m[i - 1][j - 1], ix[i - 1][j - 1], iy[i - 1][j - 1]) + sub
            ix[i][j] = max(m[i - 1][j] + go, iy[i - 1][j] + go, ix[i - 1][j] + ge)
            iy[i][j] = max(m[i][j - 1] + go, ix[i][j - 1] + go, iy[i][j - 1] + ge)

    best, bi, bj = NEG_INF, 0, 0
    for i in range(lx + 1):
        v = max(m[i][ly], ix[i][ly], iy[i][ly])
        if v > best:
            best, bi, bj = v, i, ly
    for j in range(ly + 1):
        v = max(m[lx][j], ix[lx][j], iy[lx][j])
        if v > best:
            best, bi, bj = v, lx, j
    return ExtensionResult(float(best), bi, bj, (lx + 1) * (ly + 1))


def global_align_score(x: np.ndarray, y: np.ndarray, params: ScoringParams) -> float:
    """Needleman–Wunsch global alignment score (affine gaps)."""
    res = _overlap_dp(x, y, params, free_start=False, free_end=False)
    return res[0]


def overlap_align(
    x: np.ndarray, y: np.ndarray, params: ScoringParams
) -> AlignmentResult:
    """Best dovetail/containment alignment of two whole strings.

    Leading gaps on either string are free (the alignment may start at any
    ``(i, 0)`` or ``(0, j)``), trailing gaps likewise; the reported spans
    delimit the overlap region actually aligned.
    """
    score, (si, sj), (ei, ej), cells, ops = _overlap_dp(
        x, y, params, free_start=True, free_end=True
    )
    lx, ly = len(x), len(y)
    pattern = classify_pattern(si, ei, lx, sj, ej, ly)
    return AlignmentResult(
        score=score,
        a_start=si,
        a_end=ei,
        b_start=sj,
        b_end=ej,
        pattern=pattern,
        dp_cells=cells,
        ops=ops,
    )


def _overlap_dp(x, y, params, *, free_start: bool, free_end: bool):
    """Shared affine DP with full traceback (plain Python; reference grade)."""
    x = [int(v) for v in np.asarray(x)]
    y = [int(v) for v in np.asarray(y)]
    lx, ly = len(x), len(y)
    match, mis = params.match, params.mismatch
    go, ge = params.gap_open, params.gap_extend

    m = [[NEG_INF] * (ly + 1) for _ in range(lx + 1)]
    ix = [[NEG_INF] * (ly + 1) for _ in range(lx + 1)]
    iy = [[NEG_INF] * (ly + 1) for _ in range(lx + 1)]
    # Backpointers per state: 0 from M, 1 from Ix, 2 from Iy, 3 start.
    bm = [[3] * (ly + 1) for _ in range(lx + 1)]
    bx = [[3] * (ly + 1) for _ in range(lx + 1)]
    by = [[3] * (ly + 1) for _ in range(lx + 1)]

    # Starts carry backpointer 3; traceback stops on reading it in state M.
    m[0][0] = 0.0
    for i in range(1, lx + 1):
        if free_start:
            m[i][0] = 0.0
        else:
            ix[i][0] = go + (i - 1) * ge
            bx[i][0] = 1 if i > 1 else 0
    for j in range(1, ly + 1):
        if free_start:
            m[0][j] = 0.0
        else:
            iy[0][j] = go + (j - 1) * ge
            by[0][j] = 2 if j > 1 else 0

    for i in range(1, lx + 1):
        xi = x[i - 1]
        for j in range(1, ly + 1):
            sub = match if xi == y[j - 1] else mis
            cands = (m[i - 1][j - 1], ix[i - 1][j - 1], iy[i - 1][j - 1])
            k = max(range(3), key=lambda t: cands[t])
            m[i][j] = cands[k] + sub
            bm[i][j] = k
            open_from = max(m[i - 1][j], iy[i - 1][j])
            if m[i - 1][j] >= iy[i - 1][j]:
                ox = 0
            else:
                ox = 2
            if open_from + go >= ix[i - 1][j] + ge:
                ix[i][j] = open_from + go
                bx[i][j] = ox
            else:
                ix[i][j] = ix[i - 1][j] + ge
                bx[i][j] = 1
            open_from = max(m[i][j - 1], ix[i][j - 1])
            oy = 0 if m[i][j - 1] >= ix[i][j - 1] else 1
            if open_from + go >= iy[i][j - 1] + ge:
                iy[i][j] = open_from + go
                by[i][j] = oy
            else:
                iy[i][j] = iy[i][j - 1] + ge
                by[i][j] = 2

    # Pick the end.
    if free_end:
        best, bi, bj, bstate = NEG_INF, lx, ly, 0
        for i in range(lx + 1):
            for state, tab in ((0, m), (1, ix), (2, iy)):
                if tab[i][ly] > best:
                    best, bi, bj, bstate = tab[i][ly], i, ly, state
        for j in range(ly + 1):
            for state, tab in ((0, m), (1, ix), (2, iy)):
                if tab[lx][j] > best:
                    best, bi, bj, bstate = tab[lx][j], lx, j, state
    else:
        cands = (m[lx][ly], ix[lx][ly], iy[lx][ly])
        bstate = max(range(3), key=lambda t: cands[t])
        best, bi, bj = cands[bstate], lx, ly

    # Traceback to the start of the aligned region.  The path begins at a
    # cell whose M backpointer is the start marker (3): (0, 0) for global
    # alignment, any border cell under free-start semantics.
    i, j, state = bi, bj, bstate
    ops: list[str] = []
    while not (state == 0 and bm[i][j] == 3):
        if state == 0:
            state = bm[i][j]
            i, j = i - 1, j - 1
            ops.append("M" if x[i] == y[j] else "X")
        elif state == 1:
            state = bx[i][j]
            i -= 1
            ops.append("D")
        else:
            state = by[i][j]
            j -= 1
            ops.append("I")
    ops.reverse()

    return float(best), (i, j), (bi, bj), (lx + 1) * (ly + 1), "".join(ops)
