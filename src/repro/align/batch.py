"""Batched pairwise alignment — the vectorised hot path.

The paper's Table 3 shows pairwise alignment dominating the clustering
cost, and §3.3 already moves pairs around in batches (WORKBUF grants of
``batchsize`` pairs).  :class:`BatchPairAligner` exploits that batching on
the compute side: instead of aligning one pair at a time with fresh numpy
allocations per extension, it

- slices both extensions of every pair out of the collection's shared
  ``int8`` arena (:meth:`~repro.sequence.collection.EstCollection.arena`) —
  no per-pair re-encoding;
- sorts the extensions by shape so similarly-sized ones land in the same
  group (padding waste stays low);
- runs each group through :func:`~repro.align.banded.extend_overlap_group`,
  one 2-D numpy sweep per DP row instead of a Python-level loop per pair;
- reuses one grow-only :class:`~repro.align.banded.BandedWorkspace` across
  all groups of the run, so steady state allocates nothing.

The group kernel performs bitwise-identical float arithmetic to the scalar
kernel, so a :class:`BatchPairAligner` returns exactly the
:class:`~repro.align.scoring.AlignmentResult` the per-pair
:class:`~repro.align.extend.PairAligner` would — the per-pair engine stays
in the tree as the reference oracle (tests/test_batch_align.py asserts the
equivalence property).

:func:`make_aligner` is the one construction point the drivers share: it
reads :attr:`~repro.core.config.ClusteringConfig.align_batch` and returns
the batched engine (group size = that value) or the per-pair reference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.align.banded import BandedWorkspace, extend_overlap_group
from repro.align.extend import BAND_WIDTH_BUCKETS, BandPolicy, PairAligner
from repro.align.overlaps import classify_pattern
from repro.align.scoring import AcceptanceCriteria, AlignmentResult, ScoringParams
from repro.pairs.pair import Pair
from repro.sequence.collection import EstCollection
from repro.telemetry import Telemetry
from repro.util.validation import check_positive

if TYPE_CHECKING:
    from repro.core.config import ClusteringConfig

__all__ = ["BatchPairAligner", "make_aligner", "ALIGN_BATCH_SIZE_BUCKETS"]

#: Histogram bounds for alignment batch sizes: powers of two around the
#: default ``batchsize = 60`` work grant, with partial final batches small.
ALIGN_BATCH_SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class BatchPairAligner(PairAligner):
    """Vectorised batch aligner, result-identical to :class:`PairAligner`.

    ``group_size`` bounds how many extensions share one 2-D DP sweep; the
    sweep is padded to the widest member, so groups of shape-sorted
    extensions keep the padding overhead small while amortising numpy
    dispatch over the whole group.
    """

    def __init__(
        self,
        collection: EstCollection,
        params: ScoringParams | None = None,
        criteria: AcceptanceCriteria | None = None,
        band_policy: BandPolicy | None = None,
        *,
        use_seed_extension: bool = True,
        engine: str = "banded",
        telemetry: Telemetry | None = None,
        group_size: int = 64,
    ) -> None:
        super().__init__(
            collection,
            params,
            criteria,
            band_policy,
            use_seed_extension=use_seed_extension,
            engine=engine,
            telemetry=telemetry,
        )
        check_positive("group_size", group_size)
        self.group_size = group_size
        self.workspace = BandedWorkspace()

    # ------------------------------------------------------------------ #

    def align_and_decide_batch(
        self, pairs: Sequence[Pair]
    ) -> list[tuple[AlignmentResult, bool]]:
        """Align a whole batch of promising pairs in grouped 2-D DP sweeps."""
        pairs = list(pairs)
        if not pairs:
            return []
        if self.telemetry is not None:
            self.telemetry.observe(
                "align.batch_size", len(pairs), ALIGN_BATCH_SIZE_BUCKETS
            )
        if not self.use_seed_extension or self.engine != "banded":
            # Only the banded engine has a group kernel; the full-DP and
            # kdiff configurations fall back to the per-pair reference.
            return [self.align_and_decide(pair) for pair in pairs]

        arena, offsets = self.collection.arena()
        params = self.params
        n = len(pairs)
        # Two extension slots per pair: 2k = right of the seed, 2k+1 = left
        # (on reversed prefixes), exactly as PairAligner._seed_extend.
        ext: list[tuple[float, int, int, int] | None] = [None] * (2 * n)
        bands_r = [0] * n
        bands_l = [0] * n
        ext_lens: list[tuple[int, int]] = [(0, 0)] * (2 * n)
        str_lens: list[tuple[int, int]] = [(0, 0)] * n
        jobs: list[tuple[int, int, int, np.ndarray, np.ndarray, int]] = []
        for k, pair in enumerate(pairs):
            a0 = int(offsets[pair.string_a])
            a1 = int(offsets[pair.string_a + 1])
            b0 = int(offsets[pair.string_b])
            b1 = int(offsets[pair.string_b + 1])
            seed = pair.length
            str_lens[k] = (a1 - a0, b1 - b0)
            rx = arena[a0 + pair.offset_a + seed : a1]
            ry = arena[b0 + pair.offset_b + seed : b1]
            band_r = self.band_policy.band_for(min(len(rx), len(ry)))
            lx = arena[a0 : a0 + pair.offset_a][::-1]
            ly = arena[b0 : b0 + pair.offset_b][::-1]
            band_l = self.band_policy.band_for(min(len(lx), len(ly)))
            bands_r[k] = band_r
            bands_l[k] = band_l
            if self.telemetry is not None:
                self.telemetry.observe("align.band_width", band_r, BAND_WIDTH_BUCKETS)
                self.telemetry.observe("align.band_width", band_l, BAND_WIDTH_BUCKETS)
            for slot, ex, ey, band in (
                (2 * k, rx, ry, band_r),
                (2 * k + 1, lx, ly, band_l),
            ):
                ext_lens[slot] = (len(ex), len(ey))
                if len(ex) == 0 or len(ey) == 0:
                    # The boundary is already an end: nothing to extend into.
                    ext[slot] = (0.0, 0, 0, 0)
                else:
                    jobs.append((len(ex), len(ey), slot, ex, ey, band))

        # Shape-sort (descending) so same-sized extensions group together
        # and the first — widest — group sets the workspace high-water
        # mark, letting every later group reuse the buffers.  The slot
        # makes keys unique before the (uncomparable) array elements.
        jobs.sort(key=lambda job: (-job[0], -job[1], job[2]))
        reuses_before = self.workspace.reuses
        for start in range(0, len(jobs), self.group_size):
            chunk = jobs[start : start + self.group_size]
            scores, cxs, cys, cells = extend_overlap_group(
                [job[3] for job in chunk],
                [job[4] for job in chunk],
                np.fromiter((job[5] for job in chunk), np.int64, count=len(chunk)),
                params,
                workspace=self.workspace,
            )
            for t, job in enumerate(chunk):
                ext[job[2]] = (
                    float(scores[t]),
                    int(cxs[t]),
                    int(cys[t]),
                    int(cells[t]),
                )
        if self.telemetry is not None:
            reused = self.workspace.reuses - reuses_before
            if reused:
                self.telemetry.count("align.buffer_reuse", reused)

        out: list[tuple[AlignmentResult, bool]] = []
        n_accepted = 0
        for k, pair in enumerate(pairs):
            right = ext[2 * k]
            left = ext[2 * k + 1]
            seed = pair.length
            la, lb = str_lens[k]
            score = params.match * seed + left[0] + right[0]
            a_start = pair.offset_a - left[1]
            a_end = pair.offset_a + seed + right[1]
            b_start = pair.offset_b - left[2]
            b_end = pair.offset_b + seed + right[2]
            dp_cells = left[3] + right[3] + seed
            result = AlignmentResult(
                score=score,
                a_start=a_start,
                a_end=a_end,
                b_start=b_start,
                b_end=b_end,
                pattern=classify_pattern(a_start, a_end, la, b_start, b_end, lb),
                dp_cells=dp_cells,
            )
            self.alignments_performed += 1
            self.dp_cells_total += dp_cells
            self.model_cells_total += (
                min(ext_lens[2 * k]) * (2 * bands_r[k] + 1)
                + min(ext_lens[2 * k + 1]) * (2 * bands_l[k] + 1)
                + seed
            )
            accepted = self.accept(result)
            if accepted:
                n_accepted += 1
            out.append((result, accepted))
        if self.telemetry is not None:
            if n_accepted:
                self.telemetry.count("align.accepted", n_accepted)
            if n_accepted < n:
                self.telemetry.count("align.rejected", n - n_accepted)
        return out


def make_aligner(
    collection: EstCollection,
    config: "ClusteringConfig",
    *,
    telemetry: Telemetry | None = None,
) -> PairAligner:
    """The pair aligner a :class:`ClusteringConfig` asks for.

    ``config.align_batch > 0`` selects the batched engine with that DP
    group size; ``0`` keeps the per-pair reference engine.  All clustering
    drivers (sequential pipeline, simulated machine, multiprocessing
    slaves) construct their aligner here so the two engines stay
    interchangeable.
    """
    kwargs = dict(
        params=config.scoring,
        criteria=config.acceptance,
        band_policy=config.band_policy,
        use_seed_extension=config.use_seed_extension,
        engine=config.align_engine,
        telemetry=telemetry,
    )
    if config.align_batch:
        return BatchPairAligner(collection, group_size=config.align_batch, **kwargs)
    return PairAligner(collection, **kwargs)
