"""Pairwise alignment substrate: affine-gap scoring, banded seed extension
(Fig. 5a), full-DP reference engines, and overlap-pattern classification
(Fig. 5b)."""

from repro.align.banded import (
    BandedWorkspace,
    ExtensionResult,
    extend_overlap,
    extend_overlap_group,
)
from repro.align.batch import BatchPairAligner, make_aligner
from repro.align.extend import BandPolicy, PairAligner
from repro.align.full_dp import extend_overlap_ref, global_align_score, overlap_align
from repro.align.kdiff import kdiff_extend, score_ops
from repro.align.overlaps import classify_pattern
from repro.align.scoring import (
    AcceptanceCriteria,
    AlignmentResult,
    OverlapPattern,
    ScoringParams,
)

__all__ = [
    "BandedWorkspace",
    "ExtensionResult",
    "extend_overlap",
    "extend_overlap_group",
    "BatchPairAligner",
    "make_aligner",
    "BandPolicy",
    "PairAligner",
    "extend_overlap_ref",
    "kdiff_extend",
    "score_ops",
    "global_align_score",
    "overlap_align",
    "classify_pattern",
    "AcceptanceCriteria",
    "AlignmentResult",
    "OverlapPattern",
    "ScoringParams",
]
