"""Banded affine-gap extension dynamic programming.

The paper computes pairwise alignment "by merely extending the already
computed maximal substring match at both ends using gaps and mismatches",
further restricted to a band around the diagonal "where the band size is
determined by the number of errors tolerated" (§3.3, Fig. 5a).

:func:`extend_overlap` is that primitive for one direction: align a prefix
of ``x`` against a prefix of ``y`` such that the alignment *reaches the end
of at least one string* (overlap semantics — stopping mid-string would be
local alignment and would let bad pairs cherry-pick their best region),
maximising the affine-gap score within the band ``|i - j| ≤ band``.

Implementation: one numpy row per ``x`` character with three state rows
(match/mismatch M, gap-in-``y`` Ix, gap-in-``x`` Iy).  The within-row
recurrence of Iy (horizontal affine gaps) is vectorised with the classic
prefix-max trick: ``Iy[j] = open + (j-1)·ext + max_{k<j}(M[k] - k·ext)``.
``dp_cells`` reports the number of in-band cells — the work a C
implementation pays and the measure the banding ablation sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.align.scoring import ScoringParams

__all__ = ["extend_overlap", "ExtensionResult", "NEG_INF"]

NEG_INF = -1.0e18


class ExtensionResult(tuple):
    """``(score, consumed_x, consumed_y, dp_cells)`` with named access."""

    __slots__ = ()

    def __new__(cls, score: float, consumed_x: int, consumed_y: int, dp_cells: int):
        return super().__new__(cls, (score, consumed_x, consumed_y, dp_cells))

    score = property(lambda self: self[0])
    consumed_x = property(lambda self: self[1])
    consumed_y = property(lambda self: self[2])
    dp_cells = property(lambda self: self[3])


def extend_overlap(
    x: np.ndarray,
    y: np.ndarray,
    params: ScoringParams,
    band: int,
) -> ExtensionResult:
    """Best banded extension of the seed boundary into ``x`` and ``y``.

    The alignment starts exactly at position (0, 0) (the seed edge) and
    must consume *all* of ``x`` or *all* of ``y``; the other string may be
    left partially unconsumed (it continues beyond the overlap).  Returns
    the best score and how much of each string the overlap consumed.
    """
    if band < 0:
        raise ValueError(f"band must be >= 0, got {band}")
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    lx, ly = len(x), len(y)
    if lx == 0 or ly == 0:
        # One side has nothing to extend into: the boundary is an end.
        return ExtensionResult(0.0, 0, 0, 0)

    match, mis = params.match, params.mismatch
    go, ge = params.gap_open, params.gap_extend
    js = np.arange(ly + 1, dtype=np.int64)

    # Row 0: only leading gaps in x (consuming y) are possible.
    m_row = np.full(ly + 1, NEG_INF)
    ix_row = np.full(ly + 1, NEG_INF)
    iy_row = np.full(ly + 1, NEG_INF)
    m_row[0] = 0.0
    if ly >= 1:
        iy_row[1:] = go + (js[1:] - 1) * ge
    _apply_band(m_row, ix_row, iy_row, 0, band, ly)

    dp_cells = int(min(ly, band)) + 1
    # Candidate ends in the last column (j = ly) of every row.
    best = NEG_INF
    best_i, best_j = 0, 0
    if abs(0 - ly) <= band:
        col_best = max(m_row[ly], ix_row[ly], iy_row[ly])
        if col_best > best:
            best, best_i, best_j = col_best, 0, ly

    for i in range(1, lx + 1):
        sub = np.where(x[i - 1] == y, match, mis)
        prev_best = np.maximum(np.maximum(m_row, ix_row), iy_row)
        new_m = np.full(ly + 1, NEG_INF)
        new_m[1:] = prev_best[:-1] + sub
        new_ix = np.maximum(np.maximum(m_row, iy_row) + go, ix_row + ge)
        # Band mask before the horizontal scan so out-of-band cells cannot
        # feed in-band gap runs.
        new_iy = np.full(ly + 1, NEG_INF)
        _apply_band(new_m, new_ix, new_iy, i, band, ly)
        run = np.maximum.accumulate(np.maximum(new_m, new_ix) - js * ge)
        new_iy[1:] = go + (js[1:] - 1) * ge + run[:-1]
        _apply_band(new_m, new_ix, new_iy, i, band, ly)

        m_row, ix_row, iy_row = new_m, new_ix, new_iy
        lo = max(0, i - band)
        hi = min(ly, i + band)
        if hi >= lo:
            dp_cells += hi - lo + 1
        if abs(i - ly) <= band:
            col_best = max(m_row[ly], ix_row[ly], iy_row[ly])
            if col_best > best:
                best, best_i, best_j = col_best, i, ly

    # Candidate ends along the last row (all of x consumed).
    final = np.maximum(np.maximum(m_row, ix_row), iy_row)
    j_best = int(np.argmax(final))
    if final[j_best] > best:
        best, best_i, best_j = float(final[j_best]), lx, j_best

    if best <= NEG_INF / 2:
        # A band narrower than |lx - ly| excludes every valid end: the
        # overlap would need more indels than the error budget tolerates.
        # Report a pure-gap-run score to the nearer end — pessimistic and
        # guaranteed to fail acceptance, without poisoning ratios with -inf.
        if lx <= ly:
            best, best_i, best_j = go + max(lx - 1, 0) * ge, lx, 0
        else:
            best, best_i, best_j = go + max(ly - 1, 0) * ge, 0, ly
    return ExtensionResult(float(best), best_i, best_j, dp_cells)


def _apply_band(m_row, ix_row, iy_row, i: int, band: int, ly: int) -> None:
    """Mask cells outside |i - j| <= band to -inf in all three states."""
    lo = i - band
    hi = i + band
    if lo > 0:
        m_row[:lo] = NEG_INF
        ix_row[:lo] = NEG_INF
        iy_row[:lo] = NEG_INF
    if hi < ly:
        m_row[hi + 1 :] = NEG_INF
        ix_row[hi + 1 :] = NEG_INF
        iy_row[hi + 1 :] = NEG_INF
