"""Banded affine-gap extension dynamic programming.

The paper computes pairwise alignment "by merely extending the already
computed maximal substring match at both ends using gaps and mismatches",
further restricted to a band around the diagonal "where the band size is
determined by the number of errors tolerated" (§3.3, Fig. 5a).

:func:`extend_overlap` is that primitive for one direction: align a prefix
of ``x`` against a prefix of ``y`` such that the alignment *reaches the end
of at least one string* (overlap semantics — stopping mid-string would be
local alignment and would let bad pairs cherry-pick their best region),
maximising the affine-gap score within the band ``|i - j| ≤ band``.

Implementation: one numpy row per ``x`` character with three state rows
(match/mismatch M, gap-in-``y`` Ix, gap-in-``x`` Iy).  The within-row
recurrence of Iy (horizontal affine gaps) is vectorised with the classic
prefix-max trick: ``Iy[j] = open + (j-1)·ext + max_{k<j}(M[k] - k·ext)``.
``dp_cells`` reports the number of in-band cells — the work a C
implementation pays and the measure the banding ablation sweeps.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.align.scoring import ScoringParams

__all__ = [
    "extend_overlap",
    "extend_overlap_group",
    "BandedWorkspace",
    "ExtensionResult",
    "NEG_INF",
]

NEG_INF = -1.0e18


class ExtensionResult(tuple):
    """``(score, consumed_x, consumed_y, dp_cells)`` with named access."""

    __slots__ = ()

    def __new__(cls, score: float, consumed_x: int, consumed_y: int, dp_cells: int):
        return super().__new__(cls, (score, consumed_x, consumed_y, dp_cells))

    score = property(lambda self: self[0])
    consumed_x = property(lambda self: self[1])
    consumed_y = property(lambda self: self[2])
    dp_cells = property(lambda self: self[3])


def extend_overlap(
    x: np.ndarray,
    y: np.ndarray,
    params: ScoringParams,
    band: int,
) -> ExtensionResult:
    """Best banded extension of the seed boundary into ``x`` and ``y``.

    The alignment starts exactly at position (0, 0) (the seed edge) and
    must consume *all* of ``x`` or *all* of ``y``; the other string may be
    left partially unconsumed (it continues beyond the overlap).  Returns
    the best score and how much of each string the overlap consumed.
    """
    if band < 0:
        raise ValueError(f"band must be >= 0, got {band}")
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    lx, ly = len(x), len(y)
    if lx == 0 or ly == 0:
        # One side has nothing to extend into: the boundary is an end.
        return ExtensionResult(0.0, 0, 0, 0)

    match, mis = params.match, params.mismatch
    go, ge = params.gap_open, params.gap_extend
    js = np.arange(ly + 1, dtype=np.int64)

    # Row 0: only leading gaps in x (consuming y) are possible.
    m_row = np.full(ly + 1, NEG_INF)
    ix_row = np.full(ly + 1, NEG_INF)
    iy_row = np.full(ly + 1, NEG_INF)
    m_row[0] = 0.0
    if ly >= 1:
        iy_row[1:] = go + (js[1:] - 1) * ge
    _apply_band(m_row, ix_row, iy_row, 0, band, ly)

    dp_cells = int(min(ly, band)) + 1
    # Candidate ends in the last column (j = ly) of every row.
    best = NEG_INF
    best_i, best_j = 0, 0
    if abs(0 - ly) <= band:
        col_best = max(m_row[ly], ix_row[ly], iy_row[ly])
        if col_best > best:
            best, best_i, best_j = col_best, 0, ly

    for i in range(1, lx + 1):
        sub = np.where(x[i - 1] == y, match, mis)
        prev_best = np.maximum(np.maximum(m_row, ix_row), iy_row)
        new_m = np.full(ly + 1, NEG_INF)
        new_m[1:] = prev_best[:-1] + sub
        new_ix = np.maximum(np.maximum(m_row, iy_row) + go, ix_row + ge)
        # Band mask before the horizontal scan so out-of-band cells cannot
        # feed in-band gap runs.
        new_iy = np.full(ly + 1, NEG_INF)
        _apply_band(new_m, new_ix, new_iy, i, band, ly)
        run = np.maximum.accumulate(np.maximum(new_m, new_ix) - js * ge)
        new_iy[1:] = go + (js[1:] - 1) * ge + run[:-1]
        _apply_band(new_m, new_ix, new_iy, i, band, ly)

        m_row, ix_row, iy_row = new_m, new_ix, new_iy
        lo = max(0, i - band)
        hi = min(ly, i + band)
        if hi >= lo:
            dp_cells += hi - lo + 1
        if abs(i - ly) <= band:
            col_best = max(m_row[ly], ix_row[ly], iy_row[ly])
            if col_best > best:
                best, best_i, best_j = col_best, i, ly

    # Candidate ends along the last row (all of x consumed).
    final = np.maximum(np.maximum(m_row, ix_row), iy_row)
    j_best = int(np.argmax(final))
    if final[j_best] > best:
        best, best_i, best_j = float(final[j_best]), lx, j_best

    if best <= NEG_INF / 2:
        # A band narrower than |lx - ly| excludes every valid end: the
        # overlap would need more indels than the error budget tolerates.
        # Report a pure-gap-run score to the nearer end — pessimistic and
        # guaranteed to fail acceptance, without poisoning ratios with -inf.
        if lx <= ly:
            best, best_i, best_j = go + max(lx - 1, 0) * ge, lx, 0
        else:
            best, best_i, best_j = go + max(ly - 1, 0) * ge, 0, ly
    return ExtensionResult(float(best), best_i, best_j, dp_cells)


def _apply_band(m_row, ix_row, iy_row, i: int, band: int, ly: int) -> None:
    """Mask cells outside |i - j| <= band to -inf in all three states."""
    lo = i - band
    hi = i + band
    if lo > 0:
        m_row[:lo] = NEG_INF
        ix_row[:lo] = NEG_INF
        iy_row[:lo] = NEG_INF
    if hi < ly:
        m_row[hi + 1 :] = NEG_INF
        ix_row[hi + 1 :] = NEG_INF
        iy_row[hi + 1 :] = NEG_INF


# --------------------------------------------------------------------------- #
# batched group kernel
# --------------------------------------------------------------------------- #


class BandedWorkspace:
    """Grow-only scratch buffers shared across :func:`extend_overlap_group`
    calls.

    A batch aligner runs the group kernel thousands of times per clustering;
    each call needs six DP state rows plus padding/scratch planes sized to
    the group.  The workspace allocates once at the high-water mark and hands
    out views, so steady-state groups touch no allocator at all.  ``reuses``
    and ``grows`` feed the ``align.buffer_reuse`` telemetry counter.
    """

    def __init__(self) -> None:
        self._g = 0
        self._lx = 0
        self._w = 0
        self._rows: np.ndarray | None = None  # (6, g, w) float64 DP states
        self._scratch: np.ndarray | None = None  # (4, g, w) float64
        self._outb: np.ndarray | None = None  # (g, w) bool band mask
        self._eq: np.ndarray | None = None  # (g, w) bool char equality
        self._xpad: np.ndarray | None = None  # (g, lx) int8
        self._ypad: np.ndarray | None = None  # (g, w) int8
        #: Calls served without reallocating / calls that had to grow.
        self.reuses = 0
        self.grows = 0

    def acquire(self, g: int, max_lx: int, max_ly: int) -> bool:
        """Ensure capacity for a (g, max_lx, max_ly) group.

        Returns True when the existing buffers were large enough (a reuse),
        False when they had to grow.
        """
        w = max_ly + 1
        if self._rows is None or g > self._g or max_lx > self._lx or w > self._w:
            self._g = max(g, self._g)
            self._lx = max(max_lx, self._lx)
            self._w = max(w, self._w)
            self._rows = np.empty((6, self._g, self._w))
            self._scratch = np.empty((4, self._g, self._w))
            self._outb = np.empty((self._g, self._w), dtype=bool)
            self._eq = np.empty((self._g, self._w), dtype=bool)
            self._xpad = np.empty((self._g, self._lx), dtype=np.int8)
            self._ypad = np.empty((self._g, self._w), dtype=np.int8)
            self.grows += 1
            return False
        self.reuses += 1
        return True


def extend_overlap_group(
    xs: Sequence[np.ndarray],
    ys: Sequence[np.ndarray],
    bands: np.ndarray,
    params: ScoringParams,
    *,
    workspace: BandedWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :func:`extend_overlap` over a group of extensions.

    Runs the identical recurrence for all group members at once, one 2-D
    numpy sweep per DP row: member ``g`` occupies plane row ``g``, padded to
    the group maxima with sentinels (``-1`` in x, ``-2`` in y) that never
    match each other or a real nucleotide code, so padded columns score as
    mismatches and — because information only flows rightwards/downwards in
    the recurrence — never contaminate a real cell.  Every floating-point
    operation is performed in the same order per cell as the scalar kernel,
    so results are bit-identical (the batch aligner's oracle property).

    All ``xs[k]``/``ys[k]`` must be non-empty (callers shortcut empty
    extensions to ``ExtensionResult(0.0, 0, 0, 0)`` like the scalar path).

    Returns ``(score, consumed_x, consumed_y, dp_cells)`` arrays of length
    ``len(xs)``.
    """
    g = len(xs)
    if g != len(ys) or g != len(bands):
        raise ValueError(
            f"group size mismatch: {g} xs, {len(ys)} ys, {len(bands)} bands"
        )
    if g == 0:
        empty_f = np.empty(0)
        empty_i = np.empty(0, dtype=np.int64)
        return empty_f, empty_i, empty_i.copy(), empty_i.copy()
    bands = np.asarray(bands, dtype=np.int64)
    if bands.min() < 0:
        raise ValueError("band must be >= 0 for every group member")
    lxs = np.fromiter((len(x) for x in xs), dtype=np.int64, count=g)
    lys = np.fromiter((len(y) for y in ys), dtype=np.int64, count=g)
    if lxs.min() == 0 or lys.min() == 0:
        raise ValueError("empty extensions must be filtered before grouping")
    max_lx = int(lxs.max())
    max_ly = int(lys.max())
    w = max_ly + 1

    ws = workspace if workspace is not None else BandedWorkspace()
    ws.acquire(g, max_lx, max_ly)

    xpad = ws._xpad[:g, :max_lx]
    xpad.fill(-1)
    ypad = ws._ypad[:g, :max_ly]
    ypad.fill(-2)
    for k in range(g):
        xpad[k, : lxs[k]] = xs[k]
        ypad[k, : lys[k]] = ys[k]

    match, mis = params.match, params.mismatch
    go, ge = params.gap_open, params.gap_extend
    js = np.arange(w, dtype=np.int64)
    jge = js * ge  # the scalar kernel's ``js * ge`` term
    jgo = go + (js[1:] - 1) * ge  # its ``go + (js[1:] - 1) * ge`` term

    m_row = ws._rows[0, :g, :w]
    ix_row = ws._rows[1, :g, :w]
    iy_row = ws._rows[2, :g, :w]
    new_m = ws._rows[3, :g, :w]
    new_ix = ws._rows[4, :g, :w]
    new_iy = ws._rows[5, :g, :w]
    pb = ws._scratch[0, :g, :w]
    tmp = ws._scratch[1, :g, :w]
    run = ws._scratch[2, :g, :w]
    sub = ws._scratch[3, :g, :max_ly]
    outb = ws._outb[:g, :w]
    eq = ws._eq[:g, :max_ly]

    def band_mask(i: int) -> None:
        np.greater(np.abs(i - js)[None, :], bands[:, None], out=outb)

    # Row 0: only leading gaps in x (consuming y) are possible.
    m_row.fill(NEG_INF)
    ix_row.fill(NEG_INF)
    iy_row.fill(NEG_INF)
    m_row[:, 0] = 0.0
    iy_row[:, 1:] = jgo
    band_mask(0)
    np.copyto(m_row, NEG_INF, where=outb)
    np.copyto(iy_row, NEG_INF, where=outb)

    ar = np.arange(g)
    best = np.full(g, NEG_INF)
    best_i = np.zeros(g, dtype=np.int64)
    best_j = np.zeros(g, dtype=np.int64)

    def column_candidates(i: int) -> None:
        # The scalar kernel's per-row last-column (j = ly) check, with the
        # same strict-> update so tie-breaks resolve identically.
        sel = (lxs >= i) & (np.abs(i - lys) <= bands)
        if not sel.any():
            return
        col = np.maximum(
            np.maximum(m_row[ar, lys], ix_row[ar, lys]), iy_row[ar, lys]
        )
        upd = sel & (col > best)
        best[upd] = col[upd]
        best_i[upd] = i
        best_j[upd] = lys[upd]

    def final_row_candidates(i: int) -> None:
        # The scalar kernel's after-loop full-row argmax, run for exactly
        # the members whose x drains at row i, after that row's column
        # candidate (matching the scalar check order).
        idx = np.nonzero(lxs == i)[0]
        if idx.size == 0:
            return
        fin = np.maximum(np.maximum(m_row[idx], ix_row[idx]), iy_row[idx])
        np.copyto(fin, NEG_INF, where=js[None, :] > lys[idx, None])
        jb = np.argmax(fin, axis=1)
        cand = fin[np.arange(idx.size), jb]
        upd = cand > best[idx]
        uidx = idx[upd]
        best[uidx] = cand[upd]
        best_i[uidx] = i
        best_j[uidx] = jb[upd]

    column_candidates(0)

    for i in range(1, max_lx + 1):
        np.equal(xpad[:, i - 1 : i], ypad, out=eq)
        sub.fill(mis)
        np.copyto(sub, match, where=eq)
        np.maximum(m_row, ix_row, out=pb)
        np.maximum(pb, iy_row, out=pb)
        new_m.fill(NEG_INF)
        np.add(pb[:, :-1], sub, out=new_m[:, 1:])
        np.maximum(m_row, iy_row, out=tmp)
        tmp += go
        np.add(ix_row, ge, out=new_ix)
        np.maximum(new_ix, tmp, out=new_ix)
        # Band mask before the horizontal scan so out-of-band cells cannot
        # feed in-band gap runs (new_iy is all -inf at this point).
        band_mask(i)
        np.copyto(new_m, NEG_INF, where=outb)
        np.copyto(new_ix, NEG_INF, where=outb)
        np.maximum(new_m, new_ix, out=run)
        run -= jge
        np.maximum.accumulate(run, axis=1, out=run)
        new_iy.fill(NEG_INF)
        np.add(jgo, run[:, :-1], out=new_iy[:, 1:])
        np.copyto(new_iy, NEG_INF, where=outb)

        m_row, new_m = new_m, m_row
        ix_row, new_ix = new_ix, ix_row
        iy_row, new_iy = new_iy, iy_row

        column_candidates(i)
        final_row_candidates(i)

    # A band narrower than |lx - ly| excludes every valid end; mirror the
    # scalar kernel's pessimistic pure-gap fallback.
    bad = best <= NEG_INF / 2
    if bad.any():
        use_x = bad & (lxs <= lys)
        best[use_x] = go + (lxs[use_x] - 1) * ge
        best_i[use_x] = lxs[use_x]
        best_j[use_x] = 0
        use_y = bad & (lxs > lys)
        best[use_y] = go + (lys[use_y] - 1) * ge
        best_i[use_y] = 0
        best_j[use_y] = lys[use_y]

    # In-band cell counts, closed form over the (member, row) grid.
    rows = np.arange(1, max_lx + 1, dtype=np.int64)
    lo = rows[None, :] - bands[:, None]
    np.maximum(lo, 0, out=lo)
    hi = np.minimum(lys[:, None], rows[None, :] + bands[:, None])
    width = hi - lo + 1
    np.maximum(width, 0, out=width)
    width[rows[None, :] > lxs[:, None]] = 0
    dp_cells = width.sum(axis=1) + np.minimum(lys, bands) + 1

    return best, best_i, best_j, dp_cells
