"""Seed-and-extend pairwise alignment (Fig. 5a of the paper).

Instead of aligning entire strings, PaCE "reduces work by merely extending
the already computed maximal substring match at both ends using gaps and
mismatches", with banded dynamic programming limiting the area further.
:class:`PairAligner` is that engine:

- the *seed* is the exact match reported by the pair generator (the path
  label of the GST node where the pair was generated);
- the *right extension* aligns the two string remainders after the seed
  under overlap semantics (must reach an end of one string);
- the *left extension* does the same on the reversed prefixes before the
  seed;
- the combined alignment necessarily spans border to border, so its shape
  is one of the four accepted overlap patterns (Fig. 5b), and the merge
  decision is the score-to-ideal ratio plus a minimum overlap length.

The band is sized from the error tolerance: ``band = max(band_min,
ceil(band_rate × extension_length))`` — the number of indels the extension
may absorb grows with how much sequence is being extended.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.align.banded import extend_overlap
from repro.align.full_dp import overlap_align
from repro.align.overlaps import classify_pattern
from repro.align.scoring import AcceptanceCriteria, AlignmentResult, ScoringParams
from repro.pairs.pair import Pair
from repro.sequence.collection import EstCollection
from repro.telemetry import Telemetry
from repro.util.validation import check_in_range, check_positive

__all__ = ["BandPolicy", "PairAligner", "BAND_WIDTH_BUCKETS"]

#: Histogram bounds for DP band widths: ``band_min`` defaults to 5 and
#: bands grow as ~6% of the extension length, so full-length EST
#: extensions (~550 bp) land in the 25–50 bucket.
BAND_WIDTH_BUCKETS: tuple[float, ...] = (2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class BandPolicy:
    """How wide the DP band is, as a function of extension length.

    ``band_rate`` ≈ tolerated indel fraction; ``band_min`` keeps very short
    extensions from being starved of room.  ``band_rate=1.0`` effectively
    disables banding (the full-DP ablation arm).
    """

    band_rate: float = 0.06
    band_min: int = 5

    def __post_init__(self) -> None:
        check_in_range("band_rate", self.band_rate, 0.0, 1.0)
        check_positive("band_min", self.band_min, strict=False)

    def band_for(self, ext_len: int) -> int:
        return max(self.band_min, math.ceil(self.band_rate * ext_len))


class PairAligner:
    """Aligns promising pairs by two-sided banded seed extension.

    One aligner is shared by a whole clustering run; it owns the scoring
    parameters, acceptance criteria and work counters (alignments
    performed, DP cells computed — the paper's time-intensive phase).
    """

    def __init__(
        self,
        collection: EstCollection,
        params: ScoringParams | None = None,
        criteria: AcceptanceCriteria | None = None,
        band_policy: BandPolicy | None = None,
        *,
        use_seed_extension: bool = True,
        engine: str = "banded",
        telemetry: Telemetry | None = None,
    ) -> None:
        self.collection = collection
        self.params = params or ScoringParams()
        self.criteria = criteria or AcceptanceCriteria()
        self.band_policy = band_policy or BandPolicy()
        #: When False, every pair is aligned with full whole-string overlap
        #: DP — the "traditional" engine, kept for the seed-extension
        #: ablation and the baseline comparators.
        self.use_seed_extension = use_seed_extension
        #: Seed-extension scorer: "banded" (optimal affine score in the
        #: band) or "kdiff" (greedy minimum-edit Landau-Vishkin — O(k²)
        #: work, the fast path for large sweeps).
        if engine not in ("banded", "kdiff"):
            raise ValueError(f"unknown extension engine {engine!r}")
        self.engine = engine
        #: Optional telemetry session: band widths and accept/reject
        #: counts flow into its registry (``None`` keeps this hot path
        #: entirely uninstrumented).
        self.telemetry = telemetry
        self.alignments_performed = 0
        #: Work actually performed by the selected engine (DP cells for the
        #: banded/full paths, diagonal slots for kdiff).
        self.dp_cells_total = 0
        #: Work a banded-DP implementation *would* pay for the same
        #: alignments (band area).  The simulated machine charges virtual
        #: time from this so its cost model reflects the paper's C
        #: implementation regardless of which host engine ran.
        self.model_cells_total = 0

    # ------------------------------------------------------------------ #

    def align_pair(self, pair: Pair) -> AlignmentResult:
        """Align the two strings of a promising pair."""
        a = self.collection.string(pair.string_a)
        b = self.collection.string(pair.string_b)
        self.alignments_performed += 1
        if not self.use_seed_extension:
            result = overlap_align(a, b, self.params)
            self.dp_cells_total += result.dp_cells
            self.model_cells_total += result.dp_cells
            return result
        result = self._seed_extend(a, b, pair.offset_a, pair.offset_b, pair.length)
        self.dp_cells_total += result.dp_cells
        return result

    def accept(self, result: AlignmentResult) -> bool:
        """The merge decision for an alignment result."""
        return result.accepted(self.params, self.criteria)

    def align_and_decide(self, pair: Pair) -> tuple[AlignmentResult, bool]:
        result = self.align_pair(pair)
        accepted = self.accept(result)
        if self.telemetry is not None:
            self.telemetry.count(
                "align.accepted" if accepted else "align.rejected"
            )
        return result, accepted

    def align_and_decide_batch(
        self, pairs: Iterable[Pair]
    ) -> list[tuple[AlignmentResult, bool]]:
        """Align a whole batch of pairs.  The reference engine loops;
        :class:`repro.align.batch.BatchPairAligner` vectorises."""
        return [self.align_and_decide(pair) for pair in pairs]

    # ------------------------------------------------------------------ #

    def _seed_extend(
        self, a: np.ndarray, b: np.ndarray, off_a: int, off_b: int, seed_len: int
    ) -> AlignmentResult:
        params = self.params
        if self.engine == "kdiff":
            from repro.align.kdiff import kdiff_extend

            def extend(px, py, budget):
                return kdiff_extend(px, py, params, budget)

        else:

            def extend(px, py, budget):
                return extend_overlap(px, py, params, budget)

        # Right of the seed.
        rx = a[off_a + seed_len :]
        ry = b[off_b + seed_len :]
        band_r = self.band_policy.band_for(min(len(rx), len(ry)))
        right = extend(rx, ry, band_r)
        # Left of the seed, on reversed prefixes.
        lx = a[:off_a][::-1]
        ly = b[:off_b][::-1]
        band_l = self.band_policy.band_for(min(len(lx), len(ly)))
        left = extend(lx, ly, band_l)
        if self.telemetry is not None:
            self.telemetry.observe("align.band_width", band_r, BAND_WIDTH_BUCKETS)
            self.telemetry.observe("align.band_width", band_l, BAND_WIDTH_BUCKETS)

        # Banded-equivalent work for the cost model: each extension costs
        # its band area, plus the seed scan.
        self.model_cells_total += (
            min(len(rx), len(ry)) * (2 * band_r + 1)
            + min(len(lx), len(ly)) * (2 * band_l + 1)
            + seed_len
        )

        score = params.match * seed_len + left.score + right.score
        a_start = off_a - left.consumed_x
        a_end = off_a + seed_len + right.consumed_x
        b_start = off_b - left.consumed_y
        b_end = off_b + seed_len + right.consumed_y
        pattern = classify_pattern(a_start, a_end, len(a), b_start, b_end, len(b))
        return AlignmentResult(
            score=score,
            a_start=a_start,
            a_end=a_end,
            b_start=b_start,
            b_end=b_end,
            pattern=pattern,
            dp_cells=left.dp_cells + right.dp_cells + seed_len,
        )
