"""Alignment scoring parameters, results, and acceptance criteria.

Quality of clustering "can be controlled by the usual set of parameters,
such as match and mismatch scores, gap opening and gap continuation
penalties, and the ratio of score obtained to the ideal score consisting
of all matches" (§3.3).  This module is that parameter surface.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.validation import check_in_range, check_positive

__all__ = [
    "ScoringParams",
    "AcceptanceCriteria",
    "OverlapPattern",
    "AlignmentResult",
]


@dataclass(frozen=True)
class ScoringParams:
    """Affine-gap scoring.  Defaults follow common EST-assembly practice
    (strong mismatch/gap penalties because ESTs are high-identity reads)."""

    match: float = 2.0
    mismatch: float = -3.0
    gap_open: float = -5.0
    gap_extend: float = -2.0

    def __post_init__(self) -> None:
        check_positive("match", self.match)
        if self.mismatch >= 0:
            raise ValueError(f"mismatch score must be negative, got {self.mismatch}")
        if self.gap_open >= 0 or self.gap_extend >= 0:
            raise ValueError("gap penalties must be negative")


@dataclass(frozen=True)
class AcceptanceCriteria:
    """When does an alignment count as evidence to merge two clusters?

    ``min_score_ratio`` is the paper's score-to-ideal ratio ("the ideal
    score consisting of all matches" over the aligned region);
    ``min_overlap`` guards against spuriously short overlaps.
    """

    min_score_ratio: float = 0.85
    min_overlap: int = 40

    def __post_init__(self) -> None:
        check_in_range("min_score_ratio", self.min_score_ratio, 0.0, 1.0)
        check_positive("min_overlap", self.min_overlap)


class OverlapPattern(enum.Enum):
    """The four alignment shapes accepted as merge evidence (Fig. 5b).

    ``A``/``B`` refer to the two aligned strings; the suffix names which
    shape the optimal path took in the dynamic-programming table.
    """

    SUFFIX_A_PREFIX_B = "suffix_a_prefix_b"  # A ends inside B's start: A →  B
    SUFFIX_B_PREFIX_A = "suffix_b_prefix_a"  # B ends inside A's start: B →  A
    A_CONTAINS_B = "a_contains_b"  # B aligns entirely within A
    B_CONTAINS_A = "b_contains_a"  # A aligns entirely within B


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of aligning one promising pair.

    Spans are half-open on each string: the overlap covers
    ``a[a_start:a_end]`` and ``b[b_start:b_end]``.  ``dp_cells`` counts the
    dynamic-programming cells actually computed, the work measure used by
    the banding ablation (a C implementation's run-time is proportional to
    it; the paper's Fig. 5a is exactly about shrinking this area).
    """

    score: float
    a_start: int
    a_end: int
    b_start: int
    b_end: int
    pattern: OverlapPattern
    dp_cells: int
    #: Edit transcript of the overlap ('M' match, 'X' mismatch, 'D' gap in
    #: B / consumes A, 'I' gap in A / consumes B).  Only engines that do a
    #: full traceback fill this in; the banded extender leaves it None.
    ops: str | None = None

    @property
    def overlap_len(self) -> int:
        """Length of the aligned region (the longer of the two spans)."""
        return max(self.a_end - self.a_start, self.b_end - self.b_start)

    def score_ratio(self, params: ScoringParams) -> float:
        """Score relative to the ideal all-match score over the overlap."""
        ideal = params.match * self.overlap_len
        return self.score / ideal if ideal > 0 else 0.0

    def accepted(self, params: ScoringParams, criteria: AcceptanceCriteria) -> bool:
        """The paper's merge test: pattern is one of the accepted four by
        construction, so acceptance is the score-ratio and overlap-length
        thresholds."""
        return (
            self.overlap_len >= criteria.min_overlap
            and self.score_ratio(params) >= criteria.min_score_ratio
        )
