"""Classification of alignment shapes into the four accepted overlap
patterns of Fig. 5b.

Evidence for merging two clusters must be one of: a suffix of A aligning
to a prefix of B, a suffix of B aligning to a prefix of A, or one string
aligning entirely inside the other (either direction).  Any overlap-
semantics alignment (free end gaps on both sides) ends and starts on
borders of the DP table, so these four cases are exhaustive.
"""

from __future__ import annotations

from repro.align.scoring import OverlapPattern

__all__ = ["classify_pattern"]


def classify_pattern(
    a_start: int, a_end: int, lx: int, b_start: int, b_end: int, ly: int
) -> OverlapPattern:
    """Map overlap spans onto the four accepted shapes of Fig. 5b.

    Containment takes precedence: when one string is fully covered by the
    overlap it is contained in the other regardless of which flanks are
    flush.
    """
    a_full = a_start == 0 and a_end == lx
    b_full = b_start == 0 and b_end == ly
    if b_full:
        return OverlapPattern.A_CONTAINS_B
    if a_full:
        return OverlapPattern.B_CONTAINS_A
    if a_end == lx and b_start == 0:
        return OverlapPattern.SUFFIX_A_PREFIX_B
    if b_end == ly and a_start == 0:
        return OverlapPattern.SUFFIX_B_PREFIX_A
    # Free-end-gap DP always starts and ends on a border, so one of the
    # four cases above must hold.
    raise AssertionError(
        f"impossible overlap spans ({a_start},{a_end})/{lx} ({b_start},{b_end})/{ly}"
    )
