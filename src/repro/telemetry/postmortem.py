"""Postmortem reconstruction of a failed (or finished) run directory.

`pace-est postmortem <dir>` merges everything a run left behind —
telemetry/live JSONL (tolerated even when the writer died mid-line,
see :func:`repro.telemetry.sinks.load_jsonl`) and the per-process
flight-recorder dumps (:mod:`repro.telemetry.flight`) — into one
causally-ordered timeline, then reports:

- each actor's last known state (progress counters from live samples,
  ring-buffer state from flight dumps, whichever is newest);
- which slaves were lost, and which work units were in flight when the
  run ended (from :func:`repro.telemetry.causal.check_conservation`
  with in-flight allowed — in-flight units on a *finished* run are
  still flagged as errors);
- the merged event tail: the last moments before things went wrong.

The module is read-only over the run directory and never raises on
partial data: a postmortem has to work on exactly the runs that died
messily.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.telemetry.causal import check_conservation, format_unit
from repro.telemetry.flight import load_flight_dumps
from repro.telemetry.live import replay_live_records
from repro.telemetry.sinks import load_jsonl

__all__ = ["RunSources", "collect_run_sources", "build_postmortem"]

#: Default number of merged timeline events shown at the end of a report.
DEFAULT_TAIL = 25


@dataclass
class RunSources:
    """Everything readable from one run directory."""

    directory: str
    records: list[dict] = field(default_factory=list)
    flight_dumps: list[dict] = field(default_factory=list)
    #: ``(filename, record count)`` per JSONL file actually read.
    jsonl_files: list[tuple[str, int]] = field(default_factory=list)
    #: ``filename: message`` for files that could not be read at all.
    errors: dict[str, str] = field(default_factory=dict)

    @property
    def meta(self) -> dict:
        for rec in self.records:
            if rec.get("kind") == "meta":
                return rec
        return {}


def collect_run_sources(directory: str) -> RunSources:
    """Read every JSONL file and flight dump in ``directory``.

    JSONL files are loaded tolerantly (a truncated final line — the
    writer died mid-record — is skipped with a warning instead of
    raised); files that are unreadable or broken earlier than their last
    line are reported in ``errors`` and otherwise ignored.
    """
    src = RunSources(directory=directory)
    try:
        names = sorted(os.listdir(directory))
    except OSError as exc:
        src.errors[directory] = str(exc)
        return src
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        path = os.path.join(directory, name)
        try:
            records = load_jsonl(path, tolerant=True)
        except (OSError, ValueError) as exc:
            src.errors[name] = str(exc)
            continue
        src.jsonl_files.append((name, len(records)))
        src.records.extend(records)
    # A stable causal order for the merged stream: every record kind in
    # the /4 schema carries ts on the run clock.
    src.records.sort(key=lambda r: float(r.get("ts", 0.0)))
    src.flight_dumps = load_flight_dumps(directory)
    return src


def _timeline_tail(src: RunSources, tail: int) -> list[str]:
    """The last ``tail`` noteworthy events across all sources, merged on
    the run clock."""
    merged: list[tuple[float, str, str]] = []
    for rec in src.records:
        kind = rec.get("kind")
        ts = float(rec.get("ts", 0.0))
        if kind == "causal":
            extra = f" reason={rec['reason']}" if rec.get("reason") else ""
            to = f" slave={rec['slave']}" if rec.get("slave") is not None else ""
            merged.append(
                (
                    ts,
                    rec.get("actor", "?"),
                    f"{rec.get('event')} unit {format_unit(rec.get('unit', -1))} "
                    f"n={rec.get('n', 0)}{to}{extra}",
                )
            )
        elif kind == "trace" and rec.get("event") == "fault":
            merged.append((ts, rec.get("actor", "?"), f"FAULT {rec.get('detail', '')}"))
    for dump in src.flight_dumps:
        actor = dump.get("actor", "?")
        for ev in dump.get("events", ()):
            if not isinstance(ev, dict):
                continue
            detail = {k: v for k, v in ev.items() if k not in ("ts", "event")}
            text = f"[flight] {ev.get('event', '?')}"
            if detail:
                text += " " + " ".join(f"{k}={v}" for k, v in sorted(detail.items()))
            merged.append((float(ev.get("ts", 0.0)), actor, text))
    merged.sort(key=lambda t: t[0])
    return [f"  t={ts:10.4f}  {actor:<8} {text}" for ts, actor, text in merged[-tail:]]


def build_postmortem(directory: str, *, tail: int = DEFAULT_TAIL) -> tuple[str, bool]:
    """Reconstruct a run's last moments; returns ``(report, ok)``.

    ``ok`` is False when the causal ledger shows orphans or double
    absorbs, or when a run that claims to have *finished* still has
    in-flight work units — an interrupted run with in-flight units is
    expected and reported, not failed.
    """
    src = collect_run_sources(directory)
    meta = src.meta
    lines: list[str] = []
    run_id = meta.get("run_id") or next(
        (d.get("run_id") for d in src.flight_dumps if d.get("run_id")), ""
    )
    lines.append(f"postmortem: {directory}")
    lines.append(
        f"  run {run_id or '?'} · engine={meta.get('engine', '?')} "
        f"· schema={meta.get('schema', '?')}"
    )

    lines.append("sources:")
    for name, count in src.jsonl_files:
        lines.append(f"  {name}: {count} records")
    for dump in src.flight_dumps:
        actor = dump.get("actor", "?")
        if "load_error" in dump:
            lines.append(f"  flight dump {actor}: unreadable ({dump['load_error']})")
        else:
            lines.append(
                f"  flight-{actor}.json: {len(dump.get('events', ()))} events, "
                f"reason={dump.get('reason', '?')} "
                f"at t={float(dump.get('dumped_at', 0.0)):.4f}"
            )
    for name, err in src.errors.items():
        lines.append(f"  {name}: unreadable ({err})")
    if not src.jsonl_files and not src.flight_dumps:
        lines.append("  (no telemetry JSONL or flight dumps found)")
        return "\n".join(lines), False

    finished = bool(meta.get("total_time") is not None)
    state = replay_live_records(src.records)
    flight_by_actor = {
        d.get("actor"): d for d in src.flight_dumps if "load_error" not in d
    }

    lines.append("actors:")
    views = [("master", state.master)] + [
        (f"slave{k}", v) for k, v in sorted(state.slaves.items())
    ]
    for actor, view in views:
        parts = [f"state={view.state}"]
        if view.samples:
            parts.append(f"last seen t={view.last_ts:.4f}")
            parts.append(f"aligned={view.alignments}")
            parts.append(f"generated={view.pairs_generated}")
            if actor != "master":
                parts.append(f"inc={view.incarnation}")
        dump = flight_by_actor.get(actor)
        if dump is not None:
            parts.append(f"flight dump: {dump.get('reason', '?')}")
            st = dump.get("state")
            if isinstance(st, dict) and st:
                parts.append(
                    "dump state: "
                    + " ".join(f"{k}={v}" for k, v in sorted(st.items()))
                )
        lines.append(f"  {actor:<8} " + " · ".join(parts))
    lost = sorted(k for k, v in state.slaves.items() if v.lost)
    if lost:
        lines.append(f"lost slaves: {', '.join(str(k) for k in lost)}")

    report = check_conservation(src.records)
    if report.ledgers:
        if report.in_flight:
            lines.append("in-flight work units at end of record stream:")
            for unit, n in sorted(report.in_flight.items()):
                led = report.ledgers[unit]
                where = (
                    f"dispatched to slave {led.last_slave}"
                    if led.flight_leftover > 0
                    else "queued in WORKBUF"
                )
                lines.append(
                    f"  unit {format_unit(unit)}: {n} pairs, {where}, "
                    f"last event t={led.last_ts:.4f}"
                )
        lines.extend(report.lines(allow_in_flight=not finished))
        ok = report.ok(allow_in_flight=not finished)
    else:
        lines.append(
            "no causal records found (run without --causal-trace); "
            "conservation not checked"
        )
        ok = not src.errors

    tail_lines = _timeline_tail(src, tail)
    if tail_lines:
        lines.append(f"timeline tail (last {len(tail_lines)} events):")
        lines.extend(tail_lines)
    return "\n".join(lines), ok
