"""Post-run trace analysis: critical path, imbalance, and run diffing.

Works on loaded ``repro-telemetry`` JSONL records (any accepted schema
rev — latency summaries are reconstructed from the ``latency.*``
histograms when the denormalised ``/3`` records are absent), so it can
compare a run monitored today against a trace committed months ago.

Three questions, three entry points:

- :func:`analyze_trace` — *where does the time go?*  Per-stage quantile
  table, the critical-path stage (which lifecycle stage dominates the
  part of the work-unit round trip that cannot overlap with other work
  units), per-slave busy-time imbalance with straggler hints, and the
  master-serialisation fraction.
- :func:`diff_traces` — *did it get slower?*  Per-stage, per-quantile
  relative deltas between two traces, flagging regressions past a
  threshold; a trace diffed against itself reports zero regressions.
- :func:`stage_table` — the raw per-stage summary both of the above are
  built on, for tools that want numbers rather than prose.

Critical-path model: a work unit's round trip (``rtt``, dispatch →
verdict absorbed) decomposes into the stages that happen *inside* it —
``transit`` out, slave ``align`` (and any blocking ``generate`` the
slave interleaves), ``transit`` back, master ``absorb``.  ``queue_master``
dwell happens *before* dispatch, so it is reported separately as
admission backpressure rather than folded into the round trip.  The
critical-path stage is the in-flight stage with the largest total
seconds: shrinking any other stage first cannot shrink the makespan by
more.
"""

from __future__ import annotations

import math

from repro.telemetry.causal import check_conservation
from repro.telemetry.latency import QUANTILES, STAGES, store_from_records

__all__ = [
    "stage_table",
    "analyze_trace",
    "diff_traces",
    "trace_meta",
    "conservation_section",
]

#: Stages that elapse inside a work unit's round trip (see module doc).
IN_FLIGHT_STAGES: tuple[str, ...] = ("transit", "align", "generate", "absorb")

#: Busy-time ratio (max slave / mean slave) past which a slave is named
#: a straggler.  1.15 = 15% above the mean — visible on Fig. 8's scale.
STRAGGLER_RATIO = 1.15

#: Default relative-increase threshold for :func:`diff_traces`.
DEFAULT_DIFF_THRESHOLD = 0.25

#: Absolute floor below which quantile increases are noise, not
#: regressions (sub-microsecond deltas are clock jitter in every domain
#: we measure).
_ABS_FLOOR = 1e-6


# --------------------------------------------------------------------- #
# extraction


def trace_meta(records: list[dict]) -> dict:
    """The trace's meta record (first line), or ``{}``."""
    if records and records[0].get("kind") == "meta":
        return records[0]
    return {}


def stage_table(records: list[dict]) -> dict[str, dict[str, float]]:
    """Per-stage ``{count, sum, mean, p50, p90, p99, p999}``.

    Prefers the denormalised ``latency`` records (schema ``/3``); falls
    back to rebuilding from the ``latency.*`` histograms so pre-``/3``
    traces analyse identically.
    """
    table: dict[str, dict[str, float]] = {}
    for rec in records:
        if rec.get("kind") == "latency":
            table[rec["stage"]] = {
                k: rec[k]
                for k in ("count", "sum", "mean", "p50", "p90", "p99", "p999")
                if k in rec
            }
    if table:
        return _in_stage_order(table)
    return _in_stage_order(store_from_records(records).breakdown())


def _in_stage_order(table: dict) -> dict:
    ordered = [s for s in STAGES if s in table]
    ordered += sorted(set(table) - set(STAGES))
    return {s: table[s] for s in ordered}


def _busy_by_actor(records: list[dict]) -> dict[str, float]:
    """Busy seconds per actor, from ``compute`` trace intervals (mp and
    instrumented slaves) unioned with ``busy.<actor>.seconds`` gauges
    (the simulator's accounting)."""
    busy: dict[str, float] = {}
    for rec in records:
        if rec.get("kind") == "trace" and rec.get("event") == "compute":
            dur = float(rec.get("end", rec["ts"])) - float(rec["ts"])
            if dur > 0:
                actor = rec.get("actor", "?")
                busy[actor] = busy.get(actor, 0.0) + dur
    for rec in records:
        if (
            rec.get("kind") == "metric"
            and rec.get("metric") == "gauge"
            and rec.get("name", "").startswith("busy.")
            and rec.get("name", "").endswith(".seconds")
        ):
            actor = rec["name"][len("busy.") : -len(".seconds")]
            busy[actor] = max(busy.get(actor, 0.0), float(rec["value"]))
    return busy


def _slave_busy(busy: dict[str, float]) -> dict[str, float]:
    return {a: s for a, s in busy.items() if a.startswith("slave")}


def _shard_busy(busy: dict[str, float]) -> dict[str, float]:
    """Busy seconds per master shard (``shard0``, ``shard1``, …).  Empty
    for single-master runs, whose master actor stays ``master``."""
    return {a: s for a, s in busy.items() if a.startswith("shard")}


def _counter_totals(records: list[dict], *names: str) -> dict[str, float]:
    """Final value of each named counter metric (counters are emitted as
    monotonically-summed totals, so the last record wins)."""
    totals: dict[str, float] = {}
    for rec in records:
        if (
            rec.get("kind") == "metric"
            and rec.get("metric") == "counter"
            and rec.get("name") in names
        ):
            totals[rec["name"]] = float(rec["value"])
    return totals


def critical_path(table: dict[str, dict[str, float]]) -> tuple[str, float]:
    """The in-flight stage with the largest total seconds and its share
    of the in-flight total.  ``("", nan)`` when nothing was observed."""
    totals = {
        s: table[s].get("sum", 0.0) for s in IN_FLIGHT_STAGES if s in table
    }
    grand = sum(totals.values())
    if not totals or grand <= 0:
        return "", math.nan
    stage = max(totals, key=lambda s: totals[s])
    return stage, totals[stage] / grand


# --------------------------------------------------------------------- #
# analyze


def conservation_section(records: list[dict]) -> tuple[list[str], int]:
    """Work-unit conservation report lines for a trace, plus the number
    of conservation *errors* (orphans, double absorbs, and — since any
    trace analyzed here claims to be a complete run — leftover in-flight
    units).  ``([], 0)`` when the trace carries no causal records."""
    report = check_conservation(records)
    if not report.ledgers:
        return [], 0
    lines = report.lines()
    errors = len(report.orphans) + len(report.in_flight)
    if report.storms:
        lines.append(
            f"  requeue storms usually mean the restart budget is bouncing "
            f"work between dying slaves — check fault counters"
        )
    return lines, errors


def analyze_trace(records: list[dict]) -> str:
    """Human-readable latency analysis of one trace."""
    meta = trace_meta(records)
    unit = "virtual s" if meta.get("clock") == "virtual" else "s"
    total = float(meta.get("total_time", 0.0))
    lines = [
        f"trace: engine={meta.get('engine', '?')} "
        f"processors={meta.get('n_processors', '?')} "
        f"clock={meta.get('clock', '?')} total={total:.4f} {unit}"
    ]
    if meta.get("run_id"):
        lines[0] += f" run={meta['run_id']}"

    table = stage_table(records)
    if not table:
        lines.append("no work-unit latency data in this trace "
                     "(run with telemetry enabled on a /3-era build)")
        return "\n".join(lines)

    lines.append("")
    lines.append(f"per-stage latency ({unit}):")
    lines.append(
        f"  {'stage':<14s}{'count':>9s}{'total':>11s}{'mean':>11s}"
        f"{'p50':>11s}{'p90':>11s}{'p99':>11s}{'p999':>11s}"
    )
    for stage, rec in table.items():
        lines.append(
            f"  {stage:<14s}{int(rec.get('count', 0)):9d}"
            f"{rec.get('sum', 0.0):11.4g}{rec.get('mean', 0.0):11.4g}"
            + "".join(
                f"{rec.get(label, math.nan):11.4g}" for label, _ in QUANTILES
            )
        )

    stage, share = critical_path(table)
    lines.append("")
    if stage:
        lines.append(
            f"critical path: {stage} "
            f"({share * 100:.1f}% of in-flight stage seconds — "
            f"shrinking any other stage cannot help more)"
        )
    if "queue_master" in table:
        q = table["queue_master"]
        lines.append(
            f"admission backpressure: queue_master p99 "
            f"{q.get('p99', math.nan):.4g} {unit} over "
            f"{int(q.get('count', 0))} pairs (dwell before dispatch; "
            f"not part of the round trip)"
        )
    busy = _busy_by_actor(records)
    if "absorb" in table and total > 0:
        frac = table["absorb"].get("sum", 0.0) / total
        lines.append(
            f"master serialisation: absorb occupies {frac * 100:.1f}% of "
            f"the run (the Fig. 8 master-bottleneck axis)"
        )
        shards = _shard_busy(busy)
        if shards:
            counters = _counter_totals(
                records,
                "shard.sync_rounds",
                "shard.unions_exchanged",
                "shard.pairs_pruned",
            )
            lines.append(
                f"  sharded master: {len(shards)} shards, "
                f"{int(counters.get('shard.sync_rounds', 0))} sync rounds, "
                f"{int(counters.get('shard.unions_exchanged', 0))} unions "
                f"exchanged, "
                f"{int(counters.get('shard.pairs_pruned', 0))} pairs pruned"
            )
            hot = max(shards, key=lambda a: shards[a])
            for actor in sorted(shards):
                mark = "  <- hot shard" if actor == hot else ""
                lines.append(
                    f"    {actor:<10s} busy {shards[actor]:.4g} {unit} "
                    f"({shards[actor] / total * 100:.1f}% of the run)"
                    f"{mark}"
                )
            lines.append(
                f"  residual serialisation rides the hot shard ({hot}) "
                f"plus the merge exchanges; rebalance bucket ownership "
                f"before adding shards if the hot share dominates"
            )

    slaves = _slave_busy(busy)
    if len(slaves) >= 2:
        mean = sum(slaves.values()) / len(slaves)
        worst = max(slaves, key=lambda a: slaves[a])
        ratio = slaves[worst] / mean if mean > 0 else math.nan
        lines.append("")
        lines.append(
            f"slave load: {len(slaves)} slaves, busy mean {mean:.4g} {unit}, "
            f"max {slaves[worst]:.4g} {unit} ({worst}), "
            f"imbalance {ratio:.3f}x"
        )
        if ratio >= STRAGGLER_RATIO:
            lines.append(
                f"straggler hint: {worst} is {ratio:.2f}x the mean busy "
                f"time — check its EST share and the rtt tail"
            )
        else:
            lines.append("no straggler: busy times within "
                         f"{STRAGGLER_RATIO:.2f}x of the mean")

    cons_lines, _ = conservation_section(records)
    if cons_lines:
        lines.append("")
        lines.extend(cons_lines)
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# diff


def diff_traces(
    a_records: list[dict],
    b_records: list[dict],
    *,
    threshold: float = DEFAULT_DIFF_THRESHOLD,
) -> tuple[str, int]:
    """Compare trace *b* against baseline *a*; return ``(report,
    n_regressions)``.

    A regression is a per-stage mean or quantile that grew by more than
    ``threshold`` (relative) *and* more than an absolute noise floor.
    Identical traces — including a trace diffed against itself — report
    zero regressions.  Stages present on only one side are noted but
    never counted (engines legitimately differ in stage sets).
    """
    ta, tb = stage_table(a_records), stage_table(b_records)
    ma, mb = trace_meta(a_records), trace_meta(b_records)
    lines = [
        f"baseline: engine={ma.get('engine', '?')} total="
        f"{float(ma.get('total_time', 0.0)):.4f}"
        f"   candidate: engine={mb.get('engine', '?')} total="
        f"{float(mb.get('total_time', 0.0)):.4f}"
        f"   threshold: +{threshold * 100:.0f}%"
    ]
    regressions = 0
    shared = [s for s in ta if s in tb]
    metrics = ["mean"] + [label for label, _ in QUANTILES]
    if shared:
        lines.append("")
        lines.append(
            f"  {'stage':<14s}{'metric':>7s}{'baseline':>12s}"
            f"{'candidate':>12s}{'delta':>9s}"
        )
    for stage in shared:
        for m in metrics:
            va, vb = ta[stage].get(m), tb[stage].get(m)
            if va is None or vb is None:
                continue
            if math.isnan(va) or math.isnan(vb):
                continue
            delta = (vb - va) / va if va > 0 else (math.inf if vb > 0 else 0.0)
            regressed = delta > threshold and (vb - va) > _ABS_FLOOR
            if regressed:
                regressions += 1
            shown = (
                f"{delta * 100:+.1f}%" if math.isfinite(delta) else "+inf"
            )
            lines.append(
                f"  {stage:<14s}{m:>7s}{va:>12.4g}{vb:>12.4g}{shown:>9s}"
                + ("  REGRESSION" if regressed else "")
            )
    for stage in ta:
        if stage not in tb:
            lines.append(f"  note: stage {stage!r} only in baseline")
    for stage in tb:
        if stage not in ta:
            lines.append(f"  note: stage {stage!r} only in candidate")
    lines.append("")
    lines.append(
        f"{regressions} regression(s) past +{threshold * 100:.0f}%"
        if regressions
        else f"no regressions past +{threshold * 100:.0f}%"
    )
    return "\n".join(lines), regressions
