"""Crash flight recorder: a bounded ring of recent protocol events.

Aggregate telemetry only reaches disk when a run finishes; a slave that
dies mid-run takes its recent history with it.  Each process (master and
every mp slave) can therefore keep a :class:`FlightRecorder` — a
``deque(maxlen=...)`` of its most recent protocol/dispatch/union events —
and dump it to ``<dir>/flight-<actor>.json`` when something goes wrong:
an unhandled exception, a fault-tolerance transition, or SIGTERM.
`pace-est postmortem` merges these dumps with whatever telemetry JSONL
made it to disk and reconstructs the run's last moments.

Recording a note is one ``deque.append`` of a small dict — cheap enough
to leave on for every monitored run — and nothing at all when no
recorder is constructed (the disabled path stays instruction-free: call
sites guard on ``rec is not None``).

Dump files are self-describing JSON (schema ``repro-flight/1``)::

    {"schema": "repro-flight/1", "actor": "slave3", "run_id": "...",
     "reason": "crash", "dumped_at": 12.5, "state": {...}, "events": [...]}

``state`` is the output of an optional ``state_provider`` callable — the
engines attach one returning protocol state (in-flight work units,
dispatch-policy queue depths, message counts) so the dump names exactly
what the process was holding when it died.
"""

from __future__ import annotations

import json
import os
import signal
import time
from collections import deque
from typing import Callable, Iterable

__all__ = [
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "load_flight_dumps",
    "merge_flight_events",
]

FLIGHT_SCHEMA = "repro-flight/1"

#: Default ring capacity: enough to cover several protocol round trips
#: per slave without ever holding more than a few hundred small dicts.
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Per-process bounded event ring with dump-on-disaster semantics."""

    def __init__(
        self,
        directory: str,
        actor: str,
        *,
        run_id: str = "",
        capacity: int = DEFAULT_CAPACITY,
        clock: Callable[[], float] = time.time,
        state_provider: Callable[[], dict] | None = None,
    ) -> None:
        self.directory = directory
        self.actor = actor
        self.run_id = run_id
        self.clock = clock
        self.state_provider = state_provider
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._dumped = False

    # ---- recording ---------------------------------------------------- #

    def note(self, event: str, **detail) -> None:
        """Append one event to the ring (oldest entries fall off)."""
        rec = {"ts": self.clock(), "event": event}
        if detail:
            rec.update(detail)
        self._ring.append(rec)

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def events(self) -> list[dict]:
        return list(self._ring)

    # ---- dumping ------------------------------------------------------ #

    @property
    def path(self) -> str:
        return os.path.join(self.directory, f"flight-{self.actor}.json")

    def dump(self, reason: str, *, force: bool = False) -> str | None:
        """Write the ring to disk; idempotent unless ``force``.

        The first dump wins (a crash dump should not be overwritten by
        the SIGTERM handler firing during teardown).  Returns the path
        written, or ``None`` when skipped or the write itself failed —
        a flight recorder must never turn a crash into a different crash.
        """
        if self._dumped and not force:
            return None
        payload = {
            "schema": FLIGHT_SCHEMA,
            "actor": self.actor,
            "run_id": self.run_id,
            "reason": reason,
            "dumped_at": self.clock(),
            "events": list(self._ring),
        }
        if self.state_provider is not None:
            try:
                payload["state"] = self.state_provider()
            except Exception as exc:  # pragma: no cover - defensive
                payload["state_error"] = repr(exc)
        try:
            os.makedirs(self.directory, exist_ok=True)
            tmp = f"{self.path}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, default=str)
                fh.write("\n")
            os.replace(tmp, self.path)
        except OSError:
            return None
        self._dumped = True
        return self.path

    def install_sigterm(self) -> None:
        """Dump on SIGTERM, then die with the conventional 128+SIGTERM
        status (the previous handler is not chained — slaves install
        this in their own forked process)."""

        def _handler(signum, frame):  # pragma: no cover - signal path
            self.dump("sigterm")
            os._exit(128 + signum)

        signal.signal(signal.SIGTERM, _handler)


def load_flight_dumps(directory: str) -> list[dict]:
    """Read every ``flight-*.json`` dump in a run directory, sorted by
    actor name.  Unreadable or half-written dumps are skipped with a
    ``load_error`` placeholder entry rather than raised — postmortem
    tooling must work on exactly the runs that died messily."""
    dumps: list[dict] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return dumps
    for name in names:
        if not (name.startswith("flight-") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError) as exc:
            dumps.append(
                {"schema": FLIGHT_SCHEMA, "actor": name, "load_error": str(exc)}
            )
            continue
        if isinstance(payload, dict):
            dumps.append(payload)
    return dumps


def merge_flight_events(dumps: Iterable[dict]) -> list[dict]:
    """Flatten dump events into one ts-sorted stream, tagging each event
    with its source actor."""
    merged: list[dict] = []
    for dump in dumps:
        actor = dump.get("actor", "?")
        for ev in dump.get("events", ()):
            if isinstance(ev, dict):
                tagged = dict(ev)
                tagged.setdefault("actor", actor)
                merged.append(tagged)
    merged.sort(key=lambda e: e.get("ts", 0.0))
    return merged
