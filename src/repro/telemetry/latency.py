"""Work-unit latency tracing: per-stage streaming histograms + quantiles.

The §3.3 master–slave alternation is a queueing system, and queueing
systems are diagnosed by *tail latency per stage*, not mean throughput: a
straggling slave shows up as a fat ``rtt`` p99, a dispatch pathology as
``queue_master`` dwarfing ``align``, a serialisation bottleneck as
``absorb`` creeping toward the message cadence.  This module is the
store those measurements land in.

A **work unit** is a pair-batch, and its lifecycle is broken into the
stages every engine reports under the same names
(:data:`STAGES`):

- ``generate`` — blocking pair generation of one portion (slave-side;
  bootstrap portions and PAIRBUF refills both count);
- ``queue_master`` — per-pair dwell time in WORKBUF, admission →
  dispatch (master-side; requeues after a slave loss restart the clock);
- ``transit`` — one message's network/pipe time, either direction
  (stamped ``sent_at`` on :class:`~repro.parallel.protocol.SlaveMsg` /
  :class:`~repro.parallel.protocol.MasterMsg`, observed at receipt);
- ``align`` — aligning one NEXTWORK batch (slave-side);
- ``absorb`` — the master incorporating one slave message (results,
  admission, reply computation);
- ``rtt`` — dispatch → verdict absorbed for one non-empty work batch,
  the end-to-end work-unit latency (master-side, spans the whole loop).

The sequential driver has no master, queue or wire, so it reports the
subset {``generate``, ``align``}; the simulator and the multiprocessing
backend report the full set with *identical* stage names — virtual
seconds under the simulator's clock, wall seconds under mp — so their
distributions are directly comparable (asserted by the cross-engine
parity test).

:class:`LatencyStore` is a thin facade over log-bucketed
:class:`~repro.telemetry.registry.Histogram` instruments named
``latency.<stage>.seconds`` inside a shared
:class:`~repro.telemetry.registry.MetricsRegistry` — which means
slave-side observations merge into the master via the existing
``_SlaveStats`` snapshot path, latency histograms ride the normal JSONL
``metric`` records, and ``repro-telemetry/3`` summaries
(:func:`latency_records`) are derivable from any snapshot.  When
telemetry is disabled no store exists and no call site executes — the
engines guard every hop with ``if lat is not None``, the same zero-cost
pattern the trace recorder uses.

``sample_every=k`` keeps every k-th observation per stage (deterministic,
counter-based).  The default (1, keep everything) costs <2% wall on the
30k monitored run (see EXPERIMENTS.md); the knob exists for
million-batch service deployments where even a histogram increment per
batch is worth shaving.
"""

from __future__ import annotations

import math

from repro.telemetry.registry import MetricsRegistry, quantile_from_buckets

__all__ = [
    "STAGES",
    "SEQUENTIAL_STAGES",
    "LATENCY_BUCKETS",
    "LATENCY_PREFIX",
    "LATENCY_SUFFIX",
    "QUANTILES",
    "LatencyStore",
    "latency_records",
    "store_from_records",
]

#: The full lifecycle stage set (simulator and mp backend report all six).
STAGES: tuple[str, ...] = (
    "generate",
    "queue_master",
    "transit",
    "align",
    "absorb",
    "rtt",
)

#: The sequential driver's subset (no master, no queue, no wire).
SEQUENTIAL_STAGES: tuple[str, ...] = ("generate", "align")

#: Histogram naming: ``latency.<stage>.seconds``.
LATENCY_PREFIX = "latency."
LATENCY_SUFFIX = ".seconds"

#: The quantiles every breakdown reports.
QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
    ("p999", 0.999),
)

#: Log-spaced upper bounds, 4 per decade from 1 µs to 100 s.  Wide enough
#: for both clock domains: mp hops sit around 10 µs – 100 ms, virtual
#: stage costs around 0.1 ms – 10 s.  33 buckets keeps a full six-stage
#: store under 2 KiB per process.
LATENCY_BUCKETS: tuple[float, ...] = tuple(
    round(10.0 ** (e / 4.0), 10) for e in range(-24, 9)
)


def stage_metric(stage: str) -> str:
    """The registry histogram name for one stage."""
    return f"{LATENCY_PREFIX}{stage}{LATENCY_SUFFIX}"


def _stage_of(name: str) -> str | None:
    if name.startswith(LATENCY_PREFIX) and name.endswith(LATENCY_SUFFIX):
        return name[len(LATENCY_PREFIX) : -len(LATENCY_SUFFIX)]
    return None


class LatencyStore:
    """Streaming per-stage latency histograms with quantile readout.

    Observations go straight into log-bucketed histograms in ``registry``
    (own registry when none is given), so memory is O(stages × buckets)
    regardless of run length and merging slave stores into the master is
    the registry's existing ``merge_snapshot``.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        sample_every: int = 1,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sample_every = sample_every
        self._ticks: dict[str, int] = {}

    # ---- write path ---------------------------------------------------- #

    def observe(self, stage: str, seconds: float) -> None:
        """Record one stage latency (negative clamps to 0 — monotonic
        clocks across forked processes can disagree by nanoseconds)."""
        if self.sample_every > 1:
            tick = self._ticks.get(stage, 0)
            self._ticks[stage] = tick + 1
            if tick % self.sample_every:
                return
        self.registry.observe(
            stage_metric(stage), max(0.0, seconds), LATENCY_BUCKETS
        )

    # ---- read path ----------------------------------------------------- #

    def stages(self) -> list[str]:
        """Stages with at least one observation, in canonical order."""
        present = {
            s
            for name, h in self.registry.histograms.items()
            if (s := _stage_of(name)) is not None and h.count > 0
        }
        out = [s for s in STAGES if s in present]
        out += sorted(present - set(STAGES))
        return out

    def count(self, stage: str) -> int:
        h = self.registry.histograms.get(stage_metric(stage))
        return h.count if h is not None else 0

    def total(self, stage: str) -> float:
        """Summed seconds spent in one stage (across all work units)."""
        h = self.registry.histograms.get(stage_metric(stage))
        return h.sum if h is not None else 0.0

    def quantile(self, stage: str, q: float) -> float:
        """The stage's ``q``-quantile; NaN when never observed."""
        h = self.registry.histograms.get(stage_metric(stage))
        return h.quantile(q) if h is not None else math.nan

    def breakdown(self) -> dict[str, dict[str, float]]:
        """Per-stage summary: count, sum, mean and the standard
        quantiles — the shape ``latency`` JSONL records carry."""
        out: dict[str, dict[str, float]] = {}
        for stage in self.stages():
            h = self.registry.histograms[stage_metric(stage)]
            rec: dict[str, float] = {
                "count": h.count,
                "sum": h.sum,
                "mean": h.mean,
            }
            for label, q in QUANTILES:
                rec[label] = h.quantile(q)
            out[stage] = rec
        return out

    # ---- reconstruction ------------------------------------------------ #

    @classmethod
    def from_metrics(cls, metrics: dict) -> "LatencyStore":
        """Rebuild a read-only store from a registry snapshot (the
        ``metrics`` dict of a :class:`TelemetrySnapshot` or the histogram
        records of a loaded JSONL trace via :func:`store_from_records`)."""
        store = cls()
        for name, rec in (metrics or {}).get("histograms", {}).items():
            if _stage_of(name) is None:
                continue
            h = store.registry.histogram(name, tuple(rec["buckets"]))
            h.counts = list(rec["counts"])
            h.count = int(rec["count"])
            h.sum = float(rec["sum"])
        return store


def latency_records(store: LatencyStore) -> list[dict]:
    """Per-stage ``{"kind": "latency", ...}`` summary records (schema
    ``repro-telemetry/3``): denormalised quantiles so downstream tools
    need no bucket math.  Empty when nothing was observed."""
    records = []
    for stage, rec in store.breakdown().items():
        records.append(
            {
                "kind": "latency",
                "stage": stage,
                "count": int(rec["count"]),
                "sum": rec["sum"],
                "mean": rec["mean"],
                **{label: rec[label] for label, _q in QUANTILES},
            }
        )
    return records


def store_from_records(records) -> LatencyStore:
    """Rebuild a :class:`LatencyStore` from loaded JSONL trace records.

    Reads the ``latency.<stage>.seconds`` histogram ``metric`` records, so
    it works on any schema rev that carries histograms (``/1`` onward) —
    the denormalised ``latency`` summaries are *derived* from these, never
    the source of truth."""
    metrics = {
        "histograms": {
            rec["name"]: rec
            for rec in records
            if rec.get("kind") == "metric"
            and rec.get("metric") == "histogram"
            and _stage_of(rec.get("name", "")) is not None
        }
    }
    return LatencyStore.from_metrics(metrics)


def quantile_of_record(rec: dict, q: float) -> float:
    """Quantile from a JSONL histogram ``metric`` record (the exact
    bucket math :meth:`Histogram.quantile` runs on live instruments)."""
    return quantile_from_buckets(rec["buckets"], rec["counts"], q)
