"""Phase-scoped spans and the per-run :class:`Telemetry` session.

One :class:`Telemetry` object accompanies one clustering run.  It owns

- a :class:`~repro.telemetry.registry.MetricsRegistry` every layer writes
  into (phase seconds, pair counters, band-width histograms, fault
  counters),
- a :class:`~repro.telemetry.trace.TraceRecorder` for the machine-level
  send/recv/compute/fault timeline, and
- the structured **span** event stream: ``span(name)`` is a context
  manager that emits start/end events with nesting (parent ids) and
  accumulates the duration into the registry counter
  ``span.<name>.seconds`` — which is exactly what
  :class:`~repro.util.timing.TimingBreakdown` now reads, so Table 3's
  component accounting and the telemetry layer can never disagree.

The **disabled** mode (``Telemetry(enabled=False)``) is the hot-path
default used when no caller asked for telemetry: spans still accumulate
phase seconds (results always carry timings, as they did before this
layer existed) but no events are recorded and the per-item instruments
(`count`/`observe`/`set_gauge`) become no-ops, keeping the overhead of an
uninstrumented run indistinguishable from the old ``TimingBreakdown``.

Timestamps are seconds since the session ``origin`` (``time.monotonic``
based, so recorders in forked slave processes that share the master's
origin produce directly comparable offsets).  The simulator does not use
the wall clock at all: it writes virtual times into the trace and phase
seconds into the registry, and marks its snapshot ``clock="virtual"``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import TraceRecorder

__all__ = ["Telemetry", "TelemetrySnapshot", "SPAN_PREFIX", "SPAN_SUFFIX"]

#: Registry counter naming for span durations: ``span.<name>.seconds``.
SPAN_PREFIX = "span."
SPAN_SUFFIX = ".seconds"


@dataclass
class TelemetrySnapshot:
    """Everything one run measured, detached from the live session.

    ``meta`` identifies the run (engine, processor count, clock domain,
    total time); ``events`` is the merged span + trace event stream as
    JSON-able records sorted by timestamp; ``metrics`` is the registry
    snapshot.  This is what ``ClusteringResult.telemetry`` carries and
    what the JSONL sinks serialise.
    """

    meta: dict = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def phase_times(self) -> dict[str, float]:
        """Per-phase seconds from the ``span.*.seconds`` counters — one
        Table 3 row, keyed by component name."""
        out: dict[str, float] = {}
        for name, value in self.metrics.get("counters", {}).items():
            if name.startswith(SPAN_PREFIX) and name.endswith(SPAN_SUFFIX):
                out[name[len(SPAN_PREFIX) : -len(SPAN_SUFFIX)]] = value
        return out

    @property
    def total_time(self) -> float:
        return float(self.meta.get("total_time", 0.0))


class Telemetry:
    """One run's instrumentation session (see module docstring)."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        origin: float | None = None,
        registry: MetricsRegistry | None = None,
        run_id: str = "",
    ) -> None:
        self.enabled = enabled
        #: ``time.monotonic()`` value that maps to ts == 0.0.  Forked
        #: slaves are handed the master's origin so their wall-clock
        #: offsets land on the same axis.
        self.origin = time.monotonic() if origin is None else origin
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Shared with the monitor's live stream when both are active, so
        #: post-run traces and live scrapes can be joined on it.
        self.run_id = run_id
        self.trace = TraceRecorder()
        self.events: list[dict] = []
        self._stack: list[int] = []
        self._next_id = 0
        self._latency = None

    @property
    def latency(self):
        """The session's work-unit :class:`LatencyStore` when enabled,
        ``None`` otherwise — call sites guard with ``if lat is not None``
        so a disabled session leaves hot paths untouched.  Lazy so that a
        session that never observes latency allocates nothing."""
        if not self.enabled:
            return None
        if self._latency is None:
            from repro.telemetry.latency import LatencyStore

            self._latency = LatencyStore(self.registry)
        return self._latency

    def now(self) -> float:
        """Seconds since the session origin."""
        return time.monotonic() - self.origin

    # ---- spans -------------------------------------------------------- #

    @contextmanager
    def span(self, name: str, *, actor: str = "master", **attrs):
        """Time a phase: accumulates ``span.<name>.seconds`` always, and
        emits nested start/end events when enabled."""
        start = self.now()
        sid = parent = None
        if self.enabled:
            sid = self._next_id
            self._next_id += 1
            parent = self._stack[-1] if self._stack else None
            self._stack.append(sid)
            rec = {
                "kind": "span_start",
                "name": name,
                "actor": actor,
                "ts": start,
                "id": sid,
                "parent": parent,
            }
            if attrs:
                rec["attrs"] = dict(attrs)
            self.events.append(rec)
        try:
            yield
        finally:
            end = self.now()
            self.registry.inc(f"{SPAN_PREFIX}{name}{SPAN_SUFFIX}", end - start)
            if self.enabled:
                self._stack.pop()
                self.events.append(
                    {
                        "kind": "span_end",
                        "name": name,
                        "actor": actor,
                        "ts": end,
                        "id": sid,
                        "parent": parent,
                        "duration": end - start,
                    }
                )

    def add_phase(self, name: str, seconds: float) -> None:
        """Account phase time measured externally (the simulator's
        virtual clock charges phases this way)."""
        self.registry.inc(f"{SPAN_PREFIX}{name}{SPAN_SUFFIX}", seconds)

    # ---- point instruments (no-ops when disabled) --------------------- #

    def count(self, name: str, amount: float = 1.0) -> None:
        if self.enabled:
            self.registry.inc(name, amount)

    def observe(
        self, name: str, value: float, buckets: tuple[float, ...] | None = None
    ) -> None:
        if self.enabled:
            self.registry.observe(name, value, buckets)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.registry.set_gauge(name, value)

    def record_faults(self, fault_counters) -> None:
        """Surface a :class:`~repro.core.results.FaultCounters` through the
        registry (``fault.<field>`` counters), so fault accounting appears
        in the JSONL stream and ``pace-est report`` — not only on the
        result object."""
        if fault_counters is None:
            return
        for key, value in fault_counters.as_dict().items():
            if value:
                self.registry.inc(f"fault.{key}", value)

    # ---- snapshot ----------------------------------------------------- #

    def snapshot(self, **meta) -> TelemetrySnapshot:
        """Freeze the session into a :class:`TelemetrySnapshot`.

        ``meta`` keys (engine, n_processors, clock, total_time, ...) are
        recorded verbatim; ``clock`` defaults to "wall" and ``total_time``
        to the session age.
        """
        meta.setdefault("clock", "wall")
        if "total_time" not in meta:
            meta["total_time"] = self.now()
        meta.setdefault("origin", self.origin)
        if self.run_id:
            meta.setdefault("run_id", self.run_id)
        events = list(self.events)
        events.extend(ev.as_record() for ev in self.trace.ordered())
        events.sort(key=lambda r: r["ts"])
        return TelemetrySnapshot(
            meta=meta, events=events, metrics=self.registry.snapshot()
        )
