"""Live run state: streaming slave samples, resource readings, progress.

PR 2's telemetry materialises only *after* a run completes (slave
registries ride home in the final ``_SlaveStats``), so a long clustering
job is a black box until it ends.  This module is the data layer of the
live monitor that fixes that:

- :class:`LiveSample` — the low-priority protocol message a slave pushes
  periodically over its existing pipe: cumulative work counters
  (pairs generated / aligned / DP cells), the on-demand generator's
  resumable position, and resource readings (RSS, CPU time);
- :class:`ResourceSampler` — dependency-free RSS/CPU sampling
  (``/proc/self/statm`` with a :func:`resource.getrusage` fallback);
- :class:`LiveRunState` — the master-side aggregate: per-slave progress
  views, overall progress and a work-remaining ETA, straggler flags fed
  by the same deadline the fault-tolerance layer uses, and mirrors of
  the master's own queue/fault accounting.

Everything here is plain data + stdlib; the HTTP endpoint, status lines
and terminal rendering live in :mod:`repro.telemetry.monitor`.

Live records are JSONL ``{"kind": "live", ...}`` lines (schema
``repro-telemetry/2``); they stream into ``--live-out`` files and, when a
full telemetry session is active, into the main event stream, so
``pace-est monitor`` can replay a finished run from its trace alone.
"""

from __future__ import annotations

import os
import resource
import sys
import time
from dataclasses import dataclass, field

__all__ = [
    "LiveSample",
    "MASTER_ID",
    "ResourceSampler",
    "SlaveView",
    "LiveRunState",
    "replay_live_records",
]

#: ``slave_id`` of samples describing the master process itself.
MASTER_ID = -1


# --------------------------------------------------------------------- #
# resource sampling
# --------------------------------------------------------------------- #


def _read_statm_rss(page_size: int) -> int | None:
    try:
        with open("/proc/self/statm", "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * page_size
    except (OSError, IndexError, ValueError):
        return None


def _ru_maxrss_bytes(peak: int | None = None, platform: str | None = None) -> int:
    # ru_maxrss units are platform-defined: KiB on Linux (and the BSDs),
    # bytes on macOS.  The old "KiB unless implausibly large" heuristic
    # inflated any macOS reading under 4 GiB by 1024x.
    if peak is None:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform is None:
        platform = sys.platform
    return peak if platform == "darwin" else peak * 1024


class ResourceSampler:
    """Current and peak memory plus CPU time for *this* process.

    ``rss_bytes`` prefers ``/proc/self/statm`` (current RSS; Linux);
    elsewhere it falls back to the ``getrusage`` high-water mark, which
    only ever grows but never lies low.  ``cpu_seconds`` is user+system
    time.  All readings are cheap enough to take at a 1 s cadence without
    perturbing the run.
    """

    def __init__(self) -> None:
        self._page_size = os.sysconf("SC_PAGESIZE") if hasattr(os, "sysconf") else 4096
        self._statm_works = _read_statm_rss(self._page_size) is not None

    def rss_bytes(self) -> int:
        if self._statm_works:
            rss = _read_statm_rss(self._page_size)
            if rss is not None:
                return rss
        return _ru_maxrss_bytes()

    def peak_rss_bytes(self) -> int:
        """High-water-mark RSS (``VmHWM`` / ``ru_maxrss``) — what the
        memory-model comparison in :mod:`repro.metrics.memory` reads."""
        try:
            with open("/proc/self/status", "rb") as fh:
                for line in fh:
                    if line.startswith(b"VmHWM:"):
                        return int(line.split()[1]) * 1024
        except (OSError, IndexError, ValueError):
            pass
        return _ru_maxrss_bytes()

    def cpu_seconds(self) -> float:
        ru = resource.getrusage(resource.RUSAGE_SELF)
        return ru.ru_utime + ru.ru_stime


# --------------------------------------------------------------------- #
# the streaming sample
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class LiveSample:
    """One incremental progress/resource report from one actor.

    Picklable and small: it travels the existing master–slave pipes as a
    low-priority message (the master absorbs it without a reply, so the
    strict reply/message alternation of the §3.3 protocol is untouched).
    ``ts`` is seconds since the run origin — wall offsets in the
    multiprocessing backend, virtual time in the simulator.  Counters are
    cumulative within one incarnation; ``gen_position`` is the resumable
    position of the on-demand pair generator (processed nodes over owned
    nodes, 1.0 once exhausted).
    """

    slave_id: int
    ts: float
    incarnation: int = 0
    rss_bytes: int = 0
    cpu_seconds: float = 0.0
    pairs_generated: int = 0
    alignments: int = 0
    dp_cells: int = 0
    pairbuf_depth: int = 0
    gen_position: float = 0.0
    exhausted: bool = False
    phase: str = "alignment"

    @property
    def actor(self) -> str:
        return "master" if self.slave_id == MASTER_ID else f"slave{self.slave_id}"

    def as_record(self) -> dict:
        """The JSONL ``live`` record (schema ``repro-telemetry/2``)."""
        return {
            "kind": "live",
            "actor": self.actor,
            "ts": self.ts,
            "incarnation": self.incarnation,
            "rss_bytes": self.rss_bytes,
            "cpu_seconds": self.cpu_seconds,
            "pairs_generated": self.pairs_generated,
            "alignments": self.alignments,
            "dp_cells": self.dp_cells,
            "pairbuf_depth": self.pairbuf_depth,
            "gen_position": self.gen_position,
            "exhausted": self.exhausted,
            "phase": self.phase,
        }

    @classmethod
    def from_record(cls, rec: dict) -> "LiveSample":
        actor = rec.get("actor", "master")
        slave_id = MASTER_ID if actor == "master" else int(actor.removeprefix("slave"))
        return cls(
            slave_id=slave_id,
            ts=float(rec.get("ts", 0.0)),
            incarnation=int(rec.get("incarnation", 0)),
            rss_bytes=int(rec.get("rss_bytes", 0)),
            cpu_seconds=float(rec.get("cpu_seconds", 0.0)),
            pairs_generated=int(rec.get("pairs_generated", 0)),
            alignments=int(rec.get("alignments", 0)),
            dp_cells=int(rec.get("dp_cells", 0)),
            pairbuf_depth=int(rec.get("pairbuf_depth", 0)),
            gen_position=float(rec.get("gen_position", 0.0)),
            exhausted=bool(rec.get("exhausted", False)),
            phase=str(rec.get("phase", "alignment")),
        )


# --------------------------------------------------------------------- #
# master-side aggregation
# --------------------------------------------------------------------- #


@dataclass
class SlaveView:
    """The master's rolling view of one slave, folded from its samples."""

    slave_id: int
    incarnation: int = 0
    samples: int = 0
    last_ts: float = 0.0
    rss_bytes: int = 0
    cpu_seconds: float = 0.0
    pairs_generated: int = 0
    alignments: int = 0
    dp_cells: int = 0
    pairbuf_depth: int = 0
    gen_position: float = 0.0
    exhausted: bool = False
    lost: bool = False
    stopped: bool = False

    @property
    def state(self) -> str:
        if self.lost:
            return "lost"
        if self.stopped:
            return "stopped"
        if self.exhausted:
            return "passive"
        return "running"

    @property
    def position(self) -> float:
        """Per-slave progress: 1.0 once it cannot produce further work."""
        if self.stopped or self.lost or self.exhausted:
            return 1.0
        return min(1.0, self.gen_position)

    def as_dict(self) -> dict:
        return {
            "slave_id": self.slave_id,
            "state": self.state,
            "incarnation": self.incarnation,
            "samples": self.samples,
            "last_ts": self.last_ts,
            "rss_bytes": self.rss_bytes,
            "cpu_seconds": self.cpu_seconds,
            "pairs_generated": self.pairs_generated,
            "alignments": self.alignments,
            "dp_cells": self.dp_cells,
            "pairbuf_depth": self.pairbuf_depth,
            "position": self.position,
        }


class LiveRunState:
    """Everything the monitor knows about a run *while it executes*.

    Writers (the engine's master loop) and readers (the HTTP endpoint
    thread, the status-line emitter) synchronise in
    :class:`~repro.telemetry.monitor.RunMonitor`; this class is plain
    single-threaded state.

    ``straggler_after`` feeds the straggler flags: a running slave whose
    newest sample is older than this many seconds (same clock as the
    samples) is flagged — by default half the fault-tolerance deadline,
    so stragglers surface *before* the master declares them dead.
    """

    def __init__(
        self,
        n_slaves: int,
        *,
        run_id: str = "",
        engine: str = "unknown",
        clock: str = "wall",
        straggler_after: float = 30.0,
        origin: float | None = None,
    ) -> None:
        self.run_id = run_id
        self.engine = engine
        self.clock = clock
        #: The raw clock value sample ``ts`` offsets are measured from
        #: (``time.monotonic()`` at run start for wall clocks, 0.0 for the
        #: simulator).  Published so live scrapes, replayed JSONL and
        #: post-run traces can be put on one time axis by `pace-est
        #: analyze`.
        self.origin = origin
        self.n_slaves = n_slaves
        self.straggler_after = straggler_after
        self.slaves: dict[int, SlaveView] = {
            k: SlaveView(k) for k in range(n_slaves)
        }
        self.master = SlaveView(MASTER_ID)
        # Mirrors of the master's protocol/fault accounting.
        self.workbuf_depth = 0
        self.messages = 0
        self.merges = 0
        self.pairs_dispatched = 0
        #: Per-shard views (sharded masters only; [] on classic runs).
        #: Plain dicts straight from ``ShardedMaster.shard_states()``.
        self.shards: list[dict] = []
        self.fault_counters: dict[str, int] = {}
        self.now = 0.0  # newest timestamp seen anywhere (run clock)
        self.finished = False
        self.total_time: float | None = None

    # ---- updates ------------------------------------------------------ #

    def update(self, sample: LiveSample) -> None:
        """Fold one sample in (slave or master)."""
        view = (
            self.master
            if sample.slave_id == MASTER_ID
            else self.slaves.setdefault(sample.slave_id, SlaveView(sample.slave_id))
        )
        if sample.incarnation > view.incarnation:
            view.incarnation = sample.incarnation
            view.lost = False  # a replacement is reporting
        view.samples += 1
        view.last_ts = max(view.last_ts, sample.ts)
        view.rss_bytes = sample.rss_bytes
        view.cpu_seconds = sample.cpu_seconds
        view.pairs_generated = sample.pairs_generated
        view.alignments = sample.alignments
        view.dp_cells = sample.dp_cells
        view.pairbuf_depth = sample.pairbuf_depth
        view.gen_position = sample.gen_position
        view.exhausted = sample.exhausted
        self.now = max(self.now, sample.ts)

    def set_master(
        self,
        *,
        ts: float | None = None,
        workbuf_depth: int | None = None,
        messages: int | None = None,
        merges: int | None = None,
        pairs_dispatched: int | None = None,
    ) -> None:
        if ts is not None:
            self.now = max(self.now, ts)
        if workbuf_depth is not None:
            self.workbuf_depth = workbuf_depth
        if messages is not None:
            self.messages = messages
        if merges is not None:
            self.merges = merges
        if pairs_dispatched is not None:
            self.pairs_dispatched = pairs_dispatched

    def set_shards(self, shard_states: list[dict]) -> None:
        """Replace the per-shard views (sharded-master engines push the
        whole list each refresh; counters inside are cumulative)."""
        self.shards = list(shard_states)

    def record_fault(self, name: str, amount: int = 1) -> None:
        self.fault_counters[name] = self.fault_counters.get(name, 0) + amount

    def slave_lost(self, slave_id: int) -> None:
        view = self.slaves.setdefault(slave_id, SlaveView(slave_id))
        view.lost = True
        self.record_fault("slaves_lost")

    def slave_revived(self, slave_id: int) -> None:
        view = self.slaves.setdefault(slave_id, SlaveView(slave_id))
        view.lost = False
        self.record_fault("restarts")

    def slave_stopped(self, slave_id: int) -> None:
        view = self.slaves.setdefault(slave_id, SlaveView(slave_id))
        view.stopped = True
        view.exhausted = True

    def finish(self, total_time: float | None = None) -> None:
        """The protocol finished: progress is 1.0 by definition."""
        self.finished = True
        if total_time is not None:
            self.total_time = total_time
            self.now = max(self.now, total_time)
        for view in self.slaves.values():
            if not view.lost:
                view.stopped = True

    # ---- derived views ------------------------------------------------ #

    @property
    def progress(self) -> float:
        """Overall run progress in [0, 1].

        Generation progress (the resumable generator positions) is the
        leading indicator; an alignment backlog (WORKBUF) holds the last
        few percent back until it drains.  Exact only at the endpoints —
        0 before work starts, 1.0 when the protocol finished — which is
        what a monitor can honestly promise.
        """
        if self.finished:
            return 1.0
        if not self.slaves:
            return 0.0
        gen = sum(v.position for v in self.slaves.values()) / len(self.slaves)
        if gen >= 1.0 and self.workbuf_depth > 0:
            return 0.99
        return min(gen, 0.999)

    def eta_seconds(self) -> float | None:
        """Naive proportional work-remaining estimate (None early on,
        when the extrapolation base is too thin to mean anything)."""
        if self.finished:
            return 0.0
        p = self.progress
        if p < 0.02 or self.now <= 0.0:
            return None
        return self.now * (1.0 - p) / p

    def stragglers(self) -> list[int]:
        """Running slaves whose newest sample has gone stale."""
        out = []
        for k, view in sorted(self.slaves.items()):
            if view.state != "running" or view.samples == 0:
                continue
            if self.now - view.last_ts > self.straggler_after:
                out.append(k)
        return out

    def as_dict(self) -> dict:
        """The JSON state the ``/state`` endpoint serves and the monitor
        CLI renders."""
        eta = self.eta_seconds()
        return {
            "run_id": self.run_id,
            "engine": self.engine,
            "clock": self.clock,
            "origin": self.origin,
            "n_slaves": self.n_slaves,
            "now": self.now,
            "finished": self.finished,
            "total_time": self.total_time,
            "progress": self.progress,
            "eta_seconds": eta,
            "workbuf_depth": self.workbuf_depth,
            "messages": self.messages,
            "merges": self.merges,
            "pairs_dispatched": self.pairs_dispatched,
            "stragglers": self.stragglers(),
            "shards": [dict(s) for s in self.shards],
            "faults": dict(self.fault_counters),
            "master": self.master.as_dict(),
            "slaves": [v.as_dict() for _, v in sorted(self.slaves.items())],
        }


def replay_live_records(records: list[dict]) -> LiveRunState:
    """Rebuild a :class:`LiveRunState` from a JSONL record stream (a
    ``--live-out`` file or a full telemetry trace containing ``live``
    records) — what ``pace-est monitor <file>`` renders."""
    meta = records[0] if records and records[0].get("kind") == "meta" else {}
    n_slaves = int(meta.get("n_processors", 1)) - 1 if meta else 0
    origin = meta.get("origin")
    state = LiveRunState(
        max(0, n_slaves),
        run_id=str(meta.get("run_id", "")),
        engine=str(meta.get("engine", "unknown")),
        clock=str(meta.get("clock", "wall")),
        origin=float(origin) if origin is not None else None,
    )
    for rec in records:
        kind = rec.get("kind")
        if kind == "live":
            state.update(LiveSample.from_record(rec))
        elif kind == "live_state":
            # Periodic master-state records carry queue/fault mirrors.
            state.set_master(
                ts=rec.get("ts"),
                workbuf_depth=rec.get("workbuf_depth"),
                messages=rec.get("messages"),
                merges=rec.get("merges"),
            )
            for name, value in rec.get("faults", {}).items():
                state.fault_counters[name] = int(value)
            shards = rec.get("shards")
            if shards:
                state.set_shards(shards)
            # Per-slave lost flags travel as the current lost set (a later
            # record with the slave revived clears the flag again).
            lost = rec.get("lost")
            if lost is not None:
                lost_set = {int(k) for k in lost}
                for k in lost_set:
                    state.slaves.setdefault(k, SlaveView(k))
                for k, view in state.slaves.items():
                    view.lost = k in lost_set
            if rec.get("finished"):
                state.finish(rec.get("ts"))
        elif kind == "trace" and rec.get("event") == "fault":
            # Fault events mark losses even in traces without state records.
            detail = rec.get("detail", "")
            actor = rec.get("actor", "")
            if "lost" in detail and actor.startswith("slave"):
                state.slave_lost(int(actor.removeprefix("slave")))
    total = meta.get("total_time")
    if total is not None:
        state.finish(float(total))
    return state
