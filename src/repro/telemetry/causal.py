"""Causal work-unit tracing for the master–slave protocol.

The latency layer (PR 7) answers "how long do stages take in aggregate";
this module answers "what happened to *that* batch".  Every generated
pair batch is minted a compact integer **work-unit id** which rides the
protocol messages (``SlaveMsg.pair_units`` / ``MasterMsg.work_units``,
next to the ``sent_at`` stamps), survives fault requeues, shard routing
and cross-shard pruning, and leaves a lifecycle event trail:

``generated`` → ``admitted`` → ``dispatched`` → ``aligned`` →
``absorbed`` | ``requeued`` | ``pruned``

Events are plain dicts (``kind="causal"``) that merge into the ordinary
telemetry event stream and the ``repro-telemetry/4`` JSONL schema, so
`pace-est analyze`, the Perfetto exporter (:mod:`repro.telemetry.export`)
and `pace-est postmortem` all read the same records.

Unit ids pack ``(origin actor, incarnation, sequence)`` into one int so a
replacement slave can never collide with its dead predecessor and the
origin is recoverable from the id alone (:func:`unit_parts`).  The master
mints its own units for degraded-recovery regeneration (origin ``-1``).

Conservation (:func:`check_conservation`) is accounted **master-side**:
only pairs that enter master custody (admitted into WORKBUF) are
balanced, because a crashed slave cannot report what stayed in its
PAIRBUF — that is exactly what the flight recorder captures instead.
For every unit::

    admitted + requeued == dispatched + pruned(sync) + workbuf leftover
    dispatched          == absorbed + requeued + pruned(requeue) + in flight

A completed run must balance with zero leftovers (degraded recovery
drains WORKBUF); an interrupted run reports the imbalance as
*in-flight at crash*.  ``absorbed > dispatched`` (double absorb) or
negative leftovers are always errors.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "CAUSAL_EVENTS",
    "NO_UNIT",
    "UnitMinter",
    "unit_parts",
    "format_unit",
    "CausalRecorder",
    "UnitLedger",
    "ConservationReport",
    "check_conservation",
    "REQUEUE_STORM_THRESHOLD",
]

#: The lifecycle event vocabulary (validated by the /4 schema).
CAUSAL_EVENTS = frozenset(
    {"generated", "admitted", "dispatched", "aligned", "absorbed", "requeued", "pruned"}
)

#: Sentinel for "pair carries no unit" (tracing off at the sender).
NO_UNIT = -1

#: ``requeued`` events for one unit at or beyond this count are flagged
#: as a requeue storm by :func:`check_conservation` (a batch bouncing
#: between dying slaves instead of making progress).
REQUEUE_STORM_THRESHOLD = 3

# Bit layout: | origin+1 (23 bits) | incarnation (8 bits) | seq (32 bits) |
_SEQ_BITS = 32
_INC_BITS = 8
_INC_MASK = (1 << _INC_BITS) - 1
_SEQ_MASK = (1 << _SEQ_BITS) - 1


class UnitMinter:
    """Mints globally unique unit ids for one ``(origin, incarnation)``.

    ``origin`` is the slave id, or ``-1`` for master-minted units
    (degraded recovery, the sequential pipeline).  Incarnations keep a
    restarted slave's ids disjoint from its predecessor's.
    """

    def __init__(self, origin: int, incarnation: int = 0) -> None:
        if origin < -1:
            raise ValueError(f"origin must be >= -1, got {origin}")
        if incarnation < 0:
            raise ValueError(f"incarnation must be >= 0, got {incarnation}")
        self.origin = origin
        self.incarnation = incarnation
        self._base = ((origin + 1) << (_INC_BITS + _SEQ_BITS)) | (
            (incarnation & _INC_MASK) << _SEQ_BITS
        )
        self._seq = 0

    def __call__(self) -> int:
        uid = self._base | (self._seq & _SEQ_MASK)
        self._seq += 1
        return uid


def unit_parts(unit: int) -> tuple[int, int, int]:
    """Decode a unit id into ``(origin, incarnation, seq)``.

    ``origin`` is ``-1`` for master-minted units.
    """
    return (
        (unit >> (_INC_BITS + _SEQ_BITS)) - 1,
        (unit >> _SEQ_BITS) & _INC_MASK,
        unit & _SEQ_MASK,
    )


def format_unit(unit: int) -> str:
    """Human-readable unit id: ``s<origin>.<incarnation>:<seq>`` (slave
    origins) or ``m:<seq>`` (master-minted)."""
    origin, inc, seq = unit_parts(unit)
    if origin < 0:
        return f"m:{seq}"
    return f"s{origin}.{inc}:{seq}"


class CausalRecorder:
    """Collects causal lifecycle events as schema-ready records.

    One recorder per process side (the master engine owns one; each mp
    slave owns one whose events ship home inside the final stats
    message).  Engines stamp every event with their own clock — wall
    seconds from the telemetry origin under mp, virtual seconds under the
    simulator — so merged streams sort the same way trace events do.
    """

    def __init__(self) -> None:
        self.events: list[dict] = []

    def record(
        self,
        event: str,
        unit: int,
        n: int,
        *,
        actor: str,
        ts: float,
        slave: int | None = None,
        reason: str | None = None,
    ) -> None:
        rec: dict = {
            "kind": "causal",
            "event": event,
            "unit": unit,
            "n": n,
            "actor": actor,
            "ts": ts,
        }
        if slave is not None:
            rec["slave"] = slave
        if reason is not None:
            rec["reason"] = reason
        self.events.append(rec)

    def record_counts(
        self,
        event: str,
        units: Iterable[int],
        *,
        actor: str,
        ts: float,
        slave: int | None = None,
        reason: str | None = None,
    ) -> None:
        """Record one event per distinct unit in a per-pair unit sequence
        (e.g. the unit mirror of a dispatched work batch).  ``NO_UNIT``
        entries (pairs from an untraced sender) are skipped."""
        counts: dict[int, int] = {}
        for u in units:
            if u != NO_UNIT:
                counts[u] = counts.get(u, 0) + 1
        for u, n in counts.items():
            self.record(event, u, n, actor=actor, ts=ts, slave=slave, reason=reason)

    def extend(self, records: Iterable[dict]) -> None:
        self.events.extend(records)

    def as_records(self) -> list[dict]:
        return list(self.events)


# --------------------------------------------------------------------- #
# Conservation accounting.
# --------------------------------------------------------------------- #


@dataclass
class UnitLedger:
    """Per-unit pair counts accumulated from causal records."""

    unit: int
    generated: int = 0  # slave-side mint (informational; lost on crash)
    admitted: int = 0  # pairs entering WORKBUF via admission/absorb_pairs
    dispatched: int = 0
    aligned: int = 0
    absorbed: int = 0  # results returned for dispatched pairs
    absorbed_drain: int = 0  # master-aligned in the final degraded drain
    requeued: int = 0  # pairs readmitted to WORKBUF from a dead slave
    pruned: int = 0  # all prune reasons (admission / sync / requeue / drain)
    pruned_admission: int = 0
    pruned_sync: int = 0
    pruned_requeue: int = 0
    pruned_drain: int = 0
    requeue_events: int = 0
    first_ts: float = field(default=float("inf"))
    last_ts: float = field(default=float("-inf"))
    last_slave: int | None = None  # last slave this unit was dispatched to

    @property
    def workbuf_leftover(self) -> int:
        """Pairs admitted to WORKBUF and never dispatched, pruned, or
        drained (queue-side exits only — admission drops never entered;
        drain-absorbed pairs leave WORKBUF without a dispatch)."""
        return (
            self.admitted
            + self.requeued
            - self.dispatched
            - self.pruned_sync
            - self.pruned_drain
            - self.absorbed_drain
        )

    @property
    def flight_leftover(self) -> int:
        """Pairs dispatched and never absorbed, requeued, or pruned at
        requeue time."""
        return self.dispatched - self.absorbed - self.requeued - self.pruned_requeue

    @property
    def in_flight(self) -> int:
        """Pairs still in master custody (WORKBUF or slave-held)."""
        return self.workbuf_leftover + self.flight_leftover


@dataclass
class ConservationReport:
    """The outcome of :func:`check_conservation` over one record stream."""

    ledgers: dict[int, UnitLedger]
    #: Units with negative balances (double absorb / unit never admitted).
    orphans: list[str]
    #: Units still holding pairs at the end of the stream (crash
    #: in-flight when the run died; an error on a completed run).
    in_flight: dict[int, int]
    #: Units requeued :data:`REQUEUE_STORM_THRESHOLD`+ times.
    storms: dict[int, int]
    total_admitted: int = 0
    total_absorbed: int = 0
    total_pruned: int = 0

    @property
    def total_in_flight(self) -> int:
        return sum(self.in_flight.values())

    def ok(self, *, allow_in_flight: bool = False) -> bool:
        if self.orphans:
            return False
        return allow_in_flight or not self.in_flight

    def lines(self, *, allow_in_flight: bool = False) -> list[str]:
        """Render the check as report lines for `pace-est analyze`."""
        out = [
            "work-unit conservation: "
            f"{self.total_admitted} admitted == {self.total_absorbed} absorbed "
            f"+ {self.total_pruned} pruned + {self.total_in_flight} in flight "
            f"({len(self.ledgers)} units)"
        ]
        for msg in self.orphans:
            out.append(f"  ERROR {msg}")
        if self.in_flight:
            tag = "in flight at end" if allow_in_flight else "ERROR orphaned"
            for unit, n in sorted(self.in_flight.items()):
                led = self.ledgers[unit]
                where = (
                    f"slave {led.last_slave}" if led.flight_leftover > 0 else "WORKBUF"
                )
                out.append(f"  {tag}: unit {format_unit(unit)} holds {n} pairs ({where})")
        for unit, n in sorted(self.storms.items()):
            out.append(
                f"  WARN requeue storm: unit {format_unit(unit)} requeued {n} times"
            )
        status = "PASS" if self.ok(allow_in_flight=allow_in_flight) else "FAIL"
        out.append(f"  conservation: {status}")
        return out


def check_conservation(records: Iterable[dict]) -> ConservationReport:
    """Balance every work unit's pair flow from its causal records.

    Accepts any record stream (full telemetry JSONL or pre-filtered
    causal records); non-causal records are ignored.
    """
    ledgers: dict[int, UnitLedger] = {}
    requeues: dict[int, int] = defaultdict(int)
    for rec in records:
        if rec.get("kind") != "causal":
            continue
        unit = int(rec.get("unit", NO_UNIT))
        if unit == NO_UNIT:
            continue
        led = ledgers.get(unit)
        if led is None:
            led = ledgers[unit] = UnitLedger(unit=unit)
        event = rec.get("event", "")
        n = int(rec.get("n", 0))
        ts = float(rec.get("ts", 0.0))
        led.first_ts = min(led.first_ts, ts)
        led.last_ts = max(led.last_ts, ts)
        if event == "generated":
            led.generated += n
        elif event == "admitted":
            led.admitted += n
        elif event == "dispatched":
            led.dispatched += n
            if rec.get("slave") is not None:
                led.last_slave = int(rec["slave"])
        elif event == "aligned":
            led.aligned += n
        elif event == "absorbed":
            if rec.get("reason") == "drain":
                led.absorbed_drain += n
            else:
                led.absorbed += n
        elif event == "requeued":
            led.requeued += n
            led.requeue_events += 1
            requeues[unit] += 1
        elif event == "pruned":
            led.pruned += n
            reason = rec.get("reason", "")
            if reason == "admission":
                led.pruned_admission += n
            elif reason == "sync":
                led.pruned_sync += n
            elif reason == "requeue":
                led.pruned_requeue += n
            elif reason == "drain":
                led.pruned_drain += n

    orphans: list[str] = []
    in_flight: dict[int, int] = {}
    total_admitted = total_absorbed = total_pruned = 0
    for unit, led in sorted(ledgers.items()):
        # Requeues cancel out of the headline identity (a requeued pair
        # leaves flight and re-enters WORKBUF), so first-custody
        # admissions balance exactly:
        #   admitted == absorbed + pruned + in flight.
        total_admitted += led.admitted
        total_absorbed += led.absorbed + led.absorbed_drain
        total_pruned += led.pruned_sync + led.pruned_requeue + led.pruned_drain
        name = format_unit(unit)
        if led.dispatched > 0 and led.admitted + led.requeued == 0:
            orphans.append(f"unit {name}: dispatched {led.dispatched} pairs never admitted")
            continue
        if led.workbuf_leftover < 0:
            orphans.append(
                f"unit {name}: WORKBUF balance negative "
                f"({led.dispatched} dispatched + "
                f"{led.pruned_sync + led.pruned_drain + led.absorbed_drain} "
                f"pruned/drained > {led.admitted} admitted + {led.requeued} requeued)"
            )
        if led.flight_leftover < 0:
            orphans.append(
                f"unit {name}: double absorb ({led.absorbed} absorbed + "
                f"{led.requeued} requeued + {led.pruned_requeue} pruned > "
                f"{led.dispatched} dispatched)"
            )
        if led.workbuf_leftover >= 0 and led.flight_leftover >= 0 and led.in_flight > 0:
            in_flight[unit] = led.in_flight
    storms = {
        unit: n for unit, n in requeues.items() if n >= REQUEUE_STORM_THRESHOLD
    }
    return ConservationReport(
        ledgers=ledgers,
        orphans=orphans,
        in_flight=in_flight,
        storms=storms,
        total_admitted=total_admitted,
        total_absorbed=total_absorbed,
        total_pruned=total_pruned,
    )
