"""Telemetry sinks: JSONL export, schema validation, and the human report.

The on-disk form is JSON Lines — one record per line, first line a
``meta`` record — so traces stream, concatenate, and grep well.  Record
kinds (the full schema is documented in DESIGN.md §5b):

- ``meta`` — run identity: schema version, engine, processor count,
  clock domain ("wall" or "virtual"), total run time;
- ``span_start`` / ``span_end`` — phase-scoped spans with nesting
  (``id``/``parent``) and, on end, the measured ``duration``;
- ``trace`` — machine events (``event`` ∈ send/recv/compute/fault) with
  ``ts``/``end`` interval bounds and the owning ``actor``;
- ``metric`` — final instrument values (``metric`` ∈
  counter/gauge/histogram);
- ``live`` — a streamed per-actor resource/progress sample (schema /2,
  written by the run monitor's ``--live-out`` stream; timestamps are
  monotone *per actor*, not globally, because slaves sample
  independently and their messages interleave in arrival order);
- ``live_state`` — a streamed master-side aggregate (progress, queue
  depths, fault counters) with a ``finished`` flag on the last one;
- ``latency`` — a per-stage work-unit latency summary (schema /3):
  ``stage`` plus count/sum/mean and the p50/p90/p99/p999 quantiles,
  denormalised from the ``latency.<stage>.seconds`` histograms so
  downstream tools get tail percentiles without redoing bucket math;
- ``causal`` — a work-unit lifecycle event (schema /4): ``event`` ∈
  generated/admitted/dispatched/aligned/absorbed/requeued/pruned with
  the ``unit`` id, pair count ``n``, ``actor`` and ``ts`` (see
  :mod:`repro.telemetry.causal`; the conservation check balances these).

:func:`validate_records` is the schema check the CI smoke job and the
round-trip tests run; :func:`summarise` reconstructs the paper-shaped
measurements from a record stream alone — per-phase times (Table 3
columns), per-actor utilisation and the master-busy fraction (Figure 8's
measurement), pair-flow counters, histograms, and fault accounting —
which is what ``pace-est report`` prints.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import IO, Iterable

from repro.telemetry.causal import CAUSAL_EVENTS
from repro.telemetry.latency import LatencyStore, latency_records
from repro.telemetry.spans import SPAN_PREFIX, SPAN_SUFFIX, TelemetrySnapshot

__all__ = [
    "SCHEMA_VERSION",
    "ACCEPTED_SCHEMAS",
    "TABLE3_ORDER",
    "snapshot_records",
    "export_jsonl",
    "load_jsonl",
    "validate_records",
    "summarise",
]

SCHEMA_VERSION = "repro-telemetry/4"

#: Schema revisions this reader accepts.  /1 is the PR 2 post-run trace
#: format; /2 adds the streamed ``live``/``live_state`` record kinds; /3
#: adds per-stage ``latency`` summary records (count/sum/mean + ordered
#: p50 ≤ p90 ≤ p99 ≤ p999) and optional ``origin``/``run_id`` meta keys;
#: /4 adds ``causal`` work-unit lifecycle records and optional per-shard
#: fields on ``live_state``.  Every rev is additive, so old files stay
#: readable.
ACCEPTED_SCHEMAS = frozenset(
    {
        "repro-telemetry/1",
        "repro-telemetry/2",
        "repro-telemetry/3",
        "repro-telemetry/4",
    }
)

#: The paper's Table 3 component columns, in presentation order.  (Kept
#: in sync with ``repro.core.results.COMPONENT_ORDER``; duplicated here so
#: the telemetry layer stays importable without the clustering stack.)
TABLE3_ORDER = ("partitioning", "gst_construction", "sort_nodes", "alignment")

_EVENT_KINDS = frozenset({"span_start", "span_end", "trace", "causal"})
_TRACE_EVENTS = frozenset({"send", "recv", "compute", "fault"})
_METRIC_KINDS = frozenset({"counter", "gauge", "histogram"})


# --------------------------------------------------------------------- #
# export / load
# --------------------------------------------------------------------- #


def snapshot_records(snapshot: TelemetrySnapshot) -> list[dict]:
    """The full JSONL record sequence for one snapshot."""
    records: list[dict] = [
        {"kind": "meta", "schema": SCHEMA_VERSION, **snapshot.meta}
    ]
    records.extend(snapshot.events)
    metrics = snapshot.metrics
    for name, value in metrics.get("counters", {}).items():
        records.append(
            {"kind": "metric", "metric": "counter", "name": name, "value": value}
        )
    for name, value in metrics.get("gauges", {}).items():
        records.append(
            {"kind": "metric", "metric": "gauge", "name": name, "value": value}
        )
    for name, rec in metrics.get("histograms", {}).items():
        records.append(
            {
                "kind": "metric",
                "metric": "histogram",
                "name": name,
                "buckets": rec["buckets"],
                "counts": rec["counts"],
                "count": rec["count"],
                "sum": rec["sum"],
            }
        )
    # /3: denormalised per-stage work-unit latency summaries, derived
    # from the ``latency.*`` histograms above so downstream tools get
    # quantiles without redoing the bucket math.
    records.extend(latency_records(LatencyStore.from_metrics(metrics)))
    return records


def export_jsonl(snapshot: TelemetrySnapshot, path: Path | str | IO[str]) -> int:
    """Write one snapshot as JSONL; returns the number of records."""
    records = snapshot_records(snapshot)
    text = "\n".join(json.dumps(r, sort_keys=False) for r in records) + "\n"
    if hasattr(path, "write"):
        path.write(text)
    else:
        Path(path).write_text(text)
    return len(records)


def load_jsonl(path: Path | str, *, tolerant: bool = False) -> list[dict]:
    """Parse a JSONL trace back into records.

    Syntax errors raise with the offending line number, except in
    ``tolerant`` mode: a run killed mid-write leaves a truncated final
    line, so a JSON error on the *last* non-empty line is reported as a
    warning and skipped (anything earlier is real corruption and still
    raises).  `pace-est postmortem`/`analyze` load tolerantly — they
    exist precisely for the runs that died messily.
    """
    lines = [
        (lineno, line.strip())
        for lineno, line in enumerate(Path(path).read_text().splitlines(), 1)
        if line.strip()
    ]
    records: list[dict] = []
    for idx, (lineno, line) in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if tolerant and idx == len(lines) - 1:
                warnings.warn(
                    f"{path}:{lineno}: truncated final line skipped "
                    f"(run killed mid-write?): {exc}",
                    stacklevel=2,
                )
                break
            raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
    return records


# --------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------- #


def validate_records(records: Iterable[dict]) -> list[str]:
    """Schema-check a record stream; returns a list of problems (empty
    means valid).  This is what the CI smoke job runs on exported traces."""
    problems: list[str] = []
    records = list(records)
    if not records:
        return ["empty trace: no records"]
    head = records[0]
    if head.get("kind") != "meta":
        problems.append(f"record 0: expected a meta record, got {head.get('kind')!r}")
    elif head.get("schema") not in ACCEPTED_SCHEMAS:
        problems.append(
            f"record 0: unknown schema {head.get('schema')!r} "
            f"(expected one of {sorted(ACCEPTED_SCHEMAS)})"
        )
    last_ts = None
    live_ts: dict[str, float] = {}  # live samples are monotone per actor
    last_state_ts = None
    for i, rec in enumerate(records[1:], 1):
        kind = rec.get("kind")
        if kind == "meta":
            problems.append(f"record {i}: duplicate meta record")
        elif kind == "live":
            ts, actor = rec.get("ts"), rec.get("actor")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"record {i}: bad ts {ts!r}")
                continue
            if not actor:
                problems.append(f"record {i}: live sample without actor")
                continue
            if actor in live_ts and ts < live_ts[actor] - 1e-9:
                problems.append(
                    f"record {i}: live timestamps for {actor} not monotone "
                    f"({ts} after {live_ts[actor]})"
                )
            live_ts[actor] = ts
            for field in ("rss_bytes", "pairs_generated", "alignments"):
                if rec.get(field, 0) < 0:
                    problems.append(f"record {i}: negative {field}")
        elif kind == "live_state":
            ts = rec.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"record {i}: bad ts {ts!r}")
                continue
            if last_state_ts is not None and ts < last_state_ts - 1e-9:
                problems.append(
                    f"record {i}: live_state timestamps not monotone "
                    f"({ts} after {last_state_ts})"
                )
            last_state_ts = ts
            progress = rec.get("progress", 0.0)
            if not 0.0 <= progress <= 1.0:
                problems.append(
                    f"record {i}: progress {progress!r} outside [0, 1]"
                )
        elif kind in _EVENT_KINDS:
            ts = rec.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"record {i}: bad ts {ts!r}")
                continue
            if last_ts is not None and ts < last_ts - 1e-9:
                problems.append(
                    f"record {i}: timestamps not monotone ({ts} after {last_ts})"
                )
            last_ts = ts
            if kind == "trace":
                if rec.get("event") not in _TRACE_EVENTS:
                    problems.append(
                        f"record {i}: unknown trace event {rec.get('event')!r}"
                    )
                if rec.get("end", ts) < ts:
                    problems.append(f"record {i}: interval ends before it starts")
                if not rec.get("actor"):
                    problems.append(f"record {i}: trace event without actor")
            elif kind == "causal":
                if rec.get("event") not in CAUSAL_EVENTS:
                    problems.append(
                        f"record {i}: unknown causal event {rec.get('event')!r}"
                    )
                if not isinstance(rec.get("unit"), int):
                    problems.append(f"record {i}: causal record without a unit id")
                if not isinstance(rec.get("n"), int) or rec.get("n", -1) < 0:
                    problems.append(f"record {i}: causal record bad pair count")
                if not rec.get("actor"):
                    problems.append(f"record {i}: causal record without actor")
            else:
                if not rec.get("name"):
                    problems.append(f"record {i}: span without a name")
                if kind == "span_end" and rec.get("duration", 0.0) < 0:
                    problems.append(f"record {i}: negative span duration")
        elif kind == "metric":
            if rec.get("metric") not in _METRIC_KINDS:
                problems.append(f"record {i}: unknown metric kind {rec.get('metric')!r}")
            elif not rec.get("name"):
                problems.append(f"record {i}: metric without a name")
            elif rec["metric"] == "histogram":
                buckets, counts = rec.get("buckets", []), rec.get("counts", [])
                if len(counts) != len(buckets) + 1:
                    problems.append(
                        f"record {i}: histogram {rec['name']!r} needs "
                        f"len(buckets)+1 counts, got {len(counts)}"
                    )
                elif sum(counts) != rec.get("count"):
                    problems.append(
                        f"record {i}: histogram {rec['name']!r} counts sum to "
                        f"{sum(counts)}, not count={rec.get('count')}"
                    )
        elif kind == "latency":
            stage = rec.get("stage")
            if not stage:
                problems.append(f"record {i}: latency record without a stage")
                continue
            if rec.get("count", 0) <= 0:
                problems.append(
                    f"record {i}: latency stage {stage!r} with count "
                    f"{rec.get('count')!r} (empty stages are omitted)"
                )
            if rec.get("sum", 0.0) < 0:
                problems.append(f"record {i}: latency stage {stage!r} negative sum")
            qs = [rec.get(q) for q in ("p50", "p90", "p99", "p999")]
            if any(not isinstance(q, (int, float)) for q in qs):
                problems.append(
                    f"record {i}: latency stage {stage!r} missing quantiles"
                )
            elif any(b < a - 1e-12 for a, b in zip(qs, qs[1:])):
                problems.append(
                    f"record {i}: latency stage {stage!r} quantiles not "
                    f"ordered: {qs}"
                )
            elif qs[0] < 0:
                problems.append(
                    f"record {i}: latency stage {stage!r} negative p50"
                )
        else:
            problems.append(f"record {i}: unknown record kind {kind!r}")
    # Span start/end pairing by id.
    started = {r["id"] for r in records if r.get("kind") == "span_start"}
    ended = {r["id"] for r in records if r.get("kind") == "span_end"}
    for sid in sorted(started ^ ended):
        problems.append(f"span id {sid}: unmatched start/end")
    return problems


# --------------------------------------------------------------------- #
# the human report
# --------------------------------------------------------------------- #


def _phase_times(records: list[dict]) -> dict[str, float]:
    out: dict[str, float] = {}
    for rec in records:
        if rec.get("kind") == "metric" and rec.get("metric") == "counter":
            name = rec["name"]
            if name.startswith(SPAN_PREFIX) and name.endswith(SPAN_SUFFIX):
                out[name[len(SPAN_PREFIX) : -len(SPAN_SUFFIX)]] = rec["value"]
    return out


def _busy_times(records: list[dict]) -> dict[str, float]:
    busy: dict[str, float] = {}
    for rec in records:
        if rec.get("kind") == "trace" and rec.get("event") == "compute":
            busy[rec["actor"]] = busy.get(rec["actor"], 0.0) + (
                rec.get("end", rec["ts"]) - rec["ts"]
            )
    return busy


def summarise(records: list[dict]) -> str:
    """Reconstruct the paper-shaped measurements from a record stream."""
    meta = records[0] if records and records[0].get("kind") == "meta" else {}
    total = float(meta.get("total_time", 0.0))
    unit = "virtual s" if meta.get("clock") == "virtual" else "s"
    lines: list[str] = []
    lines.append(
        f"run: engine={meta.get('engine', '?')} "
        f"processors={meta.get('n_processors', 1)} clock={meta.get('clock', '?')} "
        f"total={total:.4f} {unit}"
    )

    phases = _phase_times(records)
    if phases:
        lines.append("")
        lines.append(f"per-phase times (Table 3 components, {unit}):")
        ordered = [n for n in TABLE3_ORDER if n in phases]
        ordered += [n for n in phases if n not in TABLE3_ORDER]
        width = max(len(n) for n in ordered)
        for name in ordered:
            lines.append(f"  {name:<{width}s}  {phases[name]:10.4f}")
        lines.append(f"  {'total':<{width}s}  {sum(phases.values()):10.4f}")

    busy = _busy_times(records)
    if busy:
        lines.append("")
        lines.append("per-actor utilisation (busy fraction of total time):")
        for actor in sorted(busy, key=lambda a: (a != "master", a)):
            frac = busy[actor] / total if total > 0 else 0.0
            lines.append(f"  {actor:<10s}  {busy[actor]:10.4f} {unit}  {frac * 100:6.2f}%")
        if "master" in busy:
            frac = busy["master"] / total if total > 0 else 0.0
            lines.append(f"master busy fraction: {frac * 100:.2f}% (Fig. 8 measurement)")

    counters = {
        r["name"]: r["value"]
        for r in records
        if r.get("kind") == "metric"
        and r.get("metric") == "counter"
        and not r["name"].startswith(SPAN_PREFIX)
        and not r["name"].startswith("fault.")
    }
    if counters:
        lines.append("")
        lines.append("counters:")
        for name in counters:
            value = counters[name]
            shown = f"{value:.4f}" if value != int(value) else f"{int(value)}"
            lines.append(f"  {name} = {shown}")
    gauges = {
        r["name"]: r["value"]
        for r in records
        if r.get("kind") == "metric" and r.get("metric") == "gauge"
    }
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for name, value in gauges.items():
            lines.append(f"  {name} = {value:.6g}")

    lat = [r for r in records if r.get("kind") == "latency"]
    if lat:
        lines.append("")
        lines.append("work-unit latency (per stage, seconds):")
        lines.append(
            f"  {'stage':<14s}  {'count':>8s}  {'mean':>10s}  "
            f"{'p50':>10s}  {'p99':>10s}  {'p999':>10s}"
        )
        for r in lat:
            lines.append(
                f"  {r['stage']:<14s}  {r['count']:8d}  {r['mean']:10.3g}  "
                f"{r['p50']:10.3g}  {r['p99']:10.3g}  {r['p999']:10.3g}"
            )

    hists = [
        r
        for r in records
        if r.get("kind") == "metric"
        and r.get("metric") == "histogram"
        # latency.* histograms are summarised by the latency table above;
        # their 33-bucket dumps would drown the report.
        and not (lat and r["name"].startswith("latency."))
    ]
    for h in hists:
        lines.append("")
        mean = h["sum"] / h["count"] if h["count"] else 0.0
        lines.append(f"histogram {h['name']} (n={h['count']}, mean={mean:.2f}):")
        edges = ["<=%g" % b for b in h["buckets"]] + [">%g" % h["buckets"][-1]]
        for edge, count in zip(edges, h["counts"]):
            if count:
                lines.append(f"  {edge:>10s}  {count}")

    live = [r for r in records if r.get("kind") == "live"]
    if live:
        lines.append("")
        lines.append("live samples (streamed during the run):")
        per_actor: dict[str, list[dict]] = {}
        for rec in live:
            per_actor.setdefault(rec.get("actor", "?"), []).append(rec)
        for actor in sorted(per_actor):
            samples = per_actor[actor]
            last = samples[-1]
            peak_rss = max(r.get("rss_bytes", 0) for r in samples)
            lines.append(
                f"  {actor:<10s}  {len(samples):4d} samples  "
                f"peak rss {peak_rss / (1024 * 1024):8.1f} MiB  "
                f"cpu {last.get('cpu_seconds', 0.0):8.2f} s  "
                f"pairs {last.get('pairs_generated', 0)}"
            )
        states = [r for r in records if r.get("kind") == "live_state"]
        if states:
            final = states[-1]
            lines.append(
                f"  final progress {final.get('progress', 0.0) * 100:.1f}% "
                f"({'finished' if final.get('finished') else 'in flight'})"
            )

    fault_counters = {
        r["name"][len("fault.") :]: r["value"]
        for r in records
        if r.get("kind") == "metric"
        and r.get("metric") == "counter"
        and r["name"].startswith("fault.")
    }
    fault_events = [
        r for r in records if r.get("kind") == "trace" and r.get("event") == "fault"
    ]
    if fault_counters or fault_events:
        lines.append("")
        lines.append("faults:")
        for name, value in fault_counters.items():
            lines.append(f"  {name} = {int(value)}")
        for rec in fault_events:
            lines.append(
                f"  [{rec['ts']:10.4f}] {rec['actor']}: {rec.get('detail', '')}"
            )

    if any(r.get("kind") == "causal" for r in records):
        from repro.telemetry.causal import check_conservation

        lines.append("")
        lines.extend(check_conservation(records).lines())
    return "\n".join(lines)
