"""Chrome trace-event export: telemetry JSONL → Perfetto timelines.

:func:`chrome_trace` merges the three event families one run produces —
machine trace events (send/recv/compute/fault intervals), causal
work-unit lifecycle events, and the per-stage latency summaries — into
one Chrome trace-event JSON object loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

- one named track per actor (master, each shard, each slave), ordered
  master → shards → slaves;
- ``compute``/``send``/``recv`` intervals as duration slices;
- causal lifecycle events as 1 µs marker slices, with flow arrows
  linking each work unit's ``dispatched`` → ``aligned`` → ``absorbed``
  hops across tracks (one arrow chain per dispatch round trip);
- faults as global instant events;
- the latency quantile table and run meta embedded under ``otherData``.

Timestamps are converted from the run's clock (wall or virtual seconds,
session origin) to the microseconds the format requires; a virtual-clock
simulator trace therefore renders exactly like a wall-clock one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable

from repro.telemetry.causal import format_unit

__all__ = ["chrome_trace", "export_chrome_trace"]

#: Marker-slice width for instantaneous causal events, in microseconds.
#: Flow arrows need a slice to bind to; 1 µs is visually a tick.
_MARK_US = 1.0


def _actor_sort_key(actor: str) -> tuple[int, int, str]:
    """master first, then shards by index, then slaves by index."""
    if actor == "master":
        return (0, 0, actor)
    if actor.startswith("shard"):
        try:
            return (1, int(actor[5:]), actor)
        except ValueError:
            return (1, 0, actor)
    if actor.startswith("slave"):
        try:
            return (2, int(actor[5:]), actor)
        except ValueError:
            return (2, 0, actor)
    return (3, 0, actor)


def _us(ts: float) -> float:
    return ts * 1e6


def chrome_trace(records: Iterable[dict]) -> dict:
    """Build the Chrome trace-event object for one record stream."""
    records = list(records)
    meta = records[0] if records and records[0].get("kind") == "meta" else {}

    actors: set[str] = set()
    for rec in records:
        if rec.get("kind") in ("trace", "causal") and rec.get("actor"):
            actors.add(rec["actor"])
        if rec.get("kind") == "causal" and rec.get("slave") is not None:
            actors.add(f"slave{rec['slave']}")
    ordered_actors = sorted(actors, key=_actor_sort_key)
    tids = {actor: i for i, actor in enumerate(ordered_actors)}

    pid = 1
    events: list[dict] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"pace-est {meta.get('engine', 'run')}"},
        }
    ]
    for actor, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": actor},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )

    # ---- machine trace intervals -------------------------------------- #
    for rec in records:
        if rec.get("kind") != "trace":
            continue
        actor = rec.get("actor", "?")
        tid = tids.get(actor, 0)
        ts = _us(float(rec.get("ts", 0.0)))
        end = _us(float(rec.get("end", rec.get("ts", 0.0))))
        if rec.get("event") == "fault":
            events.append(
                {
                    "ph": "i",
                    "s": "g",  # global scope: faults concern the whole run
                    "pid": pid,
                    "tid": tid,
                    "ts": ts,
                    "name": f"fault: {rec.get('detail', '')}",
                    "cat": "fault",
                }
            )
            continue
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "dur": max(end - ts, _MARK_US),
                "name": rec.get("event", "?"),
                "cat": "machine",
                "args": {"detail": rec.get("detail", "")},
            }
        )

    # ---- causal lifecycle markers + flow arrows ----------------------- #
    # One flow chain per dispatch round trip: dispatched (master/shard
    # track) → aligned (slave track) → absorbed (back at the master).
    flow_seq: dict[int, int] = {}  # unit -> dispatch round counter
    open_flows: dict[tuple[int, int], int] = {}  # (unit, slave) -> flow seq
    causal = [r for r in records if r.get("kind") == "causal"]
    for rec in causal:
        unit = rec.get("unit", -1)
        event = rec.get("event", "?")
        actor = rec.get("actor", "?")
        # Slave-side lifecycle facts (generated/aligned) are recorded by
        # the owning slave even though the dict's actor says so already.
        tid = tids.get(actor, 0)
        ts = _us(float(rec.get("ts", 0.0)))
        name = f"{event} {format_unit(unit)}"
        args = {"unit": format_unit(unit), "n": rec.get("n", 0)}
        if rec.get("reason"):
            args["reason"] = rec["reason"]
        if rec.get("slave") is not None:
            args["slave"] = rec["slave"]
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "dur": _MARK_US,
                "name": name,
                "cat": f"causal.{event}",
                "args": args,
            }
        )
        flow: dict | None = None
        if event == "dispatched" and rec.get("slave") is not None:
            seq = flow_seq.get(unit, 0)
            flow_seq[unit] = seq + 1
            open_flows[(unit, int(rec["slave"]))] = seq
            flow = {"ph": "s"}
        elif event == "aligned":
            # The slave doesn't know which dispatch round it is aligning;
            # bind to the unit's most recent open flow if any targets a
            # slave whose track this is.
            key = next(
                (
                    k
                    for k in open_flows
                    if k[0] == unit and f"slave{k[1]}" == actor
                ),
                None,
            )
            if key is not None:
                flow = {"ph": "t"}
                seq = open_flows[key]
        elif event == "absorbed" and rec.get("slave") is not None:
            key = (unit, int(rec["slave"]))
            if key in open_flows:
                seq = open_flows.pop(key)
                flow = {"ph": "f", "bp": "e"}
        if flow is not None:
            flow.update(
                {
                    "pid": pid,
                    "tid": tid,
                    "ts": ts,
                    "id": f"{unit}.{seq}",
                    "name": f"unit {format_unit(unit)}",
                    "cat": "causal.flow",
                }
            )
            events.append(flow)

    latency = {
        rec["stage"]: {
            k: rec[k]
            for k in ("count", "sum", "mean", "p50", "p90", "p99", "p999")
            if k in rec
        }
        for rec in records
        if rec.get("kind") == "latency" and rec.get("stage")
    }
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "meta": {k: v for k, v in meta.items() if k != "kind"},
            "latency": latency,
        },
    }


def export_chrome_trace(
    records: Iterable[dict], path: Path | str | IO[str]
) -> int:
    """Write the Chrome trace JSON for a record stream; returns the
    number of trace events emitted."""
    trace = chrome_trace(records)
    text = json.dumps(trace)
    if hasattr(path, "write"):
        path.write(text)
    else:
        Path(path).write_text(text)
    return len(trace["traceEvents"])
