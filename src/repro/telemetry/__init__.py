"""Unified telemetry: spans, metrics registry, machine traces, JSONL sinks.

One subsystem instruments the whole pipeline — preprocess → GST
construction → on-demand pair generation → alignment → cluster merging —
across all three drivers (sequential, simulated multiprocessor, real
multiprocessing), replacing the three ad-hoc mechanisms that preceded it
(``TimingBreakdown`` is now a compatibility shim over the registry, the
simulator-only trace recorder moved here and gained the mp backend, and
fault counters are surfaced as ``fault.*`` metrics).

Layering: this package depends only on the standard library, so every
other layer of the system may import it freely.

Typical use::

    from repro.telemetry import Telemetry, export_jsonl

    tel = Telemetry()
    result = run_parallel(collection, cfg, n_processors=4,
                          machine="multiprocessing", telemetry=tel)
    export_jsonl(result.telemetry, "trace.jsonl")

and ``pace-est report trace.jsonl`` reconstructs the per-phase times
(Table 3 shape), per-slave utilisation, and master-busy fraction from the
file alone.  ``pace-est analyze`` / ``pace-est diff`` break the same
trace down by work-unit lifecycle stage (:mod:`repro.telemetry.latency`,
:mod:`repro.telemetry.analyze`): per-stage p50/p90/p99/p999, the
critical-path stage, slave imbalance, and stage-by-stage regression
deltas between two runs.

Causal observability (:mod:`repro.telemetry.causal`,
:mod:`repro.telemetry.flight`, :mod:`repro.telemetry.export`,
:mod:`repro.telemetry.postmortem`): with ``causal_tracing`` enabled every
dispatched pair batch carries a work-unit id whose lifecycle events ride
the same JSONL stream, ``pace-est analyze`` checks conservation (every
admitted pair is absorbed, pruned or accounted in flight), ``pace-est
perfetto`` exports a Perfetto-loadable timeline with dispatch→absorb flow
arrows, and ``pace-est postmortem`` merges the trace with per-process
crash flight-recorder dumps to reconstruct a failed run's last moments.
"""

from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_buckets,
)
from repro.telemetry.analyze import analyze_trace, diff_traces, stage_table
from repro.telemetry.causal import (
    CausalRecorder,
    UnitMinter,
    check_conservation,
    format_unit,
)
from repro.telemetry.export import chrome_trace, export_chrome_trace
from repro.telemetry.flight import (
    FlightRecorder,
    load_flight_dumps,
    merge_flight_events,
)
from repro.telemetry.postmortem import build_postmortem, collect_run_sources
from repro.telemetry.latency import (
    SEQUENTIAL_STAGES,
    STAGES,
    LatencyStore,
    latency_records,
    store_from_records,
)
from repro.telemetry.live import (
    LiveRunState,
    LiveSample,
    ResourceSampler,
    replay_live_records,
)
from repro.telemetry.monitor import (
    RunMonitor,
    render_progress_table,
    render_prometheus,
)
from repro.telemetry.sinks import (
    ACCEPTED_SCHEMAS,
    SCHEMA_VERSION,
    TABLE3_ORDER,
    export_jsonl,
    load_jsonl,
    snapshot_records,
    summarise,
    validate_records,
)
from repro.telemetry.spans import Telemetry, TelemetrySnapshot
from repro.telemetry.trace import (
    TraceEvent,
    TraceRecorder,
    render_timeline,
    utilisation,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Telemetry",
    "TelemetrySnapshot",
    "TraceEvent",
    "TraceRecorder",
    "render_timeline",
    "utilisation",
    "SCHEMA_VERSION",
    "ACCEPTED_SCHEMAS",
    "TABLE3_ORDER",
    "LiveSample",
    "LiveRunState",
    "ResourceSampler",
    "replay_live_records",
    "RunMonitor",
    "render_prometheus",
    "render_progress_table",
    "snapshot_records",
    "export_jsonl",
    "load_jsonl",
    "validate_records",
    "summarise",
    "quantile_from_buckets",
    "LatencyStore",
    "STAGES",
    "SEQUENTIAL_STAGES",
    "latency_records",
    "store_from_records",
    "analyze_trace",
    "diff_traces",
    "stage_table",
    "CausalRecorder",
    "UnitMinter",
    "check_conservation",
    "format_unit",
    "chrome_trace",
    "export_chrome_trace",
    "FlightRecorder",
    "load_flight_dumps",
    "merge_flight_events",
    "build_postmortem",
    "collect_run_sources",
]
