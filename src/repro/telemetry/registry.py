"""The metrics registry: named counters, gauges and fixed-bucket histograms.

This is the bottom layer of the telemetry subsystem — a plain-Python,
dependency-free store that every instrumentation point writes into.  Three
instrument kinds cover what the paper measures and what the runtime needs:

- :class:`Counter` — monotonically accumulating floats (phase seconds,
  pairs produced, alignments accepted, fault events);
- :class:`Gauge` — last-written values for run-level measurements
  (virtual total time, load imbalance, master busy time);
- :class:`Histogram` — fixed upper-bound buckets for distributions
  (pair batch sizes, alignment band widths, WORKBUF/PAIRBUF depths).

Process safety is by *snapshot merging*, not shared memory: each slave
process owns a private registry and ships ``snapshot()`` back to the
master over the existing result pipe; the master folds it in with
:meth:`MetricsRegistry.merge_snapshot`.  Merging sums counters, sums
histogram bucket counts (bucket bounds must agree), and keeps the maximum
for gauges (slave gauges are high-water marks).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "quantile_from_buckets",
]

#: A decade-ish ladder that suits the counts this system distributes
#: (batch sizes, queue depths, band widths).
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)


def quantile_from_buckets(
    buckets: tuple[float, ...] | list[float],
    counts: list[int],
    q: float,
) -> float:
    """Estimate the ``q``-quantile of a bucketed distribution.

    Linear interpolation within the winning bucket (Prometheus
    ``histogram_quantile`` semantics: the first bucket interpolates from
    0, the overflow bucket clamps to the last finite bound — the true
    maximum is unknowable from counts alone).  NaN on an empty histogram,
    so callers can render "-" instead of inventing a zero.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return math.nan
    rank = q * total
    cum = 0.0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        if cum + c >= rank:
            lo = 0.0 if i == 0 else float(buckets[i - 1])
            if i >= len(buckets):
                return float(buckets[-1])  # overflow bucket: clamp
            hi = float(buckets[i])
            frac = (rank - cum) / c
            return lo + (hi - lo) * min(1.0, max(0.0, frac))
        cum += c
    return float(buckets[-1])


@dataclass
class Counter:
    """A named accumulating value; ``inc`` only ever adds."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


@dataclass
class Gauge:
    """A named last-written value (merges take the maximum)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Fixed-bucket histogram: ``buckets`` are increasing upper bounds.

    A value ``v`` lands in the first bucket whose bound satisfies
    ``v <= bound``; values above the last bound land in the overflow
    bucket, so ``counts`` has ``len(buckets) + 1`` entries and no value is
    ever dropped.
    """

    name: str
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if not self.buckets:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket")
        if any(b >= c for b, c in zip(self.buckets, self.buckets[1:])):
            raise ValueError(
                f"histogram {self.name!r} buckets must strictly increase: "
                f"{self.buckets}"
            )
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 ≤ q ≤ 1) by linear interpolation within
        the fixed buckets; NaN when the histogram is empty."""
        return quantile_from_buckets(self.buckets, self.counts, q)


class MetricsRegistry:
    """Get-or-create store of named instruments, insertion-ordered."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # ---- get-or-create ------------------------------------------------ #

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(
                name, tuple(buckets) if buckets else DEFAULT_BUCKETS
            )
        return h

    # ---- one-line instrumentation APIs -------------------------------- #

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(
        self, name: str, value: float, buckets: tuple[float, ...] | None = None
    ) -> None:
        self.histogram(name, buckets).observe(value)

    def get(self, name: str, default: float = 0.0) -> float:
        """Counter value by name (the common read path)."""
        c = self.counters.get(name)
        return c.value if c is not None else default

    # ---- snapshot / merge --------------------------------------------- #

    def snapshot(self) -> dict:
        """A JSON-able copy of every instrument."""
        return {
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {n: g.value for n, g in self.gauges.items()},
            "histograms": {
                n: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                }
                for n, h in self.histograms.items()
            },
        }

    def merge_snapshot(self, snap: dict | None) -> None:
        """Fold another registry's snapshot into this one (slave → master).

        Counters and histogram bucket counts add; gauges keep the max.
        """
        if not snap:
            return
        for name, value in snap.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snap.get("gauges", {}).items():
            g = self.gauge(name)
            g.set(max(g.value, value))
        for name, rec in snap.get("histograms", {}).items():
            h = self.histogram(name, tuple(rec["buckets"]))
            if list(h.buckets) != list(rec["buckets"]):
                raise ValueError(
                    f"histogram {name!r} bucket mismatch: "
                    f"{list(h.buckets)} vs {rec['buckets']}"
                )
            for i, c in enumerate(rec["counts"]):
                h.counts[i] += c
            h.count += rec["count"]
            h.sum += rec["sum"]
