"""Machine-level event tracing, shared by both parallel engines.

A :class:`TraceRecorder` captures the send/recv/compute/fault timeline of
one parallel run.  It is engine-agnostic: the discrete-event simulator
records **virtual** timestamps, while the multiprocessing backend records
wall-clock offsets from the run origin — slave processes keep their own
recorder and forward its events to the master over the existing result
pipe, so real runs yield the same timeline the simulator does.  Both
feed the utilisation report and master-busy measurement behind the
paper's Figure 8.

Events are plain records; :func:`render_timeline` pretty-prints a textual
timeline and :func:`utilisation` computes per-actor busy fractions from
the recorded intervals (cross-checked against the machine's own
accounting in the tests).  Both are total on trivial runs: an empty
trace renders as a bare header and utilises nobody, and a
``total_time`` of zero yields zero busy fractions rather than dividing
by it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TraceEvent", "TraceRecorder", "render_timeline", "utilisation"]


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    ``kind`` ∈ {send, recv, compute, fault}; ``actor`` is "master" or
    "slave<k>"; ``start``/``end`` delimit the interval (equal for
    instantaneous events); ``detail`` is a short human label.  ``fault``
    events record slave crashes and the master's recovery actions
    (detection, restart, reassignment) in both engines.
    """

    kind: str
    actor: str
    start: float
    end: float
    detail: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"event ends before it starts: {self}")

    def as_record(self) -> dict:
        """The JSONL representation (see DESIGN.md §5b for the schema)."""
        rec = {
            "kind": "trace",
            "event": self.kind,
            "actor": self.actor,
            "ts": self.start,
            "end": self.end,
        }
        if self.detail:
            rec["detail"] = self.detail
        return rec


@dataclass
class TraceRecorder:
    """Accumulates trace events during one run (simulated or real)."""

    events: list[TraceEvent] = field(default_factory=list)

    def send(self, actor: str, at: float, detail: str = "") -> None:
        self.events.append(TraceEvent("send", actor, at, at, detail))

    def recv(self, actor: str, at: float, detail: str = "") -> None:
        self.events.append(TraceEvent("recv", actor, at, at, detail))

    def compute(self, actor: str, start: float, end: float, detail: str = "") -> None:
        self.events.append(TraceEvent("compute", actor, start, end, detail))

    def fault(self, actor: str, at: float, detail: str = "") -> None:
        """A crash, detection, restart, or reassignment event."""
        self.events.append(TraceEvent("fault", actor, at, at, detail))

    # ------------------------------------------------------------------ #

    def faults(self) -> list[TraceEvent]:
        """The recovery-relevant subset of the event stream."""
        return [e for e in self.events if e.kind == "fault"]

    def by_actor(self, actor: str) -> list[TraceEvent]:
        return [e for e in self.events if e.actor == actor]

    def ordered(self) -> list[TraceEvent]:
        return sorted(self.events, key=lambda e: (e.start, e.end))

    def extend(
        self,
        events: list[TraceEvent] | tuple[TraceEvent, ...],
        *,
        offset: float = 0.0,
    ) -> None:
        """Absorb events recorded elsewhere (e.g. shipped back by a slave).

        ``offset`` rebases foreign timestamps into this recorder's time
        origin — pass ``their_origin - our_origin`` (origins are carried
        in the streams' meta records) to merge traces recorded against
        different clocks, e.g. overlaying a simulator run on an mp run.
        """
        if offset:
            events = [
                TraceEvent(
                    e.kind, e.actor, e.start + offset, e.end + offset, e.detail
                )
                for e in events
            ]
        self.events.extend(events)

    def total_span(self) -> float:
        """Latest event end (0.0 for an empty trace)."""
        return max((e.end for e in self.events), default=0.0)

    def __len__(self) -> int:
        return len(self.events)


def utilisation(trace: TraceRecorder, total_time: float) -> dict[str, float]:
    """Busy fraction per actor from its compute intervals.

    Total on degenerate inputs: an empty trace yields ``{}``, and
    ``total_time <= 0`` (a trivial run) yields 0.0 for every actor with
    recorded compute time instead of dividing by zero.
    """
    busy: dict[str, float] = {}
    for ev in trace.events:
        if ev.kind == "compute":
            busy[ev.actor] = busy.get(ev.actor, 0.0) + (ev.end - ev.start)
    if total_time <= 0:
        return {actor: 0.0 for actor in busy}
    return {actor: t / total_time for actor, t in busy.items()}


def render_timeline(trace: TraceRecorder, *, max_events: int = 60) -> str:
    """A textual timeline of the first ``max_events`` events (total on an
    empty trace: just the header row)."""
    lines = [f"{'time':>12s}  {'actor':<10s} {'kind':<8s} detail"]
    for ev in trace.ordered()[:max_events]:
        span = (
            f"{ev.start * 1e3:9.3f}ms"
            if ev.start == ev.end
            else f"{ev.start * 1e3:9.3f}ms+{(ev.end - ev.start) * 1e3:.3f}"
        )
        lines.append(f"{span:>12s}  {ev.actor:<10s} {ev.kind:<8s} {ev.detail}")
    if len(trace) > max_events:
        lines.append(f"... ({len(trace) - max_events} more events)")
    return "\n".join(lines)
