"""The live run monitor: scrapeable endpoint, status lines, live JSONL.

:class:`RunMonitor` is the single object an engine talks to when live
monitoring is requested (``ClusteringConfig.monitor_port`` /
``--monitor-port`` / an explicit ``monitor=`` argument).  It owns a
:class:`~repro.telemetry.live.LiveRunState` and exposes it three ways:

1. an HTTP endpoint on a background thread (stdlib ``http.server``, no
   dependencies): ``/metrics`` in Prometheus text format, ``/healthz``,
   and ``/state`` as JSON (what the ``pace-est monitor`` CLI renders);
2. a rate-limited structured-log status line
   (:mod:`repro.util.logging`) with run-id/actor/phase fields;
3. an append-only live JSONL stream (``--live-out``): one
   ``{"kind": "live", ...}`` record per sample plus periodic
   ``live_state`` master records, replayable by
   :func:`~repro.telemetry.live.replay_live_records`.

Thread model: engine callbacks (``on_sample``, ``record_fault``, …)
mutate the state under one lock; the HTTP handler renders under the same
lock.  When ``monitor is None`` nothing here is ever imported on a hot
path — the engines guard every call site.

Metric naming follows the Prometheus conventions: ``pace_`` prefix,
``_total`` suffix on counters, base units in the name (``_bytes``,
``_seconds``, ``_ratio``), per-slave time series via a ``slave`` label.
The full convention is documented in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import IO

from repro.telemetry.live import LiveRunState, LiveSample
from repro.util.logging import StructuredLogger, get_logger, new_run_id

__all__ = ["RunMonitor", "render_prometheus", "render_progress_table"]


# --------------------------------------------------------------------- #
# prometheus text rendering
# --------------------------------------------------------------------- #


def _metric(lines: list[str], name: str, mtype: str, value, labels: str = "") -> None:
    if not any(line.startswith(f"# TYPE {name} ") for line in lines):
        lines.append(f"# TYPE {name} {mtype}")
    if isinstance(value, bool):
        value = int(value)
    lines.append(f"{name}{labels} {value}")


def render_prometheus(state: LiveRunState, histograms: dict | None = None) -> str:
    """The ``/metrics`` payload: Prometheus text exposition format,
    rendered from the live state alone (no client library).

    ``histograms`` (name → :class:`~repro.telemetry.registry.Histogram`,
    e.g. an attached registry's) adds ``_p50``/``_p99`` quantile gauges
    per histogram — plus ``_p999`` for the ``latency.*`` stage
    distributions, whose extreme tail is the whole point.
    """
    lines: list[str] = []
    _metric(lines, "pace_up", "gauge", 1)
    _metric(lines, "pace_run_finished", "gauge", state.finished)
    _metric(lines, "pace_run_progress_ratio", "gauge", f"{state.progress:.6f}")
    eta = state.eta_seconds()
    if eta is not None:
        _metric(lines, "pace_run_eta_seconds", "gauge", f"{eta:.3f}")
    _metric(lines, "pace_run_elapsed_seconds", "gauge", f"{state.now:.3f}")
    _metric(lines, "pace_run_slaves", "gauge", state.n_slaves)
    _metric(lines, "pace_workbuf_depth", "gauge", state.workbuf_depth)
    _metric(lines, "pace_messages_total", "counter", state.messages)
    _metric(lines, "pace_merges_total", "counter", state.merges)
    _metric(lines, "pace_pairs_dispatched_total", "counter", state.pairs_dispatched)

    for name in sorted(state.fault_counters):
        _metric(
            lines,
            f"pace_fault_{name}_total",
            "counter",
            state.fault_counters[name],
        )

    master = state.master
    if master.samples:
        _metric(lines, "pace_master_rss_bytes", "gauge", master.rss_bytes)
        _metric(
            lines,
            "pace_master_cpu_seconds_total",
            "counter",
            f"{master.cpu_seconds:.3f}",
        )

    for shard in state.shards:
        j = shard.get("shard_id", 0)
        lab = f'{{shard="{j}"}}'
        _metric(lines, "pace_shard_slaves", "gauge", shard.get("slaves", 0), lab)
        _metric(lines, "pace_shard_busy_slaves", "gauge", shard.get("busy", 0), lab)
        _metric(lines, "pace_shard_lost_slaves", "gauge", shard.get("lost", 0), lab)
        _metric(
            lines, "pace_shard_workbuf_depth", "gauge",
            shard.get("workbuf_depth", 0), lab,
        )
        _metric(
            lines, "pace_shard_pairs_dispatched_total", "counter",
            shard.get("pairs_dispatched", 0), lab,
        )
        _metric(
            lines, "pace_shard_merges_total", "counter",
            shard.get("merges", 0), lab,
        )
        _metric(
            lines, "pace_shard_pairs_pruned_total", "counter",
            shard.get("pruned", 0), lab,
        )
        _metric(
            lines, "pace_shard_unions_absorbed_total", "counter",
            shard.get("unions_absorbed", 0), lab,
        )
        _metric(
            lines, "pace_shard_sync_pruned_total", "counter",
            shard.get("sync_pruned", 0), lab,
        )

    stragglers = set(state.stragglers())
    for k, view in sorted(state.slaves.items()):
        lab = f'{{slave="{k}"}}'
        _metric(lines, "pace_slave_up", "gauge", not view.lost, lab)
        _metric(lines, "pace_slave_incarnation", "gauge", view.incarnation, lab)
        _metric(
            lines, "pace_slave_pairs_generated_total", "counter",
            view.pairs_generated, lab,
        )
        _metric(
            lines, "pace_slave_alignments_total", "counter", view.alignments, lab
        )
        _metric(lines, "pace_slave_dp_cells_total", "counter", view.dp_cells, lab)
        _metric(lines, "pace_slave_pairbuf_depth", "gauge", view.pairbuf_depth, lab)
        _metric(
            lines, "pace_slave_progress_ratio", "gauge",
            f"{view.position:.6f}", lab,
        )
        _metric(lines, "pace_slave_rss_bytes", "gauge", view.rss_bytes, lab)
        _metric(
            lines, "pace_slave_cpu_seconds_total", "counter",
            f"{view.cpu_seconds:.3f}", lab,
        )
        _metric(lines, "pace_slave_straggler", "gauge", k in stragglers, lab)

    for name, hist in sorted((histograms or {}).items()):
        if hist.count == 0:
            continue  # NaN quantiles have no place on a scrape endpoint
        base = "pace_" + name.replace(".", "_").replace("-", "_")
        quantiles = [("p50", 0.50), ("p99", 0.99)]
        if name.startswith("latency."):
            quantiles.append(("p999", 0.999))
        _metric(lines, f"{base}_count", "counter", hist.count)
        _metric(lines, f"{base}_sum", "counter", f"{hist.sum:.9g}")
        for label, q in quantiles:
            _metric(lines, f"{base}_{label}", "gauge", f"{hist.quantile(q):.9g}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# terminal rendering (the `pace-est monitor` table)
# --------------------------------------------------------------------- #


def _fmt_bytes(n: int) -> str:
    if n <= 0:
        return "-"
    mb = n / (1024 * 1024)
    return f"{mb:,.1f}M" if mb < 1024 else f"{mb / 1024:,.2f}G"


def render_progress_table(state: dict) -> str:
    """A terminal progress table from a ``/state`` JSON dict (also used
    on replayed ``--live-out`` streams)."""
    eta = state.get("eta_seconds")
    head = (
        f"run {state.get('run_id') or '?'} · engine={state.get('engine')} "
        f"· {state.get('n_slaves')} slaves · clock={state.get('clock')}"
    )
    prog = state.get("progress", 0.0) or 0.0
    bar_w = 30
    filled = int(round(prog * bar_w))
    bar = "#" * filled + "-" * (bar_w - filled)
    status = "finished" if state.get("finished") else "running"
    line2 = (
        f"[{bar}] {prog * 100:5.1f}%  {status}"
        f"  elapsed={state.get('now', 0.0):.1f}s"
        + (f"  eta={eta:.0f}s" if eta not in (None, 0.0) else "")
        + f"  workbuf={state.get('workbuf_depth', 0)}"
        f"  merges={state.get('merges', 0)}"
    )
    headers = [
        "slave", "state", "inc", "pairs", "aligned", "pairbuf",
        "pos%", "rss", "cpu(s)", "last-seen",
    ]
    rows: list[list[str]] = []
    stragglers = set(state.get("stragglers", ()))
    for view in state.get("slaves", []):
        k = view["slave_id"]
        mark = "*" if k in stragglers else ""
        rows.append(
            [
                f"slave{k}{mark}",
                view["state"],
                str(view["incarnation"]),
                str(view["pairs_generated"]),
                str(view["alignments"]),
                str(view["pairbuf_depth"]),
                f"{view['position'] * 100:.1f}",
                _fmt_bytes(view["rss_bytes"]),
                f"{view['cpu_seconds']:.2f}",
                f"{view['last_ts']:.1f}s" if view["samples"] else "-",
            ]
        )
    master = state.get("master")
    if master and master.get("samples"):
        rows.append(
            [
                "master", "-", "-", "-", "-",
                str(state.get("workbuf_depth", 0)), "-",
                _fmt_bytes(master["rss_bytes"]),
                f"{master['cpu_seconds']:.2f}",
                f"{master['last_ts']:.1f}s",
            ]
        )
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [head, line2, ""]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    shards = state.get("shards") or []
    if shards:
        sh_headers = [
            "shard", "slaves", "busy", "lost", "workbuf",
            "dispatched", "merges", "pruned", "sync-in", "sync-pruned",
        ]
        sh_rows = [
            [
                f"shard{s.get('shard_id', i)}",
                str(s.get("slaves", 0)),
                str(s.get("busy", 0)),
                str(s.get("lost", 0)),
                str(s.get("workbuf_depth", 0)),
                str(s.get("pairs_dispatched", 0)),
                str(s.get("merges", 0)),
                str(s.get("pruned", 0)),
                str(s.get("unions_absorbed", 0)),
                str(s.get("sync_pruned", 0)),
            ]
            for i, s in enumerate(shards)
        ]
        sh_widths = [
            max(len(h), *(len(r[i]) for r in sh_rows))
            for i, h in enumerate(sh_headers)
        ]
        lines.append("")
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(sh_headers, sh_widths))
        )
        for r in sh_rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, sh_widths)))
    faults = state.get("faults") or {}
    if faults:
        lines.append("")
        lines.append(
            "faults: " + "  ".join(f"{k}={v}" for k, v in sorted(faults.items()))
        )
    if stragglers:
        lines.append(f"stragglers (*): {sorted(stragglers)}")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# the HTTP endpoint
# --------------------------------------------------------------------- #


class _Handler(BaseHTTPRequestHandler):
    monitor: "RunMonitor"  # set on the server class per instance

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.server.monitor.metrics_text().encode()
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/healthz":
            body = b'{"status": "ok"}\n'
            ctype = "application/json"
        elif path == "/state":
            body = (
                json.dumps(self.server.monitor.state_dict(), sort_keys=False) + "\n"
            ).encode()
            ctype = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics, /healthz, /state)")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes must not spam the run's stderr


class RunMonitor:
    """Live monitoring facade for one clustering run (see module docs).

    ``port=None`` disables the HTTP endpoint (status lines / live JSONL
    may still be active); ``port=0`` binds an OS-assigned port, readable
    from :attr:`port` once :meth:`begin_run` returns.
    """

    def __init__(
        self,
        *,
        port: int | None = None,
        live_out: Path | str | IO[str] | None = None,
        interval: float = 1.0,
        run_id: str | None = None,
        log: StructuredLogger | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"monitor interval must be > 0, got {interval}")
        self.requested_port = port
        self.interval = interval
        self.run_id = run_id or new_run_id()
        self.state: LiveRunState | None = None
        self._lock = threading.Lock()
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._live_path = live_out
        self._live_fh: IO[str] | None = None
        self._owns_fh = False
        self._log = (log or get_logger()).bind(run=self.run_id, actor="monitor")
        self._last_status = 0.0
        self._last_state_rec = 0.0
        self._closed = False
        self._registry = None

    def attach_registry(self, registry) -> None:
        """Expose a :class:`~repro.telemetry.registry.MetricsRegistry`'s
        histograms as quantile gauges on ``/metrics`` (the engines attach
        their telemetry registry so ``latency.*`` stage quantiles are
        scrapeable mid-run).  Reads race benignly with writer increments:
        a scrape may see a histogram mid-update, never a torn value."""
        self._registry = registry

    # ---- lifecycle ---------------------------------------------------- #

    @property
    def port(self) -> int | None:
        """The bound endpoint port (None while no server is running)."""
        return self._server.server_address[1] if self._server else None

    def begin_run(
        self,
        n_slaves: int,
        *,
        engine: str,
        clock: str = "wall",
        straggler_after: float = 30.0,
        origin: float | None = None,
    ) -> LiveRunState:
        """Engine handshake: size the state, open the sinks.  Idempotent
        per monitor (a second run reuses the endpoint with fresh state).
        ``origin`` is the raw clock value that sample offsets count from;
        it is published on ``/state`` and in the live meta record so the
        stream can be time-aligned with post-run traces."""
        with self._lock:
            self.state = LiveRunState(
                n_slaves,
                run_id=self.run_id,
                engine=engine,
                clock=clock,
                straggler_after=straggler_after,
                origin=origin,
            )
            self._open_live_sink(
                engine=engine, clock=clock, n_slaves=n_slaves, origin=origin
            )
        if self.requested_port is not None and self._server is None:
            server = ThreadingHTTPServer(("127.0.0.1", self.requested_port), _Handler)
            server.monitor = self
            server.daemon_threads = True
            self._server = server
            self._thread = threading.Thread(
                target=server.serve_forever,
                name=f"pace-monitor-{self.run_id}",
                daemon=True,
            )
            self._thread.start()
            self._log.info(
                "monitor endpoint up",
                port=self.port,
                paths="/metrics,/healthz,/state",
            )
        return self.state

    def _open_live_sink(self, **meta) -> None:
        if self._live_path is None or self._live_fh is not None:
            return
        if hasattr(self._live_path, "write"):
            self._live_fh = self._live_path
        else:
            self._live_fh = open(self._live_path, "w", encoding="utf-8")
            self._owns_fh = True
        # Stream meta first, like every telemetry JSONL; no total_time yet
        # (the final live_state record carries finished=true instead).
        from repro.telemetry.sinks import SCHEMA_VERSION

        self._write_record(
            {
                "kind": "meta",
                "schema": SCHEMA_VERSION,
                "stream": "live",
                "run_id": self.run_id,
                "n_processors": meta["n_slaves"] + 1,
                **{
                    k: v
                    for k, v in meta.items()
                    if k != "n_slaves" and v is not None
                },
            }
        )

    def close(self, linger: float = 0.0) -> None:
        """Tear down the endpoint and the live sink.  ``linger`` keeps the
        endpoint scrapeable for that many seconds after the run finishes
        (CI scrapes the final 100% state this way).  Idempotent — engine
        ``finally`` blocks and the CLI can both call it — and the linger
        sleep only happens on *clean* completion: when the run died
        (``finish()`` never ran) the caller is on an exception path and
        must not be blocked watching a corpse."""
        if self._closed:
            return
        self._closed = True
        finished = self.state is not None and self.state.finished
        if linger > 0 and self._server is not None and finished:
            time.sleep(linger)
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            if self._thread is not None:
                self._thread.join(timeout=5)
            self._server = None
            self._thread = None
        with self._lock:
            if self._live_fh is not None and self._owns_fh:
                self._live_fh.close()
            self._live_fh = None

    # ---- engine callbacks (all no-throw, all lock-guarded) ------------ #

    def _write_record(self, rec: dict) -> None:
        if self._live_fh is not None:
            try:
                self._live_fh.write(json.dumps(rec, sort_keys=False) + "\n")
                self._live_fh.flush()
            except OSError:
                self._live_fh = None  # a dead sink must not kill the run

    def on_sample(self, sample: LiveSample) -> None:
        """Fold one streamed sample in (low-priority pipe message)."""
        with self._lock:
            if self.state is None:
                return
            self.state.update(sample)
            self._write_record(sample.as_record())

    def set_master(self, **fields) -> None:
        """Mirror the master's queue/message accounting (see
        :meth:`LiveRunState.set_master` for the accepted fields)."""
        with self._lock:
            if self.state is not None:
                self.state.set_master(**fields)

    def set_shards(self, shard_states: list[dict]) -> None:
        """Replace the per-shard views (sharded-master engines push the
        full ``ShardedMaster.shard_states()`` list each refresh)."""
        with self._lock:
            if self.state is not None:
                self.state.set_shards(shard_states)

    def record_fault(self, name: str, amount: int = 1) -> None:
        with self._lock:
            if self.state is not None:
                self.state.record_fault(name, amount)

    def slave_lost(self, slave_id: int) -> None:
        with self._lock:
            if self.state is not None:
                self.state.slave_lost(slave_id)
        self._log.warning("slave lost", slave=slave_id)

    def slave_revived(self, slave_id: int) -> None:
        with self._lock:
            if self.state is not None:
                self.state.slave_revived(slave_id)
        self._log.info("slave restarted", slave=slave_id)

    def slave_stopped(self, slave_id: int) -> None:
        with self._lock:
            if self.state is not None:
                self.state.slave_stopped(slave_id)

    def straggler_ids(self) -> tuple[int, ...]:
        """Slaves currently flagged as stragglers (stale samples), as a
        thread-safe snapshot.  Pace-aware dispatch policies poll this as
        their live signal; before :meth:`begin_run` it is empty."""
        with self._lock:
            if self.state is None:
                return ()
            return tuple(self.state.stragglers())

    def finish(self, total_time: float | None = None) -> None:
        """The run completed: pin progress to 1.0, flush a final state
        record and a final status line."""
        with self._lock:
            if self.state is None:
                return
            self.state.finish(total_time)
            self._write_state_record()
        self._status_line(force=True)

    # ---- periodic output ---------------------------------------------- #

    def maybe_report(self, now: float | None = None) -> None:
        """Rate-limited periodic output: one structured status line and
        one ``live_state`` JSONL record per interval.  Engines call this
        from their event loop; it is cheap when the interval has not
        elapsed."""
        wall = time.monotonic()
        if wall - self._last_state_rec >= self.interval:
            self._last_state_rec = wall
            with self._lock:
                if self.state is not None:
                    if now is not None:
                        self.state.set_master(ts=now)
                    self._write_state_record()
        if wall - self._last_status >= max(self.interval, 5.0):
            self._last_status = wall
            self._status_line()

    def _write_state_record(self) -> None:
        state = self.state
        if state is None:
            return
        self._write_record(
            {
                "kind": "live_state",
                "ts": state.now,
                "progress": state.progress,
                "workbuf_depth": state.workbuf_depth,
                "messages": state.messages,
                "merges": state.merges,
                "faults": dict(state.fault_counters),
                "lost": sorted(
                    k for k, v in state.slaves.items() if v.lost
                ),
                **({"shards": [dict(s) for s in state.shards]} if state.shards else {}),
                "finished": state.finished,
            }
        )

    def _status_line(self, force: bool = False) -> None:
        with self._lock:
            state = self.state
            if state is None:
                return
            snap = state.as_dict()
        eta = snap["eta_seconds"]
        self._log.bind(actor="master", phase="alignment").info(
            "run finished" if snap["finished"] else "progress",
            progress=f"{snap['progress'] * 100:.1f}%",
            eta=f"{eta:.0f}s" if eta is not None else "?",
            workbuf=snap["workbuf_depth"],
            merges=snap["merges"],
            slaves_lost=snap["faults"].get("slaves_lost", 0),
            stragglers=len(snap["stragglers"]),
        )

    # ---- endpoint payloads -------------------------------------------- #

    def metrics_text(self) -> str:
        with self._lock:
            if self.state is None:
                return "# TYPE pace_up gauge\npace_up 0\n"
            histograms = (
                self._registry.histograms if self._registry is not None else None
            )
            return render_prometheus(self.state, histograms)

    def state_dict(self) -> dict:
        with self._lock:
            if self.state is None:
                return {"run_id": self.run_id, "slaves": [], "progress": 0.0}
            return self.state.as_dict()
