"""Synthetic EST benchmark generator: gene models with exon/intron
structure, transcription (incl. alternative splicing), cDNA/EST sampling
from either end, a sequencing-error model, and dataset assembly with exact
ground-truth clustering — the stand-in for the paper's Arabidopsis
benchmark (see DESIGN.md §2)."""

from repro.simulate.datasets import BenchmarkParams, EstBenchmark, make_benchmark
from repro.simulate.errors import ErrorModel, apply_errors
from repro.simulate.est_sampler import ReadParams, SampledEst, sample_est, sample_gene_ests
from repro.simulate.genes import GeneModel, make_gene, make_gene_family, random_genome
from repro.simulate.transcripts import (
    Transcript,
    alternative_transcripts,
    primary_transcript,
)

__all__ = [
    "BenchmarkParams",
    "EstBenchmark",
    "make_benchmark",
    "ErrorModel",
    "apply_errors",
    "ReadParams",
    "SampledEst",
    "sample_est",
    "sample_gene_ests",
    "GeneModel",
    "make_gene",
    "make_gene_family",
    "random_genome",
    "Transcript",
    "alternative_transcripts",
    "primary_transcript",
]
