"""EST sampling from transcripts.

"Due to experimental limitations, several cDNAs of various lengths are
obtained instead of just full-length cDNAs.  Part of the cDNA fragments of
average length about 500-600 can be sequenced.  The sequencing can be done
from either end." (§1, Fig. 1.)

Accordingly an EST here is a read of length ~N(mean, sd) taken from a
random cDNA fragment of the mRNA, sequenced from the 5′ or the 3′ end; a
3′ read reports the reverse complement (opposite strand, opposite
direction).  Errors are injected afterwards.  Reads shorter than
``min_length`` (after clipping to the fragment) are resampled, mirroring
the length filters real EST pipelines apply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sequence.seq import reverse_complement
from repro.simulate.errors import ErrorModel, apply_errors
from repro.simulate.transcripts import Transcript
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

__all__ = ["ReadParams", "SampledEst", "sample_est", "sample_gene_ests"]


@dataclass(frozen=True)
class ReadParams:
    """Read-length distribution and end bias."""

    mean_length: float = 550.0
    sd_length: float = 60.0
    min_length: int = 100
    five_prime_prob: float = 0.5  # chance of a 5' (forward) read

    def __post_init__(self) -> None:
        check_positive("mean_length", self.mean_length)
        check_positive("min_length", self.min_length)
        if self.sd_length < 0:
            raise ValueError("sd_length must be >= 0")
        if not 0.0 <= self.five_prime_prob <= 1.0:
            raise ValueError("five_prime_prob must be a probability")

    @classmethod
    def short_reads(cls, mean: float = 120.0, sd: float = 20.0, min_length: int = 40) -> "ReadParams":
        """A scaled-down regime for fast tests and demos."""
        return cls(mean_length=mean, sd_length=sd, min_length=min_length)


@dataclass(frozen=True)
class SampledEst:
    """One sampled EST with its provenance (the simulator's ground truth)."""

    codes_bytes: bytes
    gene_id: int
    isoform_id: int
    mrna_start: int  # fragment coordinates on the transcript
    mrna_end: int
    five_prime: bool  # True: forward read; False: reverse-complemented

    @property
    def codes(self) -> np.ndarray:
        return np.frombuffer(self.codes_bytes, dtype=np.uint8)

    @property
    def length(self) -> int:
        return len(self.codes_bytes)


def sample_est(
    transcript: Transcript,
    params: ReadParams,
    error_model: ErrorModel,
    rng=None,
    *,
    max_attempts: int = 50,
) -> SampledEst:
    """Sample one EST from a transcript."""
    rng = ensure_rng(rng)
    mrna = transcript.sequence
    if len(mrna) < params.min_length:
        raise ValueError(
            f"transcript of length {len(mrna)} shorter than min read "
            f"length {params.min_length}"
        )
    for _ in range(max_attempts):
        # A cDNA fragment: a random-length window of the mRNA.
        frag_len = int(round(rng.normal(params.mean_length * 1.5, params.sd_length)))
        frag_len = min(max(frag_len, params.min_length), len(mrna))
        frag_start = int(rng.integers(0, len(mrna) - frag_len + 1))
        # Read length, clipped to the fragment.
        read_len = int(round(rng.normal(params.mean_length, params.sd_length)))
        read_len = min(max(read_len, params.min_length), frag_len)
        five_prime = bool(rng.random() < params.five_prime_prob)
        if five_prime:
            start = frag_start
            end = frag_start + read_len
            raw = mrna[start:end]
        else:
            end = frag_start + frag_len
            start = end - read_len
            raw = reverse_complement(mrna[start:end])
        noisy = apply_errors(raw, error_model, rng)
        if len(noisy) >= params.min_length:
            return SampledEst(
                codes_bytes=noisy.tobytes(),
                gene_id=transcript.gene_id,
                isoform_id=transcript.isoform_id,
                mrna_start=start,
                mrna_end=end,
                five_prime=five_prime,
            )
    raise RuntimeError("failed to sample a read above min_length")


def sample_gene_ests(
    transcripts: list[Transcript],
    n_reads: int,
    params: ReadParams,
    error_model: ErrorModel,
    rng=None,
) -> list[SampledEst]:
    """Sample ``n_reads`` ESTs from a gene's isoforms (uniform choice)."""
    rng = ensure_rng(rng)
    if not transcripts:
        raise ValueError("need at least one transcript")
    reads = []
    for _ in range(n_reads):
        t = transcripts[int(rng.integers(0, len(transcripts)))]
        reads.append(sample_est(t, params, error_model, rng))
    return reads
