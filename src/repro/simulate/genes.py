"""Synthetic gene models.

The paper's benchmark is 81,414 *Arabidopsis* ESTs whose correct clustering
is known because the full genome is available (§4.1).  That data is not
redistributable here, so this package synthesises the equivalent: random
genes with exon/intron structure on a random genome, from which mRNAs are
transcribed and ESTs sampled.  Because we control the generative process,
the correct clustering (one cluster per gene) is exact — strictly stronger
ground truth than the paper's reconstruction.

A gene (Fig. 1 of the paper) is a stretch of genomic DNA of alternating
exons and introns; its mRNA is the concatenation of the exons.  Genes may
sit on either genomic strand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sequence.seq import reverse_complement
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

__all__ = ["GeneModel", "random_genome", "make_gene", "make_gene_family"]


@dataclass(frozen=True)
class GeneModel:
    """One synthetic gene.

    ``exons`` are the exon sequences in transcription order (already
    strand-corrected); ``mrna`` is their concatenation.  ``intron_lengths``
    records the structure for completeness (intronic sequence never
    reaches an EST, so only the lengths are kept).
    """

    gene_id: int
    exons: tuple[bytes, ...]
    intron_lengths: tuple[int, ...]
    reverse_strand: bool

    @property
    def mrna(self) -> np.ndarray:
        parts = [np.frombuffer(e, dtype=np.uint8) for e in self.exons]
        return np.concatenate(parts)

    @property
    def mrna_length(self) -> int:
        return sum(len(e) for e in self.exons)

    @property
    def n_exons(self) -> int:
        return len(self.exons)


def random_genome(length: int, rng=None) -> np.ndarray:
    """Uniform random encoded DNA of the given length."""
    check_positive("genome length", length)
    rng = ensure_rng(rng)
    return rng.integers(0, 4, size=length, dtype=np.uint8)


def make_gene(
    gene_id: int,
    rng=None,
    *,
    n_exons_range: tuple[int, int] = (2, 6),
    exon_len_range: tuple[int, int] = (150, 500),
    intron_len_range: tuple[int, int] = (60, 400),
    reverse_strand_prob: float = 0.5,
) -> GeneModel:
    """Generate one gene with random exon/intron structure."""
    rng = ensure_rng(rng)
    n_exons = int(rng.integers(n_exons_range[0], n_exons_range[1] + 1))
    exons = []
    for _ in range(n_exons):
        length = int(rng.integers(exon_len_range[0], exon_len_range[1] + 1))
        exons.append(random_genome(length, rng).tobytes())
    introns = tuple(
        int(rng.integers(intron_len_range[0], intron_len_range[1] + 1))
        for _ in range(max(0, n_exons - 1))
    )
    reverse = bool(rng.random() < reverse_strand_prob)
    if reverse:
        # A gene on the reverse strand transcribes the reverse complement;
        # the exon list is stored already strand-corrected.
        exons = [
            reverse_complement(np.frombuffer(e, dtype=np.uint8)).tobytes()
            for e in reversed(exons)
        ]
    return GeneModel(
        gene_id=gene_id,
        exons=tuple(exons),
        intron_lengths=introns,
        reverse_strand=reverse,
    )


def make_gene_family(
    base: GeneModel,
    new_id: int,
    rng=None,
    *,
    divergence: float = 0.05,
) -> GeneModel:
    """A paralog: a copy of ``base`` with point mutations at the given rate.

    Gene families are the hard case for EST clustering — paralogs share
    long near-identical stretches but are *distinct* genes, so merging
    their ESTs is over-prediction.  Benchmarks with paralogs exercise the
    acceptance thresholds.
    """
    rng = ensure_rng(rng)
    if not 0.0 <= divergence <= 1.0:
        raise ValueError(f"divergence must be in [0, 1], got {divergence}")
    mutated = []
    for exon in base.exons:
        codes = np.frombuffer(exon, dtype=np.uint8).copy()
        flip = rng.random(len(codes)) < divergence
        # Substitute with a uniformly random *different* nucleotide.
        codes[flip] = (codes[flip] + rng.integers(1, 4, size=int(flip.sum()))) % 4
        mutated.append(codes.astype(np.uint8).tobytes())
    return GeneModel(
        gene_id=new_id,
        exons=tuple(mutated),
        intron_lengths=base.intron_lengths,
        reverse_strand=base.reverse_strand,
    )
