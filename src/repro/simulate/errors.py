"""The sequencing-error model.

"The input EST sequences contain errors due to the nature of experiments
involved in deriving and sequencing them" (§1).  Single-pass EST reads of
the paper's era carry roughly 1–3% errors, a mix of substitutions and
indels; this module injects exactly that, with independent per-position
rates, so the clustering thresholds (ψ, score ratio, band width) face the
same adversary the real software did.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import ensure_rng
from repro.util.validation import check_probability

__all__ = ["ErrorModel", "apply_errors"]


@dataclass(frozen=True)
class ErrorModel:
    """Per-base error rates.  The defaults total ~2% — typical single-pass
    EST quality after vector/quality trimming."""

    substitution_rate: float = 0.01
    insertion_rate: float = 0.005
    deletion_rate: float = 0.005

    def __post_init__(self) -> None:
        check_probability("substitution_rate", self.substitution_rate)
        check_probability("insertion_rate", self.insertion_rate)
        check_probability("deletion_rate", self.deletion_rate)
        total = self.substitution_rate + self.insertion_rate + self.deletion_rate
        if total > 0.5:
            raise ValueError(f"total error rate {total} is not a sequencing error model")

    @property
    def total_rate(self) -> float:
        return self.substitution_rate + self.insertion_rate + self.deletion_rate

    @classmethod
    def perfect(cls) -> "ErrorModel":
        return cls(0.0, 0.0, 0.0)


def apply_errors(codes: np.ndarray, model: ErrorModel, rng=None) -> np.ndarray:
    """Return a copy of ``codes`` with errors injected.

    Substitutions replace a base with a uniformly random *different* base;
    insertions add a random base after a position; deletions drop a
    position.  Events are independent per position, so the output length
    varies around the input length.
    """
    rng = ensure_rng(rng)
    codes = np.asarray(codes, dtype=np.uint8)
    if model.total_rate == 0.0 or codes.size == 0:
        return codes.copy()

    out = codes.copy()
    # Substitutions (vectorised): add 1..3 mod 4 guarantees a change.
    sub_mask = rng.random(out.size) < model.substitution_rate
    n_sub = int(sub_mask.sum())
    if n_sub:
        out[sub_mask] = (out[sub_mask] + rng.integers(1, 4, size=n_sub)) % 4

    # Indels change coordinates; build the output with numpy repeats:
    # each position is emitted 0 (deleted), 1 (kept) or 2 (kept + inserted
    # base after it) times, then inserted slots are filled randomly.
    dels = rng.random(out.size) < model.deletion_rate
    ins = rng.random(out.size) < model.insertion_rate
    repeats = np.ones(out.size, dtype=np.int64)
    repeats[dels] = 0
    # An insertion next to a deletion keeps its slot: emit on kept spots.
    repeats[ins & ~dels] = 2
    expanded = np.repeat(out, repeats)
    if expanded.size:
        # Positions that are the *second* copy of a repeated base are the
        # inserted slots.
        idx = np.repeat(np.arange(out.size), repeats)
        second_copy = np.zeros(expanded.size, dtype=bool)
        second_copy[1:] = idx[1:] == idx[:-1]
        n_ins = int(second_copy.sum())
        if n_ins:
            expanded[second_copy] = rng.integers(0, 4, size=n_ins, dtype=np.uint8)
    return expanded.astype(np.uint8)
