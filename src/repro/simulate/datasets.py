"""Benchmark dataset assembly: the synthetic stand-in for the paper's
Arabidopsis EST benchmark, with exact ground-truth clustering.

A benchmark is defined by the number of genes, the per-gene expression
distribution (real EST libraries are heavily skewed: a few genes dominate),
read parameters and error model, plus optional hard cases (paralog
families, alternatively-spliced isoforms).  The true clustering is one
cluster per gene — ESTs of all isoforms of a gene belong together, exactly
the definition in §1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sequence.collection import EstCollection
from repro.simulate.errors import ErrorModel
from repro.simulate.est_sampler import ReadParams, SampledEst, sample_gene_ests
from repro.simulate.genes import GeneModel, make_gene, make_gene_family
from repro.simulate.transcripts import (
    Transcript,
    alternative_transcripts,
    primary_transcript,
    with_polya,
)
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

__all__ = ["BenchmarkParams", "EstBenchmark", "make_benchmark"]


@dataclass(frozen=True)
class BenchmarkParams:
    """Everything that defines a synthetic benchmark."""

    n_genes: int = 20
    mean_ests_per_gene: float = 10.0
    expression_skew: float = 1.2  # Zipf-like exponent; 0 = uniform
    read_params: ReadParams = field(default_factory=ReadParams)
    error_model: ErrorModel = field(default_factory=ErrorModel)
    paralog_fraction: float = 0.0  # fraction of genes that get a paralog copy
    paralog_divergence: float = 0.05
    alt_splicing_fraction: float = 0.0  # fraction of genes with extra isoforms
    polya_tail_length: int = 0  # poly-A appended to every transcript
    n_exons_range: tuple[int, int] = (2, 5)
    exon_len_range: tuple[int, int] = (200, 500)

    def __post_init__(self) -> None:
        check_positive("n_genes", self.n_genes)
        check_positive("mean_ests_per_gene", self.mean_ests_per_gene)

    @classmethod
    def small(cls, n_genes: int = 8, mean_ests_per_gene: float = 6.0) -> "BenchmarkParams":
        """A fast test/demo regime: short reads, short genes."""
        return cls(
            n_genes=n_genes,
            mean_ests_per_gene=mean_ests_per_gene,
            read_params=ReadParams.short_reads(),
            n_exons_range=(1, 3),
            exon_len_range=(80, 200),
        )


@dataclass
class EstBenchmark:
    """A generated benchmark: sequences plus exact ground truth."""

    params: BenchmarkParams
    collection: EstCollection
    reads: list[SampledEst]
    genes: list[GeneModel]
    transcripts: dict[int, list[Transcript]]

    @property
    def n_ests(self) -> int:
        return self.collection.n_ests

    @property
    def true_labels(self) -> list[int]:
        """Gene id per EST — the correct clustering."""
        return [read.gene_id for read in self.reads]

    def true_clusters(self) -> list[list[int]]:
        by_gene: dict[int, list[int]] = {}
        for i, read in enumerate(self.reads):
            by_gene.setdefault(read.gene_id, []).append(i)
        return [members for _gid, members in sorted(by_gene.items())]


def make_benchmark(params: BenchmarkParams, rng=None) -> EstBenchmark:
    """Generate a benchmark dataset.

    Expression levels follow a normalised power law over gene ranks
    (exponent ``expression_skew``), scaled so the expected total equals
    ``n_genes × mean_ests_per_gene``; every gene gets at least two reads
    so each true cluster is non-trivial.
    """
    rng = ensure_rng(rng)
    genes: list[GeneModel] = []
    next_id = 0
    for _ in range(params.n_genes):
        gene = make_gene(
            next_id,
            rng,
            n_exons_range=params.n_exons_range,
            exon_len_range=params.exon_len_range,
        )
        genes.append(gene)
        next_id += 1
        if rng.random() < params.paralog_fraction:
            genes.append(
                make_gene_family(
                    gene, next_id, rng, divergence=params.paralog_divergence
                )
            )
            next_id += 1

    transcripts: dict[int, list[Transcript]] = {}
    for gene in genes:
        forms = [primary_transcript(gene)]
        if rng.random() < params.alt_splicing_fraction:
            forms.extend(alternative_transcripts(gene, rng))
        if params.polya_tail_length:
            forms = [with_polya(t, params.polya_tail_length) for t in forms]
        transcripts[gene.gene_id] = forms

    # Skewed expression: weight ∝ rank^-skew over a random gene order.
    order = rng.permutation(len(genes))
    ranks = np.empty(len(genes))
    ranks[order] = np.arange(1, len(genes) + 1)
    weights = ranks ** (-params.expression_skew)
    weights /= weights.sum()
    total_reads = int(round(params.mean_ests_per_gene * params.n_genes))
    counts = np.maximum(2, rng.multinomial(total_reads, weights))

    reads: list[SampledEst] = []
    for gene, count in zip(genes, counts):
        reads.extend(
            sample_gene_ests(
                transcripts[gene.gene_id],
                int(count),
                params.read_params,
                params.error_model,
                rng,
            )
        )
    # Shuffle so EST ids carry no gene signal.
    perm = rng.permutation(len(reads))
    reads = [reads[i] for i in perm]

    collection = EstCollection(
        [read.codes for read in reads],
        names=[f"EST{i}_g{read.gene_id}" for i, read in enumerate(reads)],
    )
    return EstBenchmark(
        params=params,
        collection=collection,
        reads=reads,
        genes=genes,
        transcripts=transcripts,
    )
