"""Transcription: gene → mRNA, including alternative splice forms.

The paper lists "detection of alternative splicing" as additional
processing that can improve quality (§3.3) and as future work (§5).  To
exercise that extension, the simulator can emit alternative transcripts —
mRNAs with some internal exons skipped — for a fraction of genes.  ESTs
from different splice forms of one gene still belong to one cluster (one
gene, one cluster), which is precisely what makes them interesting: they
overlap in shared exons but disagree across skipped ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulate.genes import GeneModel
from repro.util.rng import ensure_rng

__all__ = ["Transcript", "primary_transcript", "alternative_transcripts", "with_polya"]


@dataclass(frozen=True)
class Transcript:
    """One mRNA isoform: the gene it came from and the exons retained."""

    gene_id: int
    isoform_id: int
    exon_mask: tuple[bool, ...]
    sequence_bytes: bytes

    @property
    def sequence(self) -> np.ndarray:
        return np.frombuffer(self.sequence_bytes, dtype=np.uint8)

    @property
    def length(self) -> int:
        return len(self.sequence_bytes)


def primary_transcript(gene: GeneModel) -> Transcript:
    """The full-exon mRNA."""
    return Transcript(
        gene_id=gene.gene_id,
        isoform_id=0,
        exon_mask=tuple(True for _ in gene.exons),
        sequence_bytes=b"".join(gene.exons),
    )


def with_polya(transcript: Transcript, length: int) -> Transcript:
    """The transcript with a poly-A tail appended (mature mRNAs are
    polyadenylated; reads taken near the 3' end inherit the tail, which is
    why real EST pipelines trim poly-A before clustering —
    :mod:`repro.sequence.preprocess`)."""
    if length < 0:
        raise ValueError(f"tail length must be >= 0, got {length}")
    if length == 0:
        return transcript
    return Transcript(
        gene_id=transcript.gene_id,
        isoform_id=transcript.isoform_id,
        exon_mask=transcript.exon_mask,
        sequence_bytes=transcript.sequence_bytes + bytes([0]) * length,  # A = 0
    )


def alternative_transcripts(
    gene: GeneModel,
    rng=None,
    *,
    max_isoforms: int = 2,
    skip_prob: float = 0.35,
) -> list[Transcript]:
    """Exon-skipping isoforms (terminal exons are always retained).

    Returns between 0 and ``max_isoforms`` additional transcripts; genes
    with fewer than 3 exons cannot skip and return an empty list.
    """
    rng = ensure_rng(rng)
    if gene.n_exons < 3 or max_isoforms <= 0:
        return []
    isoforms: list[Transcript] = []
    seen = {tuple(True for _ in gene.exons)}
    for iso in range(1, max_isoforms + 1):
        mask = [True] * gene.n_exons
        for k in range(1, gene.n_exons - 1):
            if rng.random() < skip_prob:
                mask[k] = False
        key = tuple(mask)
        if key in seen:
            continue
        seen.add(key)
        seq = b"".join(e for e, keep in zip(gene.exons, mask) if keep)
        isoforms.append(
            Transcript(
                gene_id=gene.gene_id,
                isoform_id=iso,
                exon_mask=key,
                sequence_bytes=seq,
            )
        )
    return isoforms
