"""Ablation — the master's cluster-aware pair selection (§3.3).

"A pair is added only if the corresponding ESTs are in two different
clusters, eliminating unnecessary work."  With selection off, every
generated pair is aligned; with it on, alignment volume collapses to
roughly the number of genuine merge decisions.  This is the single
largest work-reduction mechanism in the system and the gap between the
'generated' and 'processed' curves of Fig. 7.
"""

from __future__ import annotations

from _common import bench_config, dataset, dataset_gst, format_table
from repro.baselines import allpairs_cluster

SIZES = [10_051, 30_000, 60_018]


def test_skipping_ablation(benchmark, paper_table):
    cfg = bench_config()
    rows = []
    for n in SIZES:
        bench = dataset(n)
        gst = dataset_gst(n)
        on = allpairs_cluster(
            bench.collection, cfg, order="best_first", skip_clustered=True, gst=gst
        )
        off = allpairs_cluster(
            bench.collection, cfg, order="best_first", skip_clustered=False, gst=gst
        )
        assert on.result.clusters == off.result.clusters
        a_on = on.result.counters.pairs_processed
        a_off = off.result.counters.pairs_processed
        cells_on = on.result.counters.dp_cells
        cells_off = off.result.counters.dp_cells
        rows.append(
            [
                bench.n_ests,
                a_on,
                a_off,
                f"{a_off / max(1, a_on):.1f}x",
                f"{cells_off / max(1, cells_on):.1f}x",
            ]
        )

    lines = format_table(
        "Ablation — cluster-aware pair skipping (alignments and DP cells "
        "with selection on vs off; identical final clusters)",
        ["ESTs", "aligned (on)", "aligned (off)", "alignment ratio", "DP-cell ratio"],
        rows,
    )
    paper_table("ablation_skipping", lines)

    for row in rows:
        assert row[2] > 3 * row[1], f"skipping saved too little: {row}"

    small = dataset(SIZES[0])
    benchmark.pedantic(
        lambda: allpairs_cluster(
            small.collection,
            cfg,
            order="best_first",
            skip_clustered=True,
            gst=dataset_gst(SIZES[0]),
        ),
        rounds=1,
        iterations=1,
    )
