"""Figure 6(a) — run-time vs number of processors, four dataset sizes.

The paper plots total run-time against p ∈ [8, 128] for n ∈ {10,000;
20,000; 40,000; 81,414} and shows near-linear scaling that flattens
slightly at high processor counts (fixed costs and master latency stop
shrinking).  Reproduced on the simulated machine with the scaled dataset
family; the assertions pin the qualitative shape: monotone decrease in p,
larger datasets strictly slower, and healthy mid-range parallel
efficiency.
"""

from __future__ import annotations

from _common import bench_config, dataset, dataset_gst, format_table
from repro.parallel import simulate_clustering

SIZES = [10_000, 20_000, 40_000, 81_414]
PROCESSORS = [4, 8, 16, 32, 64]


def test_fig6a_runtime_vs_processors(benchmark, paper_table):
    cfg = bench_config()
    table: dict[int, dict[int, float]] = {}
    for n in SIZES:
        bench = dataset(n)
        gst = dataset_gst(n)
        table[n] = {}
        for p in PROCESSORS:
            rep = simulate_clustering(bench.collection, cfg, n_processors=p, gst=gst)
            table[n][p] = rep.total_time

    rows = []
    for p in PROCESSORS:
        rows.append([p] + [f"{table[n][p]:.4f}" for n in SIZES])
    lines = format_table(
        "Fig 6a — run-time vs processors (virtual s; scaled sizes "
        + ", ".join(f"{n:,}→{dataset(n).n_ests}" for n in SIZES)
        + ")",
        ["p"] + [f"n={n:,}" for n in SIZES],
        rows,
    )
    paper_table("fig6a_scaling", lines)

    for n in SIZES:
        times = [table[n][p] for p in PROCESSORS]
        assert all(a > b for a, b in zip(times, times[1:])), f"non-monotone at n={n}"
        # Mid-range efficiency: 4 -> 16 processors at least 2x faster.
        assert times[0] / times[2] > 2.0, f"poor scaling at n={n}"
    for p in PROCESSORS:
        assert table[SIZES[0]][p] < table[SIZES[-1]][p], "size ordering violated"

    small = dataset(SIZES[0])
    benchmark.pedantic(
        lambda: simulate_clustering(
            small.collection, cfg, n_processors=8, gst=dataset_gst(SIZES[0])
        ),
        rounds=1,
        iterations=1,
    )
