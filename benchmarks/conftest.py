"""Benchmark-suite plumbing.

Each bench regenerates one of the paper's tables/figures and registers the
rendered table with the ``paper_table`` fixture; the tables are then
printed in the terminal summary (so they survive pytest's output capture
and land in ``bench_output.txt``) and written to ``benchmarks/results/``.

This conftest also implements the perf-regression gate CI runs on
``bench_micro``:

- ``--bench-save PATH`` writes the run's per-test median timings as JSON;
- ``--bench-compare PATH`` reads a previously saved baseline and fails the
  run when any shared benchmark's median slowed down by more than
  ``--bench-fail-ratio`` (default 1.5×).

Run it locally with::

    python -m pytest benchmarks/bench_micro.py --bench-compare BENCH_micro.json
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from _common import bench_env, save_table

_TABLES: list[tuple[str, list[str]]] = []

BASELINE_SCHEMA = "pace-bench-baseline/1"


def pytest_addoption(parser):
    group = parser.getgroup("perf-gate", "benchmark regression gate")
    group.addoption(
        "--bench-save",
        type=Path,
        default=None,
        metavar="PATH",
        help="write this run's median benchmark timings as a baseline JSON",
    )
    group.addoption(
        "--bench-compare",
        type=Path,
        default=None,
        metavar="PATH",
        help="compare median timings against a baseline JSON and fail the "
             "run on regressions",
    )
    group.addoption(
        "--bench-fail-ratio",
        type=float,
        default=1.5,
        metavar="R",
        help="fail when current_median / baseline_median exceeds R "
             "(default 1.5)",
    )


def _collect_medians(config) -> dict[str, float]:
    """Per-test median seconds from the pytest-benchmark session."""
    session = getattr(config, "_benchmarksession", None)
    if session is None:
        return {}
    out: dict[str, float] = {}
    for bench in session.benchmarks:
        stats = getattr(bench, "stats", None)
        median = getattr(getattr(stats, "stats", stats), "median", None)
        if median is not None:
            out[bench.name] = float(median)
    return out


@pytest.hookimpl(trylast=True)
def pytest_sessionfinish(session, exitstatus):
    config = session.config
    save = config.getoption("--bench-save")
    compare = config.getoption("--bench-compare")
    if save is None and compare is None:
        return
    medians = _collect_medians(config)

    if compare is not None:
        baseline = json.loads(Path(compare).read_text())
        if baseline.get("schema") != BASELINE_SCHEMA:
            raise pytest.UsageError(
                f"{compare}: not a {BASELINE_SCHEMA} baseline"
            )
        ratio = config.getoption("--bench-fail-ratio")
        lines = [f"perf gate vs {compare} (fail ratio {ratio:.2f}x):"]
        regressions = 0
        for name, base in baseline["medians"].items():
            current = medians.get(name)
            if current is None:
                lines.append(f"  {name}: SKIPPED (not run)")
                continue
            rel = current / base if base > 0 else float("inf")
            verdict = "ok"
            if rel > ratio:
                verdict = "REGRESSION"
                regressions += 1
            lines.append(
                f"  {name}: {base * 1e3:.2f}ms -> {current * 1e3:.2f}ms "
                f"({rel:.2f}x) {verdict}"
            )
        print("\n" + "\n".join(lines))
        if regressions and session.exitstatus == 0:
            print(f"perf gate FAILED: {regressions} regression(s)")
            session.exitstatus = 1

    if save is not None:
        # "env" is descriptive provenance only — the compare path above
        # iterates baseline["medians"] and never looks at it.
        save.write_text(
            json.dumps(
                {"schema": BASELINE_SCHEMA, "medians": medians,
                 "env": bench_env()},
                indent=2,
            )
            + "\n"
        )
        print(f"\nwrote benchmark baseline ({len(medians)} medians) to {save}")


@pytest.fixture(scope="session")
def paper_table():
    """Callable ``(name, lines)`` recording one regenerated table."""

    def record(name: str, lines: list[str]) -> None:
        _TABLES.append((name, lines))
        save_table(name, lines)

    return record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("REPRODUCED PAPER TABLES AND FIGURES")
    terminalreporter.write_line("=" * 72)
    for _name, lines in _TABLES:
        terminalreporter.write_line("")
        for line in lines:
            terminalreporter.write_line(line)
