"""Benchmark-suite plumbing.

Each bench regenerates one of the paper's tables/figures and registers the
rendered table with the ``paper_table`` fixture; the tables are then
printed in the terminal summary (so they survive pytest's output capture
and land in ``bench_output.txt``) and written to ``benchmarks/results/``.
"""

from __future__ import annotations

import pytest

from _common import save_table

_TABLES: list[tuple[str, list[str]]] = []


@pytest.fixture(scope="session")
def paper_table():
    """Callable ``(name, lines)`` recording one regenerated table."""

    def record(name: str, lines: list[str]) -> None:
        _TABLES.append((name, lines))
        save_table(name, lines)

    return record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("REPRODUCED PAPER TABLES AND FIGURES")
    terminalreporter.write_line("=" * 72)
    for _name, lines in _TABLES:
        terminalreporter.write_line("")
        for line in lines:
            terminalreporter.write_line(line)
