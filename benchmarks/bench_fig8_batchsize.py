"""Figure 8 — run-time vs batchsize (20,000 ESTs, p = 32).

The paper's Fig. 8 shows a U-shape: "A small batchsize results in more
communications between the master and the slave processors.  With a large
batchsize, the slave processors become less responsive to pair
generation, thus not taking advantage of the latest clustering
information" — optimum around 40–60 pairs.

Both mechanisms are real in the simulation: message count falls with
batchsize (latency amortisation) while speculative alignments rise
(staleness), so virtual time exhibits the same tension.  The scaled
regime shifts the optimum location (everything is ~100× smaller), so the
assertions pin the two monotone mechanisms plus the existence of an
interior optimum rather than the literal 40–60 window.
"""

from __future__ import annotations

from _common import bench_config, dataset, dataset_gst, format_table
from repro.parallel import simulate_clustering

BATCHSIZES = [2, 5, 10, 20, 40, 80]
PAPER_N = 20_000
P = 32


def test_fig8_batchsize_sweep(benchmark, paper_table):
    bench = dataset(PAPER_N)
    gst = dataset_gst(PAPER_N)

    rows = []
    times, messages, aligned = [], [], []
    for b in BATCHSIZES:
        cfg = bench_config(batchsize=b)
        rep = simulate_clustering(bench.collection, cfg, n_processors=P, gst=gst)
        times.append(rep.total_time)
        messages.append(rep.messages_exchanged)
        aligned.append(rep.result.counters.pairs_processed)
        rows.append(
            [b, f"{rep.total_time:.4f}", rep.messages_exchanged, aligned[-1]]
        )
    lines = format_table(
        f"Fig 8 — batchsize sweep ({bench.n_ests} ESTs, p={P}, virtual s)",
        ["batchsize", "total time", "messages", "pairs aligned"],
        rows,
    )
    paper_table("fig8_batchsize", lines)

    # Mechanism 1: messages shrink as batchsize grows.
    assert all(a >= b for a, b in zip(messages, messages[1:])), messages
    # Mechanism 2: speculative alignment work grows with batchsize
    # (staleness): the largest batch aligns more than the smallest.
    assert aligned[-1] > aligned[0], aligned
    # The optimum is interior or at least not at the far-large end: the
    # biggest batch must not be the fastest configuration.
    assert min(times) < times[-1], times

    benchmark.pedantic(
        lambda: simulate_clustering(
            bench.collection, bench_config(batchsize=10), n_processors=P, gst=gst
        ),
        rounds=1,
        iterations=1,
    )
