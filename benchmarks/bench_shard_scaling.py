"""Shard-scaling sweep on the simulated machine.

Sweeps the master shard count (1 / 2 / 4 / 8 by default) over the
30k-scaled dataset under two cost regimes:

- ``paper``        — the default :class:`~repro.parallel.cost_model.CostModel`
  (slave work dominates; sharding should be roughly neutral, its sync
  overhead visible but small);
- ``master_bound`` — inflated master-side costs (absorption, bookkeeping
  and message handling dominate), the regime ROADMAP 2 targets, where a
  single master serialises the run and splitting WORKBUF + union-find
  across shards buys real makespan.

Every run executes on the discrete-event simulator, so every cell is
deterministic: makespan, the per-shard busy split, sync-round count and
unions exchanged are functions of the code alone.  Clusters are asserted
identical across shard counts on both regimes — sharding shapes *where*
master work happens, never *what* the partition is.

Usage::

    python benchmarks/bench_shard_scaling.py \
        --out-md shard_scaling.md --out-jsonl shard_scaling.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from _common import bench_config, bench_env, dataset, dataset_gst, format_table, save_table
from repro.parallel.cost_model import CostModel
from repro.parallel.runtime import simulate_clustering

SCHEMA = "pace-shard-scaling/1"

#: The cost regimes each shard count is swept under.
REGIMES: dict[str, CostModel] = {
    "paper": CostModel(),
    "master_bound": CostModel(
        master_msg_cost=200e-6,
        master_pair_cost=30e-6,
        master_result_cost=20e-6,
        dp_cell_cost=0.002e-6,
        align_overhead=2e-6,
        pair_gen_cost=0.5e-6,
    ),
}


def run_sweep(args) -> tuple[list[dict], list[str], int]:
    """All (regime, shard-count) cells.  Returns (records, markdown
    lines, failure count)."""
    col = dataset(args.dataset).collection
    gst = dataset_gst(args.dataset)
    config = bench_config()
    from dataclasses import replace

    config = replace(config, shard_sync_interval=args.sync_interval)
    shard_counts = sorted(set(args.shards))
    records: list[dict] = []
    md = [
        "# Shard-scaling sweep",
        "",
        f"Simulated machine, {args.slaves} slaves, {col.n_ests} ESTs; "
        "virtual clock — every number is deterministic.  `speedup` is "
        "the single-master makespan over this cell's.",
        "",
    ]
    failures = 0
    for regime, cost_model in REGIMES.items():
        base_makespan = None
        base_clusters = None
        cells = []
        for n_shards in shard_counts:
            rep = simulate_clustering(
                col,
                config,
                n_processors=args.slaves + 1,
                gst=gst,
                cost_model=cost_model,
                master_shards=n_shards,
            )
            clusters = sorted(tuple(sorted(c)) for c in rep.result.clusters)
            if base_clusters is None:
                base_clusters = clusters
            elif clusters != base_clusters:
                print(
                    f"FAIL: {n_shards} shards changed the partition under "
                    f"{regime} — sharding must be output-invariant",
                    file=sys.stderr,
                )
                failures += 1
            if base_makespan is None:
                base_makespan = rep.total_time
            cell = {
                "regime": regime,
                "n_shards": n_shards,
                "makespan": rep.total_time,
                "speedup": base_makespan / rep.total_time,
                "max_shard_busy_fraction": rep.max_shard_busy_fraction,
                "sync_rounds": rep.sync_rounds,
                "unions_exchanged": rep.unions_exchanged,
                "pairs_pruned": rep.pairs_pruned,
            }
            cells.append(cell)
            records.append(cell)
        md.append(f"## {regime}")
        md.append("")
        md.append(
            "| shards | makespan (vs) | speedup | max shard busy | "
            "syncs | unions | pruned |"
        )
        md.append("|---|---|---|---|---|---|---|")
        for c in cells:
            md.append(
                f"| {c['n_shards']} | {c['makespan']:.4f} "
                f"| {c['speedup']:.2f}x | "
                f"{c['max_shard_busy_fraction'] * 100:.1f}% "
                f"| {c['sync_rounds']} | {c['unions_exchanged']} "
                f"| {c['pairs_pruned']} |"
            )
        md.append("")
    return records, md, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", type=int, default=30_000,
                        help="scaled dataset size in ESTs (default 30000)")
    parser.add_argument("--slaves", type=int, default=16,
                        help="slave count (default 16)")
    parser.add_argument("--shards", type=int, nargs="+",
                        default=[1, 2, 4, 8],
                        help="shard counts to sweep (default 1 2 4 8)")
    parser.add_argument("--sync-interval", type=float, default=1e-3,
                        help="cross-shard sync cadence in virtual seconds "
                             "(default 1e-3)")
    parser.add_argument("--out-md", type=Path, default=None,
                        help="write the markdown scorecard here")
    parser.add_argument("--out-jsonl", type=Path, default=None,
                        help="write one JSON record per cell here")
    args = parser.parse_args(argv)

    records, md, failures = run_sweep(args)

    headers = ["regime", "shards", "makespan", "speedup", "syncs", "unions"]
    rows = [
        [r["regime"], str(r["n_shards"]), f"{r['makespan']:.4f}",
         f"{r['speedup']:.2f}x", str(r["sync_rounds"]),
         str(r["unions_exchanged"])]
        for r in records
    ]
    lines = format_table("Shard-scaling sweep (virtual seconds)", headers, rows)
    print("\n".join(lines))
    save_table("bench_shard_scaling", lines)

    if args.out_md is not None:
        args.out_md.write_text("\n".join(md) + "\n")
    if args.out_jsonl is not None:
        env = bench_env()
        with args.out_jsonl.open("w") as fh:
            for rec in records:
                fh.write(json.dumps({"schema": SCHEMA, **rec, "env": env}) + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
