"""GST construction strategies — the §3.1 design-space measurement.

The paper chooses bucket-wise character-scan construction over (a)
sequential linear-time algorithms (unusable per bucket: a bucket does not
hold all suffixes of any string) and (b) PRAM suffix-tree algorithms
(unrealistic memory model).  This bench measures the Python costs of the
three construction strategies implemented here on one dataset:

- Ukkonen (sequential linear-time; the whole-input baseline),
- the paper-faithful bucket trie (what each slave would run),
- the enhanced suffix array (this repo's production engine).

All three describe the same tree — the structural identity is enforced by
tests — so this is purely a constant-factor comparison in one host
language.
"""

from __future__ import annotations

import time

from _common import dataset, format_table
from repro.suffix import NaiveGst, SuffixArrayGst
from repro.suffix.ukkonen import build_ukkonen

PAPER_N = 10_051


def test_construction_comparison(benchmark, paper_table):
    bench = dataset(PAPER_N)
    col = bench.collection
    text, _starts = col.sa_text()

    timings = {}
    t0 = time.perf_counter()
    build_ukkonen(text)
    timings["ukkonen (sequential)"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    NaiveGst.build(col, w=6)
    timings["bucket trie (paper §3.1)"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    SuffixArrayGst.build(col)
    timings["enhanced suffix array"] = time.perf_counter() - t0

    rows = [[name, f"{secs:.2f}s"] for name, secs in timings.items()]
    lines = format_table(
        f"GST construction strategies ({col.n_ests} ESTs, "
        f"{2 * col.total_chars:,} suffix characters incl. reverse strands)",
        ["strategy", "wall time"],
        rows,
    )
    paper_table("construction", lines)

    # The vectorised engine must beat both pointer-chasing builds in
    # Python — the repro-feasibility argument of DESIGN.md §2.
    assert timings["enhanced suffix array"] < timings["ukkonen (sequential)"]
    assert timings["enhanced suffix array"] < timings["bucket trie (paper §3.1)"]

    benchmark.pedantic(
        SuffixArrayGst.build, args=(col,), rounds=1, iterations=1
    )
