"""Table 3 — time spent in each component vs processor count.

Paper's Table 3 (20,000 ESTs):

    p    Partitioning  GST construction  Sorting  Alignment  Total
    8    3             180               5        42         230
    ...
    128  0.5           11                0.5      5          17

i.e. every component scales ~1/p, GST construction dominates at this input
size, and the totals shrink near-linearly.  Reproduced on the simulated
machine (virtual seconds; the real algorithm runs underneath) with the
scaled 20,000-EST stand-in.
"""

from __future__ import annotations

from _common import bench_config, dataset, dataset_gst, format_table, save_telemetry
from repro.core.results import COMPONENT_ORDER
from repro.parallel import simulate_clustering
from repro.telemetry import Telemetry, validate_records, snapshot_records

PROCESSORS = [8, 16, 32, 64, 128]
PAPER_N = 20_000


def test_table3_components(benchmark, paper_table):
    bench = dataset(PAPER_N)
    gst = dataset_gst(PAPER_N)
    cfg = bench_config()

    rows = []
    totals = {}
    for p in PROCESSORS:
        tel = Telemetry()
        rep = simulate_clustering(
            bench.collection, cfg, n_processors=p, gst=gst, telemetry=tel
        )
        snapshot = rep.result.telemetry
        assert not validate_records(snapshot_records(snapshot))
        save_telemetry(f"table3_components_p{p}", snapshot)
        t = rep.result.timings
        rows.append(
            [p]
            + [f"{t.get(name):.4f}" for name in COMPONENT_ORDER]
            + [f"{rep.total_time:.4f}", f"{rep.master_busy_fraction * 100:.2f}%"]
        )
        totals[p] = rep.total_time

    lines = format_table(
        f"Table 3 — component breakdown, scaled {PAPER_N:,}-EST stand-in "
        f"(virtual seconds on the simulated machine)",
        ["p"] + COMPONENT_ORDER + ["total", "master busy"],
        rows,
    )
    paper_table("table3_components", lines)

    # Shape assertions from the paper's table.
    assert totals[8] > totals[32] > totals[128], "no parallel scaling"
    speedup = totals[8] / totals[128]
    assert speedup > 4, f"8->128 processors sped up only {speedup:.1f}x"

    benchmark.pedantic(
        lambda: simulate_clustering(bench.collection, cfg, n_processors=8, gst=gst),
        rounds=1,
        iterations=1,
    )
