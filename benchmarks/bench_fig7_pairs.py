"""Figure 7 — promising pairs generated / processed / accepted vs data size.

The paper's Fig. 7 is the evidence for the central work-reduction claim:
the number of pairs on which alignment is actually run ("processed") is a
small fraction of the pairs generated, because best-first ordering merges
clusters early and the master's selection then discards most of the
stream; "accepted" tracks just below processed.  Real (non-simulated)
sequential runs, counters straight from the pipeline.
"""

from __future__ import annotations

from _common import bench_config, dataset, format_table
from repro.core import PaceClusterer

SIZES = [10_000, 20_000, 40_000, 60_018, 81_414]


def test_fig7_pair_counts(benchmark, paper_table):
    cfg = bench_config()
    rows = []
    fractions = []
    for n in SIZES:
        bench = dataset(n)
        result = PaceClusterer(cfg).cluster(bench.collection)
        c = result.counters
        frac = c.pairs_processed / max(1, c.pairs_generated)
        fractions.append(frac)
        rows.append(
            [
                bench.n_ests,
                c.pairs_generated,
                c.pairs_processed,
                c.pairs_accepted,
                f"{100 * frac:.1f}%",
            ]
        )
    lines = format_table(
        "Fig 7 — pair flow vs data size (sequential pipeline)",
        ["ESTs", "generated", "processed", "accepted", "processed/generated"],
        rows,
    )
    paper_table("fig7_pairs", lines)

    # Shape: generated >> processed >= accepted at every size, and the
    # processed fraction stays small as n grows (the curve separation in
    # the paper's figure).
    for row, frac in zip(rows, fractions):
        assert row[1] >= row[2] >= row[3]
        assert frac < 0.30

    small = dataset(SIZES[0])
    benchmark.pedantic(
        lambda: PaceClusterer(cfg).cluster(small.collection).counters,
        rounds=1,
        iterations=1,
    )

    # Engine parity at the smallest size: the vectorised pair generator
    # must leave every Fig. 7 counter (and the partition) unchanged.
    vec_cfg = bench_config(pair_engine="vector")
    res_s = PaceClusterer(cfg).cluster(small.collection)
    res_v = PaceClusterer(vec_cfg).cluster(small.collection)
    assert res_v.counters == res_s.counters
    assert res_v.labels() == res_s.labels()
