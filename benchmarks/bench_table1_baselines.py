"""Table 1 — run-times and memory feasibility of the comparator tools.

Paper's Table 1 (one IBM SP processor, 512 MB):

    Input   TIGR Assembler   Phrap     CAP3
    50,000  X                23 mins   5 hrs
    81,414  X                X         X

Two reproductions are combined:

1. the calibrated scaling-law models of the three closed tools, evaluated
   at the paper's sizes (regenerates the historical row verbatim);
2. the *mechanism* behind the 'X' entries, measured on our own substrate
   at reproduction scale: the materialise-all-pairs baseline's peak pair
   buffer grows ~quadratically with input size while PaCE's on-demand
   stream keeps a linear lset footprint — the memory wall is reproduced,
   not asserted.
"""

from __future__ import annotations

import time

from _common import bench_config, dataset, dataset_gst, format_table
from repro.baselines import MEMORY_BUDGET_MB, TABLE1_TOOLS, allpairs_cluster
from repro.core import PaceClusterer
from repro.metrics.memory import MemoryLedger, MemoryModel

PAPER_SIZES = [50_000, 81_414]
SCALED_SIZES = [10_051, 30_000, 60_018, 81_414]  # -> ~100..830 ESTs


def test_table1_historical_row(benchmark, paper_table):
    """Regenerate the literal Table 1 from the calibrated tool models."""
    rows = []
    for n in PAPER_SIZES:
        rows.append([f"{n:,}"] + [tool.table1_cell(n) for tool in TABLE1_TOOLS])
    lines = format_table(
        "Table 1 — comparator tools at paper scale (512 MB budget; modelled)",
        ["Input"] + [t.name for t in TABLE1_TOOLS],
        rows,
    )
    paper_table("table1_historical", lines)
    benchmark(lambda: [t.table1_cell(81_414) for t in TABLE1_TOOLS])


def test_table1_memory_mechanism(benchmark, paper_table):
    """Measure the materialised-pair memory wall vs PaCE's linear lsets."""
    model = MemoryModel()
    rows = []
    for n in SCALED_SIZES:
        bench = dataset(n)
        gst = dataset_gst(n)
        cfg = bench_config()

        t0 = time.perf_counter()
        pace = PaceClusterer(cfg).cluster(bench.collection)
        pace_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        base = allpairs_cluster(bench.collection, cfg, gst=gst)
        base_time = time.perf_counter() - t0

        pace_mem = MemoryLedger(model=model)
        pace_mem.set_peak("lset_entries", pace.gen_stats.peak_lset_entries)
        pace_mem.set_peak("pairs", cfg.workbuf_capacity)
        base_mem = base.memory

        rows.append(
            [
                bench.n_ests,
                f"{pace_time:.1f}s",
                f"{pace_mem.peak_bytes() / 1024:.0f} KB",
                f"{base_time:.1f}s",
                base.peak_pairs_buffered,
                f"{base_mem.peak_bytes() / 1024:.0f} KB",
            ]
        )
    lines = format_table(
        "Table 1 mechanism — PaCE on-demand vs materialise-all-pairs "
        f"(reproduction scale; paper budget was {MEMORY_BUDGET_MB:.0f} MB)",
        ["ESTs", "PaCE time", "PaCE peak mem", "AllPairs time", "pairs buffered", "AllPairs peak mem"],
        rows,
    )
    paper_table("table1_mechanism", lines)
    # Benchmark target: the PaCE pipeline on the smallest dataset.
    small = dataset(10_051)
    benchmark.pedantic(
        lambda: PaceClusterer(bench_config()).cluster(small.collection),
        rounds=1,
        iterations=1,
    )
