"""Dispatch-policy tournament on the simulated machine.

Runs every dispatch policy (``paper``, ``jbsq``, ``pace`` — see
:mod:`repro.parallel.dispatch`) across a suite of *skewed* workloads
where work-allocation actually matters:

- ``giant_gene``  — one massively over-expressed gene dominates the pair
  stream (the classic single-hot-cluster skew);
- ``zipf``        — Zipf-distributed cluster sizes (many small, few huge);
- ``hetero``      — a uniform dataset on a *heterogeneous* fleet: one
  slave runs 3x slower than its peers
  (:attr:`~repro.parallel.cost_model.CostModel.slave_speed_factors`).

Every run executes on the discrete-event simulator, so each cell of the
scorecard is deterministic: makespan and the p50/p99/p999 of the ``rtt``
work-unit latency stage are functions of the code alone, which is what
lets the nightly job diff them against a committed reference with a tight
threshold (``pace-est diff tests/data/reference_dispatch_trace.jsonl``).

Clusters are asserted identical across policies on every workload — a
dispatch policy shapes *when* pairs flow, never *what* the partition is.

Usage::

    python benchmarks/bench_dispatch_tournament.py \
        --out-md scorecard.md --out-jsonl scorecard.jsonl \
        --trace-out dispatch_sim.jsonl
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

import numpy as np

from _common import bench_config, bench_env, format_table, save_table
from repro.parallel.cost_model import CostModel
from repro.parallel.runtime import simulate_clustering
from repro.simulate import BenchmarkParams, make_benchmark
from repro.simulate.datasets import ReadParams
from repro.telemetry import Telemetry, export_jsonl

SCHEMA = "pace-dispatch-tournament/1"

#: The contenders.  ``paper`` stays the reproduction-fidelity default;
#: the tournament measures what the alternatives buy on skew.
POLICIES = ("paper", "jbsq:2", "pace")

#: Quantiles of the ``rtt`` (work-unit) latency stage each cell reports.
RTT_QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


def _params(skew: float, n_genes: int, mean: float) -> BenchmarkParams:
    return BenchmarkParams(
        n_genes=n_genes,
        mean_ests_per_gene=mean,
        expression_skew=skew,
        read_params=ReadParams.short_reads(),
        n_exons_range=(1, 3),
        exon_len_range=(80, 200),
    )


def workloads(n_slaves: int) -> list[dict]:
    """The skewed suite.  Each entry: name, dataset params, dataset seed,
    and the fleet's cost model."""
    # One slave at 2x cost: the straggler every pace-aware policy exists
    # for.  Slow rank last so bucket assignment (greedy by size onto
    # rank order) doesn't conflate skew sources.  2x, not higher: setup
    # cost scales with the factor too, and a much slower slave joins so
    # late it never participates in the steady-state loop at this scale.
    hetero = CostModel(
        slave_speed_factors=(1.0,) * (n_slaves - 1) + (2.0,)
    )
    return [
        {
            "name": "giant_gene",
            "params": _params(skew=3.0, n_genes=20, mean=8.0),
            "seed": 101,
            "cost_model": CostModel(),
        },
        {
            "name": "zipf",
            "params": _params(skew=1.8, n_genes=30, mean=6.0),
            "seed": 202,
            "cost_model": CostModel(),
        },
        {
            "name": "hetero",
            "params": _params(skew=1.2, n_genes=24, mean=10.0),
            "seed": 303,
            "cost_model": hetero,
        },
    ]


def run_cell(
    collection, config, *, n_processors: int, cost_model: CostModel, policy: str
) -> tuple[dict, object, object]:
    """One (workload, policy) tournament cell.  Returns the measurement
    record, the cluster partition, and the telemetry snapshot."""
    tel = Telemetry()
    report = simulate_clustering(
        collection,
        config,
        n_processors=n_processors,
        cost_model=cost_model,
        telemetry=tel,
        dispatch_policy=policy,
    )
    lat = tel.latency
    cell = {
        "policy": policy,
        "makespan": report.total_time,
        "master_busy_fraction": report.master_busy_fraction,
        "messages": report.messages_exchanged,
        "rtt_count": lat.count("rtt"),
    }
    for label, q in RTT_QUANTILES:
        cell[f"rtt_{label}"] = lat.quantile("rtt", q)
    clusters = sorted(tuple(sorted(c)) for c in report.result.clusters)
    return cell, clusters, report.result.telemetry


def run_tournament(args) -> tuple[list[dict], list[str], int]:
    """All cells.  Returns (records, markdown lines, exit code)."""
    n_processors = args.processors
    records: list[dict] = []
    md: list[str] = [
        "# Dispatch-policy tournament",
        "",
        f"Simulated machine, {n_processors} processors "
        f"({n_processors - 1} slaves); virtual clock — every number is "
        "deterministic.  `rtt` is the end-to-end work-unit latency "
        "(dispatch -> results absorbed).",
        "",
    ]
    failures = 0
    winners: dict[str, str] = {}
    for wl in workloads(n_processors - 1):
        bench = make_benchmark(wl["params"], np.random.default_rng(wl["seed"]))
        config = bench_config(batchsize=10)
        base_clusters = None
        cells = []
        for policy in POLICIES:
            cell, clusters, snapshot = run_cell(
                bench.collection,
                config,
                n_processors=n_processors,
                cost_model=wl["cost_model"],
                policy=policy,
            )
            cell.update(workload=wl["name"], n_ests=bench.collection.n_ests)
            if base_clusters is None:
                base_clusters = clusters
            elif clusters != base_clusters:
                print(
                    f"FAIL: policy {policy!r} changed the partition on "
                    f"{wl['name']} — dispatch must be output-invariant",
                    file=sys.stderr,
                )
                failures += 1
            cells.append(cell)
            records.append(cell)
            if (
                args.trace_out is not None
                and wl["name"] == "hetero"
                and policy == "paper"
            ):
                # The committed-reference cell: paper policy on the
                # heterogeneous fleet (the drift gate's fixed point).
                export_jsonl(snapshot, args.trace_out)
        by_p99 = min(
            cells, key=lambda c: c["rtt_p99"] if c["rtt_p99"] == c["rtt_p99"] else math.inf
        )
        winners[wl["name"]] = by_p99["policy"]
        md.append(f"## {wl['name']} ({bench.collection.n_ests} ESTs)")
        md.append("")
        md.append("| policy | makespan (vs) | rtt p50 | rtt p99 | rtt p999 | batches |")
        md.append("|---|---|---|---|---|---|")
        for c in cells:
            mark = " **<- best p99**" if c is by_p99 else ""
            md.append(
                f"| {c['policy']}{mark} | {c['makespan']:.4f} "
                f"| {c['rtt_p50'] * 1e3:.2f} ms | {c['rtt_p99'] * 1e3:.2f} ms "
                f"| {c['rtt_p999'] * 1e3:.2f} ms | {c['rtt_count']} |"
            )
        md.append("")
    md.append("## Verdict")
    md.append("")
    for name, winner in winners.items():
        md.append(f"- `{name}`: best rtt p99 = **{winner}**")
    hetero_winner = winners.get("hetero", "paper")
    if hetero_winner == "paper":
        print(
            "FAIL: no policy beat 'paper' on rtt p99 on the hetero workload",
            file=sys.stderr,
        )
        failures += 1
    else:
        md.append("")
        md.append(
            f"Recommendation: `{hetero_winner}` on heterogeneous or skewed "
            "fleets; `paper` stays the default for reproduction fidelity."
        )
    return records, md, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--processors", type=int, default=5,
                        help="simulated processor count, master included "
                             "(default 5)")
    parser.add_argument("--out-md", type=Path, default=None,
                        help="write the markdown scorecard here")
    parser.add_argument("--out-jsonl", type=Path, default=None,
                        help="write one JSON record per cell here")
    parser.add_argument("--trace-out", type=Path, default=None,
                        help="export the paper-policy hetero-workload "
                             "telemetry trace here (the drift-gate cell)")
    args = parser.parse_args(argv)

    records, md, failures = run_tournament(args)

    headers = ["workload", "policy", "makespan", "rtt_p50", "rtt_p99", "rtt_p999"]
    rows = [
        [r["workload"], r["policy"], f"{r['makespan']:.4f}",
         f"{r['rtt_p50'] * 1e3:.2f}ms", f"{r['rtt_p99'] * 1e3:.2f}ms",
         f"{r['rtt_p999'] * 1e3:.2f}ms"]
        for r in records
    ]
    lines = format_table("Dispatch-policy tournament (virtual seconds)",
                         headers, rows)
    print("\n".join(lines))
    save_table("bench_dispatch_tournament", lines)

    if args.out_md is not None:
        args.out_md.write_text("\n".join(md) + "\n")
    if args.out_jsonl is not None:
        env = bench_env()
        with args.out_jsonl.open("w") as fh:
            for rec in records:
                fh.write(json.dumps({"schema": SCHEMA, **rec, "env": env}) + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
