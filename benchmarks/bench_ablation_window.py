"""Ablation — the bucket window w (§3.1).

"Care should be taken in choosing w.  While assigning a large value to w
may result in the loss of some potential overlapping pairs, assigning a
low value will result in a small number of buckets for distribution among
processors."  Since the forest only exposes nodes of depth ≥ ψ ≥ w, the
sweep couples ψ = w to expose the loss side, and reports bucket counts
and load imbalance (at a fixed slave count) for the distribution side —
both halves of the paper's trade-off in one table.
"""

from __future__ import annotations

from _common import dataset, dataset_gst, format_table
from repro.align.scoring import AcceptanceCriteria
from repro.core import ClusteringConfig, PaceClusterer
from repro.metrics import assess_clustering
from repro.parallel import assign_buckets

PAPER_N = 30_000
WINDOWS = [4, 6, 8, 10, 12]
N_SLAVES = 15


def test_window_ablation(benchmark, paper_table):
    bench = dataset(PAPER_N)
    gst = dataset_gst(PAPER_N)
    truth = bench.true_clusters()

    rows = []
    quality = {}
    buckets = {}
    for w in WINDOWS:
        cfg = ClusteringConfig(
            w=w,
            psi=w,  # couple ψ to w: the loss regime the paper warns about
            batchsize=10,
            acceptance=AcceptanceCriteria(min_score_ratio=0.8, min_overlap=30),
            align_engine="kdiff",
        )
        result = PaceClusterer(cfg).cluster(bench.collection)
        q = assess_clustering(result.clusters, truth, bench.n_ests)
        ranges = gst.bucket_ranges(w)
        asg = assign_buckets(ranges, N_SLAVES)
        quality[w] = q
        buckets[w] = len(ranges)
        rows.append(
            [
                w,
                len(ranges),
                f"{asg.imbalance:.2f}",
                result.counters.pairs_generated,
                f"{q.oq:.2f}",
                f"{q.un:.2f}",
            ]
        )
    lines = format_table(
        f"Ablation — window size w with ψ = w ({bench.n_ests} ESTs, "
        f"{N_SLAVES} slaves)",
        ["w", "buckets", "imbalance", "pairs generated", "OQ%", "UN%"],
        rows,
    )
    paper_table("ablation_window", lines)

    # Distribution side: more buckets (finer distribution) as w grows.
    ws = sorted(buckets)
    assert all(buckets[a] <= buckets[b] for a, b in zip(ws, ws[1:]))
    # With ψ tied to w, small w admits noise pairs and large w can only
    # lose witnesses: quality at the extremes should not beat the middle.
    mid = WINDOWS[len(WINDOWS) // 2]
    assert quality[WINDOWS[-1]].un >= quality[mid].un - 1.0

    benchmark.pedantic(lambda: gst.bucket_ranges(8), rounds=1, iterations=1)
