"""Ablation — best-first pair ordering vs arbitrary order (§2, Fig. 7).

"As success in merging of clusters depends on the choice of promising
pairs being tested, significant savings in run-time can be achieved by
generating pairs of ESTs in decreasing order of probability of strong
overlap."  This ablation quantifies the saving: the same pair universe is
processed best-first (PaCE), in seeded-arbitrary order (the traditional
strategy), and worst-first (adversarial bound), counting alignments
actually performed.  It also covers the paper's §3.2 remark that the
*local* (per-processor) greedy order sacrifices nothing in quality: the
final partition is identical in every arm.
"""

from __future__ import annotations

from _common import bench_config, dataset, dataset_gst, format_table
from repro.baselines import allpairs_cluster

SIZES = [10_051, 30_000, 60_018]


def test_ordering_ablation(benchmark, paper_table):
    cfg = bench_config()
    rows = []
    for n in SIZES:
        bench = dataset(n)
        gst = dataset_gst(n)
        best = allpairs_cluster(bench.collection, cfg, order="best_first", gst=gst)
        arb = allpairs_cluster(bench.collection, cfg, order="arbitrary", rng=1, gst=gst)
        worst = allpairs_cluster(bench.collection, cfg, order="worst_first", gst=gst)

        assert best.result.clusters == arb.result.clusters == worst.result.clusters, (
            "pair order changed the partition"
        )
        b, a, w = (
            r.result.counters.pairs_processed for r in (best, arb, worst)
        )
        rows.append([bench.n_ests, b, a, w, f"{a / max(1, b):.1f}x", f"{w / max(1, b):.1f}x"])

    lines = format_table(
        "Ablation — alignments performed by pair-processing order "
        "(same final clusters in all arms)",
        ["ESTs", "best-first", "arbitrary", "worst-first", "arb/best", "worst/best"],
        rows,
    )
    paper_table("ablation_ordering", lines)

    for row in rows:
        # Best-first never does materially more work than arbitrary order
        # (small inversions happen: different orders align different
        # borderline pairs), and always beats worst-first clearly.
        assert row[1] <= row[2] * 1.15, row
        assert row[1] < row[3], row

    small = dataset(SIZES[0])
    benchmark.pedantic(
        lambda: allpairs_cluster(
            small.collection, cfg, order="best_first", gst=dataset_gst(SIZES[0])
        ),
        rounds=1,
        iterations=1,
    )
