"""Micro-benchmarks of the individual substrates.

Not tied to a paper exhibit; these keep the per-component costs visible
(suffix-array construction rate, LCP method comparison, pair-generation
throughput, alignment engines, union-find ops) so regressions in any
layer show up before they distort the table/figure benches.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import bench_config, dataset, dataset_gst
from repro.align import (
    BatchPairAligner,
    PairAligner,
    ScoringParams,
    extend_overlap,
    overlap_align,
)
from repro.cluster import UnionFind
from repro.pairs import SaPairGenerator, VectorPairGenerator
from repro.suffix import build_suffix_array
from repro.suffix.lcp import lcp_from_rank_levels, lcp_kasai


@pytest.fixture(scope="module")
def medium():
    return dataset(30_000)


@pytest.fixture(scope="module")
def medium_text(medium):
    return medium.collection.sa_text()[0]


@pytest.fixture(scope="module")
def promising_pairs(medium):
    """A fixed slice of the 30k dataset's promising-pair stream — the
    shared workload of the per-pair vs batched alignment benches."""
    gst = dataset_gst(30_000)
    gen = SaPairGenerator(gst, psi=bench_config().psi)
    pairs = []
    for pair in gen.pairs():
        pairs.append(pair)
        if len(pairs) >= 1000:
            break
    return pairs


def test_suffix_array_construction(benchmark, medium_text):
    sa = benchmark(build_suffix_array, medium_text)
    assert len(sa) == len(medium_text)


def test_lcp_kasai(benchmark, medium_text):
    sa = build_suffix_array(medium_text)
    lcp = benchmark(lcp_kasai, medium_text, sa.sa)
    assert len(lcp) == len(medium_text)


def test_lcp_vectorised(benchmark, medium_text):
    sa = build_suffix_array(medium_text)
    ref = lcp_kasai(medium_text, sa.sa)
    lcp = benchmark(lcp_from_rank_levels, sa)
    assert np.array_equal(lcp, ref)


def test_pair_generation_throughput(benchmark, medium):
    gst = dataset_gst(30_000)

    def drain():
        gen = SaPairGenerator(gst, psi=bench_config().psi)
        return sum(1 for _ in gen.pairs())

    count = benchmark.pedantic(drain, rounds=1, iterations=1)
    assert count > 0


def test_pair_generation_vector(benchmark, medium):
    gst = dataset_gst(30_000)

    def drain():
        gen = VectorPairGenerator(gst, psi=bench_config().psi)
        return sum(1 for _ in gen.pairs())

    count = benchmark.pedantic(drain, rounds=1, iterations=1)
    # Pure perf layer: identical pair count to the scalar drain above.
    assert count == sum(
        1 for _ in SaPairGenerator(gst, psi=bench_config().psi).pairs()
    )


def test_banded_extension(benchmark):
    rng = np.random.default_rng(0)
    x = rng.integers(0, 4, 550).astype(np.uint8)
    y = x.copy()
    flips = rng.random(550) < 0.02
    y[flips] = (y[flips] + 1) % 4
    params = ScoringParams()
    res = benchmark(extend_overlap, x, y, params, 20)
    assert res.consumed_x == 550


def test_full_overlap_alignment(benchmark):
    rng = np.random.default_rng(0)
    x = rng.integers(0, 4, 300).astype(np.uint8)
    y = np.concatenate([x[150:], rng.integers(0, 4, 150).astype(np.uint8)])
    res = benchmark.pedantic(
        overlap_align, args=(x, y, ScoringParams()), rounds=1, iterations=1
    )
    assert res.overlap_len >= 140


def test_alignment_per_pair(benchmark, medium, promising_pairs):
    col = medium.collection

    def run():
        return PairAligner(col).align_and_decide_batch(promising_pairs)

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(out) == len(promising_pairs)


def test_alignment_batched(benchmark, medium, promising_pairs):
    col = medium.collection

    def run():
        return BatchPairAligner(col, group_size=64).align_and_decide_batch(
            promising_pairs
        )

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    # The batched engine must be a pure perf layer: identical decisions.
    assert out == PairAligner(col).align_and_decide_batch(promising_pairs)


def test_union_find_throughput(benchmark):
    rng = np.random.default_rng(0)
    n = 50_000
    edges = rng.integers(0, n, size=(n, 2))

    def run():
        uf = UnionFind(n)
        for a, b in edges:
            uf.union(int(a), int(b))
        return uf.n_components

    comps = benchmark(run)
    assert comps >= 1


def test_union_find_batched_finds(benchmark):
    """The bulk ``find_many`` path (WORKBUF pruning, batched dispatch
    filtering): one call resolving many roots with a per-batch cache
    versus element-at-a-time ``find``."""
    rng = np.random.default_rng(1)
    n = 50_000
    uf = UnionFind(n)
    for a, b in rng.integers(0, n, size=(n // 2, 2)):
        uf.union(int(a), int(b))
    queries = [int(x) for x in rng.integers(0, n, size=4 * n)]

    def run():
        return uf.find_many(queries)

    roots = benchmark(run)
    assert roots == [uf.find(x) for x in queries]


def test_gst_facade_build(benchmark, medium):
    from repro.suffix import SuffixArrayGst

    gst = benchmark.pedantic(
        SuffixArrayGst.build, args=(medium.collection,), rounds=1, iterations=1
    )
    assert gst.n_suffix_positions > 0
