"""Extension-engine comparison — banded DP vs greedy k-difference.

Not a paper exhibit: the k-difference engine is this repository's fast
path (O(k²) work per extension instead of Θ(band·length)).  The bench
verifies it is a drop-in for the banded scorer: identical clusters and
quality on the standard benchmark, at a fraction of the work measure, and
faster in wall time.
"""

from __future__ import annotations

import time

from _common import bench_config, dataset, dataset_gst, format_table
from repro.align import AcceptanceCriteria, PairAligner
from repro.cluster import ClusterManager, greedy_cluster
from repro.metrics import assess_clustering
from repro.pairs import SaPairGenerator

PAPER_N = 30_000


def _run(engine: str):
    bench = dataset(PAPER_N)
    gst = dataset_gst(PAPER_N)
    cfg = bench_config()
    aligner = PairAligner(
        bench.collection,
        params=cfg.scoring,
        criteria=cfg.acceptance,
        band_policy=cfg.band_policy,
        engine=engine,
    )
    mgr = ClusterManager(bench.collection.n_ests)
    t0 = time.perf_counter()
    counters = greedy_cluster(
        SaPairGenerator(gst, psi=cfg.psi).pairs(), aligner, mgr
    )
    wall = time.perf_counter() - t0
    q = assess_clustering(
        mgr.clusters(), bench.true_clusters(), bench.collection.n_ests
    )
    return mgr.clusters(), counters, q, wall


def test_engine_comparison(benchmark, paper_table):
    results = {engine: _run(engine) for engine in ("banded", "kdiff")}

    rows = []
    for engine, (clusters, counters, q, wall) in results.items():
        rows.append(
            [
                engine,
                counters.pairs_processed,
                counters.dp_cells,
                f"{wall:.2f}s",
                f"{q.oq:.2f}",
                f"{q.cc:.2f}",
            ]
        )
    lines = format_table(
        f"Extension engines — banded DP vs k-difference "
        f"({dataset(PAPER_N).n_ests} ESTs)",
        ["engine", "alignments", "work (cells)", "wall", "OQ%", "CC%"],
        rows,
    )
    paper_table("engines", lines)

    banded = results["banded"]
    kdiff = results["kdiff"]
    # Same quality, far less work.
    assert abs(banded[2].cc - kdiff[2].cc) < 2.0
    assert kdiff[1].dp_cells < banded[1].dp_cells / 3

    benchmark.pedantic(lambda: _run("kdiff"), rounds=1, iterations=1)
