"""Figure 6(b) — run-time vs number of ESTs at p = 64.

The paper's right-hand plot fixes p = 64 and sweeps the data size,
showing run-time growing faster than linearly in n (the pair volume — and
with it alignment work — grows superlinearly, while index construction is
linear).  Reproduced on the simulated machine across the scaled dataset
family.
"""

from __future__ import annotations

from _common import bench_config, dataset, dataset_gst, format_table
from repro.parallel import simulate_clustering

SIZES = [10_000, 20_000, 40_000, 60_018, 81_414]
P = 64


def test_fig6b_runtime_vs_datasize(benchmark, paper_table):
    cfg = bench_config()
    rows = []
    times = []
    ests = []
    for n in SIZES:
        bench = dataset(n)
        rep = simulate_clustering(
            bench.collection, cfg, n_processors=P, gst=dataset_gst(n)
        )
        times.append(rep.total_time)
        ests.append(bench.n_ests)
        rows.append(
            [
                bench.n_ests,
                f"{rep.total_time:.4f}",
                rep.result.counters.pairs_generated,
                rep.result.counters.pairs_processed,
            ]
        )
    lines = format_table(
        f"Fig 6b — run-time vs data size at p={P} (virtual seconds)",
        ["ESTs", "total time", "pairs generated", "pairs aligned"],
        rows,
    )
    paper_table("fig6b_datasize", lines)

    # Shape: strictly growing in n, and superlinear growth overall
    # (time ratio outpaces the EST ratio across the full sweep).
    assert all(a < b for a, b in zip(times, times[1:])), "time not increasing in n"
    assert times[-1] / times[0] > ests[-1] / ests[0] * 0.8

    small = dataset(SIZES[0])
    benchmark.pedantic(
        lambda: simulate_clustering(
            small.collection, cfg, n_processors=P, gst=dataset_gst(SIZES[0])
        ),
        rounds=1,
        iterations=1,
    )
