"""§4.2's master-saturation claim, at realistic per-alignment cost.

"When the batchsize is fixed and the number of slave processors is
increased, there is a gradual increase in the percentage of the total
time the master is busy and the percentage is well under 2% even on 128
processors.  Thus using a single master processor will not be a
bottleneck even for a large number of slave processors."

The scaled short-read datasets distort this ratio (their alignments are
~20× cheaper than 550 bp alignments while per-message costs are fixed),
so this bench builds a small *full-length-read* benchmark (~550 bp ESTs,
as in the paper) where per-interaction slave work matches 2002 reality,
then sweeps the slave count.
"""

from __future__ import annotations

import functools

from _common import format_table
from repro.align.scoring import AcceptanceCriteria
from repro.core import ClusteringConfig
from repro.parallel import simulate_clustering
from repro.simulate import BenchmarkParams, make_benchmark
from repro.suffix import SuffixArrayGst

PROCESSORS = [8, 16, 32, 64, 128]


@functools.lru_cache(maxsize=None)
def _fulllength_dataset():
    params = BenchmarkParams(
        n_genes=25,
        mean_ests_per_gene=8.0,
        n_exons_range=(2, 4),
        exon_len_range=(250, 500),
    )  # default ReadParams: ~550 bp reads, as in the paper
    return make_benchmark(params, rng=0)


@functools.lru_cache(maxsize=None)
def _fulllength_gst():
    return SuffixArrayGst.build(_fulllength_dataset().collection)


def _config():
    return ClusteringConfig(
        w=8,
        psi=30,
        batchsize=60,  # the paper's operating point
        acceptance=AcceptanceCriteria(min_score_ratio=0.8, min_overlap=40),
        align_engine="kdiff",  # host fast path; virtual time is band-modelled
    )


def test_master_busy_fraction(benchmark, paper_table):
    bench = _fulllength_dataset()
    gst = _fulllength_gst()
    cfg = _config()

    rows = []
    fractions = []
    for p in PROCESSORS:
        rep = simulate_clustering(bench.collection, cfg, n_processors=p, gst=gst)
        frac = rep.master_busy_fraction
        fractions.append(frac)
        rows.append([p, f"{100 * frac:.3f}%", f"{rep.total_time:.4f}"])
    lines = format_table(
        f"§4.2 master busy fraction — {bench.n_ests} full-length (~550bp) "
        f"ESTs, batchsize 60",
        ["p", "master busy", "total (virtual s)"],
        rows,
    )
    paper_table("master_busy", lines)

    # The paper's claim: "a gradual increase in the percentage of the
    # total time the master is busy and the percentage is well under 2%
    # even on 128 processors".
    by_p = dict(zip(PROCESSORS, fractions))
    for p in PROCESSORS:
        assert by_p[p] < 0.02, f"master saturated at p={p}: {by_p[p]:.3%}"
    assert fractions == sorted(fractions), "busy fraction not increasing in p"

    benchmark.pedantic(
        lambda: simulate_clustering(bench.collection, cfg, n_processors=16, gst=gst),
        rounds=1,
        iterations=1,
    )
