"""Perf gates for the vectorised engines, arena startup, dispatch seam
and the sharded master.

Five subcommands, each measuring a reference implementation against its
optimised counterpart on the 30k-scaled dataset, verifying the optimised
output is *identical* (the oracle property), and writing the numbers as
JSON.  ``align`` and ``pairs`` gate engine speedups; ``startup`` gates the
shared-memory arena spawn path: per-slave pickled payload must shrink by
``--min-payload-ratio`` versus the legacy whole-index handoff, attach+
construct latency must stay under ``--max-startup-seconds``, clusters must
match the sequential oracle under both clean and injected-fault parallel
runs, and no shared-memory segment may survive either run.  ``dispatch``
gates the dispatch-policy seam: the ``paper`` policy must reproduce the
sequential oracle partition bit for bit on *both* parallel engines (the
seam is refactoring, not behaviour), every policy must agree on the
partition, and no policy may regress the 30k simulated makespan past
``--max-makespan-ratio`` of the paper baseline.  ``shard`` gates the
sharded-master seam: sequential, single-master and N-shard runs must
produce the identical partition on *both* engines (including under
injected slave crashes with shard-local recovery), and on a
deliberately master-bound simulated workload N shards must beat the
single master by ``--min-speedup``.  The committed ``BENCH_align.json``
/ ``BENCH_pairs.json`` / ``BENCH_startup.json`` / ``BENCH_dispatch.json``
/ ``BENCH_shard.json`` at the repo root record the reference
measurements.

Usage::

    python benchmarks/perf_gate.py align --out BENCH_align.json --min-speedup 2.0
    python benchmarks/perf_gate.py pairs --out BENCH_pairs.json --min-speedup 3.0
    python benchmarks/perf_gate.py startup --out BENCH_startup.json
    python benchmarks/perf_gate.py dispatch --out BENCH_dispatch.json
    python benchmarks/perf_gate.py shard --out BENCH_shard.json
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
import time
from pathlib import Path

from _common import bench_config, bench_env, dataset, dataset_gst
from repro.align import BatchPairAligner, PairAligner
from repro.pairs import SaPairGenerator, VectorPairGenerator

ALIGN_SCHEMA = "pace-align-gate/1"
PAIRS_SCHEMA = "pace-pairs-gate/1"
STARTUP_SCHEMA = "pace-startup-gate/1"
DISPATCH_SCHEMA = "pace-dispatch-gate/1"
SHARD_SCHEMA = "pace-shard-gate/1"


def _measure(make_run, rounds: int) -> tuple[float, object]:
    """Best-of-``rounds`` wall time (and the last run's output)."""
    best = float("inf")
    out = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = make_run()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _finish(record: dict, args, speedup: float, label: str) -> int:
    print(json.dumps(record, indent=2))
    if args.out is not None:
        args.out.write_text(json.dumps(record, indent=2) + "\n")
    if speedup < args.min_speedup:
        print(
            f"perf gate FAILED: {label} speedup {speedup:.2f}x < "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    print(f"perf gate passed: {label} {speedup:.2f}x faster")
    return 0


def run_align(args) -> int:
    col = dataset(30_000).collection
    gst = dataset_gst(30_000)
    pairs = []
    for pair in SaPairGenerator(gst, psi=bench_config().psi).pairs():
        pairs.append(pair)
        if len(pairs) >= args.pairs:
            break

    t_ref, ref_out = _measure(
        lambda: PairAligner(col).align_and_decide_batch(pairs), args.rounds
    )
    t_bat, bat_out = _measure(
        lambda: BatchPairAligner(
            col, group_size=args.group_size
        ).align_and_decide_batch(pairs),
        args.rounds,
    )
    if bat_out != ref_out:
        print("FAIL: batched results differ from the per-pair oracle",
              file=sys.stderr)
        return 2

    speedup = t_ref / t_bat if t_bat > 0 else float("inf")
    record = {
        "schema": ALIGN_SCHEMA,
        "dataset": 30_000,
        "n_pairs": len(pairs),
        "group_size": args.group_size,
        "per_pair_seconds": round(t_ref, 4),
        "batched_seconds": round(t_bat, 4),
        "speedup": round(speedup, 2),
        "min_speedup": args.min_speedup,
        "env": bench_env(),
    }
    return _finish(record, args, speedup, "batched alignment")


def run_pairs(args) -> int:
    gst = dataset_gst(30_000)
    psi = bench_config().psi

    t_sca, sca_out = _measure(
        lambda: list(SaPairGenerator(gst, psi).pairs()), args.rounds
    )
    t_vec, vec_out = _measure(
        lambda: list(VectorPairGenerator(gst, psi).pairs()), args.rounds
    )
    # Exact equality — same multiset AND same order, within and across
    # depths.  The vector engine must be a pure performance layer.
    if vec_out != sca_out:
        print("FAIL: vector pair stream differs from the scalar oracle",
              file=sys.stderr)
        return 2

    speedup = t_sca / t_vec if t_vec > 0 else float("inf")
    record = {
        "schema": PAIRS_SCHEMA,
        "dataset": 30_000,
        "psi": psi,
        "n_pairs": len(sca_out),
        "scalar_seconds": round(t_sca, 4),
        "vector_seconds": round(t_vec, 4),
        "speedup": round(speedup, 2),
        "min_speedup": args.min_speedup,
        "env": bench_env(),
    }
    return _finish(record, args, speedup, "vector pair generation")


def run_startup(args) -> int:
    from repro.align.batch import make_aligner
    from repro.core import PaceClusterer
    from repro.pairs.batch import make_pair_generator
    from repro.pairs.ondemand import OnDemandPairGenerator
    from repro.parallel import (
        FaultPlan,
        FaultSpec,
        FaultTolerance,
        GstArenas,
        attach_gst,
        cluster_multiprocessing,
        leaked_segments,
    )
    from repro.parallel.partition import assign_buckets
    from repro.parallel.shm import ArenaRegistry

    config = bench_config(pair_engine="vector")
    col = dataset(30_000).collection
    gst = dataset_gst(30_000)
    n_slaves = args.slaves
    assignment = assign_buckets(gst.bucket_ranges(config.w), n_slaves)
    ranges_of = [
        [(lo, hi) for _key, lo, hi in assignment.per_processor[k]]
        for k in range(n_slaves)
    ]

    # --- per-slave spawn payload: whole index vs descriptor bundle -------
    # The fork context never pickles Process args, so the payload is
    # measured explicitly: it is exactly what a spawn/forkserver context
    # (or any future MPI transport) would serialise per slave.
    legacy_bytes = max(
        len(pickle.dumps((gst, ranges_of[k], config))) for k in range(n_slaves)
    )
    shared = GstArenas.create(
        gst, ranges_of, pair_engine=config.pair_engine, psi=config.psi
    )
    try:
        shared_bytes = max(
            len(pickle.dumps((shared.bundle, ranges_of[k], config)))
            for k in range(n_slaves)
        )
        ratio = legacy_bytes / shared_bytes

        # --- spawn-to-first-result latency ---------------------------------
        # Both paths run the exact slave-startup sequence in-process:
        # deserialise the payload, materialise the gst (attach for the
        # shared path), build generator + aligner, produce the first
        # dispatch batch.  Measured on slave 0 (the largest range set).
        def legacy_start():
            g, r, c = pickle.loads(pickle.dumps((gst, ranges_of[0], config)))
            gen = make_pair_generator(g, c, ranges=r)
            make_aligner(g.collection, c)
            return OnDemandPairGenerator(gen.pairs()).next_batch(c.batchsize)

        def shared_start():
            b, r, c = pickle.loads(
                pickle.dumps((shared.bundle, ranges_of[0], config))
            )
            registry = ArenaRegistry()
            try:
                g, forests = attach_gst(b, registry, 0)
                gen = make_pair_generator(g, c, ranges=r, forests=forests)
                make_aligner(g.collection, c)
                return OnDemandPairGenerator(gen.pairs()).next_batch(c.batchsize)
            finally:
                registry.close()

        t_legacy, first_legacy = _measure(legacy_start, args.rounds)
        t_shared, first_shared = _measure(shared_start, args.rounds)
        if first_shared != first_legacy:
            print(
                "FAIL: first dispatch batch differs between attached and "
                "deserialised startup",
                file=sys.stderr,
            )
            return 2
    finally:
        shared.dispose()

    # --- end-to-end oracle: clean and injected-fault parallel runs ------
    seq_clusters = PaceClusterer(config).cluster(col).clusters
    clean = cluster_multiprocessing(col, config, n_processors=n_slaves + 1)
    plan = FaultPlan.of(
        FaultSpec(slave_id=0, kind="kill", at_message=1, incarnation=None)
    )
    tol = FaultTolerance(slave_timeout=30.0, poll_interval=0.05, max_restarts=0)
    faulted = cluster_multiprocessing(
        col, config, n_processors=n_slaves + 1, faults=plan, tolerance=tol
    )
    clean_ok = clean.clusters == seq_clusters
    fault_ok = faulted.clusters == seq_clusters and faulted.faults.slaves_lost >= 1
    leaks = leaked_segments()

    record = {
        "schema": STARTUP_SCHEMA,
        "dataset": 30_000,
        "n_slaves": n_slaves,
        "legacy_payload_bytes": legacy_bytes,
        "shared_payload_bytes": shared_bytes,
        "payload_ratio": round(ratio, 1),
        "min_payload_ratio": args.min_payload_ratio,
        "legacy_startup_seconds": round(t_legacy, 4),
        "shared_startup_seconds": round(t_shared, 4),
        "max_startup_seconds": args.max_startup_seconds,
        "clean_oracle": clean_ok,
        "fault_oracle": fault_ok,
        "leaked_segments": leaks,
        "env": bench_env(),
    }
    print(json.dumps(record, indent=2))
    if args.out is not None:
        args.out.write_text(json.dumps(record, indent=2) + "\n")

    failures = []
    if not clean_ok:
        failures.append("clean parallel clusters differ from sequential oracle")
    if not fault_ok:
        failures.append("faulted parallel clusters differ from sequential oracle")
    if leaks:
        failures.append(f"leaked shared-memory segments: {leaks}")
    if ratio < args.min_payload_ratio:
        failures.append(
            f"payload ratio {ratio:.1f}x < {args.min_payload_ratio:.1f}x"
        )
    if t_shared > args.max_startup_seconds:
        failures.append(
            f"shared startup {t_shared:.2f}s > {args.max_startup_seconds:.2f}s"
        )
    if failures:
        for f in failures:
            print(f"perf gate FAILED: {f}", file=sys.stderr)
        return 1
    print(
        f"perf gate passed: per-slave payload {ratio:.0f}x smaller "
        f"({legacy_bytes} -> {shared_bytes} bytes), startup {t_shared:.3f}s"
    )
    return 0


def run_dispatch(args) -> int:
    from repro.core import PaceClusterer
    from repro.parallel import cluster_multiprocessing, simulate_clustering

    config = bench_config()
    col = dataset(30_000).collection
    gst = dataset_gst(30_000)
    n_proc = args.slaves + 1

    # --- oracle: the paper policy is a refactoring, not a behaviour ------
    seq_clusters = PaceClusterer(config).cluster(col).clusters
    sim_paper = simulate_clustering(
        col, config, n_processors=n_proc, gst=gst, dispatch_policy="paper"
    )
    sim_ok = sim_paper.result.clusters == seq_clusters
    # config.dispatch_policy is "paper" by default; mp reads it from there.
    mp_paper = cluster_multiprocessing(col, config, n_processors=n_proc)
    mp_ok = mp_paper.clusters == seq_clusters

    # --- makespan: no policy may tank throughput for its tail gains ------
    makespans = {"paper": sim_paper.total_time}
    cluster_drift = []
    for policy in ("jbsq:2", "pace"):
        rep = simulate_clustering(
            col, config, n_processors=n_proc, gst=gst, dispatch_policy=policy
        )
        makespans[policy] = rep.total_time
        if rep.result.clusters != seq_clusters:
            cluster_drift.append(policy)
    worst_ratio = max(t / makespans["paper"] for t in makespans.values())

    record = {
        "schema": DISPATCH_SCHEMA,
        "dataset": 30_000,
        "n_slaves": args.slaves,
        "sim_paper_oracle": sim_ok,
        "mp_paper_oracle": mp_ok,
        "policies_cluster_identical": not cluster_drift,
        "makespans": {k: round(v, 4) for k, v in makespans.items()},
        "worst_makespan_ratio": round(worst_ratio, 3),
        "max_makespan_ratio": args.max_makespan_ratio,
        "env": bench_env(),
    }
    print(json.dumps(record, indent=2))
    if args.out is not None:
        args.out.write_text(json.dumps(record, indent=2) + "\n")

    failures = []
    if not sim_ok:
        failures.append("paper-policy sim clusters differ from sequential oracle")
    if not mp_ok:
        failures.append("paper-policy mp clusters differ from sequential oracle")
    for policy in cluster_drift:
        failures.append(f"policy {policy!r} changed the partition")
    if worst_ratio > args.max_makespan_ratio:
        failures.append(
            f"worst policy makespan {worst_ratio:.2f}x paper > "
            f"{args.max_makespan_ratio:.2f}x"
        )
    if failures:
        for f in failures:
            print(f"perf gate FAILED: {f}", file=sys.stderr)
        return 1
    print(
        f"perf gate passed: dispatch oracles hold, worst makespan ratio "
        f"{worst_ratio:.2f}x"
    )
    return 0


def run_shard(args) -> int:
    from dataclasses import replace

    from repro.core import PaceClusterer
    from repro.parallel import (
        CostModel,
        FaultPlan,
        FaultSpec,
        FaultTolerance,
        cluster_multiprocessing,
        simulate_clustering,
    )

    config = bench_config()
    col = dataset(30_000).collection
    gst = dataset_gst(30_000)
    n_proc = args.slaves + 1

    # --- identity: sharding is a perf layer, never a behaviour -----------
    # Sequential == single-master == N-shard on both engines, and the
    # equality must survive injected slave crashes with shard-local
    # recovery.  Sync cadence is tightened so exchanges actually happen
    # inside the short gate runs.
    seq_clusters = PaceClusterer(config).cluster(col).clusters
    sim_cfg = replace(config, shard_sync_interval=1e-3)
    sim_single = simulate_clustering(
        col, sim_cfg, n_processors=n_proc, gst=gst, master_shards=1
    )
    sim_sharded = simulate_clustering(
        col, sim_cfg, n_processors=n_proc, gst=gst, master_shards=args.shards
    )
    sim_single_ok = sim_single.result.clusters == seq_clusters
    sim_shard_ok = sim_sharded.result.clusters == seq_clusters

    mp_cfg = replace(
        config, master_shards=args.shards, shard_sync_interval=0.05
    )
    mp_sharded = cluster_multiprocessing(col, mp_cfg, n_processors=n_proc)
    mp_shard_ok = mp_sharded.clusters == seq_clusters

    plan = FaultPlan.of(
        FaultSpec(slave_id=0, kind="kill", at_message=1, incarnation=None),
        FaultSpec(
            slave_id=args.slaves - 1,
            kind="kill_after_send",
            at_message=0,
            incarnation=None,
        ),
    )
    tol = FaultTolerance(slave_timeout=30.0, poll_interval=0.05, max_restarts=0)
    mp_faulted = cluster_multiprocessing(
        col, mp_cfg, n_processors=n_proc, faults=plan, tolerance=tol
    )
    fault_ok = (
        mp_faulted.clusters == seq_clusters
        and mp_faulted.faults.slaves_lost >= 2
    )

    # --- makespan: sharding must relieve a master-bound run --------------
    # The sim makespan gate uses a deliberately master-bound cost model
    # (absorption, bookkeeping and message handling dominate; alignment is
    # nearly free) — the regime ROADMAP 2 targets, where a single master
    # serialises the run and splitting its WORKBUF/union-find across
    # shards buys real wall-clock.
    master_bound = CostModel(
        master_msg_cost=200e-6,
        master_pair_cost=30e-6,
        master_result_cost=20e-6,
        dp_cell_cost=0.002e-6,
        align_overhead=2e-6,
        pair_gen_cost=0.5e-6,
    )
    makespans: dict[str, float] = {}
    for n_shards in sorted({1, args.shards}):
        rep = simulate_clustering(
            col,
            sim_cfg,
            n_processors=n_proc,
            gst=gst,
            cost_model=master_bound,
            master_shards=n_shards,
        )
        makespans[str(n_shards)] = rep.total_time
        if rep.result.clusters != seq_clusters:
            sim_shard_ok = False
    speedup = makespans["1"] / makespans[str(args.shards)]

    record = {
        "schema": SHARD_SCHEMA,
        "dataset": 30_000,
        "n_slaves": args.slaves,
        "n_shards": args.shards,
        "sim_single_oracle": sim_single_ok,
        "sim_shard_oracle": sim_shard_ok,
        "mp_shard_oracle": mp_shard_ok,
        "mp_fault_oracle": fault_ok,
        "sync_rounds": sim_sharded.sync_rounds,
        "unions_exchanged": sim_sharded.unions_exchanged,
        "master_bound_makespans": {
            k: round(v, 4) for k, v in makespans.items()
        },
        "shard_speedup": round(speedup, 3),
        "min_speedup": args.min_speedup,
        "env": bench_env(),
    }
    print(json.dumps(record, indent=2))
    if args.out is not None:
        args.out.write_text(json.dumps(record, indent=2) + "\n")

    failures = []
    if not sim_single_ok:
        failures.append("single-master sim clusters differ from sequential oracle")
    if not sim_shard_ok:
        failures.append("sharded sim clusters differ from sequential oracle")
    if not mp_shard_ok:
        failures.append("sharded mp clusters differ from sequential oracle")
    if not fault_ok:
        failures.append("sharded mp clusters under faults differ from oracle")
    if speedup < args.min_speedup:
        failures.append(
            f"{args.shards}-shard master-bound speedup {speedup:.2f}x < "
            f"{args.min_speedup:.2f}x"
        )
    if failures:
        for f in failures:
            print(f"perf gate FAILED: {f}", file=sys.stderr)
        return 1
    print(
        f"perf gate passed: shard oracles hold, {args.shards}-shard "
        f"master-bound speedup {speedup:.2f}x"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="gate", required=True)

    p_align = sub.add_parser("align", help="per-pair vs batched alignment")
    p_align.add_argument("--out", type=Path, default=None,
                         help="write the measurement JSON here")
    p_align.add_argument("--min-speedup", type=float, default=2.0,
                         help="fail when batched speedup is below this "
                              "(default 2.0)")
    p_align.add_argument("--pairs", type=int, default=1000,
                         help="promising pairs to align (default 1000)")
    p_align.add_argument("--group-size", type=int, default=64,
                         help="batched engine DP group size (default 64)")
    p_align.add_argument("--rounds", type=int, default=3,
                         help="timing rounds, best-of (default 3)")
    p_align.set_defaults(func=run_align)

    p_pairs = sub.add_parser("pairs", help="scalar vs vector pair generation")
    p_pairs.add_argument("--out", type=Path, default=None,
                         help="write the measurement JSON here")
    p_pairs.add_argument("--min-speedup", type=float, default=3.0,
                         help="fail when vector speedup is below this "
                              "(default 3.0)")
    p_pairs.add_argument("--rounds", type=int, default=3,
                         help="timing rounds, best-of (default 3)")
    p_pairs.set_defaults(func=run_pairs)

    p_start = sub.add_parser(
        "startup", help="legacy vs shared-arena slave startup"
    )
    p_start.add_argument("--out", type=Path, default=None,
                         help="write the measurement JSON here")
    p_start.add_argument("--min-payload-ratio", type=float, default=10.0,
                         help="fail when the per-slave pickled payload "
                              "shrinks less than this factor (default 10)")
    p_start.add_argument("--max-startup-seconds", type=float, default=5.0,
                         help="fail when attach+construct+first-batch "
                              "exceeds this (default 5.0)")
    p_start.add_argument("--slaves", type=int, default=3,
                         help="slave count for payload/oracle runs "
                              "(default 3)")
    p_start.add_argument("--rounds", type=int, default=3,
                         help="timing rounds, best-of (default 3)")
    p_start.set_defaults(func=run_startup)

    p_disp = sub.add_parser(
        "dispatch", help="dispatch-policy oracle identity + makespan bound"
    )
    p_disp.add_argument("--out", type=Path, default=None,
                        help="write the measurement JSON here")
    p_disp.add_argument("--max-makespan-ratio", type=float, default=1.1,
                        help="fail when any policy's simulated makespan "
                             "exceeds this multiple of the paper "
                             "baseline (default 1.1)")
    p_disp.add_argument("--slaves", type=int, default=4,
                        help="slave count for the oracle/makespan runs "
                             "(default 4)")
    p_disp.set_defaults(func=run_dispatch)

    p_shard = sub.add_parser(
        "shard", help="sharded-master partition identity + makespan relief"
    )
    p_shard.add_argument("--out", type=Path, default=None,
                         help="write the measurement JSON here")
    p_shard.add_argument("--shards", type=int, default=4,
                         help="shard count for the gated runs (default 4)")
    p_shard.add_argument("--slaves", type=int, default=16,
                         help="slave count (default 16; the master-bound "
                              "makespan gate needs enough slaves that the "
                              "master is the bottleneck)")
    p_shard.add_argument("--min-speedup", type=float, default=2.0,
                         help="fail when the N-shard makespan on the "
                              "master-bound sim workload is not at least "
                              "this factor below single-master "
                              "(default 1.5)")
    p_shard.set_defaults(func=run_shard)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
