"""Perf gates for the vectorised engines: alignment and pair generation.

Two subcommands, one per engine pair, each measuring the scalar reference
against its vectorised counterpart on the 30k-scaled dataset, verifying
the vectorised output is *identical* (the oracle property), and writing
the numbers as JSON.  Exits non-zero when the speedup falls below
``--min-speedup`` — CI runs both to keep the advantages locked in, and
the committed ``BENCH_align.json`` / ``BENCH_pairs.json`` at the repo
root record the reference measurements.

Usage::

    python benchmarks/perf_gate.py align --out BENCH_align.json --min-speedup 2.0
    python benchmarks/perf_gate.py pairs --out BENCH_pairs.json --min-speedup 3.0
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from _common import bench_config, dataset, dataset_gst
from repro.align import BatchPairAligner, PairAligner
from repro.pairs import SaPairGenerator, VectorPairGenerator

ALIGN_SCHEMA = "pace-align-gate/1"
PAIRS_SCHEMA = "pace-pairs-gate/1"


def _measure(make_run, rounds: int) -> tuple[float, object]:
    """Best-of-``rounds`` wall time (and the last run's output)."""
    best = float("inf")
    out = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = make_run()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _finish(record: dict, args, speedup: float, label: str) -> int:
    print(json.dumps(record, indent=2))
    if args.out is not None:
        args.out.write_text(json.dumps(record, indent=2) + "\n")
    if speedup < args.min_speedup:
        print(
            f"perf gate FAILED: {label} speedup {speedup:.2f}x < "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    print(f"perf gate passed: {label} {speedup:.2f}x faster")
    return 0


def run_align(args) -> int:
    col = dataset(30_000).collection
    gst = dataset_gst(30_000)
    pairs = []
    for pair in SaPairGenerator(gst, psi=bench_config().psi).pairs():
        pairs.append(pair)
        if len(pairs) >= args.pairs:
            break

    t_ref, ref_out = _measure(
        lambda: PairAligner(col).align_and_decide_batch(pairs), args.rounds
    )
    t_bat, bat_out = _measure(
        lambda: BatchPairAligner(
            col, group_size=args.group_size
        ).align_and_decide_batch(pairs),
        args.rounds,
    )
    if bat_out != ref_out:
        print("FAIL: batched results differ from the per-pair oracle",
              file=sys.stderr)
        return 2

    speedup = t_ref / t_bat if t_bat > 0 else float("inf")
    record = {
        "schema": ALIGN_SCHEMA,
        "dataset": 30_000,
        "n_pairs": len(pairs),
        "group_size": args.group_size,
        "per_pair_seconds": round(t_ref, 4),
        "batched_seconds": round(t_bat, 4),
        "speedup": round(speedup, 2),
        "min_speedup": args.min_speedup,
    }
    return _finish(record, args, speedup, "batched alignment")


def run_pairs(args) -> int:
    gst = dataset_gst(30_000)
    psi = bench_config().psi

    t_sca, sca_out = _measure(
        lambda: list(SaPairGenerator(gst, psi).pairs()), args.rounds
    )
    t_vec, vec_out = _measure(
        lambda: list(VectorPairGenerator(gst, psi).pairs()), args.rounds
    )
    # Exact equality — same multiset AND same order, within and across
    # depths.  The vector engine must be a pure performance layer.
    if vec_out != sca_out:
        print("FAIL: vector pair stream differs from the scalar oracle",
              file=sys.stderr)
        return 2

    speedup = t_sca / t_vec if t_vec > 0 else float("inf")
    record = {
        "schema": PAIRS_SCHEMA,
        "dataset": 30_000,
        "psi": psi,
        "n_pairs": len(sca_out),
        "scalar_seconds": round(t_sca, 4),
        "vector_seconds": round(t_vec, 4),
        "speedup": round(speedup, 2),
        "min_speedup": args.min_speedup,
    }
    return _finish(record, args, speedup, "vector pair generation")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="gate", required=True)

    p_align = sub.add_parser("align", help="per-pair vs batched alignment")
    p_align.add_argument("--out", type=Path, default=None,
                         help="write the measurement JSON here")
    p_align.add_argument("--min-speedup", type=float, default=2.0,
                         help="fail when batched speedup is below this "
                              "(default 2.0)")
    p_align.add_argument("--pairs", type=int, default=1000,
                         help="promising pairs to align (default 1000)")
    p_align.add_argument("--group-size", type=int, default=64,
                         help="batched engine DP group size (default 64)")
    p_align.add_argument("--rounds", type=int, default=3,
                         help="timing rounds, best-of (default 3)")
    p_align.set_defaults(func=run_align)

    p_pairs = sub.add_parser("pairs", help="scalar vs vector pair generation")
    p_pairs.add_argument("--out", type=Path, default=None,
                         help="write the measurement JSON here")
    p_pairs.add_argument("--min-speedup", type=float, default=3.0,
                         help="fail when vector speedup is below this "
                              "(default 3.0)")
    p_pairs.add_argument("--rounds", type=int, default=3,
                         help="timing rounds, best-of (default 3)")
    p_pairs.set_defaults(func=run_pairs)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
