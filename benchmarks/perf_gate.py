"""Alignment-engine perf gate: per-pair vs batched on the 30k dataset.

Measures the wall time of aligning a fixed slice of the 30k-scaled
dataset's promising-pair stream with the per-pair reference engine and the
batched engine, verifies the batched decisions are identical (the oracle
property), and writes the numbers as JSON.  Exits non-zero when the
speedup falls below ``--min-speedup`` — CI runs this to keep the batched
engine's advantage locked in, and the committed ``BENCH_align.json`` at
the repo root records the reference measurement.

Usage::

    python benchmarks/perf_gate.py --out BENCH_align.json --min-speedup 2.0
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from _common import bench_config, dataset, dataset_gst
from repro.align import BatchPairAligner, PairAligner
from repro.pairs import SaPairGenerator

SCHEMA = "pace-align-gate/1"


def _measure(make_run, rounds: int) -> tuple[float, object]:
    """Best-of-``rounds`` wall time (and the last run's output)."""
    best = float("inf")
    out = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = make_run()
        best = min(best, time.perf_counter() - t0)
    return best, out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None,
                        help="write the measurement JSON here")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="fail when batched speedup is below this "
                             "(default 2.0)")
    parser.add_argument("--pairs", type=int, default=1000,
                        help="promising pairs to align (default 1000)")
    parser.add_argument("--group-size", type=int, default=64,
                        help="batched engine DP group size (default 64)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds, best-of (default 3)")
    args = parser.parse_args(argv)

    col = dataset(30_000).collection
    gst = dataset_gst(30_000)
    pairs = []
    for pair in SaPairGenerator(gst, psi=bench_config().psi).pairs():
        pairs.append(pair)
        if len(pairs) >= args.pairs:
            break

    t_ref, ref_out = _measure(
        lambda: PairAligner(col).align_and_decide_batch(pairs), args.rounds
    )
    t_bat, bat_out = _measure(
        lambda: BatchPairAligner(
            col, group_size=args.group_size
        ).align_and_decide_batch(pairs),
        args.rounds,
    )
    if bat_out != ref_out:
        print("FAIL: batched results differ from the per-pair oracle",
              file=sys.stderr)
        return 2

    speedup = t_ref / t_bat if t_bat > 0 else float("inf")
    record = {
        "schema": SCHEMA,
        "dataset": 30_000,
        "n_pairs": len(pairs),
        "group_size": args.group_size,
        "per_pair_seconds": round(t_ref, 4),
        "batched_seconds": round(t_bat, 4),
        "speedup": round(speedup, 2),
        "min_speedup": args.min_speedup,
    }
    print(json.dumps(record, indent=2))
    if args.out is not None:
        args.out.write_text(json.dumps(record, indent=2) + "\n")
    if speedup < args.min_speedup:
        print(
            f"perf gate FAILED: batched speedup {speedup:.2f}x < "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    print(f"perf gate passed: batched alignment {speedup:.2f}x faster")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
