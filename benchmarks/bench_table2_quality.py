"""Table 2 — clustering quality (OQ / OV / UN / CC) of PaCE vs CAP3.

Paper's Table 2 compares both tools against the correct Arabidopsis
clustering at n ∈ {10,051; 30,000; 60,018; 81,414} and shows (a) the two
within ~1–2 points of each other on every metric, (b) CAP3 a hair ahead,
(c) UN > OV for both (conservative criteria), and (d) CAP3 simply absent
at 81,414 (out of memory).

Reproduced here on scaled synthetic benchmarks with exact ground truth:
PaCE = our full pipeline; CAP3 = the full-DP greedy-assembler comparator.
The 81,414 column runs PaCE only, mirroring the paper's gap; the CAP3-like
engine's quadratic pair buffer is what the Table 1 bench shows exploding.
"""

from __future__ import annotations

from _common import bench_config, dataset, dataset_gst, format_table
from repro.baselines import cap3_like_cluster
from repro.core import PaceClusterer
from repro.metrics import assess_clustering

SIZES = [10_051, 30_000, 60_018, 81_414]
METRICS = ["OQ", "OV", "UN", "CC"]


def test_table2_quality(benchmark, paper_table):
    columns = {}
    for n in SIZES:
        bench = dataset(n)
        gst = dataset_gst(n)
        cfg = bench_config()
        truth = bench.true_clusters()

        ours = PaceClusterer(cfg).cluster(bench.collection)
        q_ours = assess_clustering(ours.clusters, truth, bench.n_ests)

        if n != 81_414:  # the paper's CAP3 could not run at 81,414
            cap = cap3_like_cluster(bench.collection, cfg, gst=gst)
            q_cap = assess_clustering(cap.result.clusters, truth, bench.n_ests)
        else:
            q_cap = None
        columns[n] = (q_ours, q_cap)

    headers = ["metric"]
    for n in SIZES:
        headers += [f"ours@{n // 1000}k", f"cap3@{n // 1000}k"]
    rows = []
    for mi, metric in enumerate(METRICS):
        row = [metric]
        for n in SIZES:
            q_ours, q_cap = columns[n]
            row.append(q_ours.as_row()[mi])
            row.append(q_cap.as_row()[mi] if q_cap else "X")
        rows.append(row)
    lines = format_table(
        "Table 2 — quality vs ground truth (%, scaled benchmarks; "
        "'X' = comparator out of memory in the paper)",
        headers,
        rows,
    )
    # Shape checks the paper's table exhibits.
    for n in SIZES:
        q_ours, q_cap = columns[n]
        assert q_ours.un >= q_ours.ov, "conservative profile violated"
        if q_cap is not None:
            assert abs(q_ours.cc - q_cap.cc) < 10.0, "comparators diverged"
    paper_table("table2_quality", lines)

    small = dataset(10_051)
    benchmark.pedantic(
        lambda: assess_clustering(
            PaceClusterer(bench_config()).cluster(small.collection).clusters,
            small.true_clusters(),
            small.n_ests,
        ),
        rounds=1,
        iterations=1,
    )
