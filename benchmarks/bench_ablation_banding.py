"""Ablation — banded seed extension vs full dynamic programming (Fig. 5a).

"Instead of aligning entire strings, we reduce work by merely extending
the already computed maximal substring match at both ends ... To further
limit work, we use banded dynamic programming."  The work measure is DP
cells computed (what a C implementation pays); quality is scored against
ground truth to show the restriction is essentially free at EST error
rates.  Three arms: banded seed extension (PaCE), unbanded seed extension
(band covers everything), and whole-string full DP (the traditional
engine).
"""

from __future__ import annotations

from _common import bench_config, dataset, format_table
from repro.align.extend import BandPolicy
from repro.core import PaceClusterer
from repro.metrics import assess_clustering

PAPER_N = 30_000


def test_banding_ablation(benchmark, paper_table):
    bench = dataset(PAPER_N)
    truth = bench.true_clusters()

    # This ablation measures DP *areas*, so all arms run the true banded /
    # full DP engines rather than the kdiff fast path.
    arms = {
        "banded seed ext": bench_config(align_engine="banded"),
        "unbanded seed ext": bench_config(
            align_engine="banded",
            band_policy=BandPolicy(band_rate=1.0, band_min=1),
        ),
        "whole-string DP": bench_config(align_engine="banded", use_seed_extension=False),
    }
    rows = []
    cells = {}
    quality = {}
    for name, cfg in arms.items():
        result = PaceClusterer(cfg).cluster(bench.collection)
        q = assess_clustering(result.clusters, truth, bench.n_ests)
        cells[name] = result.counters.dp_cells
        quality[name] = q
        rows.append(
            [
                name,
                result.counters.dp_cells,
                result.counters.pairs_processed,
                f"{q.oq:.2f}",
                f"{q.cc:.2f}",
            ]
        )
    lines = format_table(
        f"Ablation — alignment-area restriction ({bench.n_ests} ESTs)",
        ["engine", "DP cells", "alignments", "OQ%", "CC%"],
        rows,
    )
    paper_table("ablation_banding", lines)

    # Work ordering: banded < unbanded < whole-string; quality ~unchanged.
    assert cells["banded seed ext"] < cells["unbanded seed ext"]
    assert cells["unbanded seed ext"] < cells["whole-string DP"]
    assert quality["banded seed ext"].cc > quality["whole-string DP"].cc - 3.0

    benchmark.pedantic(
        lambda: PaceClusterer(bench_config()).cluster(dataset(10_051).collection),
        rounds=1,
        iterations=1,
    )
