"""Shared infrastructure for the benchmark harness.

The paper's evaluation ran 10k–81k real ESTs of ~550 bp on an IBM SP.  The
reproduction benchmarks run scaled-down synthetic datasets (~100–800 ESTs
of ~120 bp — a factor ~100 in EST count) on the simulated machine where
processor counts matter.  EXPERIMENTS.md records the mapping and compares
*shapes* (who wins, scaling exponents, crossover locations), which is the
reproducible content; absolute seconds belong to 2002 hardware.

Datasets are cached per (paper_size → scaled parameters) so the many
benches sharing a size don't regenerate or re-index them.
"""

from __future__ import annotations

import functools
import os
import platform
import sys
from pathlib import Path

from repro.align.scoring import AcceptanceCriteria
from repro.core import ClusteringConfig
from repro.simulate import BenchmarkParams, EstBenchmark, make_benchmark
from repro.suffix import SuffixArrayGst
from repro.util.logging import get_logger

RESULTS_DIR = Path(__file__).parent / "results"

#: Structured diagnostics for the bench harness (tables still go to stdout —
#: they are the product; this logger carries the side-channel "where did my
#: results file go" notes that used to be bare prints in the bench scripts).
log = get_logger(actor="bench")

#: Paper dataset size -> scaled number of genes (×~10 ESTs per gene).
#: The paper's quality table uses n ∈ {10,051; 30,000; 60,018; 81,414};
#: the run-time figures use n ∈ {10,000; 20,000; 40,000; 81,414}.
SIZE_MAP = {
    10_000: 10,
    10_051: 10,
    20_000: 20,
    30_000: 30,
    40_000: 40,
    60_018: 60,
    81_414: 83,
}


def bench_env() -> dict:
    """The environment block stamped into saved benchmark baselines.

    Purely descriptive — comparisons read only the measured numbers, so
    a baseline from a different box still compares; the block answers
    "what produced these numbers?" when a regression report surprises."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep today
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "executable": Path(sys.executable).name,
    }


@functools.lru_cache(maxsize=None)
def dataset(paper_n: int, seed: int = 0) -> EstBenchmark:
    """The scaled synthetic stand-in for a paper dataset size."""
    n_genes = SIZE_MAP[paper_n]
    return make_benchmark(
        BenchmarkParams.small(n_genes=n_genes, mean_ests_per_gene=10.0), rng=seed
    )


@functools.lru_cache(maxsize=None)
def dataset_gst(paper_n: int, seed: int = 0) -> SuffixArrayGst:
    """A shared suffix-array index for one dataset (construction is
    deterministic, so sharing it across parameter sweeps changes nothing
    but host time)."""
    return SuffixArrayGst.build(dataset(paper_n, seed).collection)


def bench_config(**overrides) -> ClusteringConfig:
    """The standard configuration of the scaled regime.

    The k-difference extension engine is the default here: it is
    quality-equivalent to the banded scorer (``bench_engines`` proves it
    on this very data) and ~100× faster in Python, which is what lets the
    full sweep suite run in minutes.  Virtual-time accounting in the
    simulator is unaffected — it charges banded-DP-equivalent work either
    way (see ``PairAligner.model_cells_total``).
    """
    base = dict(
        w=6,
        psi=15,
        batchsize=10,  # scaled with the dataset, as the paper scaled 60
        acceptance=AcceptanceCriteria(min_score_ratio=0.8, min_overlap=30),
        align_engine="kdiff",
    )
    base.update(overrides)
    return ClusteringConfig(**base)


def format_table(title: str, headers: list[str], rows: list[list]) -> list[str]:
    """Fixed-width table rendering for terminal summaries and results files."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return lines


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


def save_table(name: str, lines: list[str]) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text("\n".join(lines) + "\n")
    log.info("results table written", bench=name, path=str(path))


def save_telemetry(name: str, snapshot) -> None:
    """Write one run's telemetry snapshot (per-phase timings, metrics,
    machine trace) into ``benchmarks/results/<name>.jsonl`` — same layer
    and schema as ``pace-est cluster --telemetry-out``, so
    ``pace-est report`` summarises bench runs too."""
    from repro.telemetry import export_jsonl

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.jsonl"
    export_jsonl(snapshot, path)
    log.info("telemetry written", bench=name, path=str(path))
