"""The §2 premise — seed length predicts overlap acceptance.

"We use length of a maximal common substring of pairs as the metric for
predicting strongly overlapping pairs, and generate pairs of ESTs in the
decreasing order of this metric."  This bench measures the premise on a
standard benchmark: acceptance rate (and mean score ratio) binned by the
seed length the pair was generated at.  A rising curve is what makes
best-first generation pay off (Fig. 7's curve separation) and justifies
the ψ cutoff below which pairs are not worth producing at all.
"""

from __future__ import annotations

from _common import bench_config, dataset, dataset_gst, format_table
from repro.metrics.heuristic import seed_length_acceptance

PAPER_N = 30_000


def test_seed_length_predicts_acceptance(benchmark, paper_table):
    bench = dataset(PAPER_N)
    cfg = bench_config()
    bins = seed_length_acceptance(
        bench.collection, config=cfg, bin_width=15, gst=dataset_gst(PAPER_N)
    )
    rows = [
        [
            f"[{b.lo},{b.hi})",
            b.n_pairs,
            b.n_accepted,
            f"{100 * b.acceptance_rate:.1f}%",
            f"{b.mean_ratio:.3f}",
        ]
        for b in bins
    ]
    lines = format_table(
        f"§2 heuristic — acceptance vs maximal-common-substring length "
        f"({bench.n_ests} ESTs, unconditional alignment of all candidates)",
        ["seed length", "pairs", "accepted", "acceptance", "mean ratio"],
        rows,
    )
    paper_table("heuristic_seed_length", lines)

    # The premise: long seeds accept (near-)always; the shortest bin is
    # markedly worse than the longest.
    assert len(bins) >= 3, "need a spread of seed lengths to validate"
    assert bins[-1].acceptance_rate > 0.9
    assert bins[0].acceptance_rate < bins[-1].acceptance_rate
    # Mean score ratio rises with seed length across the extremes too.
    assert bins[0].mean_ratio < bins[-1].mean_ratio

    benchmark.pedantic(
        lambda: seed_length_acceptance(
            dataset(10_051).collection,
            config=cfg,
            gst=dataset_gst(10_051),
            max_pairs=500,
        ),
        rounds=1,
        iterations=1,
    )
