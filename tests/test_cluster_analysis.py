"""Tests for cluster profiling and merge-evidence review."""

import pytest

from repro.align.scoring import AlignmentResult, OverlapPattern, ScoringParams
from repro.cluster.analysis import profile_clusters, suspicious_merges
from repro.cluster.manager import MergeRecord
from repro.pairs import Pair


class TestProfileClusters:
    def test_basic_profile(self):
        prof = profile_clusters([[0, 1, 2], [3], [4, 5], [6]])
        assert prof.n_ests == 7
        assert prof.n_clusters == 4
        assert prof.n_singletons == 2
        assert prof.largest == 3
        assert prof.mean_size == pytest.approx(1.75)
        assert prof.median_size == pytest.approx(1.5)
        assert prof.size_histogram == ((1, 2), (2, 1), (3, 1))
        assert prof.singleton_fraction == pytest.approx(0.5)

    def test_empty(self):
        prof = profile_clusters([])
        assert prof.n_clusters == 0 and prof.singleton_fraction == 0.0

    def test_odd_median(self):
        prof = profile_clusters([[0], [1, 2], [3, 4, 5]])
        assert prof.median_size == 2.0

    def test_str_renders(self):
        assert "singletons" in str(profile_clusters([[0], [1, 2]]))

    def test_profile_of_pipeline_result(self, small_benchmark, small_config):
        from repro.core import PaceClusterer

        result = PaceClusterer(small_config).cluster(small_benchmark.collection)
        prof = profile_clusters(result.clusters)
        assert prof.n_ests == small_benchmark.n_ests
        assert prof.n_clusters == result.n_clusters


class TestSuspiciousMerges:
    def _merge(self, ratio: float) -> MergeRecord:
        p = ScoringParams()
        overlap = 50
        score = ratio * p.match * overlap
        return MergeRecord(
            pair=Pair(20, 0, 0, 2, 0),
            result=AlignmentResult(
                score, 0, overlap, 0, overlap, OverlapPattern.A_CONTAINS_B, 0
            ),
        )

    def test_flags_only_weak_witnesses(self):
        merges = [self._merge(0.99), self._merge(0.85), self._merge(0.90)]
        flagged = suspicious_merges(merges, max_ratio=0.92)
        assert len(flagged) == 2

    def test_sorted_weakest_first(self):
        merges = [self._merge(0.90), self._merge(0.85)]
        flagged = suspicious_merges(merges, max_ratio=0.92)
        p = ScoringParams()
        ratios = [rec.result.score_ratio(p) for rec in flagged]
        assert ratios == sorted(ratios)

    def test_clean_run_flags_nothing(self):
        assert suspicious_merges([self._merge(1.0)], max_ratio=0.92) == []
