"""Tests for the public API: config validation, the sequential pipeline,
result objects, and the backend equivalence at pipeline level."""

import pytest

from repro import ClusteringConfig, PaceClusterer
from repro.core.results import COMPONENT_ORDER, ClusteringResult
from repro.metrics import assess_clustering


class TestConfig:
    def test_defaults_follow_paper(self):
        cfg = ClusteringConfig()
        assert cfg.w == 8  # §4.2: "window size of eight"
        assert cfg.batchsize == 60  # §4.2: "batchsize chosen to be sixty"

    def test_psi_below_w_rejected(self):
        with pytest.raises(ValueError, match="must be >= w"):
            ClusteringConfig(w=8, psi=4)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ClusteringConfig(backend="magic")

    def test_positive_params_enforced(self):
        with pytest.raises(ValueError):
            ClusteringConfig(batchsize=0)
        with pytest.raises(ValueError):
            ClusteringConfig(w=0)

    def test_small_reads_preset_overridable(self):
        cfg = ClusteringConfig.small_reads(batchsize=10)
        assert cfg.batchsize == 10 and cfg.w == 6


class TestPipeline:
    def test_recovers_clean_clusters(self, clean_benchmark, small_config):
        result = PaceClusterer(small_config).cluster(clean_benchmark.collection)
        q = assess_clustering(
            result.clusters, clean_benchmark.true_clusters(), clean_benchmark.n_ests
        )
        assert q.ov == 0.0  # no false merges on clean data
        assert q.oq > 90.0

    def test_quality_with_errors(self, small_benchmark, small_config):
        result = PaceClusterer(small_config).cluster(small_benchmark.collection)
        q = assess_clustering(
            result.clusters, small_benchmark.true_clusters(), small_benchmark.n_ests
        )
        assert q.oq > 90.0 and q.cc > 90.0
        assert q.un >= q.ov  # conservative criteria under-predict (Table 2)

    def test_fig7_counter_ordering(self, small_benchmark, small_config):
        c = PaceClusterer(small_config).cluster(small_benchmark.collection).counters
        assert c.pairs_generated >= c.pairs_processed >= c.pairs_accepted
        assert c.pairs_generated == c.pairs_processed + c.pairs_skipped

    def test_timings_present(self, small_benchmark, small_config):
        t = PaceClusterer(small_config).cluster(small_benchmark.collection).timings
        for name in ("gst_construction", "sort_nodes", "alignment"):
            assert t.get(name) >= 0
        assert t.total > 0

    def test_tree_backend_equivalent_partition(self, clean_benchmark):
        cfg_sa = ClusteringConfig.small_reads()
        cfg_tree = ClusteringConfig.small_reads(backend="tree")
        a = PaceClusterer(cfg_sa).cluster(clean_benchmark.collection)
        b = PaceClusterer(cfg_tree).cluster(clean_benchmark.collection)
        # Same pair set + order-independent merging => identical partitions
        # (both backends emit the same canonical pair set).
        assert a.clusters == b.clusters

    def test_gen_stats_attached(self, small_benchmark, small_config):
        res = PaceClusterer(small_config).cluster(small_benchmark.collection)
        assert res.gen_stats is not None
        assert res.gen_stats.pairs_generated == res.counters.pairs_generated

    def test_merges_witness_clusters(self, small_benchmark, small_config):
        res = PaceClusterer(small_config).cluster(small_benchmark.collection)
        labels = res.labels()
        for rec in res.merges:
            assert labels[rec.pair.est_a] == labels[rec.pair.est_b]

    def test_cluster_pairs_external_stream(self, small_benchmark, small_config):
        from repro.pairs import SaPairGenerator
        from repro.suffix import SuffixArrayGst

        gen = SaPairGenerator(
            SuffixArrayGst.build(small_benchmark.collection), psi=small_config.psi
        )
        res = PaceClusterer(small_config).cluster_pairs(
            small_benchmark.collection, gen.pairs()
        )
        direct = PaceClusterer(small_config).cluster(small_benchmark.collection)
        assert res.clusters == direct.clusters


class TestResults:
    def test_labels_roundtrip(self):
        res = ClusteringResult(
            n_ests=4,
            clusters=[[0, 2], [1], [3]],
            counters=None,
            timings=None,
        )
        assert res.labels() == [0, 1, 0, 2]
        assert res.n_clusters == 3

    def test_component_order_matches_table3(self):
        assert COMPONENT_ORDER == [
            "partitioning",
            "gst_construction",
            "sort_nodes",
            "alignment",
        ]

    def test_summary_renders(self, small_benchmark, small_config):
        res = PaceClusterer(small_config).cluster(small_benchmark.collection)
        s = res.summary()
        assert "clusters" in s and "pairs generated" in s
