"""Fault-injection tests: the parallel runtime must survive slave death.

The correctness oracle throughout: a run with injected crashes completes
without hanging (enforced by a hard SIGALRM deadline, the moral
equivalent of ``pytest.mark.timeout``) and produces clusters identical to
the sequential :class:`PaceClusterer` on the same collection.
"""

from __future__ import annotations

import signal
from contextlib import contextmanager

import pytest

from repro.core import PaceClusterer
from repro.pairs import Pair
from repro.parallel import (
    FaultPlan,
    FaultSpec,
    FaultTolerance,
    MasterLogic,
    SlaveFailure,
    SlaveMsg,
    TraceRecorder,
    cluster_multiprocessing,
    run_parallel,
    simulate_clustering,
)

#: Generous wall-clock budget per test: recovery involves real forks,
#: detection polls and (in one test) a deliberate 1 s deadline.
HARD_DEADLINE_S = 120


@contextmanager
def hard_deadline(seconds: int = HARD_DEADLINE_S):
    """Fail the test (instead of hanging CI) if the body runs too long."""

    def on_alarm(signum, frame):
        raise TimeoutError(f"fault-recovery test exceeded {seconds}s — runtime hung")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="module")
def sequential_clusters(small_benchmark, small_config):
    return PaceClusterer(small_config).cluster(small_benchmark.collection).clusters


def _tolerance(**overrides) -> FaultTolerance:
    base = dict(slave_timeout=15.0, poll_interval=0.05, max_restarts=0)
    base.update(overrides)
    return FaultTolerance(**base)


class TestMultiprocessingRecovery:
    def test_kill_before_bootstrap_degrades(
        self, small_benchmark, small_config, sequential_clusters
    ):
        """Slave 0 dies before its bootstrap message ever reaches the
        master; the master regenerates its ranges and the survivor
        finishes the run."""
        plan = FaultPlan.of(
            FaultSpec(slave_id=0, kind="kill", at_message=0, incarnation=None)
        )
        with hard_deadline():
            res = cluster_multiprocessing(
                small_benchmark.collection,
                small_config,
                n_processors=3,
                faults=plan,
                tolerance=_tolerance(),
            )
        assert res.clusters == sequential_clusters
        assert res.faults.slaves_lost >= 1
        assert res.faults.restarts == 0
        assert res.faults.pairs_reassigned > 0
        assert res.faults.incomplete_slaves == 1

    def test_kill_after_bootstrap_restarts(
        self, small_benchmark, small_config, sequential_clusters
    ):
        """Slave 0 dies right after its bootstrap message; the restart
        budget covers it and a replacement re-runs the same ranges."""
        plan = FaultPlan.of(
            FaultSpec(slave_id=0, kind="kill_after_send", at_message=0, incarnation=0)
        )
        with hard_deadline():
            res = cluster_multiprocessing(
                small_benchmark.collection,
                small_config,
                n_processors=3,
                faults=plan,
                tolerance=_tolerance(max_restarts=2),
            )
        assert res.clusters == sequential_clusters
        assert res.faults.slaves_lost >= 1
        assert res.faults.restarts >= 1
        assert res.faults.incomplete_slaves == 0  # the replacement reported

    def test_all_slaves_dead_master_finishes(
        self, small_benchmark, small_config, sequential_clusters
    ):
        """Every slave dies with no restart budget: the master reabsorbs
        all ranges and finishes the alignment itself."""
        plan = FaultPlan.of(
            FaultSpec(slave_id=0, kind="kill_after_send", at_message=0, incarnation=None),
            FaultSpec(slave_id=1, kind="kill", at_message=1, incarnation=None),
        )
        with hard_deadline():
            res = cluster_multiprocessing(
                small_benchmark.collection,
                small_config,
                n_processors=3,
                faults=plan,
                tolerance=_tolerance(),
            )
        assert res.clusters == sequential_clusters
        assert res.faults.slaves_lost == 2
        assert res.faults.incomplete_slaves == 2
        assert res.counters.pairs_processed > 0  # master aligned locally

    def test_hang_detected_by_deadline(
        self, small_benchmark, small_config, sequential_clusters
    ):
        """A wedged slave (alive but silent) is declared dead once it
        exceeds the per-slave deadline."""
        plan = FaultPlan.of(
            FaultSpec(slave_id=0, kind="hang", at_message=1, incarnation=None)
        )
        with hard_deadline():
            res = cluster_multiprocessing(
                small_benchmark.collection,
                small_config,
                n_processors=3,
                faults=plan,
                tolerance=_tolerance(slave_timeout=1.0),
            )
        assert res.clusters == sequential_clusters
        assert res.faults.slaves_lost >= 1

    def test_slave_error_reraised_with_context(self, small_benchmark, small_config):
        """An exception inside the slave's compute loop is shipped as a
        typed report and re-raised by the master — not silently retried."""
        plan = FaultPlan.of(FaultSpec(slave_id=0, kind="raise", at_message=1))
        with hard_deadline(), pytest.raises(SlaveFailure) as exc_info:
            cluster_multiprocessing(
                small_benchmark.collection,
                small_config,
                n_processors=3,
                faults=plan,
                tolerance=_tolerance(),
            )
        assert exc_info.value.slave_id == 0
        assert "InjectedFault" in exc_info.value.slave_traceback

    def test_recovery_events_reach_trace(self, small_benchmark, small_config):
        plan = FaultPlan.of(
            FaultSpec(slave_id=0, kind="kill", at_message=0, incarnation=None)
        )
        trace = TraceRecorder()
        with hard_deadline():
            cluster_multiprocessing(
                small_benchmark.collection,
                small_config,
                n_processors=3,
                faults=plan,
                tolerance=_tolerance(),
                trace=trace,
            )
        faults = trace.faults()
        assert any("lost" in e.detail for e in faults)
        assert any(e.actor == "master" for e in faults)

    def test_fault_free_run_reports_zero_counters(self, small_benchmark, small_config):
        with hard_deadline():
            res = cluster_multiprocessing(
                small_benchmark.collection, small_config, n_processors=3
            )
        assert res.faults is not None
        assert not res.faults.any_faults

    def test_run_parallel_facade_passes_faults(
        self, small_benchmark, small_config, sequential_clusters
    ):
        plan = FaultPlan.of(
            FaultSpec(slave_id=0, kind="kill", at_message=0, incarnation=None)
        )
        with hard_deadline():
            res = run_parallel(
                small_benchmark.collection,
                small_config,
                n_processors=3,
                machine="multiprocessing",
                faults=plan,
                tolerance=_tolerance(),
            )
        assert res.clusters == sequential_clusters
        assert res.faults.slaves_lost >= 1


class TestSimulatedRecovery:
    def test_sim_kill_matches_sequential(
        self, small_benchmark, small_config, sequential_clusters
    ):
        plan = FaultPlan.of(
            FaultSpec(slave_id=1, kind="kill", at_message=1, incarnation=None)
        )
        with hard_deadline():
            rep = simulate_clustering(
                small_benchmark.collection,
                small_config,
                n_processors=4,
                faults=plan,
                tolerance=FaultTolerance(detection_delay=0.001),
            )
        assert rep.result.clusters == sequential_clusters
        assert rep.result.faults.slaves_lost == 1

    def test_sim_kill_every_slave(self, small_benchmark, small_config, sequential_clusters):
        plan = FaultPlan.of(
            FaultSpec(slave_id=0, kind="kill_after_send", at_message=0, incarnation=None),
            FaultSpec(slave_id=1, kind="kill", at_message=0, incarnation=None),
        )
        with hard_deadline():
            rep = simulate_clustering(
                small_benchmark.collection,
                small_config,
                n_processors=3,
                faults=plan,
                tolerance=FaultTolerance(detection_delay=0.001),
            )
        assert rep.result.clusters == sequential_clusters
        assert rep.result.faults.slaves_lost == 2

    def test_sim_faults_are_deterministic(self, small_benchmark, small_config):
        plan = FaultPlan.of(
            FaultSpec(slave_id=0, kind="kill_after_send", at_message=1, incarnation=None)
        )
        runs = [
            simulate_clustering(
                small_benchmark.collection,
                small_config,
                n_processors=4,
                faults=plan,
                tolerance=FaultTolerance(detection_delay=0.001),
            )
            for _ in range(2)
        ]
        assert runs[0].result.clusters == runs[1].result.clusters
        assert runs[0].total_time == runs[1].total_time
        assert runs[0].messages_exchanged == runs[1].messages_exchanged

    def test_sim_delay_changes_time_not_result(self, small_benchmark, small_config):
        base = simulate_clustering(
            small_benchmark.collection, small_config, n_processors=4
        )
        plan = FaultPlan.of(
            FaultSpec(slave_id=0, kind="delay", at_message=1, delay=2.0, incarnation=None)
        )
        slow = simulate_clustering(
            small_benchmark.collection, small_config, n_processors=4, faults=plan
        )
        assert slow.result.clusters == base.result.clusters
        assert slow.total_time > base.total_time
        assert not slow.result.faults.any_faults  # a slow slave is not a lost one

    def test_sim_trace_records_fault_events(self, small_benchmark, small_config):
        from repro.parallel import SimulatedMachine

        plan = FaultPlan.of(
            FaultSpec(slave_id=0, kind="kill", at_message=1, incarnation=None)
        )
        trace = TraceRecorder()
        machine = SimulatedMachine(
            small_benchmark.collection,
            small_config,
            n_processors=3,
            trace=trace,
            faults=plan,
            tolerance=FaultTolerance(detection_delay=0.001),
        )
        machine.run()
        kinds = {e.kind for e in trace.events}
        assert "fault" in kinds
        assert any("crashed" in e.detail for e in trace.faults())


def _mk_pair(i, j, length=12):
    return Pair(length, 2 * i, 0, 2 * j, 0)


def _msg(slave_id, pairs=(), results=(), exhausted=False, pending=False):
    return SlaveMsg(
        slave_id=slave_id,
        results=tuple(results),
        pairs=tuple(pairs),
        exhausted=exhausted,
        has_pending_results=pending,
    )


class TestMasterLogicFaultTransitions:
    def test_slave_lost_requeues_in_flight_work(self):
        m = MasterLogic(n_ests=20, n_slaves=2, batchsize=4, workbuf_capacity=100)
        pairs = [_mk_pair(2 * k, 2 * k + 1) for k in range(4)]
        reply = m.on_message(_msg(0, pairs=pairs))
        assert reply is not None and reply.work  # work dispatched to slave 0
        requeued = m.slave_lost(0)
        assert requeued == len(reply.work)
        assert len(m.workbuf) == requeued
        assert 0 in m.lost and 0 in m.passive

    def test_slave_lost_filters_already_clustered(self):
        m = MasterLogic(n_ests=20, n_slaves=2, batchsize=4, workbuf_capacity=100)
        reply = m.on_message(_msg(0, pairs=[_mk_pair(0, 1), _mk_pair(2, 3)]))
        assert len(reply.work) == 2
        m.manager.seed_union(0, 1)  # merged via another witness meanwhile
        assert m.slave_lost(0) == 1  # only (2,3) comes back

    def test_slave_lost_leaves_wait_queue_and_unblocks_termination(self):
        m = MasterLogic(n_ests=10, n_slaves=2, batchsize=5, workbuf_capacity=50)
        assert m.on_message(_msg(0, exhausted=True)) is None
        assert 0 in m.waiting
        # Slave 1 dies while slave 0 is parked: its loss must not wedge
        # the protocol — termination becomes decidable and slave 0 stops.
        m.slave_lost(1)
        assert 1 not in m.waiting
        drained = dict(m.drain_wait_queue())
        assert 0 in drained and drained[0].stop
        assert m.finished()

    def test_in_flight_tracks_only_unreported_batches(self):
        m = MasterLogic(n_ests=40, n_slaves=1, batchsize=3, workbuf_capacity=100)
        pairs = [_mk_pair(2 * k, 2 * k + 1) for k in range(9)]
        r1 = m.on_message(_msg(0, pairs=pairs, pending=True))
        assert len(r1.work) == 3
        # Next message reports the batch held before r1's work arrived,
        # so exactly r1's batch (plus any new dispatch) stays in flight.
        r2 = m.on_message(_msg(0, pending=True))
        outstanding = [p for batch in m.in_flight[0] for p in batch]
        expected = list(r1.work) + list(r2.work if r2 else ())
        assert outstanding == expected

    def test_slave_revived_rejoins_protocol(self):
        m = MasterLogic(n_ests=10, n_slaves=2, batchsize=5, workbuf_capacity=50)
        m.on_message(_msg(0, exhausted=True))
        m.slave_lost(0)
        assert m.active_slaves == 1
        m.slave_revived(0)
        assert m.active_slaves == 2
        assert 0 not in m.lost and 0 not in m.passive
        assert not m.finished()

    def test_lost_after_clean_stop_is_noop(self):
        m = MasterLogic(n_ests=10, n_slaves=1, batchsize=5, workbuf_capacity=50)
        r = m.on_message(_msg(0, exhausted=True))
        assert r is not None and r.stop
        assert m.slave_lost(0) == 0
        assert m.finished()

    def test_absorb_pairs_admits_through_filter(self):
        m = MasterLogic(n_ests=10, n_slaves=1, batchsize=5, workbuf_capacity=50)
        m.manager.seed_union(0, 1)
        admitted = m.absorb_pairs([_mk_pair(0, 1), _mk_pair(2, 3), _mk_pair(2, 4)])
        assert admitted == 2
        assert m.stats.pairs_offered == 3
        assert m.stats.pairs_admitted == 2


class TestFaultPlanApi:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(slave_id=0, kind="explode")

    def test_incarnation_selection(self):
        plan = FaultPlan.of(
            FaultSpec(slave_id=0, kind="kill", at_message=1, incarnation=0),
            FaultSpec(slave_id=0, kind="kill", at_message=2, incarnation=None),
            FaultSpec(slave_id=1, kind="kill", at_message=0, incarnation=1),
        )
        assert {s.at_message for s in plan.for_slave(0, incarnation=0)} == {1, 2}
        assert {s.at_message for s in plan.for_slave(0, incarnation=3)} == {2}
        assert plan.for_slave(1, incarnation=0) == ()
        assert len(plan.for_slave(1, incarnation=1)) == 1

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            FaultTolerance(slave_timeout=0)
        with pytest.raises(ValueError):
            FaultTolerance(max_restarts=-1)
        assert FaultTolerance(restart_backoff=0.1).backoff_for(2) == pytest.approx(0.4)
