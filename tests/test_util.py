"""Tests for repro.util: RNG plumbing, timers, validation."""

import time

import numpy as np
import pytest

from repro.util import (
    Stopwatch,
    TimingBreakdown,
    check_in_range,
    check_positive,
    check_probability,
    ensure_rng,
    spawn_rngs,
)


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, 10)
        b = ensure_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passes_through_unchanged(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_children_are_independent(self):
        a, b = spawn_rngs(7, 2)
        assert not np.array_equal(a.integers(0, 10**9, 8), b.integers(0, 10**9, 8))

    def test_family_reproducible_from_seed(self):
        fam1 = [g.integers(0, 10**9) for g in spawn_rngs(5, 3)]
        fam2 = [g.integers(0, 10**9) for g in spawn_rngs(5, 3)]
        assert fam1 == fam2

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestStopwatch:
    def test_accumulates_across_cycles(self):
        sw = Stopwatch()
        for _ in range(2):
            sw.start()
            time.sleep(0.002)
            sw.stop()
        assert sw.elapsed >= 0.004

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_running_flag(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running


class TestTimingBreakdown:
    def test_measure_accumulates_by_name(self):
        tb = TimingBreakdown()
        with tb.measure("a"):
            time.sleep(0.002)
        with tb.measure("a"):
            pass
        assert tb.get("a") >= 0.002
        assert tb.get("missing") == 0.0

    def test_total_is_sum(self):
        tb = TimingBreakdown()
        tb.add("x", 1.0)
        tb.add("y", 2.0)
        tb.add("x", 0.5)
        assert tb.total == pytest.approx(3.5)

    def test_as_row_with_order_appends_total(self):
        tb = TimingBreakdown()
        tb.add("x", 1.0)
        tb.add("y", 2.0)
        assert tb.as_row(["y", "x"]) == [2.0, 1.0, 3.0]

    def test_as_row_unknown_component_raises(self):
        """A misspelt component name must not silently render as 0.0."""
        tb = TimingBreakdown()
        tb.add("x", 1.0)
        with pytest.raises(KeyError, match="unknown timing component"):
            tb.as_row(["x", "z"])

    def test_as_row_explicit_zero_fill(self):
        tb = TimingBreakdown()
        tb.add("x", 1.0)
        assert tb.as_row(["x", "z"], missing="zero") == [1.0, 0.0, 1.0]
        with pytest.raises(ValueError):
            tb.as_row(["x"], missing="maybe")

    def test_merge(self):
        a = TimingBreakdown()
        a.add("x", 1.0)
        b = TimingBreakdown()
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.get("x") == 3.0 and a.get("y") == 3.0


class TestValidation:
    def test_check_positive_strict(self):
        check_positive("v", 1)
        with pytest.raises(ValueError):
            check_positive("v", 0)

    def test_check_positive_nonstrict_allows_zero(self):
        check_positive("v", 0, strict=False)
        with pytest.raises(ValueError):
            check_positive("v", -1, strict=False)

    def test_check_probability_bounds(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.01)
        with pytest.raises(ValueError):
            check_probability("p", -0.01)

    def test_check_in_range(self):
        check_in_range("r", 5, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("r", 11, 0, 10)
