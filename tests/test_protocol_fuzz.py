"""Liveness/termination fuzzing of the master protocol.

The state-machine unit tests pin known scenarios; this fuzz harness
drives :class:`MasterLogic` with randomised synthetic slaves (random pair
supplies, random result flows, random exhaustion points) and asserts the
protocol always terminates with every slave stopped, every offered pair
either aligned or provably redundant, and no reply ever lost — the
properties that guarantee the simulated and real engines cannot deadlock.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.protocol import MasterLogic, MasterMsg, SlaveMsg
from repro.pairs import Pair


class _ScriptedSlave:
    """A fake slave honouring the wire protocol with a scripted pair
    supply; alignment always 'succeeds' without merging (results carry
    accepted=False so cluster state stays inert and every pair must be
    dispatched)."""

    def __init__(self, slave_id: int, supply: list[Pair], batchsize: int):
        self.slave_id = slave_id
        self.supply = list(supply)
        self.batchsize = batchsize
        self.nextwork: tuple = ()
        self.done = False
        self.results_reported = 0
        self.pairs_sent = 0

    def _take(self, k: int) -> tuple:
        out = tuple(self.supply[:k])
        del self.supply[:k]
        self.pairs_sent += len(out)
        return out

    def bootstrap(self) -> SlaveMsg:
        p1 = self._take(self.batchsize)
        p2 = self._take(self.batchsize)
        p3 = self._take(self.batchsize)
        self.results_reported += len(p1)
        self.nextwork = p2
        return SlaveMsg(
            slave_id=self.slave_id,
            results=tuple((p, None, False) for p in p1),
            pairs=p3,
            exhausted=not self.supply,
            has_pending_results=bool(p2),
        )

    def step(self, reply: MasterMsg) -> SlaveMsg | None:
        results = tuple((p, None, False) for p in self.nextwork)
        self.results_reported += len(results)
        if reply.stop:
            assert not self.nextwork, "stopped while holding work"
            self.done = True
            return None
        self.nextwork = tuple(reply.work)
        outgoing = self._take(reply.request)
        return SlaveMsg(
            slave_id=self.slave_id,
            results=results,
            pairs=outgoing,
            exhausted=not self.supply,
            has_pending_results=bool(self.nextwork),
        )


@given(
    st.integers(1, 6),  # number of slaves
    st.lists(st.integers(0, 120), min_size=1, max_size=6),  # per-slave supply
    st.integers(1, 20),  # batchsize
    st.integers(0, 10**6),  # interleaving seed
)
@settings(max_examples=120, deadline=None)
def test_protocol_always_terminates(n_slaves, supplies, batchsize, seed):
    import random

    rng = random.Random(seed)
    supplies = (supplies * n_slaves)[:n_slaves]
    n_ests = 4000
    # Distinct pairs so the master's cluster test never filters anything.
    next_id = iter(range(0, n_ests - 2, 2))
    slaves = []
    total_supply = 0
    for k, count in enumerate(supplies):
        pairs = []
        for _ in range(count):
            try:
                i = next(next_id)
            except StopIteration:
                break
            pairs.append(Pair(20, 2 * i, 0, 2 * (i + 1), 0))
        total_supply += len(pairs)
        slaves.append(_ScriptedSlave(k, pairs, batchsize))

    master = MasterLogic(
        n_ests=n_ests,
        n_slaves=len(slaves),
        batchsize=batchsize,
        workbuf_capacity=max(4 * batchsize * len(slaves), 64),
    )

    # Message queue with randomised interleaving.
    inbox: list[SlaveMsg] = [s.bootstrap() for s in slaves]
    steps = 0
    while inbox:
        steps += 1
        assert steps < 20_000, "protocol did not terminate"
        msg = inbox.pop(rng.randrange(len(inbox)))
        reply = master.on_message(msg)
        followups = list(master.drain_wait_queue())
        if reply is not None:
            followups.insert(0, (msg.slave_id, reply))
        for slave_id, rep in followups:
            out = slaves[slave_id].step(rep)
            if out is not None:
                inbox.append(out)

    # Termination: everyone stopped, nothing in flight, no work lost.
    assert master.finished()
    assert all(s.done for s in slaves)
    assert not master.workbuf
    assert all(not s.supply for s in slaves), "pairs left unshipped"
    # Every admitted pair was handed out for alignment.
    assert master.stats.pairs_dispatched == master.stats.pairs_admitted
    # Conservation: with all pairs distinct (nothing filtered), every
    # supplied pair is eventually aligned exactly once — in its slave's
    # bootstrap, or after the master round-trip — and reported back.
    assert master.stats.pairs_admitted == master.stats.pairs_offered
    total_results = sum(s.results_reported for s in slaves)
    assert total_results == total_supply
