"""Tests for Ukkonen's linear-time suffix tree — the sequential baseline
of §3.1, cross-validated against the other two GST engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence import EstCollection
from repro.suffix import build_lcp_forest, build_suffix_array
from repro.suffix.lcp import lcp_array
from repro.suffix.ukkonen import build_ukkonen

dna_lists = st.lists(st.text(alphabet="ACGT", min_size=1, max_size=25), min_size=1, max_size=3)


def _text(seqs):
    return EstCollection.from_strings(seqs).sa_text()[0]


class TestUkkonenStructure:
    @given(dna_lists)
    @settings(max_examples=60, deadline=None)
    def test_every_suffix_is_a_leaf(self, seqs):
        text = _text(seqs)
        tree = build_ukkonen(text)
        assert tree.suffix_starts() == list(range(len(text)))

    @given(dna_lists)
    @settings(max_examples=60, deadline=None)
    def test_internal_nodes_equal_lcp_intervals(self, seqs):
        """The central cross-engine identity: Ukkonen internal nodes and
        enhanced-suffix-array LCP intervals are the same (depth, size)
        multiset."""
        text = _text(seqs)
        tree = build_ukkonen(text)
        sa = build_suffix_array(text)
        forest = build_lcp_forest(lcp_array(sa), min_depth=1)
        expect = sorted(
            (int(forest.depth[i]), int(forest.rb[i] - forest.lb[i] + 1))
            for i in range(forest.n_nodes)
        )
        assert sorted(tree.internal_nodes()) == expect

    def test_repetitive_text(self):
        text = _text(["AAAAAAAA"])
        tree = build_ukkonen(text)
        assert tree.suffix_starts() == list(range(len(text)))
        depths = [d for d, _c in tree.internal_nodes()]
        assert max(depths) == 7  # A^7 shared by two suffixes (fw or rc)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_ukkonen(np.array([], dtype=np.int64))


class TestUkkonenQueries:
    @given(dna_lists, st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_contains_matches_naive_search(self, seqs, seed):
        text = _text(seqs)
        tree = build_ukkonen(text)
        rng = np.random.default_rng(seed)
        tl = text.tolist()
        for _ in range(4):
            # Half genuine substrings, half random patterns.
            if rng.random() < 0.5 and len(tl) > 2:
                a = int(rng.integers(0, len(tl) - 1))
                b = int(rng.integers(a + 1, len(tl) + 1))
                pat = tl[a:b]
            else:
                pat = list(rng.integers(0, int(max(tl)) + 1, size=int(rng.integers(1, 6))))
            naive = any(
                tl[s : s + len(pat)] == pat for s in range(len(tl) - len(pat) + 1)
            )
            assert tree.contains(np.array(pat)) == naive

    def test_contains_whole_string(self):
        seqs = ["ACGTACGTAC"]
        col = EstCollection.from_strings(seqs)
        text, _ = col.sa_text()
        tree = build_ukkonen(text)
        assert tree.contains(col.string(0).astype(np.int64) + col.n_strings)

    def test_does_not_contain_foreign(self):
        col = EstCollection.from_strings(["AAAA"])
        text, _ = col.sa_text()
        tree = build_ukkonen(text)
        # 'AC' never occurs (strings are A^4 and T^4, shifted by 2n=2).
        assert not tree.contains(np.array([2 + 0, 2 + 1]))
