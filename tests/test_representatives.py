"""Tests for cluster representative selection."""

import pytest

from repro.cluster.representatives import select_representatives
from repro.sequence import EstCollection


@pytest.fixture()
def collection():
    return EstCollection.from_strings(
        ["ACGT", "ACGTACGTACGT", "ACGTACGT", "TTTT", "GGGGCCCC"]
    )


class TestLongest:
    def test_picks_longest_member(self, collection):
        reps = select_representatives(collection, [[0, 1, 2], [3, 4]])
        assert reps == [1, 4]

    def test_tie_breaks_to_smaller_id(self):
        col = EstCollection.from_strings(["AAAA", "CCCC", "GG"])
        reps = select_representatives(col, [[0, 1, 2]])
        assert reps == [0]

    def test_singletons(self, collection):
        reps = select_representatives(collection, [[2], [3]])
        assert reps == [2, 3]

    def test_empty_cluster_rejected(self, collection):
        with pytest.raises(ValueError, match="empty cluster"):
            select_representatives(collection, [[]])

    def test_unknown_strategy_rejected(self, collection):
        with pytest.raises(ValueError, match="unknown strategy"):
            select_representatives(collection, [[0]], strategy="best")


class TestConnected:
    def test_requires_merges(self, collection):
        with pytest.raises(ValueError, match="merge records"):
            select_representatives(collection, [[0, 1]], strategy="connected")

    def test_prefers_overlap_central_member(self, small_benchmark, small_config):
        from repro.core import PaceClusterer

        result = PaceClusterer(small_config).cluster(small_benchmark.collection)
        reps = select_representatives(
            small_benchmark.collection,
            result.clusters,
            strategy="connected",
            merges=result.merges,
        )
        assert len(reps) == result.n_clusters
        for rep, members in zip(reps, result.clusters):
            assert rep in members

    def test_falls_back_to_length_without_evidence(self, collection):
        reps = select_representatives(
            collection, [[0, 1, 2]], strategy="connected", merges=[]
        )
        assert reps == [1]

    def test_merge_evidence_beats_length(self):
        from repro.align.scoring import AlignmentResult, OverlapPattern
        from repro.cluster.manager import MergeRecord
        from repro.pairs import Pair

        col = EstCollection.from_strings(["ACGTACGTACGTACGTACGT", "ACGTACGT", "ACGTAC"])
        # EST 1 (short) carries all the merge evidence.
        res = AlignmentResult(16.0, 0, 8, 0, 8, OverlapPattern.A_CONTAINS_B, 0)
        merges = [
            MergeRecord(Pair(8, 2, 0, 4, 0), res),  # (1, 2)
        ]
        reps = select_representatives(
            col, [[0, 1, 2]], strategy="connected", merges=merges
        )
        assert reps == [1]
