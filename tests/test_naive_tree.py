"""Tests for the paper-faithful bucket trie and its DFS-array encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence import EstCollection
from repro.suffix import (
    TrieNode,
    build_bucket_tree,
    build_gst_forest,
    from_trie,
)
from repro.suffix.buckets import enumerate_bucket_suffixes

dna_lists = st.lists(st.text(alphabet="ACGT", min_size=2, max_size=25), min_size=1, max_size=4)


def _leaf_suffix_set(root: TrieNode):
    out = []
    for node in root.iter_postorder():
        out.extend(node.suffixes)
    return out


class TestBucketTree:
    @given(dna_lists, st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_leaves_cover_bucket_exactly(self, seqs, w):
        col = EstCollection.from_strings(seqs)
        for key, suffixes in enumerate_bucket_suffixes(col, w).items():
            tree = build_bucket_tree(col, suffixes, w)
            assert sorted(_leaf_suffix_set(tree)) == sorted(suffixes)

    @given(dna_lists, st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_leaf_suffixes_identical_and_depths_consistent(self, seqs, w):
        col = EstCollection.from_strings(seqs)
        for suffixes in enumerate_bucket_suffixes(col, w).values():
            tree = build_bucket_tree(col, suffixes, w)
            for node in tree.iter_postorder():
                if node.is_leaf:
                    contents = {
                        tuple(col.string(k)[off:].tolist()) for k, off in node.suffixes
                    }
                    assert len(contents) == 1
                    (content,) = contents
                    assert len(content) == node.string_depth
                else:
                    for child in node.children:
                        assert child.string_depth >= node.string_depth

    @given(dna_lists, st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_path_labels_share_prefix(self, seqs, w):
        col = EstCollection.from_strings(seqs)

        def check(node):
            prefixes = {
                tuple(col.string(k)[off : off + node.string_depth].tolist())
                for k, off in _leaf_suffix_set(node)
            }
            assert len(prefixes) == 1
            for child in node.children:
                check(child)

        for suffixes in enumerate_bucket_suffixes(col, w).values():
            check(build_bucket_tree(col, suffixes, w))

    def test_internal_nodes_branch(self):
        # Compaction: no internal node with exactly one child unless it
        # also carries an ended-suffix leaf child... in this trie every
        # internal node must have >= 2 children (ended leaf counts).
        col = EstCollection.from_strings(["ACGTACGTT", "CGTACGTAC"])
        for suffixes in enumerate_bucket_suffixes(col, 2).values():
            tree = build_bucket_tree(col, suffixes, 2)
            for node in tree.iter_postorder():
                if not node.is_leaf:
                    assert len(node.children) >= 2

    def test_empty_bucket_rejected(self):
        col = EstCollection.from_strings(["ACGT"])
        with pytest.raises(ValueError):
            build_bucket_tree(col, [], 2)

    def test_multi_string_leaf(self):
        # Identical suffixes of different strings share one leaf.
        col = EstCollection.from_strings(["TTAC", "GGAC"])
        buckets = enumerate_bucket_suffixes(col, 2)
        key_ac = 0 * 4 + 1
        tree = build_bucket_tree(col, buckets[key_ac], 2)
        assert tree.is_leaf
        assert len(tree.suffixes) == 2
        assert tree.string_depth == 2


class TestDfsArray:
    @given(dna_lists, st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_encoding_roundtrips_structure(self, seqs, w):
        col = EstCollection.from_strings(seqs)
        forest = build_gst_forest(col, w)
        dfs = from_trie(forest)

        # Walk both representations side by side.
        def compare(obj_node: TrieNode, idx: int) -> int:
            assert dfs.string_depth[idx] == obj_node.string_depth
            assert dfs.is_leaf(idx) == obj_node.is_leaf
            if obj_node.is_leaf:
                assert sorted(dfs.leaf_suffixes(idx)) == sorted(obj_node.suffixes)
                return idx
            kids = list(dfs.children(idx))
            assert len(kids) == len(obj_node.children)
            last = idx
            for obj_child, dfs_child in zip(obj_node.children, kids):
                assert dfs_child == last + 1 if obj_child is obj_node.children[0] else True
                last = compare(obj_child, dfs_child)
            assert dfs.rightmost_leaf[idx] == last
            return last

        roots = [forest[k] for k in sorted(forest)]
        for root_obj, root_idx in zip(roots, dfs.roots.tolist()):
            compare(root_obj, root_idx)

    def test_paper_rules_on_known_tree(self):
        col = EstCollection.from_strings(["AAC", "AAG"])
        dfs = from_trie(build_gst_forest(col, 1))
        # Rightmost-leaf pointer of a leaf points to itself.
        for u in range(dfs.n_nodes):
            if dfs.is_leaf(u):
                assert dfs.rightmost_leaf[u] == u
        # First child is stored next to its parent.
        for u in range(dfs.n_nodes):
            if not dfs.is_leaf(u):
                assert dfs.first_child(u) == u + 1

    def test_first_child_of_leaf_rejected(self):
        col = EstCollection.from_strings(["ACGT"])
        dfs = from_trie(build_gst_forest(col, 2))
        leaf = next(u for u in range(dfs.n_nodes) if dfs.is_leaf(u))
        with pytest.raises(ValueError):
            dfs.first_child(leaf)

    def test_subtree_nodes_contiguous(self):
        col = EstCollection.from_strings(["ACGTAACGT", "CGTAACGTA"])
        dfs = from_trie(build_gst_forest(col, 2))
        for u in range(dfs.n_nodes):
            block = dfs.subtree_nodes(u)
            for v in block:
                # Every node in the block is within u's subtree: its
                # rightmost leaf cannot exceed u's.
                assert dfs.rightmost_leaf[v] <= dfs.rightmost_leaf[u]

    def test_empty_forest_allowed(self):
        # All suffixes shorter than the window: no buckets, no nodes.
        dfs = from_trie([])
        assert dfs.n_nodes == 0 and len(dfs.roots) == 0
