"""Tests for the seed-length acceptance analysis (§2 premise)."""

import pytest

from repro.metrics.heuristic import SeedLengthBin, seed_length_acceptance


class TestSeedLengthBins:
    def test_bin_properties(self):
        b = SeedLengthBin(lo=10, hi=20, n_pairs=4, n_accepted=3, mean_ratio=0.8)
        assert b.acceptance_rate == pytest.approx(0.75)
        assert SeedLengthBin(0, 10, 0, 0, 0.0).acceptance_rate == 0.0


class TestSeedLengthAcceptance:
    def test_curve_shape_on_benchmark(self, small_benchmark, small_config):
        bins = seed_length_acceptance(
            small_benchmark.collection, config=small_config, bin_width=15
        )
        assert bins
        assert all(b.lo >= small_config.psi - 15 for b in bins)
        # Bins sorted by seed length, total pairs positive.
        los = [b.lo for b in bins]
        assert los == sorted(los)
        assert sum(b.n_pairs for b in bins) > 0
        # The premise: the longest-seed bin accepts at a higher rate than
        # the shortest.
        assert bins[-1].acceptance_rate >= bins[0].acceptance_rate

    def test_each_pair_counted_once(self, small_benchmark, small_config):
        from repro.pairs import SaPairGenerator
        from repro.suffix import SuffixArrayGst

        gst = SuffixArrayGst.build(small_benchmark.collection)
        distinct = {
            p.key for p in SaPairGenerator(gst, psi=small_config.psi).pairs()
        }
        bins = seed_length_acceptance(
            small_benchmark.collection, config=small_config, gst=gst
        )
        assert sum(b.n_pairs for b in bins) == len(distinct)

    def test_max_pairs_caps_work(self, small_benchmark, small_config):
        bins = seed_length_acceptance(
            small_benchmark.collection, config=small_config, max_pairs=10
        )
        assert sum(b.n_pairs for b in bins) == 10
