"""Sharded-master tests: topology planning, cross-shard union merging,
and end-to-end partition identity on both engines.

The oracle throughout is the partition-identity invariant: the final
clusters are the connected components of the accepted-pair graph, so a
run with any shard count — under any sync schedule, any interleaving of
merges and exchanges, and with injected faults — must produce exactly
the clusters of the sequential :class:`PaceClusterer` run.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import AlignmentResult, OverlapPattern
from repro.cluster import ClusterManager, UnionFind
from repro.core import PaceClusterer
from repro.pairs import Pair
from repro.parallel import (
    FaultPlan,
    FaultSpec,
    FaultTolerance,
    ShardedMaster,
    assign_buckets,
    cluster_multiprocessing,
    plan_shards,
    simulate_clustering,
)
from repro.parallel.partition import BucketAssignment


def _ranges(sizes: list[int]) -> list[tuple[int, int, int]]:
    """Synthetic (key, lo, hi) bucket ranges with the given sizes."""
    out, lo = [], 0
    for key, size in enumerate(sizes):
        out.append((key, lo, lo + size))
        lo += size
    return out


class TestPlanShards:
    def test_single_shard_reproduces_unsharded_assignment(self):
        ranges = _ranges([7, 3, 9, 1, 4, 4, 2])
        plan = plan_shards(ranges, n_slaves=3, n_shards=1)
        flat = assign_buckets(ranges, 3)
        assert plan.n_shards == 1
        assert plan.shard_slaves == [[0, 1, 2]]
        assert plan.slave_ranges == flat.per_processor
        assert plan.slave_loads == flat.loads

    def test_bucket_ownership_is_a_partition(self):
        ranges = _ranges([5, 8, 2, 2, 11, 3, 6, 1, 9])
        plan = plan_shards(ranges, n_slaves=6, n_shards=3)
        seen: list[tuple[int, int, int]] = []
        for per_slave in plan.slave_ranges:
            seen.extend(per_slave)
        assert sorted(seen) == sorted(ranges)
        # Shard-level ownership is disjoint too, and each slave's ranges
        # fall inside its shard's ownership.
        for k, shard_id in enumerate(plan.slave_shard):
            assert k in plan.shard_slaves[shard_id]
            for r in plan.slave_ranges[k]:
                assert r in plan.shard_ranges[shard_id]

    def test_validation(self):
        ranges = _ranges([4, 4])
        with pytest.raises(ValueError):
            plan_shards(ranges, n_slaves=4, n_shards=0)
        with pytest.raises(ValueError, match="cannot exceed slaves"):
            plan_shards(ranges, n_slaves=2, n_shards=3)

    @given(
        sizes=st.lists(st.integers(0, 50), min_size=0, max_size=24),
        n_slaves=st.integers(1, 8),
        n_shards=st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_bucket_assigned_exactly_once(self, sizes, n_slaves, n_shards):
        if n_shards > n_slaves:
            return
        ranges = _ranges(sizes)
        plan = plan_shards(ranges, n_slaves, n_shards)
        assert plan.n_slaves == n_slaves
        assert sorted(r for rs in plan.slave_ranges for r in rs) == sorted(ranges)
        assert sorted(i for ids in plan.shard_slaves for i in ids) == list(
            range(n_slaves)
        )
        assert plan.imbalance >= 1.0


class TestImbalanceConvention:
    def test_empty_assignment_is_perfectly_balanced(self):
        assert BucketAssignment(per_processor=[], loads=[]).imbalance == 1.0

    def test_all_zero_loads_are_perfectly_balanced(self):
        asg = assign_buckets([], 3)
        assert asg.loads == [0, 0, 0]
        assert asg.imbalance == 1.0

    def test_uneven_loads(self):
        asg = BucketAssignment(per_processor=[[], []], loads=[30, 10])
        assert asg.imbalance == pytest.approx(1.5)

    def test_zero_load_plan_reports_one(self):
        plan = plan_shards([], n_slaves=4, n_shards=2)
        assert plan.imbalance == 1.0


class TestBatchedFinds:
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40
        ),
        queries=st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_find_many_matches_scalar_find(self, edges, queries):
        uf = UnionFind(20)
        for a, b in edges:
            uf.union(a, b)
        flat = [x for q in queries for x in q]
        roots = uf.find_many(flat)
        assert roots == [uf.find(x) for x in flat]

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=30
        ),
        queries=st.lists(
            st.tuples(st.integers(0, 7), st.integers(8, 15)), max_size=20
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_cluster_batch_matches_scalar(self, edges, queries):
        manager = ClusterManager(16)
        for a, b in edges:
            manager.seed_union(a, b)
        pairs = [_pair(a, b) for a, b in queries]
        assert manager.same_cluster_batch(pairs) == [
            manager.same_cluster(a, b) for a, b in queries
        ]


def _pair(a: int, b: int) -> Pair:
    return Pair(length=8, string_a=2 * a, offset_a=0, string_b=2 * b, offset_b=0)


_RESULT = AlignmentResult(80.0, 0, 8, 0, 8, OverlapPattern.A_CONTAINS_B, 0)


def _sharded(n_shards: int, n_ests: int = 24) -> ShardedMaster:
    plan = plan_shards(_ranges([4] * max(n_shards, 2)), n_shards, n_shards)
    return ShardedMaster(
        plan, n_ests=n_ests, batchsize=32, workbuf_capacity=1024
    )


class TestCrossShardMerge:
    N_ESTS = 24

    def _reference(self, edges) -> list[list[int]]:
        uf = UnionFind(self.N_ESTS)
        for a, b in edges:
            uf.union(a, b)
        return uf.components()

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 11), st.integers(12, 23)),
            max_size=40,
        ),
        owners=st.lists(st.integers(0, 2), min_size=40, max_size=40),
        sync_points=st.sets(st.integers(0, 40), max_size=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_partition_independent_of_sync_interleaving(
        self, edges, owners, sync_points
    ):
        """Any assignment of accepted edges to shards and any schedule of
        sync rounds between them yields the single-master partition."""
        master = _sharded(3, self.N_ESTS)
        for i, (a, b) in enumerate(edges):
            if i in sync_points:
                master.sync()
            shard = master.shards[owners[i]]
            shard.logic.manager.merge(_pair(a, b), _RESULT)
        assert master.combined().clusters() == self._reference(edges)

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 11), st.integers(12, 23)),
            min_size=1,
            max_size=30,
        ),
        owners=st.lists(st.integers(0, 2), min_size=30, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_sync_is_idempotent_and_quiesces(self, edges, owners):
        """A second sync with no new merges exchanges nothing: absorbed
        edges are never re-exported (no gossip echo)."""
        master = _sharded(3, self.N_ESTS)
        for i, (a, b) in enumerate(edges):
            master.shards[owners[i]].logic.manager.merge(_pair(a, b), _RESULT)
        master.sync()
        before = master.combined().clusters()
        second = master.sync()
        assert all(applied == 0 for applied, _ in second)
        assert master.combined().clusters() == before
        assert master.sync_rounds == 2

    def test_single_shard_sync_is_identity(self):
        master = _sharded(1, self.N_ESTS)
        master.shards[0].logic.manager.merge(_pair(0, 12), _RESULT)
        assert master.sync() == [(0, 0)]
        assert master.sync_rounds == 0
        assert master.combined() is master.shards[0].logic.manager


@pytest.fixture(scope="module")
def sequential_clusters(small_benchmark, small_config):
    return PaceClusterer(small_config).cluster(small_benchmark.collection).clusters


class TestEngineIdentity:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_sim_matches_sequential(
        self, small_benchmark, small_config, sequential_clusters, n_shards
    ):
        rep = simulate_clustering(
            small_benchmark.collection,
            replace(small_config, shard_sync_interval=1e-4),
            n_processors=9,
            master_shards=n_shards,
        )
        assert rep.result.clusters == sequential_clusters
        assert rep.n_shards == n_shards
        if n_shards > 1:
            assert len(rep.shard_busy_times) == n_shards
            assert rep.sync_rounds >= 1

    def test_sim_shard_count_does_not_change_partition_under_faults(
        self, small_benchmark, small_config, sequential_clusters
    ):
        plan = FaultPlan.of(
            FaultSpec(slave_id=1, kind="kill", at_message=1, incarnation=None),
            FaultSpec(slave_id=3, kind="kill_after_send", at_message=0, incarnation=None),
        )
        rep = simulate_clustering(
            small_benchmark.collection,
            replace(small_config, master_shards=2),
            n_processors=5,
            faults=plan,
            tolerance=FaultTolerance(detection_delay=0.001),
        )
        assert rep.result.clusters == sequential_clusters
        assert rep.result.faults.slaves_lost == 2

    def test_sim_whole_shard_crash_degrades_locally(
        self, small_benchmark, small_config, sequential_clusters
    ):
        """Every slave of shard 1 dies; that shard finishes its own
        buckets in degraded mode while shard 0's slaves keep working."""
        plan = FaultPlan.of(
            FaultSpec(slave_id=2, kind="kill", at_message=0, incarnation=None),
            FaultSpec(slave_id=3, kind="kill", at_message=0, incarnation=None),
        )
        rep = simulate_clustering(
            small_benchmark.collection,
            replace(small_config, master_shards=2),
            n_processors=5,
            faults=plan,
            tolerance=FaultTolerance(detection_delay=0.001),
        )
        assert rep.result.clusters == sequential_clusters
        assert rep.result.faults.slaves_lost == 2

    def test_sim_deterministic_across_repeats(self, small_benchmark, small_config):
        runs = [
            simulate_clustering(
                small_benchmark.collection,
                small_config,
                n_processors=9,
                master_shards=3,
            )
            for _ in range(2)
        ]
        assert runs[0].result.clusters == runs[1].result.clusters
        assert runs[0].total_time == runs[1].total_time
        assert runs[0].sync_rounds == runs[1].sync_rounds
        assert runs[0].unions_exchanged == runs[1].unions_exchanged

    def test_mp_matches_sequential(
        self, small_benchmark, small_config, sequential_clusters
    ):
        res = cluster_multiprocessing(
            small_benchmark.collection,
            replace(small_config, master_shards=2, shard_sync_interval=0.05),
            n_processors=5,
        )
        assert res.clusters == sequential_clusters

    def test_mp_matches_sequential_under_faults(
        self, small_benchmark, small_config, sequential_clusters
    ):
        plan = FaultPlan.of(
            FaultSpec(
                slave_id=1, kind="kill_after_send", at_message=1, incarnation=None
            )
        )
        res = cluster_multiprocessing(
            small_benchmark.collection,
            replace(small_config, master_shards=2, shard_sync_interval=0.05),
            n_processors=5,
            faults=plan,
            tolerance=FaultTolerance(
                slave_timeout=15.0, poll_interval=0.05, max_restarts=0
            ),
        )
        assert res.clusters == sequential_clusters
        assert res.faults.slaves_lost >= 1
