"""The vectorised pair engine against its scalar oracle.

`VectorPairGenerator` must be a pure performance layer: for any input it
yields the *exact* pair sequence of `SaPairGenerator` — same multiset and
same order within and across depths — with identical `PairGenStats` and
telemetry counters.  These tests pin that contract down with hypothesis
driving random overlapping collections (including reverse-complement
duplicates) across ψ edge values, mirroring tests/test_batch_align.py.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClusteringConfig, PaceClusterer
from repro.pairs import (
    OnDemandPairGenerator,
    SaPairGenerator,
    VectorPairGenerator,
    make_pair_generator,
)
from repro.pairs.batch import PAIR_BLOCK_SIZE
from repro.pairs.sa_generator import REITERATION_ERROR
from repro.sequence import EstCollection
from repro.suffix import SuffixArrayGst
from repro.telemetry import Telemetry

from test_pair_generation import _random_overlapping_collection

seeds = st.integers(0, 10**6)


def _both_streams(col: EstCollection, psi: int, **vector_kwargs):
    gst = SuffixArrayGst.build(col)
    scalar = SaPairGenerator(gst, psi)
    vector = VectorPairGenerator(gst, psi, **vector_kwargs)
    return scalar, vector, list(scalar.pairs()), list(vector.pairs())


class TestCrossEngineEquivalence:
    @given(seeds, st.integers(2, 8), st.integers(4, 12))
    @settings(max_examples=60, deadline=None)
    def test_identical_streams_random_collections(self, seed, n, psi):
        """Same pairs, same order — not just the same set."""
        rng = np.random.default_rng(seed)
        col = _random_overlapping_collection(rng, n)
        _, _, s, v = _both_streams(col, psi)
        assert s == v

    @given(seeds, st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_reverse_complement_duplicates(self, seed, n):
        """Collections where every read also appears reverse-complemented
        exercise the Lemma 4 complemented-pair discard heavily."""
        rng = np.random.default_rng(seed)
        base = _random_overlapping_collection(rng, n)
        seqs = []
        for i in range(base.n_ests):
            s = base.est(i)
            seqs.append(s.copy())
            seqs.append((3 - s)[::-1].copy())
        col = EstCollection(seqs)
        _, _, s, v = _both_streams(col, 5)
        assert s == v

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_psi_edge_values(self, seed):
        """ψ = 1 (every depth qualifies) and ψ beyond the longest read
        (empty forest) are the boundary regimes of forest construction."""
        rng = np.random.default_rng(seed)
        col = _random_overlapping_collection(rng, 4)
        for psi in (1, 2, 200):
            _, _, s, v = _both_streams(col, psi)
            assert s == v

    @given(seeds, st.integers(2, 6), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_ranges_partition_parity(self, seed, n, parts):
        """The slave path: generation restricted to rank sub-ranges."""
        rng = np.random.default_rng(seed)
        col = _random_overlapping_collection(rng, n)
        gst = SuffixArrayGst.build(col)
        hi = len(gst.sa_struct.sa)
        cuts = sorted({int(c) for c in rng.integers(0, hi + 1, size=parts - 1)})
        bounds = [0, *cuts, hi]
        ranges = list(zip(bounds[:-1], bounds[1:]))
        s = list(SaPairGenerator(gst, 4, ranges=ranges).pairs())
        v = list(VectorPairGenerator(gst, 4, ranges=ranges).pairs())
        assert s == v

    @given(seeds, st.integers(2, 7))
    @settings(max_examples=30, deadline=None)
    def test_stats_parity(self, seed, n):
        """All four public PairGenStats counters agree after a full drain
        (nodes, raw products, emitted pairs, and the peak-lset high-water
        mark of the paper's space claim)."""
        rng = np.random.default_rng(seed)
        col = _random_overlapping_collection(rng, n)
        scalar, vector, s, v = _both_streams(col, 5)
        assert s == v
        assert scalar.stats == vector.stats

    @given(seeds, st.integers(1, 17))
    @settings(max_examples=20, deadline=None)
    def test_block_size_does_not_change_the_stream(self, seed, block_size):
        rng = np.random.default_rng(seed)
        col = _random_overlapping_collection(rng, 5)
        _, _, s, v = _both_streams(col, 4, block_size=block_size)
        assert s == v


class TestGuards:
    def test_scalar_raises_on_reiteration(self):
        rng = np.random.default_rng(0)
        gst = SuffixArrayGst.build(_random_overlapping_collection(rng, 3))
        gen = SaPairGenerator(gst, 5)
        list(gen.pairs())
        with pytest.raises(RuntimeError, match="already iterated"):
            gen.pairs()

    def test_vector_raises_on_reiteration(self):
        rng = np.random.default_rng(0)
        gst = SuffixArrayGst.build(_random_overlapping_collection(rng, 3))
        gen = VectorPairGenerator(gst, 5)
        list(gen.pairs())
        with pytest.raises(RuntimeError, match="already iterated"):
            gen.pairs()

    def test_iter_protocol_hits_the_same_guard(self):
        rng = np.random.default_rng(1)
        gst = SuffixArrayGst.build(_random_overlapping_collection(rng, 3))
        for gen in (SaPairGenerator(gst, 5), VectorPairGenerator(gst, 5)):
            list(iter(gen))
            with pytest.raises(RuntimeError, match="already iterated"):
                iter(gen)

    def test_guard_message_is_shared(self):
        assert "already iterated" in REITERATION_ERROR

    def test_vector_rejects_bad_parameters(self):
        rng = np.random.default_rng(2)
        gst = SuffixArrayGst.build(_random_overlapping_collection(rng, 3))
        with pytest.raises(ValueError, match="psi"):
            VectorPairGenerator(gst, 0)
        with pytest.raises(ValueError, match="block_size"):
            VectorPairGenerator(gst, 5, block_size=0)


class TestTelemetryParity:
    def _drain_with_telemetry(self, gen_cls, gst, psi):
        tel = Telemetry()
        gen = gen_cls(gst, psi, telemetry=tel)
        pairs = list(gen.pairs())
        return pairs, tel.registry.snapshot()

    def test_counters_match_scalar_engine(self):
        rng = np.random.default_rng(7)
        gst = SuffixArrayGst.build(_random_overlapping_collection(rng, 8))
        s_pairs, s_snap = self._drain_with_telemetry(SaPairGenerator, gst, 4)
        v_pairs, v_snap = self._drain_with_telemetry(VectorPairGenerator, gst, 4)
        assert s_pairs == v_pairs
        s_counters = {
            k: v for k, v in s_snap["counters"].items() if k.startswith("pairs.")
        }
        v_counters = {
            k: v
            for k, v in v_snap["counters"].items()
            if k.startswith("pairs.") and k != "pairs.block_size"
        }
        assert s_counters == v_counters
        assert s_counters["pairs.nodes"] > 0

    def test_vector_engine_records_block_size_histogram(self):
        rng = np.random.default_rng(8)
        gst = SuffixArrayGst.build(_random_overlapping_collection(rng, 8))
        tel = Telemetry()
        gen = VectorPairGenerator(gst, 4, block_size=3, telemetry=tel)
        n_pairs = len(list(gen.pairs()))
        hist = tel.registry.snapshot()["histograms"]["pairs.block_size"]
        assert hist["count"] >= 1
        assert hist["sum"] == n_pairs

    def test_flush_happens_on_early_close(self):
        """Abandoning the stream mid-way still flushes pairs.nodes/raw."""
        rng = np.random.default_rng(9)
        gst = SuffixArrayGst.build(_random_overlapping_collection(rng, 8))
        tel = Telemetry()
        gen = VectorPairGenerator(gst, 4, telemetry=tel)
        it = gen.pairs()
        next(it)
        it.close()
        counters = tel.registry.snapshot()["counters"]
        assert "pairs.nodes" in counters and "pairs.raw" in counters


class TestFactory:
    def test_selects_engine_from_config(self):
        rng = np.random.default_rng(3)
        gst = SuffixArrayGst.build(_random_overlapping_collection(rng, 3))
        cfg_s = ClusteringConfig.small_reads(psi=6, pair_engine="scalar")
        cfg_v = ClusteringConfig.small_reads(psi=6, pair_engine="vector")
        assert isinstance(make_pair_generator(gst, cfg_s), SaPairGenerator)
        gen = make_pair_generator(gst, cfg_v)
        assert isinstance(gen, VectorPairGenerator)
        assert gen.psi == 6
        assert gen.block_size == PAIR_BLOCK_SIZE

    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="pair_engine"):
            ClusteringConfig(pair_engine="simd")

    def test_config_rejects_vector_on_tree_backend(self):
        with pytest.raises(ValueError, match="suffix_array"):
            ClusteringConfig(backend="tree", pair_engine="vector")


class TestPipelineIntegration:
    def test_clusters_identical_across_engines(self):
        """End-to-end: the sequential pipeline produces the same partition
        (and the same pair counters) under either engine."""
        rng = np.random.default_rng(11)
        col = _random_overlapping_collection(rng, 20)
        results = {}
        for engine in ("scalar", "vector"):
            cfg = ClusteringConfig.small_reads(w=4, psi=8, pair_engine=engine)
            tel = Telemetry()
            res = PaceClusterer(cfg).cluster(col, telemetry=tel)
            counters = tel.registry.snapshot()["counters"]
            results[engine] = (
                res.labels(),
                counters.get("pairs.nodes"),
                counters.get("pairs.raw"),
            )
        assert results["scalar"] == results["vector"]

    def test_vector_stream_through_ondemand_wrapper(self):
        """The chunked emission must preserve on-demand batch semantics."""
        rng = np.random.default_rng(12)
        gst = SuffixArrayGst.build(_random_overlapping_collection(rng, 10))
        reference = list(SaPairGenerator(gst, 4).pairs())
        source = OnDemandPairGenerator(
            VectorPairGenerator(gst, 4, block_size=5).pairs()
        )
        got = []
        while not source.exhausted:
            got.extend(source.next_batch(7))
        assert got == reference
        assert source.produced == len(reference)
