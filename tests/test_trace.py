"""Tests for simulator event tracing: causality, accounting parity,
rendering."""

import pytest

from repro.parallel import SimulatedMachine
from repro.parallel.trace import TraceEvent, TraceRecorder, render_timeline, utilisation


@pytest.fixture()
def traced_run(small_benchmark, small_config):
    trace = TraceRecorder()
    machine = SimulatedMachine(
        small_benchmark.collection, small_config, n_processors=4, trace=trace
    )
    report = machine.run()
    return trace, report


class TestTraceRecorder:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            TraceEvent("compute", "master", 2.0, 1.0)

    def test_basic_recording(self):
        tr = TraceRecorder()
        tr.send("master", 1.0, "x")
        tr.recv("slave0", 2.0)
        tr.compute("slave0", 2.0, 3.0, "work")
        assert len(tr) == 3
        assert [e.kind for e in tr.ordered()] == ["send", "recv", "compute"]
        assert len(tr.by_actor("slave0")) == 2


class TestSimulatorTracing:
    def test_events_recorded(self, traced_run):
        trace, report = traced_run
        assert len(trace) > 0
        kinds = {e.kind for e in trace.events}
        assert kinds == {"send", "recv", "compute"}

    def test_all_events_within_run(self, traced_run):
        trace, report = traced_run
        for ev in trace.events:
            assert 0 <= ev.start <= ev.end <= report.total_time + 1e-12

    def test_causality_sends_precede_receives(self, traced_run):
        """Every receive is preceded by a matching send from the peer at
        an earlier time (message latency is strictly positive)."""
        trace, _report = traced_run
        sends = sorted(e.start for e in trace.events if e.kind == "send")
        for recv in (e for e in trace.events if e.kind == "recv"):
            assert any(s < recv.start for s in sends), recv

    def test_master_compute_intervals_serialise(self, traced_run):
        """The master is one processor: its compute intervals never
        overlap."""
        trace, _report = traced_run
        intervals = sorted(
            (e.start, e.end) for e in trace.by_actor("master") if e.kind == "compute"
        )
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-12

    def test_master_busy_matches_report(self, traced_run):
        trace, report = traced_run
        util = utilisation(trace, report.total_time)
        assert util["master"] == pytest.approx(report.master_busy_fraction, rel=1e-9)

    def test_send_count_matches_messages(self, traced_run):
        trace, report = traced_run
        sends = sum(1 for e in trace.events if e.kind == "send")
        assert sends == report.messages_exchanged

    def test_tracing_does_not_change_results(self, small_benchmark, small_config):
        plain = SimulatedMachine(
            small_benchmark.collection, small_config, n_processors=4
        ).run()
        traced = SimulatedMachine(
            small_benchmark.collection,
            small_config,
            n_processors=4,
            trace=TraceRecorder(),
        ).run()
        assert plain.result.clusters == traced.result.clusters
        assert plain.total_time == traced.total_time


class TestRendering:
    def test_timeline_renders(self, traced_run):
        trace, _report = traced_run
        text = render_timeline(trace, max_events=10)
        assert "master" in text and "slave" in text
        assert "more events" in text  # truncation notice

    def test_empty_timeline(self):
        assert "actor" in render_timeline(TraceRecorder())


class TestDegenerateInputs:
    def test_utilisation_empty_trace(self):
        assert utilisation(TraceRecorder(), 10.0) == {}

    def test_utilisation_zero_total_time(self):
        """A trivial run (total_time == 0) yields zero fractions, never a
        ZeroDivisionError."""
        tr = TraceRecorder()
        tr.compute("master", 0.0, 0.0, "noop")
        tr.compute("slave0", 0.0, 0.0, "noop")
        assert utilisation(tr, 0.0) == {"master": 0.0, "slave0": 0.0}
        assert utilisation(tr, -1.0) == {"master": 0.0, "slave0": 0.0}

    def test_total_span(self):
        tr = TraceRecorder()
        assert tr.total_span() == 0.0
        tr.compute("master", 1.0, 4.0)
        tr.send("master", 2.0)
        assert tr.total_span() == 4.0

    def test_extend_absorbs_foreign_events(self):
        tr = TraceRecorder()
        tr.send("master", 1.0)
        other = [TraceEvent("recv", "slave0", 2.0, 2.0)]
        tr.extend(other)
        assert len(tr) == 2
        assert [e.actor for e in tr.ordered()] == ["master", "slave0"]

    def test_single_event_timeline_and_utilisation(self):
        """One compute interval: the timeline shows exactly it (no
        truncation notice) and utilisation is its busy fraction."""
        tr = TraceRecorder()
        tr.compute("slave0", 1.0, 3.0, "only")
        text = render_timeline(tr, max_events=60)
        assert text.count("\n") == 1  # header + the one event
        assert "only" in text and "more events" not in text
        assert utilisation(tr, 4.0) == {"slave0": 0.5}
        assert tr.total_span() == 3.0

    def test_single_instantaneous_event(self):
        """A lone send has zero busy time: it renders but utilises nobody."""
        tr = TraceRecorder()
        tr.send("master", 2.5)
        assert "send" in render_timeline(tr)
        assert utilisation(tr, 10.0) == {}


class TestDistinctOriginMerge:
    def test_extend_offset_rebases_foreign_clock(self):
        """Merging records from streams with different time origins (a
        simulator trace starts at 0.0; an mp trace's meta origin is the
        master's monotonic start): extend(offset=their_origin - ours)
        puts both on one axis."""
        merged = TraceRecorder()
        merged.compute("master", 5.0, 6.0)  # our clock
        sim_events = [
            TraceEvent("compute", "slave0", 0.0, 1.0, "sim"),
            TraceEvent("send", "slave0", 1.0, 1.0, "sim"),
        ]
        merged.extend(sim_events, offset=5.0)
        ordered = merged.ordered()
        assert [e.start for e in ordered] == [5.0, 5.0, 6.0]
        # originals untouched (rebasing copies, never mutates)
        assert sim_events[0].start == 0.0

    def test_zero_offset_is_identity(self):
        tr = TraceRecorder()
        events = [TraceEvent("recv", "slave1", 3.0, 3.0)]
        tr.extend(events, offset=0.0)
        assert tr.events[0] is events[0]

    def test_merged_utilisation_spans_both_sources(self):
        tr = TraceRecorder()
        tr.compute("master", 0.0, 2.0)
        tr.extend([TraceEvent("compute", "slave0", 0.0, 1.0)], offset=2.0)
        util = utilisation(tr, 4.0)
        assert util == {"master": 0.5, "slave0": 0.25}
        assert tr.total_span() == 3.0
