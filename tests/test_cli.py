"""Tests for the pace-est command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def simulated_fasta(tmp_path):
    fa = tmp_path / "bench.fa"
    truth = tmp_path / "truth.tsv"
    rc = main(
        [
            "simulate", str(fa),
            "--genes", "6", "--coverage", "9", "--read-length", "120",
            "--seed", "4", "--truth", str(truth),
        ]
    )
    assert rc == 0
    return fa, truth


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cluster_defaults_follow_paper(self):
        args = build_parser().parse_args(["cluster", "x.fa"])
        assert args.w == 8 and args.psi == 25 and args.batchsize == 60

    def test_machine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "x.fa", "--machine", "quantum"])


class TestSimulate:
    def test_writes_fasta_and_truth(self, simulated_fasta):
        fa, truth = simulated_fasta
        assert fa.read_text().startswith(">EST00000")
        lines = truth.read_text().strip().splitlines()
        assert all("\t" in line for line in lines)
        n_fasta = fa.read_text().count(">")
        assert len(lines) == n_fasta


class TestClusterCommand:
    def _cluster_args(self, fa, out):
        return [
            "cluster", str(fa), "-o", str(out),
            "--w", "6", "--psi", "15", "--min-overlap", "30", "--min-ratio", "0.8",
        ]

    def test_cluster_and_evaluate_roundtrip(self, simulated_fasta, tmp_path, capsys):
        fa, truth = simulated_fasta
        out = tmp_path / "clusters.tsv"
        assert main(self._cluster_args(fa, out)) == 0
        assert main(["evaluate", str(out), str(truth)]) == 0
        printed = capsys.readouterr().out
        assert "OQ=" in printed and "CC=" in printed
        # Quality on an easy synthetic benchmark must be high.
        oq = float(printed.split("OQ=")[1].split("%")[0])
        assert oq > 90.0

    def test_cluster_to_stdout(self, simulated_fasta, capsys):
        fa, _truth = simulated_fasta
        assert main(["cluster", str(fa), "--w", "6", "--psi", "15"]) == 0
        out = capsys.readouterr().out
        assert all("\t" in line for line in out.strip().splitlines())

    def test_per_cluster_fasta_dir(self, simulated_fasta, tmp_path):
        fa, _truth = simulated_fasta
        out = tmp_path / "clusters.tsv"
        fa_dir = tmp_path / "per_cluster"
        argv = self._cluster_args(fa, out) + ["--clusters-fasta-dir", str(fa_dir)]
        assert main(argv) == 0
        files = sorted(fa_dir.glob("cluster_*.fa"))
        assert files
        # Every input EST appears in exactly one cluster file.
        names = []
        for f in files:
            names += [l[1:].strip() for l in f.read_text().splitlines() if l.startswith(">")]
        assert len(names) == len(set(names)) == fa.read_text().count(">")

    def test_representatives_output(self, simulated_fasta, tmp_path):
        fa, _truth = simulated_fasta
        out = tmp_path / "clusters.tsv"
        reps = tmp_path / "reps.fa"
        argv = self._cluster_args(fa, out) + ["--representatives", str(reps)]
        assert main(argv) == 0
        n_clusters = len({l.split("\t")[1] for l in out.read_text().splitlines()})
        rep_text = reps.read_text()
        assert rep_text.count(">") == n_clusters
        assert "cluster_0 size=" in rep_text

    def test_parallel_simulated(self, simulated_fasta, tmp_path):
        fa, _truth = simulated_fasta
        out_seq = tmp_path / "seq.tsv"
        out_par = tmp_path / "par.tsv"
        assert main(self._cluster_args(fa, out_seq)) == 0
        argv = self._cluster_args(fa, out_par) + [
            "--parallel", "4", "--machine", "simulated",
        ]
        assert main(argv) == 0
        assert out_seq.read_text() == out_par.read_text()


class TestEvaluate:
    def test_missing_est_rejected(self, tmp_path):
        a = tmp_path / "a.tsv"
        b = tmp_path / "b.tsv"
        a.write_text("x\t0\n")
        b.write_text("x\t0\ny\t1\n")
        with pytest.raises(SystemExit, match="missing"):
            main(["evaluate", str(a), str(b)])

    def test_malformed_line_rejected(self, tmp_path):
        a = tmp_path / "a.tsv"
        a.write_text("justonecolumn\n")
        with pytest.raises(SystemExit, match="expected"):
            main(["evaluate", str(a), str(a)])

    def test_comments_and_blanks_ignored(self, tmp_path, capsys):
        a = tmp_path / "a.tsv"
        a.write_text("# header\n\nx\t0\ny\t0\n")
        assert main(["evaluate", str(a), str(a)]) == 0
        assert "OQ=100.00%" in capsys.readouterr().out
