"""Hypothesis property tests over the whole pipeline: for random small
inputs the clustering must uphold its structural invariants regardless of
content."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClusteringConfig, PaceClusterer
from repro.sequence import EstCollection
from repro.sequence.seq import reverse_complement


def _collection_from(seed: int, n: int) -> EstCollection:
    rng = np.random.default_rng(seed)
    genome = rng.integers(0, 4, size=int(rng.integers(60, 160)), dtype=np.uint8)
    reads = []
    for _ in range(n):
        a = int(rng.integers(0, len(genome) - 25))
        b = int(rng.integers(a + 20, min(len(genome), a + 70) + 1))
        r = genome[a:b].copy()
        if rng.random() < 0.5:
            r = reverse_complement(r)
        # sprinkle errors
        flip = rng.random(len(r)) < 0.02
        r[flip] = (r[flip] + 1) % 4
        reads.append(r)
    return EstCollection(reads)


CFG = ClusteringConfig(w=4, psi=10, batchsize=10)

seeds = st.integers(0, 10**6)


class TestPipelineInvariants:
    @given(seeds, st.integers(2, 12))
    @settings(max_examples=25, deadline=None)
    def test_clusters_partition_the_universe(self, seed, n):
        col = _collection_from(seed, n)
        result = PaceClusterer(CFG).cluster(col)
        flat = sorted(i for members in result.clusters for i in members)
        assert flat == list(range(n))
        assert all(members == sorted(members) for members in result.clusters)
        firsts = [members[0] for members in result.clusters]
        assert firsts == sorted(firsts)

    @given(seeds, st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_counter_identities(self, seed, n):
        col = _collection_from(seed, n)
        c = PaceClusterer(CFG).cluster(col).counters
        assert c.pairs_generated == c.pairs_processed + c.pairs_skipped
        assert 0 <= c.pairs_accepted <= c.pairs_processed
        assert c.dp_cells >= 0

    @given(seeds, st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_merges_connect_their_clusters(self, seed, n):
        col = _collection_from(seed, n)
        result = PaceClusterer(CFG).cluster(col)
        labels = result.labels()
        # Merge count is exactly (n - n_clusters): a spanning forest.
        assert len(result.merges) == n - result.n_clusters
        for rec in result.merges:
            assert labels[rec.pair.est_a] == labels[rec.pair.est_b]

    @given(seeds, st.integers(2, 10))
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, seed, n):
        col = _collection_from(seed, n)
        a = PaceClusterer(CFG).cluster(col)
        b = PaceClusterer(CFG).cluster(col)
        assert a.clusters == b.clusters
        assert a.counters.as_dict() == b.counters.as_dict()

    @given(seeds, st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_simulated_parallel_equals_sequential(self, seed, n):
        from repro.parallel import simulate_clustering

        col = _collection_from(seed, n)
        seq = PaceClusterer(CFG).cluster(col)
        par = simulate_clustering(col, CFG, n_processors=3)
        assert par.result.clusters == seq.clusters

    @given(seeds, st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_est_order_permutation_consistency(self, seed, n):
        """Permuting EST order permutes the partition accordingly."""
        col = _collection_from(seed, n)
        rng = np.random.default_rng(seed + 1)
        perm = rng.permutation(n)
        permuted = EstCollection([col.est(int(i)).copy() for i in perm])
        base = PaceClusterer(CFG).cluster(col)
        shuf = PaceClusterer(CFG).cluster(permuted)
        # Map the shuffled partition back through the permutation.
        inv = {int(new): int(old) for new, old in enumerate(perm)}
        mapped = sorted(
            sorted(inv[i] for i in members) for members in shuf.clusters
        )
        assert mapped == sorted(base.clusters)
