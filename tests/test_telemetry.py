"""Tests for the unified telemetry layer: registry semantics, span
nesting, JSONL round-trips, and sim-vs-mp engine parity."""

from __future__ import annotations

import io

import pytest

from repro.core import PaceClusterer
from repro.parallel import cluster_multiprocessing, simulate_clustering
from repro.telemetry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    Telemetry,
    export_jsonl,
    load_jsonl,
    snapshot_records,
    summarise,
    validate_records,
)


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("pairs", 3)
        reg.inc("pairs")
        assert reg.get("pairs") == 4.0
        assert reg.get("missing", default=-1.0) == -1.0

    def test_counter_rejects_decrement(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.inc("pairs", -1)

    def test_gauge_is_last_write(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 5)
        reg.set_gauge("depth", 2)
        assert reg.gauge("depth").value == 2

    def test_histogram_default_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("x")
        assert h.buckets == DEFAULT_BUCKETS
        assert len(h.counts) == len(DEFAULT_BUCKETS) + 1

    def test_histogram_bucket_validation(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("x", buckets=())
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("x", buckets=(1, 1, 2))
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("x", buckets=(5, 2))

    def test_histogram_boundary_semantics(self):
        """A value equal to a bucket bound lands in that bucket; values
        above the last bound land in the overflow slot."""
        h = Histogram("x", buckets=(1, 2, 5))
        for v in (0.0, 1.0):  # v <= 1
            h.observe(v)
        h.observe(1.5)  # 1 < v <= 2
        h.observe(2.0)  # boundary: still the <=2 bucket
        h.observe(5.0)  # boundary: still the <=5 bucket
        h.observe(5.0001)  # overflow
        h.observe(100)  # overflow
        assert h.counts == [2, 2, 1, 2]
        assert h.count == 7
        assert h.sum == pytest.approx(0 + 1 + 1.5 + 2 + 5 + 5.0001 + 100)
        assert h.mean == pytest.approx(h.sum / 7)

    def test_merge_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("pairs", 10)
        b.inc("pairs", 5)
        b.inc("only_b", 1)
        a.set_gauge("depth", 3)
        b.set_gauge("depth", 7)
        a.observe("sizes", 1, (1, 2))
        b.observe("sizes", 2, (1, 2))
        b.observe("sizes", 99, (1, 2))
        a.merge_snapshot(b.snapshot())
        assert a.get("pairs") == 15
        assert a.get("only_b") == 1
        assert a.gauge("depth").value == 7  # merge keeps the max
        h = a.histogram("sizes")
        assert h.counts == [1, 1, 1]
        assert h.count == 3

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("sizes", 1, (1, 2))
        b.observe("sizes", 1, (1, 3))
        with pytest.raises(ValueError, match="bucket mismatch"):
            a.merge_snapshot(b.snapshot())

    def test_merge_empty_snapshot_is_noop(self):
        a = MetricsRegistry()
        a.inc("pairs")
        a.merge_snapshot(None)
        a.merge_snapshot({})
        assert a.get("pairs") == 1


# --------------------------------------------------------------------- #
# spans and sessions
# --------------------------------------------------------------------- #


class TestSpans:
    def test_span_accumulates_phase_seconds(self):
        tel = Telemetry()
        with tel.span("alignment"):
            pass
        with tel.span("alignment"):
            pass
        assert tel.registry.get("span.alignment.seconds") >= 0.0
        names = [e["name"] for e in tel.events]
        assert names == ["alignment", "alignment", "alignment", "alignment"]

    def test_span_nesting_parent_ids(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        start_outer, start_inner, end_inner, end_outer = tel.events
        assert start_outer["kind"] == "span_start"
        assert start_outer["parent"] is None
        assert start_inner["parent"] == start_outer["id"]
        assert end_inner["id"] == start_inner["id"]
        assert end_outer["id"] == start_outer["id"]
        assert end_outer["duration"] >= end_inner["duration"] >= 0.0

    def test_span_attrs_recorded(self):
        tel = Telemetry()
        with tel.span("gst_construction", n_ests=42):
            pass
        assert tel.events[0]["attrs"] == {"n_ests": 42}

    def test_disabled_mode_keeps_timings_drops_events(self):
        tel = Telemetry(enabled=False)
        with tel.span("alignment"):
            pass
        tel.count("pairs.produced", 5)
        tel.observe("sizes", 3)
        tel.set_gauge("depth", 1)
        # Phase seconds always accumulate (results must carry timings)...
        assert "span.alignment.seconds" in tel.registry.counters
        # ...but no events and no point instruments.
        assert tel.events == []
        assert tel.registry.get("pairs.produced") == 0.0
        assert not tel.registry.histograms
        assert not tel.registry.gauges

    def test_add_phase_external_clock(self):
        tel = Telemetry()
        tel.add_phase("sort_nodes", 2.5)
        tel.add_phase("sort_nodes", 0.5)
        snap = tel.snapshot(engine="simulated", clock="virtual", total_time=3.0)
        assert snap.phase_times() == {"sort_nodes": 3.0}
        assert snap.meta["clock"] == "virtual"
        assert snap.total_time == 3.0

    def test_snapshot_defaults_and_event_merge(self):
        tel = Telemetry()
        with tel.span("alignment"):
            pass
        tel.trace.compute("slave0", 0.0, 1.0, "work")
        snap = tel.snapshot(engine="test", n_processors=2)
        assert snap.meta["clock"] == "wall"
        assert snap.meta["total_time"] >= 0.0
        kinds = [e["kind"] for e in snap.events]
        assert sorted(kinds) == ["span_end", "span_start", "trace"]
        ts = [e["ts"] for e in snap.events]
        assert ts == sorted(ts)

    def test_record_faults(self):
        class FC:
            def as_dict(self):
                return {"crashes_detected": 2, "pairs_reassigned": 0}

        tel = Telemetry()
        tel.record_faults(FC())
        tel.record_faults(None)  # tolerated
        assert tel.registry.get("fault.crashes_detected") == 2
        # Zero-valued fields are not materialised as counters.
        assert "fault.pairs_reassigned" not in tel.registry.counters


# --------------------------------------------------------------------- #
# sinks: JSONL round-trip, validation, report
# --------------------------------------------------------------------- #


def _sample_snapshot():
    tel = Telemetry()
    with tel.span("gst_construction"):
        with tel.span("sort_nodes"):
            pass
    tel.count("pairs.produced", 7)
    tel.observe("pairs.batch_size", 3, (1, 5, 10))
    tel.set_gauge("machine.load_imbalance", 0.1)
    tel.trace.compute("master", 0.0, 0.25, "incorporate")
    tel.trace.compute("slave0", 0.0, 0.75, "align")
    tel.registry.inc("fault.crashes_detected", 1)
    return tel.snapshot(engine="test", n_processors=2, total_time=1.0)


class TestSinks:
    def test_round_trip(self, tmp_path):
        snap = _sample_snapshot()
        path = tmp_path / "trace.jsonl"
        n = export_jsonl(snap, path)
        records = load_jsonl(path)
        assert len(records) == n
        assert records == snapshot_records(snap)
        assert validate_records(records) == []

    def test_export_to_stream(self):
        buf = io.StringIO()
        n = export_jsonl(_sample_snapshot(), buf)
        assert len(buf.getvalue().splitlines()) == n

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_jsonl(path)

    def test_validate_flags_problems(self):
        records = snapshot_records(_sample_snapshot())
        assert validate_records([]) == ["empty trace: no records"]
        # Wrong schema version.
        bad = [dict(records[0], schema="bogus/9")] + records[1:]
        assert any("unknown schema" in p for p in validate_records(bad))
        # Missing meta record.
        assert any("expected a meta" in p for p in validate_records(records[1:]))
        # Non-monotone event timestamps.
        events = [r for r in records if r["kind"] in ("span_start", "span_end")]
        shuffled = [records[0]] + events[::-1] + [r for r in records if r not in events and r is not records[0]]
        assert any("not monotone" in p for p in validate_records(shuffled))
        # Histogram counts that don't sum to count.
        broken = [
            dict(r, count=999)
            if r.get("kind") == "metric" and r.get("metric") == "histogram"
            else r
            for r in records
        ]
        assert any("sum to" in p for p in validate_records(broken))
        # Unmatched span start/end.
        orphaned = [r for r in records if r.get("kind") != "span_end"]
        assert any("unmatched" in p for p in validate_records(orphaned))
        # Unknown trace event kind.
        weird = records + [
            {"kind": "trace", "event": "teleport", "actor": "master", "ts": 99.0}
        ]
        assert any("unknown trace event" in p for p in validate_records(weird))

    def test_summarise_reconstructs_measurements(self):
        text = summarise(snapshot_records(_sample_snapshot()))
        assert "engine=test" in text
        assert "Table 3" in text
        assert "gst_construction" in text and "sort_nodes" in text
        assert "master busy fraction: 25.00%" in text
        assert "pairs.produced = 7" in text
        assert "histogram pairs.batch_size" in text
        assert "faults:" in text and "crashes_detected = 1" in text

    def test_summarise_zero_total_time(self):
        tel = Telemetry()
        tel.trace.compute("master", 0.0, 0.0, "nothing")
        text = summarise(snapshot_records(tel.snapshot(total_time=0.0)))
        assert "0.00%" in text  # no ZeroDivisionError


class TestLiveRecordValidation:
    """Error paths of the schema-/2 streamed record kinds."""

    @staticmethod
    def _meta(**over):
        rec = {
            "kind": "meta", "schema": "repro-telemetry/2", "stream": "live",
            "run_id": "r", "n_processors": 3, "engine": "multiprocessing",
            "clock": "wall",
        }
        rec.update(over)
        return rec

    @staticmethod
    def _live(actor="slave0", ts=1.0, **over):
        rec = {
            "kind": "live", "actor": actor, "ts": ts, "rss_bytes": 100,
            "pairs_generated": 5, "alignments": 4,
        }
        rec.update(over)
        return rec

    def test_old_schema_still_accepted(self):
        recs = snapshot_records(_sample_snapshot())
        recs[0] = dict(recs[0], schema="repro-telemetry/1")
        assert validate_records(recs) == []

    def test_valid_live_stream(self):
        recs = [
            self._meta(),
            self._live("slave0", 1.0),
            self._live("slave1", 0.4),  # interleaved: fine across actors
            self._live("slave0", 2.0),
            {"kind": "live_state", "ts": 2.1, "progress": 0.5},
            {"kind": "live_state", "ts": 3.0, "progress": 1.0, "finished": True},
        ]
        assert validate_records(recs) == []

    def test_live_missing_actor_and_bad_ts(self):
        recs = [self._meta(), self._live(actor=""), self._live(ts=-1.0)]
        problems = validate_records(recs)
        assert any("without actor" in p for p in problems)
        assert any("bad ts" in p for p in problems)

    def test_live_per_actor_ts_regression(self):
        recs = [
            self._meta(),
            self._live("slave0", 2.0),
            self._live("slave0", 1.0),  # same actor going backwards: flagged
        ]
        assert any(
            "live timestamps for slave0 not monotone" in p
            for p in validate_records(recs)
        )

    def test_live_negative_counters(self):
        recs = [self._meta(), self._live(rss_bytes=-5, pairs_generated=-1)]
        problems = validate_records(recs)
        assert any("negative rss_bytes" in p for p in problems)
        assert any("negative pairs_generated" in p for p in problems)

    def test_live_state_errors(self):
        recs = [
            self._meta(),
            {"kind": "live_state", "ts": 5.0, "progress": 0.5},
            {"kind": "live_state", "ts": 4.0, "progress": 1.5},
            {"kind": "live_state", "ts": "soon", "progress": 0.5},
        ]
        problems = validate_records(recs)
        assert any("live_state timestamps not monotone" in p for p in problems)
        assert any("outside [0, 1]" in p for p in problems)
        assert any("bad ts" in p for p in problems)

    def test_foreign_records_rejected(self):
        recs = [self._meta(), {"kind": "prometheus_scrape", "ts": 1.0}]
        assert any("unknown record kind" in p for p in validate_records(recs))

    def test_summarise_merged_multi_slave_stream(self):
        """A live stream interleaving master + two slaves summarises to
        one line per actor with peak RSS and final counters."""
        recs = [self._meta()]
        for ts in (0.5, 1.0, 1.5):
            recs.append(self._live("slave0", ts, rss_bytes=int(ts * 100),
                                   pairs_generated=int(ts * 10)))
            recs.append(self._live("slave1", ts + 0.01, rss_bytes=50))
            recs.append(self._live("master", ts + 0.02, rss_bytes=900,
                                   pairs_generated=0))
        recs.append({"kind": "live_state", "ts": 2.0, "progress": 1.0,
                     "finished": True})
        text = summarise(recs)
        assert "live samples (streamed during the run):" in text
        for actor in ("master", "slave0", "slave1"):
            assert actor in text
        assert "3 samples" in text  # each actor sampled three times
        assert "pairs 15" in text  # slave0's final cumulative counter
        assert "final progress 100.0% (finished)" in text


# --------------------------------------------------------------------- #
# engine parity: the same workload through both engines
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def sim_snapshot(small_benchmark, small_config):
    tel = Telemetry()
    rep = simulate_clustering(
        small_benchmark.collection, small_config, n_processors=3, telemetry=tel
    )
    return rep.result.telemetry


@pytest.fixture(scope="module")
def mp_snapshot(small_benchmark, small_config):
    tel = Telemetry()
    res = cluster_multiprocessing(
        small_benchmark.collection, small_config, n_processors=3, telemetry=tel
    )
    return res.telemetry


class TestEngineParity:
    def test_both_validate(self, sim_snapshot, mp_snapshot):
        assert validate_records(snapshot_records(sim_snapshot)) == []
        assert validate_records(snapshot_records(mp_snapshot)) == []

    def test_meta_identifies_engines(self, sim_snapshot, mp_snapshot):
        assert sim_snapshot.meta["engine"] == "simulated"
        assert sim_snapshot.meta["clock"] == "virtual"
        assert mp_snapshot.meta["engine"] == "multiprocessing"
        assert mp_snapshot.meta["clock"] == "wall"
        assert sim_snapshot.meta["n_processors"] == 3
        assert mp_snapshot.meta["n_processors"] == 3

    def test_same_phase_names(self, sim_snapshot, mp_snapshot):
        """Both engines account the same Table 3 components — the mp
        backend's slave-side sort_nodes span arrives via registry merge.
        The mp backend additionally accounts the shared-arena publish
        step, which has no simulated counterpart (descriptor handoff is
        instantaneous in the discrete-event model)."""
        expected = {"partitioning", "gst_construction", "sort_nodes", "alignment"}
        assert set(sim_snapshot.phase_times()) == expected
        assert set(mp_snapshot.phase_times()) == expected | {"arena_setup"}

    def test_same_instrument_names(self, sim_snapshot, mp_snapshot):
        for snap in (sim_snapshot, mp_snapshot):
            counters = snap.metrics["counters"]
            assert counters["pairs.produced"] > 0
            assert counters["align.accepted"] > 0
            assert counters["messages.exchanged"] > 0
            assert "pairs.batch_size" in snap.metrics["histograms"]
            assert "align.band_width" in snap.metrics["histograms"]

    def test_event_counts_conserved(self, mp_snapshot):
        """In a fault-free mp run both sides record the full exchange:
        every send has a matching recv on the peer."""
        trace = [e for e in mp_snapshot.events if e["kind"] == "trace"]
        sends = [e for e in trace if e["event"] == "send"]
        recvs = [e for e in trace if e["event"] == "recv"]
        assert len(sends) == len(recvs) > 0
        master_recvs = sum(1 for e in recvs if e["actor"] == "master")
        slave_sends = sum(1 for e in sends if e["actor"].startswith("slave"))
        assert master_recvs == slave_sends
        assert not [e for e in trace if e["event"] == "fault"]

    def test_all_actors_traced(self, sim_snapshot, mp_snapshot):
        for snap in (sim_snapshot, mp_snapshot):
            actors = {
                e["actor"] for e in snap.events if e["kind"] == "trace"
            }
            assert actors == {"master", "slave0", "slave1"}

    def test_span_durations_within_total(self, mp_snapshot):
        for e in mp_snapshot.events:
            if e["kind"] == "span_end":
                assert 0.0 <= e["duration"] <= mp_snapshot.total_time + 1e-9

    def test_result_carries_snapshot_only_when_asked(
        self, small_benchmark, small_config
    ):
        plain = PaceClusterer(small_config).cluster(small_benchmark.collection)
        assert plain.telemetry is None
        assert plain.timings.get("alignment") > 0  # timings survive regardless
        instrumented = PaceClusterer(small_config).cluster(
            small_benchmark.collection, telemetry=Telemetry()
        )
        assert instrumented.telemetry is not None
        assert instrumented.telemetry.meta["engine"] == "sequential"
        assert instrumented.telemetry.phase_times()["alignment"] > 0


# --------------------------------------------------------------------- #
# CLI report round-trip
# --------------------------------------------------------------------- #


class TestCliReport:
    def test_report_from_exported_trace(self, sim_snapshot, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        export_jsonl(sim_snapshot, path)
        assert main(["report", str(path), "--timeline", "5"]) == 0
        out = capsys.readouterr().out
        assert "engine=simulated" in out
        assert "Table 3" in out
        assert "master busy fraction" in out
        assert "slave" in out  # the reconstructed timeline

    def test_report_rejects_invalid_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "metric", "metric": "counter", "name": "x", "value": 1}\n')
        with pytest.raises(SystemExit):
            main(["report", str(path)])
        assert "expected a meta" in capsys.readouterr().err
