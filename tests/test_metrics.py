"""Tests for the quality metrics (OQ/OV/UN/CC) and pairwise confusion,
including hypothesis checks of the algebraic identities."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    MemoryLedger,
    MemoryModel,
    PairConfusion,
    assess_clustering,
    labels_from_clusters,
    pair_confusion,
    quality_metrics,
)

partitions = st.lists(st.integers(0, 4), min_size=2, max_size=30)


def _naive_confusion(pred, truth):
    n = len(pred)
    tp = fp = fn = tn = 0
    for i in range(n):
        for j in range(i + 1, n):
            p = pred[i] == pred[j]
            t = truth[i] == truth[j]
            if p and t:
                tp += 1
            elif p:
                fp += 1
            elif t:
                fn += 1
            else:
                tn += 1
    return PairConfusion(tp, fp, fn, tn)


class TestPairConfusion:
    @given(partitions, partitions)
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_pair_enumeration(self, pred, truth):
        n = min(len(pred), len(truth))
        pred, truth = pred[:n], truth[:n]
        assert pair_confusion(pred, truth) == _naive_confusion(pred, truth)

    @given(partitions)
    @settings(max_examples=40, deadline=None)
    def test_perfect_agreement(self, labels):
        c = pair_confusion(labels, labels)
        assert c.fp == 0 and c.fn == 0
        assert c.total_pairs == len(labels) * (len(labels) - 1) // 2

    def test_accepts_explicit_partitions(self):
        c = pair_confusion([[0, 1], [2]], [[0], [1, 2]])
        assert c.tp == 0 and c.fp == 1 and c.fn == 1 and c.tn == 1

    def test_mixed_forms(self):
        a = pair_confusion([0, 0, 1], [[0, 1], [2]])
        b = pair_confusion([0, 0, 1], [0, 0, 1])
        assert a == b

    def test_universe_mismatch_rejected(self):
        with pytest.raises(ValueError, match="different universes"):
            pair_confusion([0, 1], [0, 1, 2])

    def test_labels_from_clusters_validation(self):
        with pytest.raises(ValueError, match="two clusters"):
            labels_from_clusters([[0, 1], [1]], 2)
        with pytest.raises(ValueError, match="missing"):
            labels_from_clusters([[0]], 2)
        with pytest.raises(ValueError, match="outside"):
            labels_from_clusters([[0, 5]], 2)


class TestQualityMetrics:
    def test_perfect_scores(self):
        r = quality_metrics(PairConfusion(tp=10, fp=0, fn=0, tn=35))
        assert r.oq == 100.0 and r.cc == 100.0
        assert r.ov == 0.0 and r.un == 0.0

    def test_paper_formulae(self):
        c = PairConfusion(tp=6, fp=2, fn=3, tn=9)
        r = quality_metrics(c)
        assert r.oq == pytest.approx(100 * 6 / 11)
        assert r.ov == pytest.approx(100 * 2 / 8)
        assert r.un == pytest.approx(100 * 3 / 9)
        expect_cc = 100 * (6 * 9 - 2 * 3) / math.sqrt(8 * 12 * 9 * 11)
        assert r.cc == pytest.approx(expect_cc)

    @given(partitions, partitions)
    @settings(max_examples=60, deadline=None)
    def test_metric_ranges(self, pred, truth):
        n = min(len(pred), len(truth))
        r = assess_clustering(pred[:n], truth[:n])
        assert 0 <= r.oq <= 100
        assert 0 <= r.ov <= 100
        assert 0 <= r.un <= 100
        assert -100 <= r.cc <= 100

    def test_degenerate_all_singletons_vs_itself(self):
        r = assess_clustering([0, 1, 2], [5, 6, 7])
        assert r.oq == 100.0 and r.cc == 100.0  # no positive pairs anywhere

    def test_as_row_shape(self):
        r = assess_clustering([0, 0, 1], [0, 0, 1])
        assert r.as_row() == [r.oq, r.ov, r.un, r.cc]

    def test_str_format(self):
        assert "OQ=" in str(assess_clustering([0, 0], [0, 0]))

    def test_under_vs_over_prediction_direction(self):
        # Splitting a true cluster -> UN > 0, OV == 0.
        r = assess_clustering([[0], [1], [2, 3]], [[0, 1], [2, 3]])
        assert r.un > 0 and r.ov == 0
        # Merging two true clusters -> OV > 0, UN == 0.
        r = assess_clustering([[0, 1, 2, 3]], [[0, 1], [2, 3]])
        assert r.ov > 0 and r.un == 0


class TestMemoryLedger:
    def test_high_water_mark(self):
        led = MemoryLedger()
        led.add("pairs", 10)
        led.remove("pairs", 4)
        led.add("pairs", 2)
        assert led.peak["pairs"] == 10
        assert led.current["pairs"] == 8

    def test_negative_rejected(self):
        led = MemoryLedger()
        led.add("pairs", 1)
        with pytest.raises(ValueError):
            led.remove("pairs", 2)

    def test_set_peak_only_raises(self):
        led = MemoryLedger()
        led.set_peak("pairs", 100)
        led.set_peak("pairs", 50)
        assert led.peak["pairs"] == 100

    def test_peak_bytes_uses_model(self):
        led = MemoryLedger(model=MemoryModel(bytes_per_pair=16))
        led.set_peak("pairs", 1000)
        led.set_peak("lset_entries", 10)
        assert led.peak_bytes() == 1000 * 16 + 10 * 12
        assert led.peak_megabytes() == pytest.approx(led.peak_bytes() / 2**20)
