"""Tests for union-find, the cluster manager and the greedy loop."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import AcceptanceCriteria, PairAligner
from repro.cluster import ClusterManager, UnionFind, WorkCounters, greedy_cluster
from repro.pairs import Pair, SaPairGenerator
from repro.sequence import EstCollection
from repro.suffix import SuffixArrayGst


class TestUnionFind:
    def test_initial_singletons(self):
        uf = UnionFind(4)
        assert uf.n_components == 4
        assert uf.components() == [[0], [1], [2], [3]]

    def test_union_and_same(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)  # already merged
        assert uf.same(0, 1) and not uf.same(0, 2)
        assert uf.n_components == 4

    def test_components_sorted_by_smallest_member(self):
        uf = UnionFind(6)
        uf.union(5, 3)
        uf.union(4, 0)
        assert uf.components() == [[0, 4], [1], [2], [3, 5]]

    def test_counters(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        uf.same(0, 2)
        assert uf.unions == 1
        assert uf.finds >= 2

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            UnionFind(0)

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_connectivity(self, edges):
        """Union-find partition == connected components of the edge graph."""
        uf = UnionFind(20)
        naive = {i: {i} for i in range(20)}
        for a, b in edges:
            uf.union(a, b)
            if naive[a] is not naive[b]:
                merged = naive[a] | naive[b]
                for x in merged:
                    naive[x] = merged
        expect = sorted({frozenset(s) for s in naive.values()}, key=min)
        assert uf.components() == [sorted(s) for s in expect]

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_component_count_invariant(self, edges):
        uf = UnionFind(31)
        merges = sum(1 for a, b in edges if uf.union(a, b))
        assert uf.n_components == 31 - merges


class TestClusterManager:
    def _fake_merge(self, mgr, i, j):
        pair = Pair(10, 2 * i, 0, 2 * j, 0)
        from repro.align.scoring import AlignmentResult, OverlapPattern

        res = AlignmentResult(20.0, 0, 10, 0, 10, OverlapPattern.A_CONTAINS_B, 0)
        return mgr.merge(pair, res)

    def test_merge_records_witness(self):
        mgr = ClusterManager(4)
        assert self._fake_merge(mgr, 0, 1)
        assert len(mgr.merges) == 1
        assert mgr.merges[0].pair.est_a == 0
        assert mgr.n_clusters == 3

    def test_redundant_merge_not_recorded(self):
        mgr = ClusterManager(4)
        self._fake_merge(mgr, 0, 1)
        assert not self._fake_merge(mgr, 1, 0)
        assert len(mgr.merges) == 1

    def test_seed_union_without_witness(self):
        mgr = ClusterManager(4)
        assert mgr.seed_union(2, 3)
        assert mgr.same_cluster(2, 3)
        assert mgr.merges == []

    def test_labels_consistent_with_clusters(self):
        mgr = ClusterManager(5)
        mgr.seed_union(0, 4)
        labels = mgr.labels()
        assert labels[0] == labels[4]
        assert len(set(labels)) == mgr.n_clusters


class TestGreedyLoop:
    def _setup(self):
        col = EstCollection.from_strings(
            [
                "ACGTACGTACGTACGTTTTT",
                "ACGTACGTACGTACGTGGGG",  # overlaps 0 strongly
                "CCCCCCCCCCGGGGGGGGGG",  # unrelated
            ]
        )
        gen = SaPairGenerator(SuffixArrayGst.build(col), psi=10)
        aligner = PairAligner(col, criteria=AcceptanceCriteria(0.8, 12))
        return col, gen, aligner

    def test_end_to_end_counts(self):
        col, gen, aligner = self._setup()
        mgr = ClusterManager(col.n_ests)
        counters = greedy_cluster(gen.pairs(), aligner, mgr)
        assert counters.pairs_generated == counters.pairs_skipped + counters.pairs_processed
        assert counters.pairs_accepted <= counters.pairs_processed
        assert mgr.same_cluster(0, 1)
        assert not mgr.same_cluster(0, 2)

    def test_skip_disabled_aligns_everything(self):
        col, gen, aligner = self._setup()
        mgr = ClusterManager(col.n_ests)
        counters = greedy_cluster(gen.pairs(), aligner, mgr, skip_clustered=False)
        assert counters.pairs_skipped == 0
        assert counters.pairs_processed == counters.pairs_generated

    def test_max_alignments_budget(self):
        col, gen, aligner = self._setup()
        mgr = ClusterManager(col.n_ests)
        counters = greedy_cluster(gen.pairs(), aligner, mgr, max_alignments=1)
        assert counters.pairs_processed == 1

    def test_dp_cells_tracked(self):
        col, gen, aligner = self._setup()
        counters = greedy_cluster(gen.pairs(), aligner, ClusterManager(col.n_ests))
        assert counters.dp_cells == aligner.dp_cells_total > 0

    def test_counters_as_dict(self):
        c = WorkCounters(pairs_generated=5, pairs_processed=2)
        d = c.as_dict()
        assert d["pairs_generated"] == 5 and d["pairs_processed"] == 2
