"""Tests for the synthetic EST benchmark generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence import decode, reverse_complement
from repro.simulate import (
    BenchmarkParams,
    ErrorModel,
    ReadParams,
    alternative_transcripts,
    apply_errors,
    make_benchmark,
    make_gene,
    make_gene_family,
    primary_transcript,
    random_genome,
    sample_est,
)


class TestGenes:
    def test_random_genome_properties(self):
        g = random_genome(500, rng=0)
        assert g.shape == (500,) and g.dtype == np.uint8
        assert set(np.unique(g)) <= {0, 1, 2, 3}

    def test_gene_structure(self):
        gene = make_gene(3, rng=1, n_exons_range=(2, 4), exon_len_range=(50, 80))
        assert 2 <= gene.n_exons <= 4
        assert len(gene.intron_lengths) == gene.n_exons - 1
        assert gene.mrna_length == sum(len(e) for e in gene.exons)
        assert gene.gene_id == 3

    def test_gene_determinism(self):
        a = make_gene(0, rng=5)
        b = make_gene(0, rng=5)
        assert a.exons == b.exons

    def test_paralog_diverges_but_resembles(self):
        base = make_gene(0, rng=2, reverse_strand_prob=0.0)
        para = make_gene_family(base, 1, rng=3, divergence=0.1)
        assert para.n_exons == base.n_exons
        diff = sum(
            int(x != y)
            for e1, e2 in zip(base.exons, para.exons)
            for x, y in zip(e1, e2)
        )
        total = sum(len(e) for e in base.exons)
        assert 0 < diff < 0.25 * total  # mutated, but recognisably related

    def test_paralog_zero_divergence_identical(self):
        base = make_gene(0, rng=2)
        assert make_gene_family(base, 1, rng=3, divergence=0.0).exons == base.exons

    def test_bad_divergence_rejected(self):
        with pytest.raises(ValueError):
            make_gene_family(make_gene(0, rng=0), 1, rng=0, divergence=2.0)


class TestTranscripts:
    def test_primary_is_exon_concatenation(self):
        gene = make_gene(0, rng=4)
        t = primary_transcript(gene)
        assert t.sequence_bytes == b"".join(gene.exons)
        assert all(t.exon_mask)

    def test_alternative_skips_internal_exons_only(self):
        gene = make_gene(0, rng=8, n_exons_range=(4, 6))
        isoforms = alternative_transcripts(gene, rng=9, max_isoforms=3, skip_prob=0.9)
        for iso in isoforms:
            assert iso.exon_mask[0] and iso.exon_mask[-1]
            assert not all(iso.exon_mask)
            kept = b"".join(e for e, m in zip(gene.exons, iso.exon_mask) if m)
            assert iso.sequence_bytes == kept

    def test_two_exon_gene_cannot_skip(self):
        gene = make_gene(0, rng=1, n_exons_range=(2, 2))
        assert alternative_transcripts(gene, rng=1) == []


class TestErrors:
    def test_perfect_model_is_identity(self):
        x = random_genome(200, rng=0)
        assert np.array_equal(apply_errors(x, ErrorModel.perfect(), rng=1), x)

    def test_substitutions_change_but_keep_length(self):
        x = random_genome(2000, rng=0)
        model = ErrorModel(substitution_rate=0.1, insertion_rate=0.0, deletion_rate=0.0)
        y = apply_errors(x, model, rng=1)
        assert len(y) == len(x)
        frac = np.mean(x != y)
        assert 0.05 < frac < 0.15

    def test_indels_shift_length(self):
        x = random_genome(5000, rng=0)
        ins = ErrorModel(0.0, insertion_rate=0.05, deletion_rate=0.0)
        dels = ErrorModel(0.0, insertion_rate=0.0, deletion_rate=0.05)
        assert len(apply_errors(x, ins, rng=1)) > len(x)
        assert len(apply_errors(x, dels, rng=1)) < len(x)

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_output_is_valid_dna(self, seed):
        rng = np.random.default_rng(seed)
        x = random_genome(300, rng=rng)
        y = apply_errors(x, ErrorModel(0.02, 0.01, 0.01), rng=rng)
        assert y.dtype == np.uint8
        assert y.size == 0 or int(y.max()) <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorModel(substitution_rate=1.5)
        with pytest.raises(ValueError):
            ErrorModel(0.3, 0.2, 0.2)  # total > 0.5


class TestEstSampling:
    def _transcript(self, rng=0):
        return primary_transcript(make_gene(0, rng=rng, exon_len_range=(200, 300)))

    def test_read_length_distribution(self):
        t = self._transcript()
        params = ReadParams(mean_length=150, sd_length=10, min_length=50)
        rng = np.random.default_rng(0)
        lengths = [
            sample_est(t, params, ErrorModel.perfect(), rng).length for _ in range(100)
        ]
        assert all(l >= 50 for l in lengths)
        assert 120 < np.mean(lengths) < 180

    def test_five_prime_reads_match_mrna_forward(self):
        t = self._transcript()
        params = ReadParams(mean_length=100, sd_length=5, min_length=40, five_prime_prob=1.0)
        read = sample_est(t, params, ErrorModel.perfect(), np.random.default_rng(1))
        assert read.five_prime
        window = t.sequence[read.mrna_start : read.mrna_end]
        assert decode(read.codes) == decode(window)

    def test_three_prime_reads_are_reverse_complemented(self):
        t = self._transcript()
        params = ReadParams(mean_length=100, sd_length=5, min_length=40, five_prime_prob=0.0)
        read = sample_est(t, params, ErrorModel.perfect(), np.random.default_rng(1))
        assert not read.five_prime
        window = t.sequence[read.mrna_start : read.mrna_end]
        assert np.array_equal(read.codes, reverse_complement(window))

    def test_transcript_too_short_rejected(self):
        gene = make_gene(0, rng=0, n_exons_range=(1, 1), exon_len_range=(30, 30))
        t = primary_transcript(gene)
        with pytest.raises(ValueError, match="shorter than min read"):
            sample_est(t, ReadParams(mean_length=100, min_length=50), ErrorModel.perfect(), 0)


class TestBenchmarks:
    def test_shape_and_ground_truth(self):
        bench = make_benchmark(BenchmarkParams.small(n_genes=5, mean_ests_per_gene=4), rng=0)
        assert bench.n_ests == len(bench.reads) == bench.collection.n_ests
        labels = bench.true_labels
        clusters = bench.true_clusters()
        assert sum(len(c) for c in clusters) == bench.n_ests
        for members in clusters:
            gene_ids = {labels[i] for i in members}
            assert len(gene_ids) == 1

    def test_every_gene_has_at_least_two_reads(self):
        bench = make_benchmark(BenchmarkParams.small(n_genes=8), rng=3)
        for members in bench.true_clusters():
            assert len(members) >= 2

    def test_determinism(self):
        a = make_benchmark(BenchmarkParams.small(), rng=11)
        b = make_benchmark(BenchmarkParams.small(), rng=11)
        assert [r.codes_bytes for r in a.reads] == [r.codes_bytes for r in b.reads]

    def test_paralogs_add_genes(self):
        params = BenchmarkParams.small(n_genes=6)
        params = BenchmarkParams(
            n_genes=6,
            mean_ests_per_gene=4,
            read_params=params.read_params,
            paralog_fraction=1.0,
            n_exons_range=params.n_exons_range,
            exon_len_range=params.exon_len_range,
        )
        bench = make_benchmark(params, rng=1)
        assert len(bench.genes) == 12

    def test_alt_splicing_isoforms_present(self):
        base = BenchmarkParams.small(n_genes=6)
        params = BenchmarkParams(
            n_genes=6,
            mean_ests_per_gene=4,
            read_params=base.read_params,
            alt_splicing_fraction=1.0,
            n_exons_range=(3, 5),
            exon_len_range=base.exon_len_range,
        )
        bench = make_benchmark(params, rng=2)
        assert any(len(forms) > 1 for forms in bench.transcripts.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchmarkParams(n_genes=0)
