"""Tests for the GST facade layer (SuffixArrayGst / NaiveGst)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence import LAMBDA, EstCollection
from repro.suffix import NaiveGst, SuffixArrayGst

dna_lists = st.lists(st.text(alphabet="ACGT", min_size=1, max_size=25), min_size=1, max_size=4)


class TestSuffixArrayGst:
    @given(dna_lists)
    @settings(max_examples=40, deadline=None)
    def test_suffix_info_consistent(self, seqs):
        col = EstCollection.from_strings(seqs)
        gst = SuffixArrayGst.build(col)
        m = gst.n_suffix_positions
        for rank in range(0, m, max(1, m // 7)):
            s, off, left = gst.suffix_info(rank)
            assert 0 <= s < col.n_strings
            assert 0 <= off <= col.length(s)
            if off == 0:
                assert left == LAMBDA
            elif off < col.length(s):
                assert left == int(col.string(s)[off - 1])

    @given(dna_lists)
    @settings(max_examples=30, deadline=None)
    def test_suffix_lengths(self, seqs):
        col = EstCollection.from_strings(seqs)
        gst = SuffixArrayGst.build(col)
        for p in range(gst.text.size):
            s = int(gst.pos_string[p])
            off = int(gst.pos_offset[p])
            assert gst.suffix_len[p] == col.length(s) - off

    def test_every_suffix_has_a_rank(self):
        col = EstCollection.from_strings(["ACGT", "GT"])
        gst = SuffixArrayGst.build(col)
        seen = set()
        for rank in range(gst.n_suffix_positions):
            s, off, _c = gst.suffix_info(rank)
            if off < col.length(s):  # skip sentinel positions
                seen.add((s, off))
        expect = {
            (s, off)
            for s in range(col.n_strings)
            for off in range(col.length(s))
        }
        assert seen == expect

    def test_forest_respects_min_depth(self):
        col = EstCollection.from_strings(["ACGTACGTACGT", "ACGTACGTAC"])
        gst = SuffixArrayGst.build(col)
        deep = gst.forest(min_depth=6)
        shallow = gst.forest(min_depth=2)
        assert deep.n_nodes <= shallow.n_nodes
        assert (deep.depth >= 6).all()

    def test_rank_to_position_roundtrip(self):
        col = EstCollection.from_strings(["ACGT"])
        gst = SuffixArrayGst.build(col)
        ranks = np.arange(gst.n_suffix_positions)
        positions = gst.rank_to_position(ranks)
        assert sorted(positions.tolist()) == list(range(gst.n_suffix_positions))


class TestNaiveGst:
    def test_build_and_left_extension(self):
        col = EstCollection.from_strings(["ACGT", "CGTA"])
        gst = NaiveGst.build(col, w=2)
        assert gst.w == 2
        assert gst.tree.n_nodes > 0
        assert gst.left_extension(0, 0) == LAMBDA
        assert gst.left_extension(0, 2) == 1  # 'C'

    @given(dna_lists, st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_leaf_payload_covers_all_long_suffixes(self, seqs, w):
        col = EstCollection.from_strings(seqs)
        gst = NaiveGst.build(col, w=w)
        got = []
        for u in range(gst.tree.n_nodes):
            if gst.tree.is_leaf(u):
                got.extend(gst.tree.leaf_suffixes(u))
        expect = [
            (k, off)
            for k in range(col.n_strings)
            for off in range(max(0, col.length(k) - w + 1))
        ]
        assert sorted(got) == sorted(expect)
