"""Work-unit latency tracing: quantile math, the store, engine parity,
schema /3, and the analyze/diff reporters."""

import json
import math

import pytest

from repro.core import PaceClusterer
from repro.parallel import run_parallel
from repro.parallel.protocol import MasterLogic, SlaveMsg
from repro.pairs.pair import Pair
from repro.telemetry import (
    ACCEPTED_SCHEMAS,
    SCHEMA_VERSION,
    SEQUENTIAL_STAGES,
    STAGES,
    Telemetry,
    LatencyStore,
    analyze_trace,
    diff_traces,
    latency_records,
    quantile_from_buckets,
    snapshot_records,
    stage_table,
    store_from_records,
    validate_records,
)
from repro.telemetry.latency import LATENCY_BUCKETS
from repro.telemetry.registry import MetricsRegistry


def _pair(i: int, j: int) -> Pair:
    """A promising pair between ESTs i and j (forward strings, zero seed
    offsets — the protocol only looks at est_a/est_b)."""
    return Pair(10, 2 * i, 0, 2 * j, 0)


# --------------------------------------------------------------------- #
# quantile math (satellite: registry.Histogram.quantile)


class TestQuantileFromBuckets:
    def test_linear_interpolation_within_bucket(self):
        # 10 observations, all in the (1, 2] bucket: quantiles interpolate
        # linearly across that bucket.
        buckets = (1.0, 2.0, 4.0)
        counts = [0, 10, 0, 0]
        assert quantile_from_buckets(buckets, counts, 0.5) == pytest.approx(1.5)
        assert quantile_from_buckets(buckets, counts, 0.0) == pytest.approx(1.0)
        assert quantile_from_buckets(buckets, counts, 1.0) == pytest.approx(2.0)

    def test_first_bucket_interpolates_from_zero(self):
        buckets = (4.0, 8.0)
        counts = [8, 0, 0]
        assert quantile_from_buckets(buckets, counts, 0.5) == pytest.approx(2.0)

    def test_overflow_clamps_to_last_bound(self):
        buckets = (1.0, 2.0)
        counts = [0, 0, 5]  # everything beyond the last finite bound
        assert quantile_from_buckets(buckets, counts, 0.99) == pytest.approx(2.0)

    def test_spread_distribution_is_monotone(self):
        buckets = tuple(float(b) for b in range(1, 11))
        counts = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 0]
        qs = [quantile_from_buckets(buckets, counts, q / 100) for q in range(101)]
        assert all(b >= a for a, b in zip(qs, qs[1:]))

    def test_empty_is_nan(self):
        assert math.isnan(quantile_from_buckets((1.0, 2.0), [0, 0, 0], 0.5))

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            quantile_from_buckets((1.0,), [1, 0], -0.1)
        with pytest.raises(ValueError):
            quantile_from_buckets((1.0,), [1, 0], 1.1)

    def test_histogram_method_matches_function(self):
        reg = MetricsRegistry()
        for v in (0.5, 1.5, 1.7, 3.0, 9.0):
            reg.observe("x", v, (1.0, 2.0, 4.0, 8.0))
        h = reg.histograms["x"]
        assert h.quantile(0.5) == quantile_from_buckets(
            tuple(h.buckets), h.counts, 0.5
        )


# --------------------------------------------------------------------- #
# the store


class TestLatencyStore:
    def test_observe_and_breakdown(self):
        store = LatencyStore()
        for ms in (1, 2, 3, 4, 100):
            store.observe("align", ms / 1e3)
        store.observe("rtt", 0.5)
        assert store.stages() == ["align", "rtt"]
        assert store.count("align") == 5
        assert store.total("align") == pytest.approx(0.110)
        b = store.breakdown()
        assert set(b) == {"align", "rtt"}
        assert b["align"]["count"] == 5
        assert b["align"]["p50"] <= b["align"]["p90"] <= b["align"]["p99"]
        # the 100ms outlier drags p999 well above p50
        assert b["align"]["p999"] > b["align"]["p50"]

    def test_canonical_stage_order(self):
        store = LatencyStore()
        for stage in ("rtt", "absorb", "generate", "custom_stage"):
            store.observe(stage, 0.01)
        assert store.stages() == ["generate", "absorb", "rtt", "custom_stage"]

    def test_negative_observation_clamps_to_zero(self):
        store = LatencyStore()
        store.observe("transit", -1e-9)
        assert store.count("transit") == 1
        assert store.total("transit") == 0.0

    def test_unobserved_stage_reads_empty(self):
        store = LatencyStore()
        assert store.count("align") == 0
        assert store.total("align") == 0.0
        assert math.isnan(store.quantile("align", 0.5))

    def test_sample_every_keeps_every_kth(self):
        store = LatencyStore(sample_every=10)
        for _ in range(100):
            store.observe("align", 0.01)
        assert store.count("align") == 10

    def test_sample_every_validates(self):
        with pytest.raises(ValueError):
            LatencyStore(sample_every=0)

    def test_shared_registry_merges_like_slave_stats(self):
        # Slave stores land in separate registries; merging their
        # snapshots into the master registry must merge the histograms
        # (this is the exact path mp slave metrics travel).
        master = MetricsRegistry()
        for _ in range(2):
            slave_reg = MetricsRegistry()
            slave = LatencyStore(slave_reg)
            slave.observe("align", 0.01)
            slave.observe("align", 0.02)
            master.merge_snapshot(slave_reg.snapshot())
        merged = LatencyStore(master)
        assert merged.count("align") == 4

    def test_from_metrics_roundtrip(self):
        store = LatencyStore()
        for v in (0.001, 0.01, 0.1, 1.0):
            store.observe("rtt", v)
        rebuilt = LatencyStore.from_metrics(store.registry.snapshot())
        assert rebuilt.count("rtt") == 4
        assert rebuilt.quantile("rtt", 0.99) == store.quantile("rtt", 0.99)

    def test_latency_records_only_observed_stages(self):
        store = LatencyStore()
        store.observe("align", 0.01)
        recs = latency_records(store)
        assert [r["stage"] for r in recs] == ["align"]
        rec = recs[0]
        assert rec["kind"] == "latency"
        assert rec["count"] == 1
        assert rec["p50"] <= rec["p90"] <= rec["p99"] <= rec["p999"]

    def test_buckets_span_microseconds_to_seconds(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        assert LATENCY_BUCKETS[-1] == pytest.approx(100.0)
        assert all(
            b > a for a, b in zip(LATENCY_BUCKETS, LATENCY_BUCKETS[1:])
        )


# --------------------------------------------------------------------- #
# zero cost when disabled


class TestDisabledTelemetry:
    def test_disabled_session_has_no_store(self):
        assert Telemetry(enabled=False).latency is None

    def test_enabled_session_lazily_creates_one(self):
        tel = Telemetry()
        store = tel.latency
        assert store is not None
        assert tel.latency is store  # cached, not rebuilt per access

    def test_master_logic_skips_all_bookkeeping_without_store(self):
        logic = MasterLogic(10, 2, batchsize=4, workbuf_capacity=100)
        msg = SlaveMsg(
            slave_id=0,
            results=(),
            pairs=tuple(_pair(0, i + 1) for i in range(4)),
            exhausted=False,
            has_pending_results=True,
        )
        logic.on_message(msg)
        assert not logic._workbuf_ts
        assert not logic._flight_ts


# --------------------------------------------------------------------- #
# protocol-level stages (queue_master / rtt, engine-independent)


class TestMasterLogicLatency:
    def _msg(self, slave_id, pairs=(), pending=True):
        return SlaveMsg(
            slave_id=slave_id,
            results=(),
            pairs=tuple(pairs),
            exhausted=False,
            has_pending_results=pending,
        )

    def test_queue_master_measures_admission_to_dispatch(self):
        store = LatencyStore()
        logic = MasterLogic(
            10, 1, batchsize=4, workbuf_capacity=100, latency=store
        )
        pairs = tuple(_pair(0, i + 1) for i in range(4))
        # admitted and dispatched in the same reply → dwell 0; the next
        # message's pairs are admitted and dispatched at t=3.0 likewise.
        logic.on_message(self._msg(0, pairs), now=1.0)
        logic.on_message(
            self._msg(0, (_pair(5, 6), _pair(5, 7))), now=3.0
        )
        assert store.count("queue_master") == 4 + 2
        # every dwell is now - admission time, never negative
        assert store.total("queue_master") >= 0.0

    def test_rtt_observed_when_batch_retires(self):
        store = LatencyStore()
        logic = MasterLogic(
            10, 1, batchsize=2, workbuf_capacity=100, latency=store
        )
        logic.on_message(self._msg(0, (_pair(0, 1), _pair(0, 2))), now=1.0)
        logic.on_message(self._msg(0, (_pair(3, 4), _pair(3, 5))), now=2.0)
        # Third message retires the batch dispatched at t=1.0 (results
        # alternation: results cover every batch but the newest).
        logic.on_message(self._msg(0), now=4.5)
        assert store.count("rtt") == 1
        # the sum is exact (quantiles are bucket-interpolated, so assert
        # on the raw accumulator): dispatched at 1.0, absorbed at 4.5
        assert store.total("rtt") == pytest.approx(3.5)

    def test_slave_loss_requeues_and_restamps(self):
        store = LatencyStore()
        logic = MasterLogic(
            10, 2, batchsize=2, workbuf_capacity=100, latency=store
        )
        logic.on_message(self._msg(0, (_pair(0, 1), _pair(0, 2))), now=1.0)
        logic.slave_lost(0, now=5.0)
        # timestamp mirror stays aligned element-for-element
        assert len(logic._workbuf_ts) == len(logic.workbuf)
        assert 0 not in logic._flight_ts


# --------------------------------------------------------------------- #
# cross-engine parity (acceptance: sim and mp stage sets identical)


@pytest.fixture(scope="module")
def engine_stores(small_benchmark, small_config):
    """Latency stores from all three engines on the same input."""
    stores = {}
    for machine in ("simulated", "multiprocessing"):
        tel = Telemetry()
        run_parallel(
            small_benchmark.collection,
            small_config,
            n_processors=4,
            machine=machine,
            telemetry=tel,
        )
        stores[machine] = tel.latency
    tel = Telemetry()
    PaceClusterer(small_config).cluster(
        small_benchmark.collection, telemetry=tel
    )
    stores["sequential"] = tel.latency
    return stores


class TestCrossEngineParity:
    def test_sim_and_mp_stage_sets_identical(self, engine_stores):
        sim = set(engine_stores["simulated"].stages())
        mp = set(engine_stores["multiprocessing"].stages())
        assert sim == mp == set(STAGES)

    def test_sequential_reports_the_documented_subset(self, engine_stores):
        assert set(engine_stores["sequential"].stages()) == set(
            SEQUENTIAL_STAGES
        )

    def test_all_engines_report_finite_tail_quantiles(self, engine_stores):
        for name, store in engine_stores.items():
            for stage in store.stages():
                for q in (0.5, 0.99, 0.999):
                    value = store.quantile(stage, q)
                    assert math.isfinite(value) and value >= 0.0, (
                        name,
                        stage,
                        q,
                    )

    def test_quantiles_ordered_per_stage(self, engine_stores):
        for store in engine_stores.values():
            for stage, rec in store.breakdown().items():
                assert (
                    rec["p50"] <= rec["p90"] <= rec["p99"] <= rec["p999"]
                ), stage


# --------------------------------------------------------------------- #
# schema /3 round trip


def _run_sim_records(small_benchmark, small_config):
    tel = Telemetry()
    run_parallel(
        small_benchmark.collection,
        small_config,
        n_processors=4,
        machine="simulated",
        telemetry=tel,
    )
    return snapshot_records(
        tel.snapshot(engine="simulated", n_processors=4, clock="virtual")
    )


@pytest.fixture(scope="module")
def sim_records(small_benchmark, small_config):
    return _run_sim_records(small_benchmark, small_config)


class TestSchemaV3:
    def test_version_and_acceptance(self):
        assert SCHEMA_VERSION == "repro-telemetry/4"
        assert ACCEPTED_SCHEMAS == {
            "repro-telemetry/1",
            "repro-telemetry/2",
            "repro-telemetry/3",
            "repro-telemetry/4",
        }

    def test_v3_snapshot_validates_and_roundtrips(self, sim_records):
        assert validate_records(sim_records) == []
        # JSON round trip (what export_jsonl/load_jsonl do)
        recycled = [json.loads(json.dumps(r)) for r in sim_records]
        assert validate_records(recycled) == []
        kinds = {r["kind"] for r in recycled}
        assert "latency" in kinds
        stages = {r["stage"] for r in recycled if r["kind"] == "latency"}
        assert stages == set(STAGES)

    def test_v3_meta_carries_origin(self, sim_records):
        assert "origin" in sim_records[0]

    def test_older_revs_still_accepted(self):
        for rev in ("repro-telemetry/1", "repro-telemetry/2"):
            records = [
                {"kind": "meta", "schema": rev, "engine": "simulated",
                 "total_time": 1.0},
                {"kind": "metric", "metric": "counter", "name": "x",
                 "value": 1},
            ]
            assert validate_records(records) == []

    def test_unordered_quantiles_rejected(self):
        records = [
            {"kind": "meta", "schema": SCHEMA_VERSION, "total_time": 1.0},
            {"kind": "latency", "stage": "align", "count": 3, "sum": 0.3,
             "mean": 0.1, "p50": 0.2, "p90": 0.1, "p99": 0.3, "p999": 0.4},
        ]
        problems = validate_records(records)
        assert any("not ordered" in p for p in problems)

    def test_stageless_latency_record_rejected(self):
        records = [
            {"kind": "meta", "schema": SCHEMA_VERSION, "total_time": 1.0},
            {"kind": "latency", "count": 1, "sum": 0.1, "mean": 0.1,
             "p50": 0.1, "p90": 0.1, "p99": 0.1, "p999": 0.1},
        ]
        problems = validate_records(records)
        assert any("without a stage" in p for p in problems)


# --------------------------------------------------------------------- #
# analyze / diff


@pytest.fixture(scope="module")
def reference_records():
    from pathlib import Path

    from repro.telemetry import load_jsonl

    path = Path(__file__).parent / "data" / "reference_trace.jsonl"
    return load_jsonl(path)


class TestAnalyze:
    def test_reference_trace_validates(self, reference_records):
        assert validate_records(reference_records) == []

    def test_names_critical_path_and_imbalance(self, reference_records):
        text = analyze_trace(reference_records)
        assert "critical path: align" in text
        assert "imbalance" in text
        assert "slave load: 3 slaves" in text
        for stage in STAGES:
            assert stage in text

    def test_stage_table_falls_back_to_histograms(self, reference_records):
        full = stage_table(reference_records)
        stripped = [
            r for r in reference_records if r.get("kind") != "latency"
        ]
        rebuilt = stage_table(stripped)
        assert set(rebuilt) == set(full)
        for stage in full:
            assert rebuilt[stage]["count"] == full[stage]["count"]
            assert rebuilt[stage]["p99"] == pytest.approx(
                full[stage]["p99"]
            )

    def test_store_from_records_matches_table(self, reference_records):
        store = store_from_records(reference_records)
        table = stage_table(reference_records)
        for stage in store.stages():
            assert store.count(stage) == table[stage]["count"]

    def test_analyze_total_on_empty_trace(self):
        text = analyze_trace(
            [{"kind": "meta", "schema": SCHEMA_VERSION, "total_time": 0.0}]
        )
        assert "no work-unit latency data" in text


class TestDiff:
    def test_self_diff_reports_zero_regressions(self, reference_records):
        report, regressions = diff_traces(
            reference_records, reference_records
        )
        assert regressions == 0
        assert "no regressions" in report

    def test_inflated_p99_detected(self, reference_records):
        doctored = []
        for rec in reference_records:
            if rec.get("kind") == "latency" and rec["stage"] == "align":
                rec = dict(rec)
                rec["p99"] = rec["p99"] * 10
                rec["p999"] = max(rec["p999"], rec["p99"])
            doctored.append(rec)
        report, regressions = diff_traces(reference_records, doctored)
        assert regressions >= 1
        assert "REGRESSION" in report

    def test_small_jitter_below_threshold_passes(self, reference_records):
        jittered = []
        for rec in reference_records:
            if rec.get("kind") == "latency":
                rec = {
                    k: (v * 1.05 if isinstance(v, float) else v)
                    for k, v in rec.items()
                }
            jittered.append(rec)
        _report, regressions = diff_traces(
            reference_records, jittered, threshold=0.25
        )
        assert regressions == 0

    def test_disjoint_stage_sets_noted_not_counted(self):
        meta = {"kind": "meta", "schema": SCHEMA_VERSION, "total_time": 1.0}
        a = [meta, {"kind": "latency", "stage": "align", "count": 1,
                    "sum": 0.1, "mean": 0.1, "p50": 0.1, "p90": 0.1,
                    "p99": 0.1, "p999": 0.1}]
        b = [meta]
        report, regressions = diff_traces(a, b)
        assert regressions == 0
        assert "only in baseline" in report


class TestCli:
    def test_analyze_and_diff_commands(self, tmp_path, reference_records):
        from pathlib import Path

        from repro.cli import main

        ref = str(Path(__file__).parent / "data" / "reference_trace.jsonl")
        assert main(["analyze", ref]) == 0
        assert main(["diff", ref, ref]) == 0

        doctored = tmp_path / "doctored.jsonl"
        lines = []
        for rec in reference_records:
            if rec.get("kind") == "latency":
                rec = dict(rec)
                for q in ("mean", "p50", "p90", "p99", "p999"):
                    rec[q] = rec[q] * 10
                rec["sum"] = rec["sum"] * 10
            lines.append(json.dumps(rec))
        doctored.write_text("\n".join(lines) + "\n")
        assert main(["diff", ref, str(doctored)]) == 1
        # regression direction matters: a *faster* candidate passes
        assert main(["diff", str(doctored), ref]) == 0


# --------------------------------------------------------------------- #
# /metrics rendering (satellite: histogram quantile gauges)


class TestPrometheusQuantiles:
    def test_latency_histograms_render_tail_gauges(self):
        from repro.telemetry import LiveRunState, render_prometheus

        reg = MetricsRegistry()
        store = LatencyStore(reg)
        for v in (0.001, 0.01, 0.1):
            store.observe("rtt", v)
        reg.observe("align.band_width", 12.0, (8.0, 16.0))
        text = render_prometheus(LiveRunState(2), reg.histograms)
        assert "pace_latency_rtt_seconds_count 3" in text
        assert "pace_latency_rtt_seconds_p50 " in text
        assert "pace_latency_rtt_seconds_p99 " in text
        assert "pace_latency_rtt_seconds_p999 " in text
        # non-latency histograms get count/sum/p50/p99 but no p999
        assert "pace_align_band_width_p50 " in text
        assert "pace_align_band_width_p999" not in text
        assert "NaN" not in text

    def test_empty_histograms_skipped(self):
        from repro.telemetry import LiveRunState, render_prometheus

        reg = MetricsRegistry()
        reg.histogram("latency.rtt.seconds", LATENCY_BUCKETS)  # no samples
        text = render_prometheus(LiveRunState(2), reg.histograms)
        assert "pace_latency_rtt_seconds" not in text
