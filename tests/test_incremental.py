"""Tests for incremental clustering — the paper's §5 open problem."""

import pytest

from repro.core import ClusteringConfig, IncrementalClusterer, PaceClusterer
from repro.metrics import assess_clustering
from repro.sequence import EstCollection


def _split_batches(bench, n_batches=3):
    reads = [bench.collection.est(i).copy() for i in range(bench.n_ests)]
    size = (len(reads) + n_batches - 1) // n_batches
    return [reads[i : i + size] for i in range(0, len(reads), size)]


class TestIncrementalClusterer:
    def test_single_batch_equals_scratch(self, small_benchmark, small_config):
        inc = IncrementalClusterer(small_config)
        inc.add_batch([small_benchmark.collection.est(i).copy() for i in range(small_benchmark.n_ests)])
        scratch = PaceClusterer(small_config).cluster(small_benchmark.collection)
        assert inc.clusters() == scratch.clusters

    def test_multi_batch_matches_scratch_quality(self, small_benchmark, small_config):
        inc = IncrementalClusterer(small_config)
        for batch in _split_batches(small_benchmark, 3):
            inc.add_batch(batch)
        scratch = PaceClusterer(small_config).cluster(small_benchmark.collection)
        q = assess_clustering(inc.clusters(), scratch.clusters, small_benchmark.n_ests)
        # Incremental must agree with scratch (identical pair universe; the
        # only admissible deviation is seed-variance on borderline pairs).
        assert q.oq > 99.0 and q.cc > 99.0

    def test_later_batches_skip_old_old_pairs(self, small_benchmark, small_config):
        batches = _split_batches(small_benchmark, 2)
        inc = IncrementalClusterer(small_config)
        r1 = inc.add_batch(batches[0])
        r2 = inc.add_batch(batches[1])
        # Round 2 re-generates the full pair universe but aligns only
        # pairs touching the new batch: strictly less alignment than the
        # full-universe generation would imply.
        assert r2.counters.pairs_processed < r2.counters.pairs_generated
        assert inc.rounds == 2
        assert inc.n_ests == small_benchmark.n_ests

    def test_new_est_bridges_old_clusters(self, small_config):
        # Two reads that share no 8-mer (checked by construction), then a
        # third overlapping both by 32 bp: adding it must merge the two
        # existing clusters — the genuinely "incremental" event.
        left = "TGGCCAAAATGTGGTGGGGTCTGACTGATGTAATAGACCC"
        right = "CAAAAGGGCGTCCTTTCGTGTGGCTAGGTGCCCCGTATGC"
        bridge = left[8:] + right[:32]
        cfg = ClusteringConfig.small_reads(psi=8, w=4)
        inc = IncrementalClusterer(cfg)
        from repro.sequence import encode

        inc.add_batch([encode(left), encode(right)])
        assert len(inc.clusters()) == 2
        inc.add_batch([encode(bridge)])
        assert len(inc.clusters()) == 1

    def test_empty_batch_rejected(self, small_config):
        with pytest.raises(ValueError):
            IncrementalClusterer(small_config).add_batch([])

    def test_labels_before_any_batch(self, small_config):
        inc = IncrementalClusterer(small_config)
        assert inc.labels() == [] and inc.clusters() == [] and inc.n_ests == 0
