"""Tests for acceptance-threshold tuning (the §4.1 calibration rule)."""

import pytest

from repro.core import ClusteringConfig, PaceClusterer
from repro.core.tuning import tune_acceptance


class TestTuneAcceptance:
    def test_sweep_structure(self, small_benchmark, small_config):
        result = tune_acceptance(
            small_benchmark.collection,
            small_benchmark.true_labels,
            config=small_config,
            ratios=[0.6, 0.7, 0.8, 0.9],
        )
        assert len(result.points) == 4
        ratios = [p.min_score_ratio for p in result.points]
        assert ratios == sorted(ratios)
        assert result.best in result.points

    def test_best_minimises_fp_plus_fn(self, small_benchmark, small_config):
        result = tune_acceptance(
            small_benchmark.collection,
            small_benchmark.true_labels,
            config=small_config,
            ratios=[0.5, 0.7, 0.9],
        )
        assert result.best.fp_plus_fn == min(p.fp_plus_fn for p in result.points)

    def test_extreme_thresholds_are_worse(self, small_benchmark, small_config):
        """A near-1.0 threshold under-predicts (errors break perfection);
        the tuned optimum must beat it on FP+FN."""
        result = tune_acceptance(
            small_benchmark.collection,
            small_benchmark.true_labels,
            config=small_config,
            ratios=[0.5, 0.6, 0.7, 0.8, 0.9, 0.99],
        )
        strictest = result.points[-1]
        assert result.best.fp_plus_fn <= strictest.fp_plus_fn
        assert result.best.min_score_ratio < 0.99

    def test_tie_breaks_toward_stricter(self, small_benchmark, small_config):
        result = tune_acceptance(
            small_benchmark.collection,
            small_benchmark.true_labels,
            config=small_config,
            ratios=[0.70, 0.75, 0.80],
        )
        ties = [
            p for p in result.points if p.fp_plus_fn == result.best.fp_plus_fn
        ]
        assert result.best.min_score_ratio == max(p.min_score_ratio for p in ties)

    def test_as_criteria_roundtrip(self, small_benchmark, small_config):
        result = tune_acceptance(
            small_benchmark.collection,
            small_benchmark.true_labels,
            config=small_config,
            ratios=[0.8],
        )
        crit = result.as_criteria(min_overlap=30)
        assert crit.min_score_ratio == 0.8 and crit.min_overlap == 30

    def test_tuned_threshold_matches_full_pipeline(
        self, small_benchmark, small_config
    ):
        """The sweep's filtered-graph partition at threshold t equals a
        real clustering run with that acceptance threshold."""
        from dataclasses import replace

        from repro.align.scoring import AcceptanceCriteria
        from repro.metrics import assess_clustering

        result = tune_acceptance(
            small_benchmark.collection,
            small_benchmark.true_labels,
            config=small_config,
            ratios=[0.8],
        )
        point = result.points[0]
        cfg = ClusteringConfig.small_reads(
            acceptance=AcceptanceCriteria(
                min_score_ratio=0.8,
                min_overlap=small_config.acceptance.min_overlap,
            )
        )
        run = PaceClusterer(cfg).cluster(small_benchmark.collection)
        run_q = assess_clustering(
            run.clusters, small_benchmark.true_clusters(), small_benchmark.n_ests
        )
        assert run_q.cc == pytest.approx(point.report.cc, abs=1.0)

    def test_label_count_validated(self, small_benchmark, small_config):
        with pytest.raises(ValueError, match="labels for"):
            tune_acceptance(
                small_benchmark.collection, [0, 1], config=small_config
            )
