"""Causal work-unit tracing, Perfetto export, flight recorder, postmortem.

Covers the observability stack end to end: unit-id encoding, the
conservation ledger (orphans, double absorbs, requeue storms), causal
event streams from all three engines (including survival across injected
crashes and requeues), sim-vs-mp parity on the deterministic projections,
Chrome-trace JSON shape, flight-recorder dump semantics, tolerant JSONL
loading, the postmortem reconstruction, and the `--obs-out` CLI fan-out.
"""

from __future__ import annotations

import json
import signal
from contextlib import contextmanager
from dataclasses import replace

import pytest

from repro.core import PaceClusterer
from repro.parallel import (
    FaultPlan,
    FaultSpec,
    FaultTolerance,
    cluster_multiprocessing,
    run_parallel,
    simulate_clustering,
)
from repro.telemetry import (
    CausalRecorder,
    FlightRecorder,
    Telemetry,
    UnitMinter,
    build_postmortem,
    check_conservation,
    chrome_trace,
    export_chrome_trace,
    export_jsonl,
    format_unit,
    load_flight_dumps,
    load_jsonl,
    merge_flight_events,
    validate_records,
)
from repro.telemetry.analyze import conservation_section
from repro.telemetry.causal import (
    CAUSAL_EVENTS,
    REQUEUE_STORM_THRESHOLD,
    unit_parts,
)

HARD_DEADLINE_S = 120


@contextmanager
def hard_deadline(seconds: int = HARD_DEADLINE_S):
    """Fail (instead of hanging CI) if the body runs too long."""

    def on_alarm(signum, frame):
        raise TimeoutError(f"run exceeded {seconds}s — runtime hung")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def causal_records(snapshot) -> list[dict]:
    return [r for r in snapshot.events if r.get("kind") == "causal"]


def event_totals(records: list[dict]) -> dict[str, int]:
    totals: dict[str, int] = {}
    for rec in records:
        totals[rec["event"]] = totals.get(rec["event"], 0) + int(rec["n"])
    return totals


# --------------------------------------------------------------------- #
# unit ids
# --------------------------------------------------------------------- #


class TestUnitIds:
    def test_mint_decode_round_trip(self):
        for origin in (-1, 0, 3, 200):
            for inc in (0, 1, 7):
                mint = UnitMinter(origin, inc)
                for seq in range(3):
                    assert unit_parts(mint()) == (origin, inc, seq)

    def test_incarnations_never_collide(self):
        a = {UnitMinter(2, 0)() for _ in range(100)}
        b = {UnitMinter(2, 1)() for _ in range(100)}
        m = {UnitMinter(-1)() for _ in range(100)}
        assert not (a & b) and not (a & m) and not (b & m)

    def test_format(self):
        assert format_unit(UnitMinter(3, 1)()) == "s3.1:0"
        mint = UnitMinter(-1)
        mint()
        assert format_unit(mint()) == "m:1"

    def test_rejects_bad_origin_and_incarnation(self):
        with pytest.raises(ValueError):
            UnitMinter(-2)
        with pytest.raises(ValueError):
            UnitMinter(0, -1)


# --------------------------------------------------------------------- #
# the conservation ledger
# --------------------------------------------------------------------- #


def _rec(event, unit, n, *, ts=0.0, slave=None, reason=None):
    rec = {"kind": "causal", "event": event, "unit": unit, "n": n,
           "actor": "master", "ts": ts}
    if slave is not None:
        rec["slave"] = slave
    if reason is not None:
        rec["reason"] = reason
    return rec


class TestConservation:
    def test_balanced_unit_passes(self):
        unit = UnitMinter(0)()
        report = check_conservation([
            _rec("generated", unit, 10),
            _rec("admitted", unit, 6),
            _rec("pruned", unit, 4, reason="admission"),
            _rec("dispatched", unit, 6, slave=0),
            _rec("absorbed", unit, 6, slave=0),
        ])
        assert report.ok()
        assert not report.orphans and not report.in_flight
        assert report.total_admitted == report.total_absorbed == 6

    def test_requeue_cancels_out_of_headline(self):
        unit = UnitMinter(0)()
        report = check_conservation([
            _rec("admitted", unit, 6),
            _rec("dispatched", unit, 6, slave=0),
            _rec("requeued", unit, 6),
            _rec("dispatched", unit, 6, slave=1),
            _rec("absorbed", unit, 6, slave=1),
        ])
        assert report.ok()
        assert report.total_admitted == report.total_absorbed == 6

    def test_never_admitted_unit_is_orphan(self):
        unit = UnitMinter(1)()
        report = check_conservation([
            _rec("dispatched", unit, 5, slave=1),
            _rec("absorbed", unit, 5, slave=1),
        ])
        assert not report.ok()
        assert any("never admitted" in msg for msg in report.orphans)

    def test_double_absorb_is_error(self):
        unit = UnitMinter(0)()
        report = check_conservation([
            _rec("admitted", unit, 4),
            _rec("dispatched", unit, 4, slave=0),
            _rec("absorbed", unit, 4, slave=0),
            _rec("absorbed", unit, 4, slave=0),
        ])
        assert not report.ok()
        assert any("double absorb" in msg for msg in report.orphans)

    def test_in_flight_reported_and_gated(self):
        unit = UnitMinter(0)()
        report = check_conservation([
            _rec("admitted", unit, 8),
            _rec("dispatched", unit, 8, slave=2),
        ])
        assert report.in_flight == {unit: 8}
        assert not report.ok()  # a completed run must balance
        assert report.ok(allow_in_flight=True)  # a crashed run may not
        lines = report.lines(allow_in_flight=True)
        assert any("slave 2" in line for line in lines)

    def test_workbuf_leftover_counts_as_in_flight(self):
        unit = UnitMinter(0)()
        report = check_conservation([
            _rec("admitted", unit, 8),
            _rec("dispatched", unit, 3, slave=0),
            _rec("absorbed", unit, 3, slave=0),
        ])
        assert report.in_flight == {unit: 5}
        assert any(
            "WORKBUF" in line for line in report.lines(allow_in_flight=True)
        )

    def test_requeue_storm_flagged(self):
        unit = UnitMinter(0)()
        events = [_rec("admitted", unit, 2)]
        for k in range(REQUEUE_STORM_THRESHOLD):
            events.append(_rec("dispatched", unit, 2, slave=k))
            events.append(_rec("requeued", unit, 2))
        events.append(_rec("dispatched", unit, 2, slave=0))
        events.append(_rec("absorbed", unit, 2, slave=0))
        report = check_conservation(events)
        assert report.ok()
        assert report.storms == {unit: REQUEUE_STORM_THRESHOLD}
        assert any("requeue storm" in line for line in report.lines())

    def test_non_causal_records_ignored(self):
        report = check_conservation([
            {"kind": "trace", "event": "send", "ts": 0.0},
            {"kind": "metric", "name": "x"},
        ])
        assert report.ok() and not report.ledgers

    def test_conservation_section_empty_without_ledgers(self):
        lines, errors = conservation_section([{"kind": "trace"}])
        assert lines == [] and errors == 0

    def test_conservation_section_counts_errors(self):
        unit = UnitMinter(0)()
        lines, errors = conservation_section([
            _rec("admitted", unit, 8),
            _rec("dispatched", unit, 8, slave=2),
        ])
        assert errors == 1
        assert any("FAIL" in line for line in lines)


# --------------------------------------------------------------------- #
# engine streams
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def causal_config(request):
    config = request.getfixturevalue("small_config")
    return replace(config, causal_tracing=True)


class TestEngineStreams:
    def test_sequential_stream_balances(self, small_benchmark, causal_config):
        tel = Telemetry()
        result = PaceClusterer(causal_config).cluster(
            small_benchmark.collection, telemetry=tel
        )
        records = causal_records(result.telemetry)
        assert records, "sequential run recorded no causal events"
        assert {r["event"] for r in records} <= CAUSAL_EVENTS
        report = check_conservation(records)
        assert report.ok(), report.lines()
        # Master-minted units only: the sequential driver is its own slave.
        assert all(unit_parts(r["unit"])[0] == -1 for r in records)

    def test_sim_clean_run_balances(self, small_benchmark, causal_config):
        tel = Telemetry()
        report = simulate_clustering(
            small_benchmark.collection, causal_config,
            n_processors=4, telemetry=tel,
        )
        records = causal_records(report.result.telemetry)
        cons = check_conservation(records)
        assert cons.ok(), cons.lines()
        totals = event_totals(records)
        assert totals["admitted"] == totals["absorbed"]
        assert totals["dispatched"] == totals["absorbed"]

    def test_disabled_config_emits_no_causal_records(
        self, small_benchmark, small_config
    ):
        tel = Telemetry()
        report = simulate_clustering(
            small_benchmark.collection, small_config,
            n_processors=4, telemetry=tel,
        )
        assert not causal_records(report.result.telemetry)

    def test_sim_units_survive_crash_and_requeue(
        self, small_benchmark, causal_config
    ):
        faults = FaultPlan.of(
            FaultSpec(slave_id=0, kind="kill_after_send", at_message=1),
        )
        tel = Telemetry()
        report = simulate_clustering(
            small_benchmark.collection, causal_config,
            n_processors=4, faults=faults,
            tolerance=FaultTolerance(max_restarts=1, detection_delay=0.1),
            telemetry=tel,
        )
        records = causal_records(report.result.telemetry)
        cons = check_conservation(records)
        assert cons.ok(), cons.lines()
        # The kill happened after work was dispatched to slave 0, so its
        # in-flight units were requeued or requeue-pruned — and every one
        # of them still settled (conservation PASS above proves it).
        totals = event_totals(records)
        assert totals.get("requeued", 0) + totals.get("pruned", 0) > 0
        requeued_units = {
            r["unit"] for r in records if r["event"] == "requeued"
        }
        for unit in requeued_units:
            led = cons.ledgers[unit]
            assert led.in_flight == 0
        # Identical clusters to the sequential run, fault or no fault.
        seq = PaceClusterer(causal_config).cluster(small_benchmark.collection)
        assert report.result.clusters == seq.clusters

    def test_sim_vs_mp_parity_on_deterministic_projections(
        self, small_benchmark, causal_config
    ):
        """Generation is deterministic, asynchrony is not: the engines
        must agree on total pairs generated and on admitted+pruned (every
        generated pair meets exactly one of those fates), while the
        admitted/pruned *split* may differ with real timing."""
        with hard_deadline():
            sim_tel, mp_tel = Telemetry(), Telemetry()
            sim = run_parallel(
                small_benchmark.collection, causal_config,
                n_processors=4, machine="simulated", telemetry=sim_tel,
            )
            mp = run_parallel(
                small_benchmark.collection, causal_config,
                n_processors=4, machine="multiprocessing", telemetry=mp_tel,
            )
        sim_totals = event_totals(causal_records(sim.telemetry))
        mp_totals = event_totals(causal_records(mp.telemetry))
        assert sim_totals["generated"] == mp_totals["generated"]
        assert (
            sim_totals["admitted"] + sim_totals["pruned"]
            == mp_totals["admitted"] + mp_totals["pruned"]
        )
        for totals in (sim_totals, mp_totals):
            assert totals["admitted"] == totals["absorbed"]
        for snapshot in (sim.telemetry, mp.telemetry):
            cons = check_conservation(causal_records(snapshot))
            assert cons.ok(), cons.lines()
        assert sim.clusters == mp.clusters


# --------------------------------------------------------------------- #
# Perfetto export
# --------------------------------------------------------------------- #


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def sim_trace_records(self, request):
        benchmark = request.getfixturevalue("small_benchmark")
        config = replace(
            request.getfixturevalue("small_config"), causal_tracing=True
        )
        tel = Telemetry()
        report = simulate_clustering(
            benchmark.collection, config, n_processors=4, telemetry=tel,
        )
        from repro.telemetry import snapshot_records

        return snapshot_records(report.result.telemetry)

    def test_shape_is_chrome_trace_json(self, sim_trace_records, tmp_path):
        path = tmp_path / "trace.perfetto.json"
        n = export_chrome_trace(sim_trace_records, path)
        payload = json.loads(path.read_text())
        assert isinstance(payload, dict)
        events = payload["traceEvents"]
        assert len(events) == n > 0
        for ev in events:
            assert isinstance(ev["name"], str)
            assert ev["ph"] in {"M", "X", "i", "s", "t", "f"}
            assert isinstance(ev["pid"], int)
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], (int, float))
            if ev["ph"] == "X":
                assert ev["dur"] >= 0

    def test_metadata_names_every_actor(self, sim_trace_records):
        payload = chrome_trace(sim_trace_records)
        named = {
            ev["args"]["name"]
            for ev in payload["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert "master" in named
        assert any(name.startswith("slave") for name in named)

    def test_flow_arrows_bind_dispatch_to_absorb(self, sim_trace_records):
        payload = chrome_trace(sim_trace_records)
        flows: dict[str, set[str]] = {"s": set(), "t": set(), "f": set()}
        for ev in payload["traceEvents"]:
            if ev["ph"] in flows:
                flows[ev["ph"]].add(ev["id"])
        assert flows["s"], "no flow starts in a causal-traced run"
        # Every finish closes a started flow; steps only appear on them.
        assert flows["f"] <= flows["s"]
        assert flows["t"] <= flows["s"]
        assert flows["f"]

    def test_causal_slices_use_causal_categories(self, sim_trace_records):
        payload = chrome_trace(sim_trace_records)
        cats = {
            ev.get("cat", "")
            for ev in payload["traceEvents"]
            if ev["ph"] == "X"
        }
        assert any(cat.startswith("causal.") for cat in cats)
        assert "machine" in cats

    def test_accepts_file_like_and_path_str(self, sim_trace_records, tmp_path):
        import io

        buf = io.StringIO()
        n1 = export_chrome_trace(sim_trace_records, buf)
        n2 = export_chrome_trace(
            sim_trace_records, str(tmp_path / "out.json")
        )
        assert n1 == n2
        assert json.loads(buf.getvalue())["traceEvents"]


# --------------------------------------------------------------------- #
# flight recorder
# --------------------------------------------------------------------- #


class TestFlightRecorder:
    def test_ring_is_bounded(self, tmp_path):
        rec = FlightRecorder(str(tmp_path), "slave0", capacity=4)
        for k in range(10):
            rec.note("send", k=k)
        assert len(rec) == 4
        assert rec.events[0]["k"] == 6

    def test_dump_and_load_round_trip(self, tmp_path):
        clock_value = [1.5]
        rec = FlightRecorder(
            str(tmp_path), "slave3", run_id="r1",
            clock=lambda: clock_value[0],
            state_provider=lambda: {"pairbuf_depth": 7},
        )
        rec.note("send", msg=2)
        path = rec.dump("crash")
        assert path is not None
        dumps = load_flight_dumps(str(tmp_path))
        assert len(dumps) == 1
        dump = dumps[0]
        assert dump["schema"] == "repro-flight/1"
        assert dump["actor"] == "slave3"
        assert dump["reason"] == "crash"
        assert dump["state"] == {"pairbuf_depth": 7}
        assert dump["events"][0]["event"] == "send"

    def test_first_dump_wins_unless_forced(self, tmp_path):
        rec = FlightRecorder(str(tmp_path), "master")
        assert rec.dump("crash") is not None
        assert rec.dump("sigterm") is None
        assert load_flight_dumps(str(tmp_path))[0]["reason"] == "crash"
        assert rec.dump("fault-transition", force=True) is not None
        assert (
            load_flight_dumps(str(tmp_path))[0]["reason"] == "fault-transition"
        )

    def test_half_written_dump_is_skipped_not_raised(self, tmp_path):
        (tmp_path / "flight-slave0.json").write_text('{"actor": "slave0", ')
        rec = FlightRecorder(str(tmp_path), "slave1")
        rec.dump("crash")
        dumps = load_flight_dumps(str(tmp_path))
        assert len(dumps) == 2
        assert "load_error" in dumps[0]
        assert dumps[1]["actor"] == "slave1"

    def test_merge_orders_events_and_tags_actors(self, tmp_path):
        a = FlightRecorder(str(tmp_path), "slave0", clock=lambda: 2.0)
        b = FlightRecorder(str(tmp_path), "slave1", clock=lambda: 1.0)
        a.note("send")
        b.note("recv")
        a.dump("crash")
        b.dump("crash")
        merged = merge_flight_events(load_flight_dumps(str(tmp_path)))
        assert [e["actor"] for e in merged] == ["slave1", "slave0"]

    def test_dump_survives_unwritable_directory(self, tmp_path):
        rec = FlightRecorder(str(tmp_path / "not" / "a" / "file.txt"), "x")
        (tmp_path / "not").write_text("blocked")  # makedirs will fail
        assert rec.dump("crash") is None  # never raises


# --------------------------------------------------------------------- #
# tolerant JSONL loading
# --------------------------------------------------------------------- #


class TestTolerantLoad:
    def test_truncated_final_line_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"kind": "meta", "schema": "repro-telemetry/4"}\n'
            '{"kind": "trace", "event": "send", "actor": "master", "ts": 1.0}\n'
            '{"kind": "trace", "event": "re'  # the crash took the rest
        )
        with pytest.warns(UserWarning, match="truncated final line"):
            records = load_jsonl(path, tolerant=True)
        assert len(records) == 2

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"kind": "meta"}\n'
            "garbage\n"
            '{"kind": "trace", "event": "send", "actor": "m", "ts": 1.0}\n'
        )
        with pytest.raises(ValueError):
            load_jsonl(path, tolerant=True)

    def test_strict_mode_raises_on_truncation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "meta"}\n{"kind": ')
        with pytest.raises(ValueError):
            load_jsonl(path)


# --------------------------------------------------------------------- #
# the acceptance scenario: faulted sharded mp run, end to end
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def faulted_obs_run(request, tmp_path_factory):
    """One faulted 4-slave 2-shard mp run with the full observability
    stack armed: causal tracing, flight recorders, telemetry JSONL."""
    benchmark = request.getfixturevalue("small_benchmark")
    obs_dir = tmp_path_factory.mktemp("obs")
    config = replace(
        request.getfixturevalue("small_config"),
        causal_tracing=True,
        flight_dir=str(obs_dir),
        master_shards=2,
    )
    faults = FaultPlan.of(
        FaultSpec(slave_id=0, kind="kill_after_send", at_message=1),
        FaultSpec(slave_id=2, kind="kill", at_message=2, incarnation=None),
    )
    tel = Telemetry()
    with hard_deadline():
        result = cluster_multiprocessing(
            benchmark.collection, config,
            n_processors=5, faults=faults,
            tolerance=FaultTolerance(
                slave_timeout=15.0, poll_interval=0.05, max_restarts=1
            ),
            telemetry=tel,
        )
    export_jsonl(result.telemetry, obs_dir / "trace.jsonl")
    return benchmark, config, obs_dir, result


class TestFaultedShardedRun:
    def test_clusters_match_sequential(self, faulted_obs_run):
        benchmark, config, _, result = faulted_obs_run
        seq = PaceClusterer(config).cluster(benchmark.collection)
        assert result.clusters == seq.clusters

    def test_conservation_passes(self, faulted_obs_run):
        _, _, obs_dir, _ = faulted_obs_run
        records = load_jsonl(obs_dir / "trace.jsonl", tolerant=True)
        assert not validate_records(records)
        cons = check_conservation(records)
        assert cons.ok(), cons.lines()

    def test_flight_dump_per_dead_slave(self, faulted_obs_run):
        _, _, obs_dir, _ = faulted_obs_run
        dumps = {d["actor"]: d for d in load_flight_dumps(str(obs_dir))}
        assert dumps["slave0"]["reason"] == "injected-kill"
        assert dumps["slave2"]["reason"] == "injected-kill"
        # The master dumped on the fault transition, carrying its view of
        # the in-flight units the dead slaves were holding.
        master = dumps["master"]
        assert master["reason"] == "fault-transition"
        assert "in_flight_units" in master["state"]

    def test_perfetto_export_loads(self, faulted_obs_run, tmp_path):
        _, _, obs_dir, _ = faulted_obs_run
        records = load_jsonl(obs_dir / "trace.jsonl", tolerant=True)
        out = tmp_path / "timeline.perfetto.json"
        n = export_chrome_trace(records, out)
        payload = json.loads(out.read_text())
        assert len(payload["traceEvents"]) == n
        # Shards render as their own tracks.
        named = {
            ev["args"]["name"]
            for ev in payload["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert {"shard0", "shard1"} <= named

    def test_postmortem_names_lost_slaves(self, faulted_obs_run):
        _, _, obs_dir, _ = faulted_obs_run
        report, ok = build_postmortem(obs_dir)
        assert ok, report
        assert "slave2" in report
        assert "injected-kill" in report
        assert "conservation: PASS" in report

    def test_postmortem_on_truncated_run_reports_in_flight(
        self, faulted_obs_run, tmp_path
    ):
        """Cut the trace off mid-run (as a dead master would) and the
        postmortem must degrade to naming what was still in flight."""
        _, _, obs_dir, _ = faulted_obs_run
        records = load_jsonl(obs_dir / "trace.jsonl", tolerant=True)
        causal = [r for r in records if r.get("kind") == "causal"]
        # Drop everything after the first dispatch's timestamp so at
        # least one unit is mid-flight, and drop the meta total_time so
        # the run reads as unfinished.
        first_dispatch = next(
            r["ts"] for r in causal if r["event"] == "dispatched"
        )
        cut = []
        for rec in records:
            if rec.get("kind") == "meta":
                rec = {
                    k: v for k, v in rec.items() if k != "total_time"
                }
            if rec.get("ts", 0.0) <= first_dispatch:
                cut.append(rec)
        crash_dir = tmp_path / "crashed"
        crash_dir.mkdir()
        with open(crash_dir / "trace.jsonl", "w") as fh:
            for rec in cut:
                fh.write(json.dumps(rec) + "\n")
        report, ok = build_postmortem(crash_dir)
        assert ok, report
        assert "in flight" in report
        assert "dispatched to slave" in report

    def test_postmortem_empty_directory_fails(self, tmp_path):
        report, ok = build_postmortem(tmp_path / "nothing")
        assert not ok


# --------------------------------------------------------------------- #
# the CLI fan-out
# --------------------------------------------------------------------- #


class TestObsOutFanout:
    def test_obs_out_writes_every_sink_with_one_run_id(
        self, tmp_path, small_benchmark
    ):
        from repro.cli import main
        from repro.sequence import FastaRecord, write_fasta

        collection = small_benchmark.collection
        fasta = tmp_path / "ests.fa"
        write_fasta(
            (
                FastaRecord(f"e{i}", collection.est_string(i))
                for i in range(collection.n_ests)
            ),
            fasta,
        )
        obs = tmp_path / "obs"
        with hard_deadline():
            rc = main([
                "cluster", str(fasta),
                "-o", str(tmp_path / "clusters.tsv"),
                "--w", "6", "--psi", "15",
                "--min-overlap", "30", "--min-ratio", "0.8",
                "--parallel", "3", "--machine", "simulated",
                "--obs-out", str(obs),
            ])
        assert rc == 0
        trace = load_jsonl(obs / "trace.jsonl", tolerant=True)
        live = load_jsonl(obs / "live.jsonl", tolerant=True)
        assert json.loads(
            (obs / "timeline.perfetto.json").read_text()
        )["traceEvents"]
        trace_meta = next(r for r in trace if r.get("kind") == "meta")
        live_meta = next(r for r in live if r.get("kind") == "meta")
        assert trace_meta["run_id"] == live_meta["run_id"] != ""
        # causal tracing came on with the fan-out
        assert any(r.get("kind") == "causal" for r in trace)
        report, ok = build_postmortem(obs)
        assert ok, report

    def test_causal_trace_requires_telemetry_out(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="telemetry"):
            main(["cluster", str(tmp_path / "x.fa"), "--causal-trace"])


# --------------------------------------------------------------------- #
# multi-shard metrics scrape
# --------------------------------------------------------------------- #


class TestShardMetrics:
    def test_multi_shard_metrics_scraped_from_endpoint(
        self, small_benchmark, small_config
    ):
        import urllib.request

        from repro.telemetry import RunMonitor

        monitor = RunMonitor(port=0, interval=0.05)
        try:
            with hard_deadline():
                simulate_clustering(
                    small_benchmark.collection,
                    replace(small_config, master_shards=2),
                    n_processors=4,
                    monitor=monitor,
                )
            url = f"http://127.0.0.1:{monitor.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as resp:
                text = resp.read().decode()
        finally:
            monitor.close()
        for gauge in (
            "pace_shard_slaves", "pace_shard_busy_slaves",
            "pace_shard_workbuf_depth", "pace_shard_pairs_dispatched_total",
            "pace_shard_merges_total", "pace_shard_unions_absorbed_total",
        ):
            assert f'{gauge}{{shard="0"}}' in text
            assert f'{gauge}{{shard="1"}}' in text
        # Single-master runs must keep their metric surface unchanged.
        monitor2 = RunMonitor(port=0, interval=0.05)
        try:
            simulate_clustering(
                small_benchmark.collection, small_config,
                n_processors=3, monitor=monitor2,
            )
            text2 = monitor2.metrics_text()
        finally:
            monitor2.close()
        assert "pace_shard_" not in text2

    def test_shard_rows_in_progress_table(self, small_benchmark, small_config):
        import io

        from repro.telemetry import (
            RunMonitor,
            render_progress_table,
            replay_live_records,
        )

        buf = io.StringIO()
        monitor = RunMonitor(live_out=buf, interval=0.05)
        try:
            simulate_clustering(
                small_benchmark.collection,
                replace(small_config, master_shards=2),
                n_processors=4,
                monitor=monitor,
            )
            table = render_progress_table(monitor.state.as_dict())
        finally:
            monitor.close()
        assert "shard0" in table and "shard1" in table
        assert "sync-in" in table
        # The shard view replays from the live JSONL stream too.
        records = [
            json.loads(line) for line in buf.getvalue().splitlines()
        ]
        replayed = replay_live_records(records)
        assert [s["shard_id"] for s in replayed.shards] == [0, 1]
