"""Hypothesis invariants of the overlap aligner's spans and transcripts."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align import ScoringParams, overlap_align

P = ScoringParams()


def _reads(seed: int):
    rng = np.random.default_rng(seed)
    core = rng.integers(0, 4, int(rng.integers(10, 60))).astype(np.uint8)
    a = np.concatenate([rng.integers(0, 4, int(rng.integers(0, 15))).astype(np.uint8), core])
    b = np.concatenate([core, rng.integers(0, 4, int(rng.integers(0, 15))).astype(np.uint8)])
    return a, b


seeds = st.integers(0, 10**6)


class TestOverlapAlignInvariants:
    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_spans_within_bounds(self, seed):
        a, b = _reads(seed)
        res = overlap_align(a, b, P)
        assert 0 <= res.a_start <= res.a_end <= len(a)
        assert 0 <= res.b_start <= res.b_end <= len(b)

    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_ops_consume_exactly_the_spans(self, seed):
        a, b = _reads(seed)
        res = overlap_align(a, b, P)
        consumed_a = sum(1 for op in res.ops if op in "MXD")
        consumed_b = sum(1 for op in res.ops if op in "MXI")
        assert consumed_a == res.a_end - res.a_start
        assert consumed_b == res.b_end - res.b_start

    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_ops_score_equals_reported_score(self, seed):
        a, b = _reads(seed)
        res = overlap_align(a, b, P)
        score = 0.0
        i, j = res.a_start, res.b_start
        prev = None
        for op in res.ops:
            if op in "MX":
                score += P.match if a[i] == b[j] else P.mismatch
                i += 1
                j += 1
                prev = None
            elif op == "D":
                score += P.gap_extend if prev == "D" else P.gap_open
                i += 1
                prev = "D"
            else:
                score += P.gap_extend if prev == "I" else P.gap_open
                j += 1
                prev = "I"
        assert score == res.score

    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_m_and_x_ops_are_truthful(self, seed):
        a, b = _reads(seed)
        res = overlap_align(a, b, P)
        i, j = res.a_start, res.b_start
        for op in res.ops:
            if op == "M":
                assert a[i] == b[j]
                i, j = i + 1, j + 1
            elif op == "X":
                assert a[i] != b[j]
                i, j = i + 1, j + 1
            elif op == "D":
                i += 1
            else:
                j += 1

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_score_at_least_shared_core(self, seed):
        """Our constructed pairs share a core: the optimal overlap scores
        at least the plain all-match core alignment."""
        a, b = _reads(seed)
        res = overlap_align(a, b, P)
        # The shared core is the longest suffix of a equal to a prefix of b.
        shared = 0
        max_k = min(len(a), len(b))
        for k in range(max_k, 0, -1):
            if np.array_equal(a[len(a) - k :], b[:k]):
                shared = k
                break
        assert res.score >= P.match * shared - 1e-9

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_swap_symmetry(self, seed):
        """Swapping the inputs mirrors the result."""
        a, b = _reads(seed)
        r1 = overlap_align(a, b, P)
        r2 = overlap_align(b, a, P)
        assert r1.score == r2.score
        assert (r1.a_start, r1.a_end) == (r2.b_start, r2.b_end)
        assert (r1.b_start, r1.b_end) == (r2.a_start, r2.a_end)
