"""Shared fixtures: small deterministic benchmarks and configurations.

Everything is seeded; tests never depend on wall-clock or ordering
accidents.  The "small" regimes use short reads (~120 bp) and short genes
so whole pipelines run in well under a second each.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClusteringConfig
from repro.sequence import EstCollection
from repro.simulate import BenchmarkParams, ErrorModel, make_benchmark


@pytest.fixture(scope="session")
def small_benchmark():
    """10 genes, ~80 short ESTs, 2% errors — the standard pipeline input."""
    return make_benchmark(
        BenchmarkParams.small(n_genes=10, mean_ests_per_gene=8), rng=1
    )


@pytest.fixture(scope="session")
def clean_benchmark():
    """Error-free reads: every overlap is exact (recovery should be easy)."""
    params = BenchmarkParams.small(n_genes=6, mean_ests_per_gene=14)
    params = BenchmarkParams(
        n_genes=params.n_genes,
        mean_ests_per_gene=params.mean_ests_per_gene,
        read_params=params.read_params,
        error_model=ErrorModel.perfect(),
        n_exons_range=params.n_exons_range,
        exon_len_range=params.exon_len_range,
    )
    return make_benchmark(params, rng=7)


@pytest.fixture(scope="session")
def small_config():
    return ClusteringConfig.small_reads()


@pytest.fixture(scope="session")
def tiny_collection():
    """A handful of hand-written overlapping strings (deterministic)."""
    return EstCollection.from_strings(
        [
            "ACGTACGTACGTTTTGGGCCCAAA",
            "ACGTTTTGGGCCCAAACCCGGGTT",
            "TTTGGGCCCAAACCCGG",
            "GGGTTTAAACCCGGGTTTACGTAC",
            "CATCATCATCATCAT",
        ],
        names=["a", "b", "c", "d", "e"],
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


def overlapping_reads(rng, n: int, genome_len: int = 120, lo: int = 15, hi: int = 50):
    """Random reads off one random genome (helper for property tests)."""
    from repro.sequence.seq import reverse_complement

    genome = rng.integers(0, 4, size=genome_len, dtype=np.uint8)
    reads = []
    for _ in range(n):
        a = int(rng.integers(0, genome_len - lo))
        b = int(rng.integers(a + lo, min(genome_len, a + hi) + 1))
        read = genome[a:b]
        if rng.random() < 0.5:
            read = reverse_complement(read)
        reads.append(read.copy())
    return reads
