"""Dispatch-policy seam tests: the paper formula's edge cases through the
policy interface, JBSQ/PaceAware behaviour, the slave-lost mirror-clearing
regression, config/CLI plumbing, and cluster-oracle parity on both
engines."""

import numpy as np
import pytest

from repro.cli import build_parser
from repro.core import PaceClusterer
from repro.core.config import ClusteringConfig
from repro.pairs import Pair
from repro.parallel import (
    JBSQ,
    DispatchPolicy,
    MasterLogic,
    PaceAware,
    PaperFormula,
    RequestContext,
    cluster_multiprocessing,
    make_policy,
    simulate_clustering,
)
from repro.parallel.dispatch import parse_policy
from repro.parallel.protocol import SlaveMsg
from repro.simulate import BenchmarkParams, make_benchmark


def _mk_pair(i, j, length=12):
    return Pair(length, 2 * i, 0, 2 * j, 0)


def _msg(slave_id, pairs=(), results=(), exhausted=False, pending=False):
    return SlaveMsg(
        slave_id=slave_id,
        results=tuple(results),
        pairs=tuple(pairs),
        exhausted=exhausted,
        has_pending_results=pending,
    )


def _ctx(**overrides):
    base = dict(
        slave_id=0,
        p=10,
        p_prime=10,
        batchsize=10,
        nfree=1000,
        workbuf_depth=0,
        workbuf_capacity=1000,
        n_slaves=4,
        active_slaves=4,
        passive=False,
        in_flight_batches=0,
        in_flight_pairs=0,
    )
    base.update(overrides)
    return RequestContext(**base)


class TestPolicyFactory:
    def test_names(self):
        assert make_policy("paper").name == "paper"
        assert make_policy("jbsq").name == "jbsq:2"
        assert make_policy("jbsq:5").name == "jbsq:5"
        assert make_policy("pace").name == "pace"

    def test_instance_passthrough(self):
        pol = JBSQ(k=3)
        assert make_policy(pol) is pol

    def test_parse_jbsq_arg(self):
        assert parse_policy("jbsq:3") == ("jbsq", {"k": 3})
        assert parse_policy("paper") == ("paper", {})

    @pytest.mark.parametrize(
        "spec", ["bogus", "jbsq:x", "pace:2", "paper:1", "jbsq:"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            make_policy(spec)

    def test_jbsq_bound_validated(self):
        with pytest.raises(ValueError):
            JBSQ(k=0)


class TestPaperFormulaEdgeCases:
    """The §3.3 formula's corners, through the policy seam."""

    def test_nominal_alpha_delta(self):
        # alpha = 10/5 = 2, delta = 1 -> E = 2 * 10 = 20.
        assert PaperFormula().request(_ctx(p=10, p_prime=5)) == 20

    def test_p_prime_zero_uses_n_slaves_alpha(self):
        # Everything offered was redundant: alpha spikes to p (=n_slaves)
        # to pull harder, still capped by nfree/p.
        e = PaperFormula().request(_ctx(p=10, p_prime=0))
        assert e == min(4 * 10, 1000 // 4) * 1  # alpha=4, delta=1 -> 40

    def test_bootstrap_p_zero_primes_flow(self):
        # Nothing offered yet: alpha = 1 -> plain delta*batchsize.
        assert PaperFormula().request(_ctx(p=0, p_prime=0)) == 10

    def test_nfree_zero_grants_nothing(self):
        assert PaperFormula().request(_ctx(nfree=0)) == 0

    def test_passive_ctx_grants_nothing(self):
        assert PaperFormula().request(_ctx(passive=True)) == 0

    def test_delta_compensates_passive_fleet(self):
        # 4 slaves, 2 active: delta = 2 doubles the request.
        assert PaperFormula().request(_ctx(active_slaves=2)) == 20


class TestMasterEdgeCases:
    """The same corners end-to-end through MasterLogic."""

    def test_passive_slave_never_granted(self):
        m = MasterLogic(n_ests=20, n_slaves=2, batchsize=5, workbuf_capacity=50)
        m.on_message(_msg(0, exhausted=True))  # slave 0 goes passive
        pairs = [_mk_pair(2 * k, 2 * k + 1) for k in range(8)]
        m.on_message(_msg(1, pairs=pairs))
        # Work is now queued; the wait-queue drain offers slave 0 work
        # but must still request nothing from it.
        for sid, reply in m.drain_wait_queue():
            if sid == 0:
                assert reply.request == 0

    def test_nfree_zero_no_request(self):
        m = MasterLogic(n_ests=40, n_slaves=1, batchsize=4, workbuf_capacity=4)
        pairs = [_mk_pair(2 * k, 2 * k + 1) for k in range(8)]
        reply = m.on_message(_msg(0, pairs=pairs))
        # W takes 4, 4 stay queued: WORKBUF is full, nothing more wanted.
        assert len(reply.work) == 4
        assert reply.request == 0

    def test_lost_then_revived_grant_cycle(self):
        m = MasterLogic(n_ests=40, n_slaves=2, batchsize=5, workbuf_capacity=100)
        pairs = [_mk_pair(2 * k, 2 * k + 1) for k in range(10)]
        r = m.on_message(_msg(0, pairs=pairs))
        assert r.request > 0
        m.slave_lost(0)
        # Lost -> passive: a straggling message from the dead incarnation
        # earns no grant.
        assert m._compute_request(0, 10, 10) == 0
        m.slave_revived(0)
        # Revived: the replacement bootstraps with a fresh grant.
        assert m._compute_request(0, 0, 0) > 0


class TestJBSQ:
    def test_grant_shrinks_with_depth(self):
        pol = JBSQ(k=2)
        full = pol.request(_ctx())
        assert full == 10
        pol.note_dispatch(0, 10)
        assert pol.request(_ctx(in_flight_batches=1)) == 5
        pol.note_dispatch(0, 10)
        assert pol.request(_ctx(in_flight_batches=2)) == 0

    def test_other_slaves_unaffected(self):
        pol = JBSQ(k=2)
        pol.note_dispatch(0, 10)
        pol.note_dispatch(0, 10)
        assert pol.request(_ctx(slave_id=1)) == 10

    def test_retirement_restores_grant(self):
        pol = JBSQ(k=2)
        pol.note_dispatch(0, 10)
        pol.note_dispatch(0, 10)
        pol.note_retired(0, 10)
        assert pol.request(_ctx()) == 5
        pol.note_retired(0, 10)
        assert pol.request(_ctx()) == 10

    def test_empty_batches_not_counted(self):
        pol = JBSQ(k=2)
        pol.note_dispatch(0, 0)  # a result-eliciting ping, not work
        assert pol.queue_depth(0) == (0, 0)
        assert pol.request(_ctx()) == 10

    def test_zero_base_passes_through(self):
        # Stall safety: JBSQ only ever shrinks a positive paper grant; a
        # passive/full-buffer zero stays zero rather than going negative.
        pol = JBSQ(k=2)
        assert pol.request(_ctx(nfree=0)) == 0


class TestSlaveLostMirror:
    """Regression: grants issued immediately before a degraded-recovery
    drain_workbuf double-counted the dead slave's in-flight pairs in the
    JBSQ queue-depth view.  slave_lost must clear the mirror."""

    def _master(self, policy):
        m = MasterLogic(
            n_ests=40, n_slaves=2, batchsize=5, workbuf_capacity=100,
            policy=policy,
        )
        pairs = [_mk_pair(2 * k, 2 * k + 1) for k in range(10)]
        reply = m.on_message(_msg(0, pairs=pairs))
        assert reply.work  # slave 0 now holds a batch in flight
        return m

    def test_mirror_cleared_on_slave_lost(self):
        pol = JBSQ(k=2)
        m = self._master(pol)
        assert pol.queue_depth(0) != (0, 0)
        requeued = m.slave_lost(0)
        assert requeued > 0  # the in-flight batch went back to WORKBUF
        assert pol.queue_depth(0) == (0, 0)

    def test_revived_slave_gets_full_grant(self):
        pol = JBSQ(k=2)
        m = self._master(pol)
        m.slave_lost(0)
        m.slave_revived(0)
        # The replacement's bootstrap must see a full paper-sized grant,
        # not one shrunk by its dead predecessor's phantom queue.
        reply = m.on_message(_msg(0))
        paper = PaperFormula()
        mirror = MasterLogic(
            n_ests=40, n_slaves=2, batchsize=5, workbuf_capacity=100,
            policy=paper,
        )
        # Same protocol state replayed under the paper policy:
        mirror.on_message(_msg(0, pairs=[_mk_pair(2 * k, 2 * k + 1) for k in range(10)]))
        mirror.slave_lost(0)
        mirror.slave_revived(0)
        expected = mirror.on_message(_msg(0))
        assert reply.request == expected.request

    def test_mirror_cleared_on_stop(self):
        pol = JBSQ(k=2)
        m = MasterLogic(
            n_ests=10, n_slaves=1, batchsize=5, workbuf_capacity=50,
            policy=pol,
        )
        pol.note_dispatch(0, 5)
        r = m.on_message(_msg(0, exhausted=True))
        assert r is not None and r.stop
        assert pol.queue_depth(0) == (0, 0)


class TestPaceAware:
    def _warm(self, pol, rtts):
        for sid, values in rtts.items():
            for v in values:
                pol.note_dispatch(sid, 5)
                pol.note_retired(sid, 5, v)

    def test_laggard_shrunk_fast_peers_not(self):
        pol = PaceAware(min_samples=4)
        self._warm(pol, {
            0: [1.0] * 6, 1: [1.0] * 6, 2: [1.1] * 6, 3: [5.0] * 6,
        })
        assert pol.pace_factor(0) == 1.0
        assert pol.pace_factor(3) == pytest.approx(max(0.25, 1.0 / 5.0))
        assert pol.request(_ctx(slave_id=3)) < pol.request(_ctx(slave_id=0))

    def test_too_few_samples_full_grant(self):
        pol = PaceAware(min_samples=4)
        self._warm(pol, {0: [1.0] * 6, 3: [9.0] * 3})  # 3 < min_samples
        assert pol.pace_factor(3) == 1.0

    def test_single_measured_slave_full_grant(self):
        pol = PaceAware(min_samples=2)
        self._warm(pol, {0: [5.0] * 4})
        # No fleet to lag behind.
        assert pol.pace_factor(0) == 1.0

    def test_monitor_signal_clamps_to_floor(self):
        pol = PaceAware(floor=0.25)
        pol.attach_signals(lambda: (2,))
        assert pol.pace_factor(2) == 0.25
        assert pol.pace_factor(0) == 1.0
        assert pol.request(_ctx(slave_id=2)) == 2  # int(10 * 0.25)

    def test_slave_lost_forgets_history(self):
        pol = PaceAware(min_samples=2)
        self._warm(pol, {0: [1.0] * 4, 1: [1.0] * 4, 3: [9.0] * 4})
        assert pol.pace_factor(3) < 1.0
        pol.note_slave_lost(3)
        assert pol.pace_factor(3) == 1.0

    def test_wants_rtt_tracks_without_latency_store(self):
        # A pace master with telemetry OFF must still see round trips.
        m = MasterLogic(
            n_ests=60, n_slaves=1, batchsize=3, workbuf_capacity=100,
            policy=PaceAware(),
        )
        assert m._track_rtt
        pairs = [_mk_pair(2 * k, 2 * k + 1) for k in range(15)]
        m.on_message(_msg(0, pairs=pairs[:5]), now=0.0)
        m.on_message(_msg(0, pairs=pairs[5:10]), now=1.0)
        m.on_message(_msg(0, pairs=pairs[10:]), now=2.5)
        pol = m.policy
        assert 0 in pol._rtts and len(pol._rtts[0]) >= 1
        # Results cover all dispatched batches except the newest, so the
        # batch dispatched at 0.0 is only confirmed retired by the third
        # message at 2.5.
        assert pol._rtts[0][0] == pytest.approx(2.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PaceAware(floor=0.0)
        with pytest.raises(ValueError):
            PaceAware(lag=0.9)


class TestConfigAndCli:
    def test_config_default_paper(self):
        assert ClusteringConfig().dispatch_policy == "paper"

    @pytest.mark.parametrize("spec", ["paper", "jbsq", "jbsq:3", "pace"])
    def test_config_accepts_valid(self, spec):
        assert ClusteringConfig(dispatch_policy=spec).dispatch_policy == spec

    @pytest.mark.parametrize(
        "spec", ["bogus", "jbsq:0", "jbsq:x", "pace:2", "paper:1"]
    )
    def test_config_rejects_invalid(self, spec):
        with pytest.raises(ValueError):
            ClusteringConfig(dispatch_policy=spec)

    def test_config_grammar_matches_dispatch(self):
        # The inline validation in ClusteringConfig (which cannot import
        # repro.parallel.dispatch — circular) must accept exactly what
        # parse_policy accepts on the shared cases.
        for spec in ("paper", "jbsq", "jbsq:7", "pace"):
            parse_policy(spec)
            ClusteringConfig(dispatch_policy=spec)

    def test_cli_flag_parsed(self):
        args = build_parser().parse_args(
            ["cluster", "x.fa", "--dispatch-policy", "jbsq:3"]
        )
        assert args.dispatch_policy == "jbsq:3"

    def test_cli_flag_default(self):
        args = build_parser().parse_args(["cluster", "x.fa"])
        assert args.dispatch_policy == "paper"


@pytest.fixture(scope="module")
def small_bench():
    return make_benchmark(
        BenchmarkParams.small(n_genes=6, mean_ests_per_gene=6.0),
        rng=np.random.default_rng(5),
    )


@pytest.fixture(scope="module")
def small_config():
    return ClusteringConfig.small_reads(batchsize=8, align_engine="kdiff")


class TestEngineOracle:
    """--dispatch-policy paper must be byte-identical to the sequential
    partition on both engines, and no policy may change the partition."""

    def test_sim_all_policies_match_sequential(self, small_bench, small_config):
        seq = PaceClusterer(small_config).cluster(small_bench.collection).clusters
        for policy in ("paper", "jbsq:2", "pace"):
            rep = simulate_clustering(
                small_bench.collection,
                small_config,
                n_processors=4,
                dispatch_policy=policy,
            )
            assert rep.result.clusters == seq, policy

    def test_mp_paper_matches_sequential(self, small_bench, small_config):
        seq = PaceClusterer(small_config).cluster(small_bench.collection).clusters
        import dataclasses

        cfg = dataclasses.replace(small_config, dispatch_policy="paper")
        result = cluster_multiprocessing(
            small_bench.collection, cfg, n_processors=3
        )
        assert result.clusters == seq

    def test_mp_jbsq_matches_sequential(self, small_bench, small_config):
        seq = PaceClusterer(small_config).cluster(small_bench.collection).clusters
        import dataclasses

        cfg = dataclasses.replace(small_config, dispatch_policy="jbsq:2")
        result = cluster_multiprocessing(
            small_bench.collection, cfg, n_processors=3
        )
        assert result.clusters == seq


class TestCustomPolicyInjection:
    def test_master_accepts_policy_instance(self):
        class Stingy(DispatchPolicy):
            name = "stingy"

            def request(self, ctx):
                return min(1, self.paper_request(ctx))

        m = MasterLogic(
            n_ests=20, n_slaves=1, batchsize=5, workbuf_capacity=50,
            policy=Stingy(),
        )
        pairs = [_mk_pair(2 * k, 2 * k + 1) for k in range(6)]
        reply = m.on_message(_msg(0, pairs=pairs))
        assert reply.request == 1
